#!/usr/bin/env python3
"""Lint simulator-driven code for determinism/scalability hazards.

Thin launcher for :mod:`repro.analysis.simlint` (rule catalog and
suppression syntax: ``docs/analysis.md``). Exits non-zero on any finding,
so CI fails when a hazard lands.

Usage: python scripts/simlint.py [paths ...] [--json out.json]
       (no paths: lint src/)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.simlint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
