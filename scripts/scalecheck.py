#!/usr/bin/env python3
"""Scalability-fault check: ladder, fit exponents, compare to baselines.

Thin launcher for :mod:`repro.analysis.scalecheck` (methodology:
``docs/analysis.md``). Exits 1 on a super-linear regression versus the
committed ``analysis/baselines/*.json``, 2 when a baseline is missing.

Usage: python scripts/scalecheck.py [fig6 str] [--quick] [--jobs N]
           [--json report.json] [--write-baselines]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.scalecheck import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
