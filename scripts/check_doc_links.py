#!/usr/bin/env python3
"""Check that every relative markdown link in docs/ and README.md resolves.

Scans ``[text](target)`` links; external targets (http/https/mailto) and
pure in-page anchors (``#...``) are skipped, everything else must name an
existing file relative to the page that links it (a ``#fragment`` suffix
is stripped first). Exits non-zero listing every broken link, so CI fails
when a doc page is renamed without fixing its inbound references.

Usage: python scripts/check_doc_links.py [page.md ...]
       (no arguments: README.md + docs/*.md)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def broken_links(page: Path) -> list[str]:
    broken = []
    text = page.read_text(encoding="utf-8")
    # fenced code blocks hold example syntax, not navigable links
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (page.parent / path).exists():
            broken.append(f"{page}: broken link -> {target}")
    return broken


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    pages = ([Path(a) for a in argv]
             if argv else [root / "README.md", *sorted(
                 (root / "docs").glob("*.md"))])
    failures: list[str] = []
    for page in pages:
        failures.extend(broken_links(page))
    for line in failures:
        print(line, file=sys.stderr)
    print(f"checked {len(pages)} page(s): "
          f"{'FAIL' if failures else 'ok'} ({len(failures)} broken)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
