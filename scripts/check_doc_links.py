#!/usr/bin/env python3
"""Check that every relative markdown link in docs/ and README.md resolves.

Scans ``[text](target)`` links; external targets (http/https/mailto) are
skipped, everything else must name an existing file relative to the page
that links it. Anchors are verified too: a pure in-page ``#fragment`` and
the ``page.md#fragment`` suffix of a cross-page link must both match a
heading slug (GitHub's lowercase/hyphenated scheme, duplicate headings
numbered ``-1``, ``-2``, ...) in the target page. Exits non-zero listing
every broken link, so CI fails when a doc page or section is renamed
without fixing its inbound references.

Usage: python scripts/check_doc_links.py [page.md ...]
       (no arguments: README.md + every page under docs/, subdirectories
       included)
"""

from __future__ import annotations

import re
import sys
from functools import lru_cache
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.M)
HTML_ANCHOR = re.compile(r"<a\s+(?:name|id)=[\"']([^\"']+)[\"']")
SKIP_PREFIXES = ("http://", "https://", "mailto:")


def _strip_fences(text: str) -> str:
    # fenced code blocks hold example syntax, not navigable links
    return re.sub(r"```.*?```", "", text, flags=re.S)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (sans duplicate suffix)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code -> bare text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> label
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


@lru_cache(maxsize=None)
def page_anchors(page: Path) -> frozenset:
    """Every anchor ``page`` exposes: heading slugs + explicit <a name>."""
    text = _strip_fences(page.read_text(encoding="utf-8"))
    anchors = set()
    seen: dict = {}
    for match in HEADING.finditer(text):
        slug = github_slug(match.group(1))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    anchors.update(HTML_ANCHOR.findall(text))
    return frozenset(anchors)


def broken_links(page: Path) -> list[str]:
    broken = []
    text = _strip_fences(page.read_text(encoding="utf-8"))
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        path, _, fragment = target.partition("#")
        dest = page if not path else (page.parent / path)
        if not dest.exists():
            broken.append(f"{page}: broken link -> {target}")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in page_anchors(dest.resolve()):
                broken.append(
                    f"{page}: broken anchor -> {target} "
                    f"(no heading slugs to '#{fragment}' in {dest.name})")
    return broken


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    pages = ([Path(a) for a in argv]
             if argv else [root / "README.md", *sorted(
                 (root / "docs").rglob("*.md"))])
    failures: list[str] = []
    for page in pages:
        failures.extend(broken_links(page))
    for line in failures:
        print(line, file=sys.stderr)
    print(f"checked {len(pages)} page(s): "
          f"{'FAIL' if failures else 'ok'} ({len(failures)} broken)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
