"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, CostModel
from repro.runner import SimEnv, make_env
from repro.simx import SeededRNG, Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> SeededRNG:
    return SeededRNG(42)


@pytest.fixture
def small_cluster(sim) -> Cluster:
    """A 8-compute-node cluster for unit tests."""
    return Cluster(sim, ClusterSpec(n_compute=8, seed=3))


@pytest.fixture
def env() -> SimEnv:
    """A ready 16-node SLURM environment."""
    return make_env(n_compute=16)


def run_gen(sim: Simulator, gen):
    """Drive one generator to completion on a fresh or shared simulator."""
    proc = sim.process(gen)
    sim.run()
    return proc.value
