"""The data plane over a DEGRADED session: survivors keep streaming."""

import pytest

from repro.apps import make_compute_app
from repro.be import BackEnd
from repro.cluster import ClusterSpec, FaultPlan, NodeCrash
from repro.fe import SessionState, ToolFrontEnd
from repro.launch import LaunchPolicy
from repro.rm.base import DaemonSpec
from repro.runner import drive, make_env
from repro.tbon import Overlay, TBONTopology
from repro.tbon.overlay import StreamSpec

POLICY = LaunchPolicy(per_daemon_timeout=10.0, max_retries=1,
                      retry_backoff=0.01, min_daemon_fraction=0.5,
                      handshake_timeout=30.0)


def _daemon(ctx):
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    yield from be.finalize()


class TestStreamOverDegradedSession:
    def test_degraded_session_stream_keeps_delivering(self):
        """Node 5 dies during the spawn; the session comes up DEGRADED;
        a stream opened over the surviving daemon set delivers every
        wave, merged over exactly the survivors."""
        n = 8
        plan = FaultPlan(node_crashes=(NodeCrash(node=5, at=0.005),),
                         auto_arm=False)
        env = make_env(n_compute=n,
                       spec=ClusterSpec(n_compute=n, fault_plan=plan,
                                        seed=3),
                       policy=POLICY)
        app = make_compute_app(n_tasks=2 * n, tasks_per_node=2)
        spec = DaemonSpec("toold", main=_daemon, image_mb=2.0)
        n_waves = 5
        box = {}

        def scenario(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            job = yield from env.rm.launch_job(app, env.rm.allocate(n))
            env.cluster.faults.arm()
            session = fe.create_session()
            yield from fe.attach_and_spawn(session, job, spec)
            box["state"] = session.state

            # the tool now wires its data plane over the SURVIVORS
            survivors = [d.node for d in session.daemons]
            topo = TBONTopology.one_deep(len(survivors))
            placement = {0: env.cluster.front_end}
            for pos, node in zip(topo.backends(), survivors):
                placement[pos] = node
            overlay = Overlay(env.sim, env.cluster.network, topo,
                              placement, streams={})
            overlay.start_routers()
            session.overlay = overlay

            # open_stream is legal from DEGRADED (survivors publish)
            stream = session.open_stream(filter_name="histogram",
                                         credit_limit=2, window=0)

            def publisher(pos, node):
                for w in range(n_waves):
                    yield from stream.publish(pos, w, {"up": 1})
                    yield env.sim.timeout(0.01)

            for pos in topo.backends():
                proc = env.sim.process(publisher(pos, placement[pos]))
                placement[pos].register_body(proc)

            delivered = []
            for _ in range(n_waves):
                pkt = yield from stream.next_wave()
                delivered.append((pkt.wave, pkt.payload))
            box["delivered"] = delivered
            box["running"] = stream.state_at(0)["running"]
            box["report"] = stream.report
            yield from fe.detach(session)

        drive(env, scenario(env))
        assert box["state"] is SessionState.DEGRADED
        survivors = n - 1
        # every wave delivered, each merging exactly the survivor set
        assert [w for w, _ in box["delivered"]] == list(range(n_waves))
        assert all(p == {"up": survivors}
                   for _, p in box["delivered"])
        assert box["running"] == {"up": survivors * n_waves}
        assert box["report"].n_delivered == n_waves
        assert box["report"].max_inbox_depth() <= 2

    def test_open_stream_requires_usable_state_and_overlay(self):
        env = make_env(n_compute=4)
        app = make_compute_app(n_tasks=8, tasks_per_node=2)
        spec = DaemonSpec("toold", main=_daemon, image_mb=2.0)
        box = {}

        def scenario(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            session = fe.create_session()
            # CREATED is not a streamable state
            with pytest.raises(RuntimeError, match="state"):
                session.open_stream()
            yield from fe.launch_and_spawn(session, app, spec)
            # READY but no overlay attached yet
            with pytest.raises(RuntimeError, match="no TBON overlay"):
                session.open_stream()
            yield from fe.detach(session, reclaim_job=True)
            box["done"] = True

        drive(env, scenario(env))
        assert box["done"]
