"""Session-level fault paths: DEGRADED state, reclaim, blacklisted nodes."""

import pytest

from repro.apps import make_compute_app
from repro.be import BackEnd
from repro.cluster import ClusterSpec, FaultPlan, NodeCrash
from repro.fe import SessionState, ToolFrontEnd
from repro.launch import LaunchPolicy
from repro.rm.base import DaemonSpec, RMError
from repro.runner import drive, make_env


def _daemon(ctx):
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    yield from be.finalize()


POLICY = LaunchPolicy(per_daemon_timeout=10.0, max_retries=1,
                      retry_backoff=0.01, min_daemon_fraction=0.5,
                      handshake_timeout=30.0)


def _env(n=8, plan=None, policy=POLICY, **kw):
    return make_env(n_compute=n,
                    spec=ClusterSpec(n_compute=n, fault_plan=plan, seed=3),
                    policy=policy, **kw)


class TestDegradedSession:
    def test_degraded_then_detach_then_reattach(self):
        # node 5 crashes during the daemon spawn (the controller phase of
        # the first attach runs at ~5 ms; the crash at arm+5 ms lands
        # before its fork), so the first session comes up DEGRADED
        plan = FaultPlan(node_crashes=(NodeCrash(node=5, at=0.005),),
                         auto_arm=False)
        env = _env(plan=plan)
        app = make_compute_app(n_tasks=16, tasks_per_node=2)
        spec = DaemonSpec("toold", main=_daemon, image_mb=2.0)
        box = {}

        def scenario(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            job = yield from env.rm.launch_job(app, env.rm.allocate(8))
            env.cluster.faults.arm()
            first = fe.create_session()
            yield from fe.attach_and_spawn(first, job, spec)
            box["first_state"] = first.state
            box["first_report"] = first.launch_report
            # DEGRADED -> detach is legal (round-trip part 1)
            yield from fe.detach(first)
            box["after_detach"] = first.state
            # ...and the same job can be re-acquired (round-trip part 2):
            # the dead node is blacklisted, so its index is skipped
            second = fe.create_session()
            yield from fe.attach_and_spawn(second, job, spec)
            box["second_state"] = second.state
            box["second_report"] = second.launch_report
            yield from fe.detach(second)

        drive(env, scenario(env))
        first = box["first_report"]
        dead = env.cluster.compute[5].name
        assert box["first_state"] is SessionState.DEGRADED
        assert first.n_daemons == 7 and first.requested == 8
        assert first.blacklisted == [dead]
        assert box["after_detach"] is SessionState.DETACHED
        assert box["second_state"] is SessionState.DEGRADED
        # reattach skipped the condemned node without a spawn attempt
        second = box["second_report"]
        assert "skipped" in second.outcomes.values()
        assert second.n_daemons == 7

    def test_below_min_fraction_fails_and_reclaims(self):
        crashes = tuple(NodeCrash(node=i, at=0.005) for i in range(5))
        env = _env(plan=FaultPlan(node_crashes=crashes, auto_arm=False))
        app = make_compute_app(n_tasks=16, tasks_per_node=2)
        spec = DaemonSpec("toold", main=_daemon, image_mb=2.0)
        box = {}

        def scenario(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            alloc = env.rm.allocate(8)
            job = yield from env.rm.launch_job(app, alloc)
            env.cluster.faults.arm()  # 5 of 8 nodes die during the spawn
            session = fe.create_session()
            with pytest.raises(RMError, match="incomplete"):
                yield from fe.attach_and_spawn(session, job, spec)
            box["state"] = session.state
            env.rm.release(alloc)

        drive(env, scenario(env))
        assert box["state"] is SessionState.FAILED
        # the failed session stranded nothing: no daemons survive anywhere
        # and every surviving, non-condemned node is allocatable again
        for node in env.cluster.compute:
            assert not node.processes_of("toold")
        free = {n.name for n in env.rm.free_nodes()}
        survivors = {n.name for n in env.cluster.compute if not n.failed}
        assert free == survivors - env.rm.node_blacklist

    def test_faultfree_policy_run_reaches_ready(self):
        env = _env()
        app = make_compute_app(n_tasks=16, tasks_per_node=2)
        spec = DaemonSpec("toold", main=_daemon, image_mb=2.0)
        box = {}

        def scenario(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            session = fe.create_session()
            yield from fe.launch_and_spawn(session, app, spec)
            box["state"] = session.state
            yield from fe.detach(session, reclaim_job=True)

        drive(env, scenario(env))
        assert box["state"] is SessionState.READY


class TestKilledDuringHandshake:
    def test_daemon_killed_mid_handshake_releases_its_node(self):
        env = _env(policy=LaunchPolicy(handshake_timeout=5.0))
        app = make_compute_app(n_tasks=16, tasks_per_node=2)

        def dying_daemon(ctx):
            be = BackEnd(ctx)
            if ctx.rank == 3:
                # the daemon dies before joining the init collectives:
                # without a handshake timeout the session would hang
                ctx.proc.exit(137)
                return
            yield from be.init()
            yield from be.ready()
            yield from be.finalize()

        spec = DaemonSpec("toold", main=dying_daemon, image_mb=2.0)
        box = {}

        def scenario(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            session = fe.create_session()
            try:
                yield from fe.launch_and_spawn(session, app, spec)
            except Exception as exc:
                box["error"] = str(exc)
            box["state"] = session.state

        drive(env, scenario(env))
        assert box["state"] is SessionState.FAILED
        assert "handshake" in box["error"]
        # the killed daemon's process-table slot was released at exit, and
        # the failed session reclaimed every node it held
        for node in env.cluster.compute:
            assert not node.processes_of("toold")
        assert len(env.rm.free_nodes()) == 8


class TestBlacklistAllocation:
    def test_blacklisted_node_never_reallocated(self):
        env = _env(policy=None)
        condemned = env.cluster.compute[2].name
        env.rm.node_blacklist.add(condemned)
        alloc = env.rm.allocate(6)
        assert condemned not in {n.name for n in alloc.nodes}
        env.rm.release(alloc)
        again = env.rm.allocate(7)  # all that remains without the outcast
        assert condemned not in {n.name for n in again.nodes}
        with pytest.raises(Exception):
            env.rm.allocate(8)  # the condemned node is simply not there

    def test_crashed_node_not_allocatable(self):
        env = _env(policy=None)
        env.cluster.compute[0].fail()
        assert len(env.rm.free_nodes()) == 7

    def test_launch_blacklist_sticks_for_later_allocations(self):
        # end-to-end: a launch condemns a node, the allocation layer then
        # refuses to hand it out for the rest of the session
        plan = FaultPlan(node_crashes=(NodeCrash(node=1, at=0.005),),
                         auto_arm=False)
        env = _env(plan=plan)
        app = make_compute_app(n_tasks=8, tasks_per_node=2)
        spec = DaemonSpec("toold", main=_daemon, image_mb=2.0)

        def scenario(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            alloc = env.rm.allocate(4)
            job = yield from env.rm.launch_job(app, alloc)
            env.cluster.faults.arm()
            session = fe.create_session()
            yield from fe.attach_and_spawn(session, job, spec)
            assert session.state is SessionState.DEGRADED
            yield from fe.detach(session)
            env.rm.release(alloc)

        drive(env, scenario(env))
        dead = env.cluster.compute[1].name
        assert dead in env.rm.node_blacklist
        free = {n.name for n in env.rm.free_nodes()}
        assert dead not in free
        assert len(free) == 7
