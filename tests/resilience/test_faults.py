"""Fault-injection unit tests: injector, node failure, resilient strategies."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    FaultPlan,
    FsStall,
    LinkFlap,
    NodeCrash,
    NodeDown,
    Straggler,
)
from repro.launch import LaunchRequest, get_strategy
from repro.simx import Simulator
from tests.conftest import run_gen


def _cluster(sim, n=8, plan=None, **spec_kw):
    return Cluster(sim, ClusterSpec(n_compute=n, fault_plan=plan, seed=3,
                                    **spec_kw))


def _request(cluster, nodes, **kw):
    kw.setdefault("executable", "toold")
    return LaunchRequest(cluster=cluster, nodes=nodes, **kw)


class TestNodeFailure:
    def test_fail_kills_procs_and_releases_slots(self, sim):
        cluster = _cluster(sim)
        node = cluster.compute[0]
        procs = [run_gen(sim, node.fork_exec("d", uid="u")) for _ in range(3)]
        assert node.user_proc_count("u") == 3
        killed, _ = node.fail("test crash")
        assert killed == 3
        assert node.user_proc_count("u") == 0
        assert all(p.exit_code == 137 for p in procs)

    def test_fork_on_dead_node_raises(self, sim):
        cluster = _cluster(sim)
        node = cluster.compute[1]
        node.fail()
        with pytest.raises(NodeDown):
            run_gen(sim, node.fork_exec("d"))

    def test_rsh_to_dead_node_raises(self, sim):
        cluster = _cluster(sim)
        cluster.compute[2].fail()
        with pytest.raises(NodeDown):
            run_gen(sim, cluster.front_end.rsh_spawn(
                cluster.compute[2], "d"))

    def test_fail_interrupts_resident_bodies(self, sim):
        cluster = _cluster(sim)
        node = cluster.compute[0]

        def body():
            yield sim.timeout(1000)

        proc = sim.process(body(), name="resident")
        node.register_body(proc)
        _, interrupted = node.fail()
        sim.run()
        assert interrupted == 1
        assert not proc.is_alive

    def test_fail_is_idempotent(self, sim):
        node = _cluster(sim).compute[0]
        node.fail()
        assert node.fail() == (0, 0)


class TestFaultInjector:
    def test_no_plan_means_no_injector(self, sim):
        cluster = _cluster(sim)
        assert cluster.faults is None
        assert cluster.fs.faults is None

    def test_scheduled_crash_fires(self, sim):
        plan = FaultPlan(node_crashes=(NodeCrash(node=1, at=2.0),))
        cluster = _cluster(sim, plan=plan)
        sim.run(until=1.0)
        assert not cluster.compute[1].failed
        sim.run(until=3.0)
        assert cluster.compute[1].failed
        assert cluster.faults.stats.crashes == 1
        assert cluster.faults.log

    def test_random_crashes_are_seed_stable(self):
        def victims(seed):
            sim = Simulator()
            plan = FaultPlan(crash_rate=0.3, crash_window=(0.0, 1.0))
            cluster = Cluster(sim, ClusterSpec(
                n_compute=16, fault_plan=plan, seed=seed))
            sim.run(until=2.0)
            return [n.name for n in cluster.compute if n.failed]

        assert victims(7) == victims(7)
        assert victims(7) != victims(8)  # different seed, different victims

    def test_arm_is_explicit_when_auto_arm_off(self, sim):
        plan = FaultPlan(node_crashes=(NodeCrash(node=0, at=0.0),),
                         auto_arm=False)
        cluster = _cluster(sim, plan=plan)
        sim.run(until=1.0)
        assert not cluster.compute[0].failed
        cluster.faults.arm()
        sim.run(until=2.0)
        assert cluster.compute[0].failed

    def test_straggler_slows_fork(self):
        def fork_time(factor):
            sim = Simulator()
            plan = (FaultPlan(stragglers=(Straggler(node=0, factor=factor),))
                    if factor != 1.0 else None)
            cluster = Cluster(sim, ClusterSpec(
                n_compute=2, fault_plan=plan, seed=3))
            run_gen(sim, cluster.compute[0].fork_exec("d"))
            return sim.now

        assert fork_time(10.0) == pytest.approx(10.0 * fork_time(1.0))

    def test_fs_stall_delays_reads(self, sim):
        plan = FaultPlan(fs_stalls=(FsStall(at=0.0, duration=3.0),))
        cluster = _cluster(sim, plan=plan)
        run_gen(sim, cluster.fs.load_image(1.0))
        assert sim.now >= 3.0  # the read waited out the stall window
        assert cluster.faults.stats.fs_stalled_loads == 1
        assert cluster.faults.stats.fs_stall_time >= 3.0


class TestResilientSerialRsh:
    def test_continues_past_dead_node_and_attributes(self, sim):
        cluster = _cluster(sim)
        cluster.compute[3].fail()
        res = run_gen(sim, get_strategy("serial-rsh").launch(_request(
            cluster, cluster.compute, max_retries=1, retry_backoff=0.01,
            blacklist=set())))
        report = res.report
        assert res.n_spawned == 7
        assert report.outcomes[3] == "failed"
        assert report.n_failed == 1
        assert report.retries[3] == 1  # one bounded retry before giving up
        assert report.blacklisted == [cluster.compute[3].name]
        assert 3 not in res.slots
        # partial result is not flagged as a legacy hard failure
        assert not report.failed
        assert sorted(report.outcomes) == list(range(8))

    def test_blacklisted_node_skipped_without_attempt(self, sim):
        cluster = _cluster(sim)
        condemned = {cluster.compute[2].name}
        res = run_gen(sim, get_strategy("serial-rsh").launch(_request(
            cluster, cluster.compute, blacklist=condemned)))
        assert res.report.outcomes[2] == "skipped"
        assert res.n_spawned == 7
        # no processes were ever created on the condemned node
        assert not cluster.compute[2].procs

    def test_transient_link_fault_retried_to_success(self, sim):
        plan = FaultPlan(link_flaps=(LinkFlap(rate=1.0, window=(0.0, 0.4)),))
        cluster = _cluster(sim, n=4, plan=plan)
        res = run_gen(sim, get_strategy("serial-rsh").launch(_request(
            cluster, cluster.compute, max_retries=6, retry_backoff=0.2)))
        assert res.n_spawned == 4  # everything recovered after the window
        assert res.report.n_retried > 0
        assert cluster.faults.stats.rsh_faults > 0
        assert res.report.n_failed == 0

    def test_source_side_failure_does_not_blacklist_targets(self):
        # the FE's own process table fills (hold_clients pins one slot per
        # daemon): the failures are the *source's*, so the healthy target
        # nodes must not be condemned on the blacklist
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(n_compute=8, seed=3,
                                           fe_max_user_procs=4))
        condemned: set = set()
        res = run_gen(sim, get_strategy("serial-rsh").launch(_request(
            cluster, cluster.compute, hold_clients=True,
            max_retries=1, retry_backoff=0.01, blacklist=condemned)))
        assert 0 < res.n_spawned < 8  # the table did fill mid-launch
        assert res.report.n_failed > 0
        assert condemned == set()  # no healthy target condemned
        assert res.report.blacklisted == []

    def test_timed_out_attempts_leak_no_rsh_clients(self):
        # a straggler target makes every attempt overrun the per-daemon
        # timeout; each interrupted attempt must tear down the rsh client
        # it already forked, or the source's process table fills up
        sim = Simulator()
        plan = FaultPlan(stragglers=(Straggler(node=0, factor=1.0e5),))
        cluster = Cluster(sim, ClusterSpec(n_compute=2, fault_plan=plan,
                                           seed=3))
        res = run_gen(sim, get_strategy("serial-rsh").launch(_request(
            cluster, cluster.compute, per_daemon_timeout=0.5,
            max_retries=2, retry_backoff=0.01, blacklist=set())))
        assert res.report.outcomes[0] == "failed"
        assert res.report.retries[0] == 2
        assert res.n_spawned == 1
        # 3 timed-out attempts, 0 leaked clients on the front end
        assert cluster.front_end.user_proc_count("user") == 0

    def test_per_daemon_timeout_fires_on_fs_stall(self, sim):
        plan = FaultPlan(fs_stalls=(FsStall(at=0.0, duration=1.2),))
        cluster = _cluster(sim, n=2, plan=plan)
        res = run_gen(sim, get_strategy("serial-rsh").launch(_request(
            cluster, cluster.compute, stage_images=True, image_mb=4.0,
            per_daemon_timeout=0.5, max_retries=3, retry_backoff=1.0)))
        assert res.n_spawned == 2  # retried past the stall window
        assert res.report.n_retried >= 1


class TestResilientTreeRsh:
    def test_reroots_failed_subtree_at_origin(self, sim):
        cluster = _cluster(sim, n=16)
        # node 0 heads the first fan-out slice; killing it orphans its
        # whole subtree unless the strategy re-roots it
        cluster.compute[0].fail()
        res = run_gen(sim, get_strategy("tree-rsh").launch(_request(
            cluster, cluster.compute, fanout=2, max_retries=1,
            retry_backoff=0.01, blacklist=set())))
        report = res.report
        assert res.n_spawned == 15
        assert report.outcomes[0] == "failed"
        assert all(report.outcomes[i] == "ok" for i in range(1, 16))
        assert report.blacklisted == [cluster.compute[0].name]

    def test_legacy_contract_unchanged(self, sim):
        cluster = _cluster(sim, n=16)
        cluster.compute[0].fail()
        res = run_gen(sim, get_strategy("tree-rsh").launch(_request(
            cluster, cluster.compute, fanout=2)))
        assert res.report.failed  # legacy: first failure poisons the launch
        assert res.n_spawned < 15


class TestResilientRmBulk:
    def test_partial_set_with_slots(self, sim):
        cluster = _cluster(sim)
        cluster.compute[1].fail()
        cluster.compute[5].fail()
        res = run_gen(sim, get_strategy("rm-bulk").launch(_request(
            cluster, cluster.compute, stage_images=True, image_mb=2.0,
            max_retries=1, retry_backoff=0.01, blacklist=set())))
        assert res.n_spawned == 6
        assert sorted(res.report.failed_indices()) == [1, 5]
        assert set(res.slots) == {0, 2, 3, 4, 6, 7}
        assert len(res.report.blacklisted) == 2

    def test_legacy_all_or_nothing_unchanged(self, sim):
        cluster = _cluster(sim)
        cluster.compute[1].fail()
        with pytest.raises(NodeDown):
            run_gen(sim, get_strategy("rm-bulk").launch(_request(
                cluster, cluster.compute)))


class TestBitIdentity:
    """No FaultPlan (or an empty one) must not perturb timing at all."""

    @pytest.mark.parametrize("strategy", ["serial-rsh", "tree-rsh",
                                          "rm-bulk"])
    def test_empty_plan_is_bit_identical(self, strategy):
        def total(plan):
            sim = Simulator()
            cluster = Cluster(sim, ClusterSpec(
                n_compute=12, fault_plan=plan, seed=5))
            res = run_gen(sim, get_strategy(strategy).launch(LaunchRequest(
                cluster=cluster, nodes=cluster.compute,
                executable="toold", stage_images=True, image_mb=6.0)))
            return res.report.total

        assert total(None) == total(FaultPlan())

    @pytest.mark.parametrize("strategy", ["serial-rsh", "tree-rsh"])
    def test_resilient_knobs_do_not_change_faultfree_timing(self, strategy):
        def total(**knobs):
            sim = Simulator()
            cluster = Cluster(sim, ClusterSpec(n_compute=12, seed=5))
            res = run_gen(sim, get_strategy(strategy).launch(LaunchRequest(
                cluster=cluster, nodes=cluster.compute,
                executable="toold", stage_images=True, image_mb=6.0,
                **knobs)))
            return res.report.total

        assert total() == total(per_daemon_timeout=30.0, max_retries=2,
                                blacklist=set())
