"""Parallel sweep engine: byte-identity, merge order, CLI wiring."""

import pytest

from repro.experiments import run_fig6, run_launch_matrix
from repro.experiments.cli import (
    HYBRID_EXPERIMENTS,
    QUICK_SWEEPS,
    RUNNERS,
    SCALE_SWEEPS,
    XL_SWEEPS,
    XXL_SWEEPS,
    main as cli_main,
)
from repro.experiments.sweep import default_jobs, map_grid


def _square(x):
    return {"x": x, "sq": x * x}


def _explode(x):
    if x == 3:
        raise ValueError("cell 3 is broken")
    return x


class TestMapGrid:
    def test_serial_and_parallel_results_identical(self):
        grid = [dict(x=i) for i in range(10)]
        assert map_grid(_square, grid, jobs=1) \
            == map_grid(_square, grid, jobs=4)

    def test_results_come_back_in_grid_order(self):
        grid = [dict(x=i) for i in (5, 1, 9, 2)]
        out = map_grid(_square, grid, jobs=3)
        assert [r["x"] for r in out] == [5, 1, 9, 2]

    def test_worker_failure_reraises_in_parent(self):
        grid = [dict(x=i) for i in range(5)]
        with pytest.raises(ValueError, match="cell 3 is broken"):
            map_grid(_explode, grid, jobs=2)
        with pytest.raises(ValueError, match="cell 3 is broken"):
            map_grid(_explode, grid, jobs=1)

    def test_default_jobs_normalization(self):
        assert default_jobs(None) == 1
        assert default_jobs(0) == 1
        assert default_jobs(3) == 3
        assert default_jobs(-1) >= 1

    def test_empty_grid(self):
        assert map_grid(_square, [], jobs=4) == []


class TestSweepByteIdentity:
    def test_fig6_quick_jobs4_byte_identical_to_serial(self):
        serial = run_fig6(**QUICK_SWEEPS["fig6"]).format_table()
        parallel = run_fig6(**QUICK_SWEEPS["fig6"], jobs=4).format_table()
        assert parallel == serial

    def test_lmx_quick_jobs2_byte_identical_to_serial(self):
        serial = run_launch_matrix(**QUICK_SWEEPS["lmx"]).format_table()
        parallel = run_launch_matrix(**QUICK_SWEEPS["lmx"],
                                     jobs=2).format_table()
        assert parallel == serial


class TestCliScaleAndJobs:
    def test_every_runner_accepts_jobs(self):
        # the CLI passes jobs= to every runner unconditionally
        import inspect

        for name, runner in RUNNERS.items():
            assert "jobs" in inspect.signature(runner).parameters, name

    def test_scale_tiers_cover_every_experiment(self):
        assert set(QUICK_SWEEPS) == set(RUNNERS)
        assert set(XL_SWEEPS) == set(RUNNERS)
        assert set(SCALE_SWEEPS) == {"quick", "full", "xl", "xxl"}

    def test_xl_tier_reaches_64k_daemons(self):
        assert 65536 in XL_SWEEPS["fig6"]["node_counts"]
        assert 16384 in XL_SWEEPS["lmx"]["daemon_counts"]

    def test_xxl_tier_is_hybrid_only_at_1m_daemons(self):
        # the xxl tier exists only for the hybrid-capable experiments
        # and always runs them through the aggregation tier
        assert set(XXL_SWEEPS) == set(HYBRID_EXPERIMENTS)
        assert XXL_SWEEPS["fig6"]["node_counts"] == (1048576,)
        assert XXL_SWEEPS["str"]["leaf_counts"] == (1048576,)
        assert all(sweep["hybrid"] for sweep in XXL_SWEEPS.values())

    def test_cli_rejects_xxl_for_non_hybrid_experiment(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["table1", "--scale", "xxl"])
        assert "xxl" in capsys.readouterr().err

    def test_cli_rejects_hybrid_for_non_hybrid_experiment(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["table1", "--hybrid"])
        assert "hybrid" in capsys.readouterr().err

    def test_cli_quick_with_jobs(self, capsys):
        assert cli_main(["table1", "--quick", "--jobs", "2"]) == 0
        assert "O|SS APAI access times" in capsys.readouterr().out

    def test_cli_scale_quick_equals_quick_flag(self, capsys):
        assert cli_main(["table1", "--scale", "quick"]) == 0
        a = capsys.readouterr().out
        assert cli_main(["table1", "--quick"]) == 0
        assert capsys.readouterr().out == a

    def test_cli_rejects_conflicting_scale_and_quick(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["table1", "--quick", "--scale", "xl"])
