"""Tests for the experiment runners: paper-shape assertions at small scale."""

import pytest

from repro.experiments import (
    ExperimentResult,
    run_ablation_iccl,
    run_ablation_launchers,
    run_ablation_rm_events,
    run_fig3,
    run_fig5,
    run_fig6,
    run_launch_matrix,
    run_resilience,
    run_streaming,
    run_table1,
)
from repro.experiments.cli import main as cli_main


class TestResultContainer:
    def test_table_formatting(self):
        r = ExperimentResult("x", "demo", ["a", "b"])
        r.add_row(a=1, b=0.5)
        r.add_row(a=2, b=None)
        r.notes.append("a note")
        text = r.format_table()
        assert "x: demo" in text
        assert "0.500" in text
        assert "-" in text
        assert "# a note" in text

    def test_column_and_row_lookup(self):
        r = ExperimentResult("x", "demo", ["a", "b"])
        r.add_row(a=1, b=10)
        r.add_row(a=2, b=20)
        assert r.column("b") == [10, 20]
        assert r.row_for("a", 2)["b"] == 20
        assert r.row_for("a", 99) is None


class TestFig3Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(daemon_counts=(16, 48, 96))

    def test_rows_and_columns(self, result):
        assert [r["daemons"] for r in result.rows] == [16, 48, 96]
        assert "model_total" in result.columns

    def test_total_monotone_in_scale(self, result):
        totals = result.column("measured_total")
        assert totals == sorted(totals)

    def test_model_tracks_measurement(self, result):
        for row in result.rows:
            assert row["model_total"] == pytest.approx(
                row["measured_total"], rel=0.15)

    def test_tracing_scale_independent(self, result):
        traces = result.column("tracing")
        assert max(traces) - min(traces) < 0.002

    def test_launchmon_fraction_small_and_falling(self, result):
        fracs = result.column("lmon_frac")
        assert all(f < 0.2 for f in fracs)
        assert fracs[-1] < fracs[0]

    def test_rm_region_dominates(self, result):
        for row in result.rows:
            rm_share = (row["T(job)"] + row["T(daemon)+T(setup)"]
                        + row["T(collective)"])
            assert rm_share > 0.8 * row["measured_total"]


class TestFig5Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(daemon_counts=(64, 128, 256))

    def test_one_line_per_task(self, result):
        for row in result.rows:
            assert row["lines"] == row["tasks"] == 8 * row["daemons"]

    def test_launchmon_dominates(self, result):
        for row in result.rows:
            assert (row["init_to_attachAndSpawn"]
                    / row["jobsnap_total"]) > 0.6

    def test_subsecond_at_2048_tasks(self, result):
        assert result.row_for("daemons", 256)["jobsnap_total"] < 1.0


class TestFig6Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(node_counts=(4, 32, 64))

    def test_launchmon_always_wins(self, result):
        for row in result.rows:
            assert row["launchmon_1deep"] < row["mrnet_1deep"]

    def test_speedup_grows_with_scale(self, result):
        speedups = result.column("speedup")
        assert speedups == sorted(speedups)

    def test_mrnet_linear_slope_near_paper(self, result):
        r4 = result.row_for("daemons", 4)
        r64 = result.row_for("daemons", 64)
        slope = (r64["mrnet_1deep"] - r4["mrnet_1deep"]) / 60
        assert slope == pytest.approx(0.238, rel=0.15)  # paper's s/daemon


class TestTable1Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(node_counts=(2, 8))

    def test_dpcl_around_34s(self, result):
        assert all(d == pytest.approx(34.0, rel=0.1)
                   for d in result.column("DPCL"))

    def test_launchmon_subsecond(self, result):
        assert all(l < 1.0 for l in result.column("LaunchMON"))

    def test_improvement_order_of_magnitude(self, result):
        assert all(i > 30 for i in result.column("improvement"))


class TestAblations:
    def test_rm_events_ablation(self):
        r = run_ablation_rm_events(daemon_counts=(16, 32))
        rows = {row["daemons"]: row for row in r.rows}
        # fixed: flat; legacy: linear in tasks
        assert rows[32]["fixed_trace"] == pytest.approx(
            rows[16]["fixed_trace"], abs=0.002)
        assert rows[32]["legacy_trace"] > 1.7 * rows[16]["legacy_trace"]
        assert rows[32]["legacy_total"] > rows[32]["fixed_total"]

    def test_iccl_ablation(self):
        r = run_ablation_iccl(daemon_counts=(16, 64),
                              topologies=("flat", "binomial"))
        for row in r.rows:
            assert row["flat"] > 0 and row["binomial"] > 0

    def test_launchers_ablation(self):
        r = run_ablation_launchers(daemon_counts=(16,))
        row = r.rows[0]
        assert row["rsh_sequential"] > row["rsh_tree"] > row["rm_native"]


class TestLaunchMatrix:
    @pytest.fixture(scope="class")
    def result(self):
        return run_launch_matrix(daemon_counts=(16, 64))

    def _cell(self, result, daemons, strategy, staging):
        for row in result.rows:
            if (row["daemons"] == daemons and row["strategy"] == strategy
                    and row["staging"] == staging):
                return row
        raise KeyError((daemons, strategy, staging))

    def test_full_matrix_present(self, result):
        assert len(result.rows) == 2 * 3 * 3

    def test_broadcast_shrinks_image_stage(self, result):
        sf = self._cell(result, 64, "rm-bulk", "shared-fs")
        bc = self._cell(result, 64, "rm-bulk", "broadcast")
        assert bc["t_image_stage"] < 0.5 * sf["t_image_stage"]
        assert bc["total"] < sf["total"]

    def test_cache_mode_pays_cold_saves_warm(self, result):
        ca = self._cell(result, 64, "rm-bulk", "cache")
        sf = self._cell(result, 64, "rm-bulk", "shared-fs")
        assert ca["total"] == pytest.approx(sf["total"], rel=0.05)
        assert ca["warm_total"] < 0.25 * ca["total"]

    def test_strategy_ordering_holds_across_stagings(self, result):
        for staging in ("shared-fs", "cache", "broadcast"):
            seq = self._cell(result, 64, "serial-rsh", staging)
            tree = self._cell(result, 64, "tree-rsh", staging)
            rm = self._cell(result, 64, "rm-bulk", staging)
            assert seq["total"] > tree["total"] > rm["total"]


class TestResilience:
    @pytest.fixture(scope="class")
    def result(self):
        return run_resilience(daemon_counts=(16,), fault_rates=(0.0, 0.1),
                              strategies=("serial-rsh", "tree-rsh"))

    def _cell(self, result, strategy, rate, repair):
        for row in result.rows:
            if (row["strategy"] == strategy and row["fault_rate"] == rate
                    and row["repair"] == repair):
                return row
        raise KeyError((strategy, rate, repair))

    def test_full_sweep_present(self, result):
        assert len(result.rows) == 1 * 2 * 2 * 2

    def test_faultfree_is_ready_either_way(self, result):
        for strategy in ("serial-rsh", "tree-rsh"):
            for repair in (False, True):
                assert self._cell(result, strategy, 0.0,
                                  repair)["state"] == "ready"

    def test_repair_survives_what_legacy_does_not(self, result):
        fragile = self._cell(result, "tree-rsh", 0.1, False)
        repaired = self._cell(result, "tree-rsh", 0.1, True)
        assert fragile["state"] == "failed"
        assert repaired["state"] in ("degraded", "ready")
        if repaired["state"] == "degraded":
            assert repaired["n_failed"] > 0
            assert repaired["up"] + repaired["n_failed"] == 16


class TestStreaming:
    @pytest.fixture(scope="class")
    def result(self):
        return run_streaming(leaf_counts=(16, 64),
                             filters=("histogram", "ewma"),
                             windows=(4,), credit_limits=(2, 8),
                             n_waves=10)

    def _cell(self, result, leaves, filter_name, credit):
        for row in result.rows:
            if (row["leaves"] == leaves and row["filter"] == filter_name
                    and row["credit"] == credit):
                return row
        raise KeyError((leaves, filter_name, credit))

    def test_full_sweep_present(self, result):
        assert len(result.rows) == 2 * 2 * 1 * 2

    def test_every_cell_sustains_all_waves(self, result):
        for row in result.rows:
            assert row["delivered"] == 10

    def test_credit_limit_bounds_depth_and_forces_stalls(self, result):
        for row in result.rows:
            assert row["max_depth"] <= row["credit"]
            assert row["stalls"] > 0  # saturating publishers must stall

    def test_more_credits_mean_more_throughput(self, result):
        for leaves in (16, 64):
            tight = self._cell(result, leaves, "histogram", 2)
            loose = self._cell(result, leaves, "histogram", 8)
            assert loose["thpt"] > tight["thpt"]

    def test_model_tracks_sim_within_tolerance(self, result):
        for row in result.rows:
            assert row["err_pct"] <= 15.0, row

    def test_monitor_anchor_cell(self):
        from repro.experiments.streaming import measure_monitor

        cell = measure_monitor(n_daemons=8, n_waves=4,
                               filter_name="histogram", window=2)
        assert cell["delivered"] == 4
        assert cell["n_tasks"] == 32
        # the windowed running histogram holds the last `window` waves,
        # each merging every task of every daemon
        assert sum(cell["final_state"]["running"].values()) == 2 * 32


class TestCli:
    def test_cli_quick_run(self, capsys):
        assert cli_main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "O|SS APAI access times" in out
        assert "LaunchMON" in out

    def test_cli_multiple_experiments(self, capsys):
        assert cli_main(["A1", "--quick"]) == 0
        assert "RM debug-event scaling" in capsys.readouterr().out

    def test_cli_launch_matrix_quick(self, capsys):
        assert cli_main(["lmx", "--quick"]) == 0
        assert "Launch matrix" in capsys.readouterr().out

    def test_cli_resilience_quick(self, capsys):
        assert cli_main(["res", "--quick"]) == 0
        assert "Resilient launch" in capsys.readouterr().out

    def test_cli_streaming_quick(self, capsys):
        assert cli_main(["str", "--quick"]) == 0
        assert "Streaming data plane" in capsys.readouterr().out

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            cli_main(["figure9"])
