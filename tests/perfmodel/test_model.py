"""Tests validating the Section 4 model against simulated measurements."""

import pytest

from repro.experiments.fig3 import DAEMON_IMAGE_MB, measure_launch_and_spawn
from repro.perfmodel import (
    FittedLine,
    LaunchModel,
    ModelInputs,
    fit_component_scaling,
)
from repro.rm import SlurmConfig


class TestFit:
    def test_exact_line_recovered(self):
        line = fit_component_scaling([1, 2, 3, 4], [3, 5, 7, 9])
        assert line.intercept == pytest.approx(1.0)
        assert line.slope == pytest.approx(2.0)
        assert line.r2 == pytest.approx(1.0)

    def test_predict(self):
        line = FittedLine(intercept=1.0, slope=0.5, r2=1.0)
        assert line.predict(10) == 6.0

    def test_scale_independence_detection(self):
        flat = fit_component_scaling([16, 64, 128], [0.018, 0.0181, 0.0179])
        assert flat.is_scale_independent
        linear = fit_component_scaling([16, 64, 128], [0.1, 0.4, 0.8])
        assert not linear.is_scale_independent

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_component_scaling([1], [1])
        with pytest.raises(ValueError):
            fit_component_scaling([1, 2], [1, 2, 3])


class TestModelShape:
    def setup_method(self):
        self.model = LaunchModel()

    def test_trace_constant_in_scale(self):
        a = self.model.t_trace(ModelInputs(16))
        b = self.model.t_trace(ModelInputs(1024))
        assert a == b == pytest.approx(0.018)

    def test_trace_zero_in_attach_mode(self):
        assert self.model.t_trace(ModelInputs(64, mode="attach")) == 0.0
        assert self.model.t_job(ModelInputs(64, mode="attach")) == 0.0

    def test_legacy_events_make_trace_linear(self):
        legacy = LaunchModel(slurm=SlurmConfig(legacy_events=True))
        a = legacy.t_trace(ModelInputs(16))
        b = legacy.t_trace(ModelInputs(32))
        assert b - a == pytest.approx(16 * 8 * 0.0015)

    def test_rpdtab_linear_in_tasks(self):
        t1 = self.model.t_rpdtab(ModelInputs(64, tasks_per_daemon=8))
        t2 = self.model.t_rpdtab(ModelInputs(128, tasks_per_daemon=8))
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_congestion_kicks_in_beyond_threshold(self):
        below = self.model.t_daemon(ModelInputs(512))
        above = self.model.t_daemon(ModelInputs(1024))
        linear_extrapolation = below * 2
        assert above > linear_extrapolation * 1.05

    def test_total_is_sum_of_parts(self):
        t = self.model.predict(ModelInputs(128))
        assert t.total == pytest.approx(
            t.rm_time() + t.t_trace + t.t_rpdtab + t.t_handshake + t.t_other)


class TestModelVsMeasurement:
    """Figure 3's claim: the model tracks the measured breakdown."""

    @pytest.mark.parametrize("n", [16, 64, 128])
    def test_total_within_15_percent(self, n):
        measured, _, _ = measure_launch_and_spawn(n)
        predicted = LaunchModel().predict(ModelInputs(
            n, daemon_image_mb=DAEMON_IMAGE_MB))
        assert predicted.total == pytest.approx(measured.total, rel=0.15)

    def test_components_track(self):
        measured, _, _ = measure_launch_and_spawn(96)
        predicted = LaunchModel().predict(ModelInputs(
            96, daemon_image_mb=DAEMON_IMAGE_MB))
        assert predicted.t_job == pytest.approx(measured.t_job, rel=0.25)
        assert predicted.t_daemon == pytest.approx(measured.t_daemon,
                                                   rel=0.30)
        assert predicted.t_trace == pytest.approx(measured.t_trace, rel=0.10)
        assert predicted.t_rpdtab == pytest.approx(measured.t_rpdtab,
                                                   rel=0.15)

    def test_measured_trace_scale_independent(self):
        ts = []
        for n in (16, 64, 128):
            m, _, _ = measure_launch_and_spawn(n)
            ts.append(m.t_trace)
        line = fit_component_scaling([16, 64, 128], ts)
        assert line.is_scale_independent
        assert ts[0] == pytest.approx(0.018, abs=0.003)

    def test_measured_rpdtab_linear_in_tasks(self):
        ns, ts = [], []
        for n in (16, 64, 128):
            m, _, _ = measure_launch_and_spawn(n)
            ns.append(n * 8)
            ts.append(m.t_rpdtab)
        line = fit_component_scaling(ns, ts)
        assert line.r2 > 0.99
        assert line.slope == pytest.approx(3 * 1.2e-5, rel=0.1)


class TestImageStagingTerms:
    """The analytic image-staging terms match the storage layer's modes."""

    def test_shared_fs_is_linear(self):
        m = LaunchModel()
        one = m.image_stage_time(15.0, 1)
        assert m.image_stage_time(15.0, 512) == pytest.approx(512 * one)

    def test_fs_servers_divide_serial_term(self):
        assert LaunchModel(fs_servers=4).image_stage_time(15.0, 64) == \
            pytest.approx(LaunchModel().image_stage_time(15.0, 64) / 4)

    def test_broadcast_is_logarithmic(self):
        m = LaunchModel(staging="broadcast")
        t64 = m.image_stage_time(15.0, 64)
        t512 = m.image_stage_time(15.0, 512)
        assert t512 < 2 * t64
        assert t512 < LaunchModel().image_stage_time(15.0, 512) / 10

    def test_cache_cold_equals_serial_warm_near_free(self):
        m = LaunchModel(staging="cache")
        cold = m.image_stage_time(15.0, 64)
        assert cold == pytest.approx(LaunchModel().image_stage_time(15.0, 64))
        warm = m.image_stage_time(15.0, 64, warm_nodes=64)
        assert warm < cold / 50

    def test_per_call_staging_override(self):
        m = LaunchModel()
        assert m.image_stage_time(15.0, 256, staging="broadcast") < \
            m.image_stage_time(15.0, 256)

    def test_broadcast_term_tracks_simulation(self):
        from repro.cluster import Cluster, ClusterSpec
        from repro.simx import Simulator
        from tests.conftest import run_gen

        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(n_compute=256, seed=5,
                                           staging_mode="broadcast"))
        run_gen(sim, cluster.fs.stage_images(cluster.compute, 15.0, "toold"))
        predicted = LaunchModel(
            staging="broadcast").image_stage_time(15.0, 256)
        assert sim.now == pytest.approx(predicted, rel=0.15)

    def test_default_predictions_unchanged_by_staging_param(self):
        inp = ModelInputs(128, daemon_image_mb=DAEMON_IMAGE_MB)
        classic = LaunchModel().predict(inp)
        explicit = LaunchModel(staging="shared-fs").predict(inp)
        assert classic.t_daemon == explicit.t_daemon
        assert classic.total == explicit.total

    def test_unknown_staging_mode_rejected(self):
        from repro.cluster import StagingError
        with pytest.raises(StagingError, match="unknown staging mode"):
            LaunchModel(staging="bcast")
        with pytest.raises(StagingError, match="unknown staging mode"):
            LaunchModel().image_stage_time(15.0, 8, staging="Broadcast")


class TestStreamModel:
    """The data-plane analytic terms against the simulated stream."""

    def test_service_time_terms(self):
        from repro.perfmodel import StreamModel
        from repro.tbon import TBONTopology

        m = StreamModel()
        flat = TBONTopology.one_deep(64)
        hop = m.hop_time()
        # unbounded credits: the widest router's merge only
        assert m.service_time(flat) == pytest.approx(m.merge_time(64))
        # a credit limit adds the feeding serialization batches
        limited = m.service_time(flat, credit_limit=8)
        assert limited == pytest.approx(m.merge_time(64) + 7 * hop)
        # an internal (non-root) bottleneck also pays its forward hop
        deep = TBONTopology.balanced(64, fanout=16)
        assert m.service_time(deep, credit_limit=16) == pytest.approx(
            m.merge_time(16) + hop)

    def test_throughput_monotone_in_credits(self):
        from repro.perfmodel import StreamModel
        from repro.tbon import TBONTopology

        m = StreamModel()
        topo = TBONTopology.one_deep(128)
        assert (m.sustained_throughput(topo, credit_limit=2)
                < m.sustained_throughput(topo, credit_limit=8)
                < m.sustained_throughput(topo))

    def test_interval_bound_caps_throughput(self):
        from repro.perfmodel import StreamModel
        from repro.tbon import TBONTopology

        m = StreamModel()
        topo = TBONTopology.one_deep(16)
        fast = m.sustained_throughput(topo, credit_limit=4)
        assert m.wave_interval_throughput(topo, 1.0, 4) == 1.0
        assert m.wave_interval_throughput(topo, 0.0, 4) == fast

    def test_sustained_throughput_tracks_simulation(self):
        from repro.experiments.streaming import measure_stream

        for credit in (2, 8):
            cell = measure_stream(64, filter_name="histogram",
                                  credit_limit=credit, n_waves=15,
                                  fanout=16)
            assert cell["model_err"] <= 0.15, cell["model_err"]

    def test_wave_latency_tracks_simulation(self):
        from repro.experiments.streaming import measure_stream
        from repro.perfmodel import StreamModel

        # a paced stream measures unloaded per-wave latency
        cell = measure_stream(32, filter_name="ewma", credit_limit=8,
                              n_waves=8, fanout=0,
                              publish_interval=0.05)
        assert cell["mean_latency"] == pytest.approx(
            cell["latency_model"], rel=0.25)
