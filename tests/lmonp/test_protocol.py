"""Tests for the LMONP wire protocol: header, messages, framing."""

import pytest

from repro.lmonp import (
    FeToBe,
    FeToEngine,
    FeToMw,
    FrameDecoder,
    HEADER_SIZE,
    LmonpMessage,
    MsgClass,
    ProtocolError,
    security_token,
    unpack_header,
)
from repro.lmonp.header import pack_header


class TestHeader:
    def test_header_is_16_bytes(self):
        assert HEADER_SIZE == 16
        data = pack_header(1, 2, 3, 4, 5, 6)
        assert len(data) == 16

    def test_roundtrip(self):
        data = pack_header(3, 4095, 0xBEEF, 1024, 77, 88)
        assert unpack_header(data) == (3, 4095, 0xBEEF, 1024, 77, 88)

    def test_msg_class_is_3_bits(self):
        with pytest.raises(ValueError):
            pack_header(8, 0, 0, 0, 0, 0)
        pack_header(7, 0, 0, 0, 0, 0)  # max ok

    def test_msg_type_is_13_bits(self):
        with pytest.raises(ValueError):
            pack_header(0, 1 << 13, 0, 0, 0, 0)
        pack_header(0, (1 << 13) - 1, 0, 0, 0, 0)

    def test_sec_chk_is_16_bits(self):
        with pytest.raises(ValueError):
            pack_header(0, 0, 1 << 16, 0, 0, 0)

    def test_short_header_rejected(self):
        with pytest.raises(ValueError):
            unpack_header(b"\x00" * 15)

    def test_three_classes_in_use(self):
        assert {MsgClass.FE_ENGINE, MsgClass.FE_BE, MsgClass.FE_MW} <= set(MsgClass)
        assert MsgClass.MW_MW in set(MsgClass)  # reserved pair exists


class TestMessage:
    def test_encode_decode_roundtrip(self):
        msg = LmonpMessage(MsgClass.FE_BE, FeToBe.PROCTAB, num_tasks=512,
                           sec_chk=0x1234, lmon_payload=b"table-bytes",
                           usr_payload=b"tool-data")
        decoded = LmonpMessage.decode(msg.encode())
        assert decoded == msg

    def test_empty_payloads(self):
        msg = LmonpMessage(MsgClass.FE_MW, FeToMw.READY)
        decoded = LmonpMessage.decode(msg.encode())
        assert decoded.lmon_payload == b""
        assert decoded.usr_payload == b""

    def test_wire_size(self):
        msg = LmonpMessage(MsgClass.FE_ENGINE, FeToEngine.PROCTAB,
                           lmon_payload=b"abc", usr_payload=b"defg")
        assert msg.wire_size() == HEADER_SIZE + 3 + 4
        assert len(msg.encode()) == msg.wire_size()

    def test_payload_sections_independent(self):
        msg = LmonpMessage(MsgClass.FE_BE, FeToBe.USRDATA,
                           lmon_payload=b"AAAA", usr_payload=b"BB")
        d = LmonpMessage.decode(msg.encode())
        assert d.lmon_payload == b"AAAA"
        assert d.usr_payload == b"BB"

    def test_truncated_raises(self):
        data = LmonpMessage(MsgClass.FE_BE, FeToBe.PROCTAB,
                            lmon_payload=b"x" * 100).encode()
        with pytest.raises(ProtocolError, match="truncated"):
            LmonpMessage.decode(data[:50])

    def test_unknown_class_raises(self):
        data = pack_header(7, 1, 0, 0, 0, 0)
        with pytest.raises(ProtocolError, match="unknown msg class"):
            LmonpMessage.decode(data)

    def test_type_decoded_as_enum(self):
        msg = LmonpMessage(MsgClass.FE_BE, FeToBe.READY)
        decoded = LmonpMessage.decode(msg.encode())
        assert decoded.msg_type is FeToBe.READY

    def test_json_payload_helpers(self):
        payload = LmonpMessage.json_payload({"b": 2, "a": [1, 2]})
        msg = LmonpMessage(MsgClass.FE_BE, FeToBe.HANDSHAKE,
                           lmon_payload=payload)
        assert msg.lmon_json() == {"a": [1, 2], "b": 2}

    def test_lmon_json_empty_is_none(self):
        msg = LmonpMessage(MsgClass.FE_BE, FeToBe.READY)
        assert msg.lmon_json() is None


class TestSecurity:
    def test_token_is_16_bit(self):
        for key in ("a", "session-1", "x" * 100):
            assert 0 <= security_token(key) <= 0xFFFF

    def test_token_deterministic(self):
        assert security_token("k") == security_token("k")

    def test_verify_mismatch_raises(self):
        msg = LmonpMessage(MsgClass.FE_BE, FeToBe.READY, sec_chk=5)
        with pytest.raises(ProtocolError, match="security"):
            msg.verify(6)
        msg.verify(5)  # match passes

    def test_with_sec_stamps(self):
        msg = LmonpMessage(MsgClass.FE_BE, FeToBe.READY)
        stamped = msg.with_sec(0xABCD)
        assert stamped.sec_chk == 0xABCD
        assert stamped.msg_type == msg.msg_type


class TestFrameDecoder:
    def _msgs(self):
        return [
            LmonpMessage(MsgClass.FE_BE, FeToBe.HANDSHAKE,
                         lmon_payload=b"hello"),
            LmonpMessage(MsgClass.FE_ENGINE, FeToEngine.PROCTAB,
                         num_tasks=3, lmon_payload=b"x" * 50,
                         usr_payload=b"y" * 7),
            LmonpMessage(MsgClass.FE_MW, FeToMw.READY),
        ]

    def test_single_feed(self):
        dec = FrameDecoder()
        stream = b"".join(m.encode() for m in self._msgs())
        out = dec.feed(stream)
        assert out == self._msgs()
        assert dec.pending_bytes == 0

    def test_byte_at_a_time(self):
        dec = FrameDecoder()
        stream = b"".join(m.encode() for m in self._msgs())
        out = []
        for i in range(len(stream)):
            out.extend(dec.feed(stream[i:i + 1]))
        assert out == self._msgs()

    def test_split_inside_header(self):
        dec = FrameDecoder()
        data = self._msgs()[1].encode()
        assert dec.feed(data[:7]) == []
        assert dec.feed(data[7:]) == [self._msgs()[1]]

    def test_partial_leaves_pending(self):
        dec = FrameDecoder()
        data = self._msgs()[1].encode()
        dec.feed(data[:-1])
        assert dec.pending_bytes == len(data) - 1
