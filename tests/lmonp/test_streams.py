"""Tests for LmonpStream over simulated pipes, incl. session security."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.lmonp import (
    FeToBe,
    LmonpMessage,
    LmonpStream,
    MsgClass,
    ProtocolError,
    security_token,
)
from tests.conftest import run_gen


@pytest.fixture
def pipe(sim):
    cluster = Cluster(sim, ClusterSpec(n_compute=2, seed=6))
    return cluster.network.pipe("a", "b")


class TestStream:
    def test_send_recv_roundtrip(self, sim, pipe):
        tok = security_token("session-1")
        a = LmonpStream(pipe.a, tok, "a")
        b = LmonpStream(pipe.b, tok, "b")
        got = {}

        def left(sim):
            a.send(LmonpMessage(MsgClass.FE_BE, FeToBe.HANDSHAKE,
                                num_tasks=4, lmon_payload=b"info"))
            yield sim.timeout(0)

        def right(sim):
            msg = yield from b.recv()
            got["msg"] = msg

        sim.process(left(sim))
        sim.process(right(sim))
        sim.run()
        assert got["msg"].msg_type is FeToBe.HANDSHAKE
        assert got["msg"].num_tasks == 4
        assert got["msg"].lmon_payload == b"info"
        assert got["msg"].sec_chk == tok

    def test_cross_session_traffic_rejected(self, sim, pipe):
        """The security check: messages from another session are refused."""
        a = LmonpStream(pipe.a, security_token("session-1"), "a")
        b = LmonpStream(pipe.b, security_token("session-2"), "b")

        def left(sim):
            a.send(LmonpMessage(MsgClass.FE_BE, FeToBe.USRDATA))
            yield sim.timeout(0)

        def right(sim):
            with pytest.raises(ProtocolError, match="security"):
                yield from b.recv()

        sim.process(left(sim))
        sim.process(right(sim))
        sim.run()

    def test_expect_wrong_type_raises(self, sim, pipe):
        tok = security_token("s")
        a = LmonpStream(pipe.a, tok, "a")
        b = LmonpStream(pipe.b, tok, "b")

        def left(sim):
            a.send(LmonpMessage(MsgClass.FE_BE, FeToBe.USRDATA))
            yield sim.timeout(0)

        def right(sim):
            with pytest.raises(ProtocolError, match="expected"):
                yield from b.expect(FeToBe.READY)

        sim.process(left(sim))
        sim.process(right(sim))
        sim.run()

    def test_non_bytes_traffic_rejected(self, sim, pipe):
        tok = security_token("s")
        b = LmonpStream(pipe.b, tok, "b")

        def left(sim):
            pipe.a.send({"not": "bytes"})
            yield sim.timeout(0)

        def right(sim):
            with pytest.raises(ProtocolError, match="non-LMONP"):
                yield from b.recv()

        sim.process(left(sim))
        sim.process(right(sim))
        sim.run()

    def test_counters_and_bytes(self, sim, pipe):
        tok = security_token("s")
        a = LmonpStream(pipe.a, tok, "a")
        b = LmonpStream(pipe.b, tok, "b")

        def left(sim):
            for _ in range(3):
                a.send(LmonpMessage(MsgClass.FE_BE, FeToBe.USRDATA,
                                    usr_payload=b"x" * 100))
            yield sim.timeout(0)

        def right(sim):
            for _ in range(3):
                yield from b.recv()

        sim.process(left(sim))
        sim.process(right(sim))
        sim.run()
        assert a.sent == 3
        assert b.received == 3
        assert a.bytes_sent == 3 * (16 + 100)

    def test_transfer_time_scales_with_payload(self, sim, pipe):
        """LMONP message size drives simulated delivery time (Region C)."""
        tok = security_token("s")
        a = LmonpStream(pipe.a, tok, "a")
        b = LmonpStream(pipe.b, tok, "b")
        arrivals = []

        def left(sim):
            a.send(LmonpMessage(MsgClass.FE_BE, FeToBe.PROCTAB,
                                lmon_payload=b"x" * 10_000_000))
            yield sim.timeout(0)

        def right(sim):
            yield from b.recv()
            arrivals.append(sim.now)

        sim.process(left(sim))
        sim.process(right(sim))
        sim.run()
        assert arrivals[0] > 0.008  # ~10 MB at ~1 GB/s
