"""Filter-registry error paths and Packet routing invariants."""

import pytest

from repro.cluster.network import message_size
from repro.tbon import (
    FILTER_REGISTRY,
    Filter,
    Packet,
    StatelessFilter,
    get_filter,
    make_filter,
    register_filter,
    register_stream_filter,
    stream_filter_names,
)
from repro.tbon.filters import (
    EwmaRateFilter,
    RunningHistogramFilter,
    TopKFilter,
)


class TestRegistryErrorPaths:
    def test_get_filter_unknown_name(self):
        with pytest.raises(KeyError) as err:
            get_filter("no_such_filter")
        # the error names the offender AND lists what IS registered
        msg = str(err.value)
        assert "no_such_filter" in msg
        assert "concat" in msg and "sum" in msg

    def test_register_filter_replaces_silently(self):
        """Replacement semantics: the registry is last-write-wins (how
        tools override a built-in), and the previous callable is simply
        unreachable afterwards."""
        original = get_filter("sum")
        try:
            register_filter("sum", lambda payloads: -1)
            assert get_filter("sum")([1, 2, 3]) == -1
        finally:
            register_filter("sum", original)
        assert get_filter("sum")([1, 2, 3]) == 6

    def test_register_new_name_and_lookup(self):
        register_filter("test_only_min", min)
        try:
            assert get_filter("test_only_min")([4, 2, 9]) == 2
            assert "test_only_min" in stream_filter_names()
            # unknown to the stream registry -> wrapped stateless
            wrapped = make_filter("test_only_min")
            assert isinstance(wrapped, StatelessFilter)
            assert wrapped([4, 2, 9]) == 2
        finally:
            del FILTER_REGISTRY["test_only_min"]

    def test_make_filter_unknown_name(self):
        with pytest.raises(KeyError, match="unknown TBON filter"):
            make_filter("no_such_filter")
        # an unknown name + params must report unknown-name (listing the
        # real names, so the 'topk' -> 'top_k' typo is self-diagnosing),
        # not complain about the parameters
        with pytest.raises(KeyError, match="unknown TBON filter.*top_k"):
            make_filter("topk", k=5)

    def test_make_filter_rejects_params_for_stateless(self):
        with pytest.raises(KeyError, match="stateless"):
            make_filter("concat", k=3)

    def test_register_stream_filter_replacement(self):
        class Custom(Filter):
            def reduce(self, payloads, state):
                return len(payloads), state

        register_stream_filter("test_only_count", lambda window=0: Custom())
        try:
            f = make_filter("test_only_count")
            assert f(["a", "b", "c"]) == 3
        finally:
            from repro.tbon.filters import STREAM_FILTER_REGISTRY
            del STREAM_FILTER_REGISTRY["test_only_count"]

    def test_base_filter_reduce_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Filter().reduce([1], None)


class TestStatefulFilterValidation:
    def test_top_k_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k >= 1"):
            TopKFilter(k=0)

    def test_ewma_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            EwmaRateFilter(alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            EwmaRateFilter(alpha=1.5)

    def test_histogram_window_evicts(self):
        f = RunningHistogramFilter(window=2)
        state = f.initial_state()
        for _ in range(3):
            _, state = f.reduce([{"a": 1}], state)
        assert state["running"] == {"a": 2}  # only the last 2 waves

    def test_legacy_faces_are_single_wave(self):
        assert get_filter("histogram")([{"a": 1}, {"a": 2, "b": 1}]) \
            == {"a": 3, "b": 1}
        assert get_filter("ewma")([2, 3]) == 5
        assert get_filter("top_k")([[[5, "x"]], [[9, "y"]]])[0] == [9, "y"]


class TestPacketInvariants:
    def test_direction_must_be_up_or_down(self):
        Packet(1, 0, "ok", "up")
        Packet(1, 0, "ok", "down")
        with pytest.raises(ValueError, match="direction"):
            Packet(1, 0, "bad", "sideways")

    def test_packets_are_immutable(self):
        pkt = Packet(1, 0, "payload")
        with pytest.raises(AttributeError):
            pkt.wave = 5

    def test_wire_size_is_header_plus_payload(self):
        pkt = Packet(1, 0, b"x" * 100)
        assert pkt.wire_size() == 24 + 100
        # opaque payloads (dicts) fall back to the fixed estimate
        assert Packet(1, 0, {"a": 1}).wire_size() \
            == 24 + message_size({"a": 1})

    def test_up_packets_reduce_down_packets_fan_out(self, sim):
        """The routing invariant: an 'up' packet from every leaf yields
        exactly ONE reduced packet at the root; one 'down' packet from
        the root yields exactly one copy at EVERY leaf."""
        from repro.cluster import Cluster, ClusterSpec
        from repro.tbon import Overlay, TBONTopology
        from repro.tbon.overlay import StreamSpec

        topo = TBONTopology.balanced(6, fanout=3)
        cluster = Cluster(sim, ClusterSpec(n_compute=10, seed=4))
        placement = {0: cluster.front_end}
        for i in range(1, topo.size):
            placement[i] = cluster.compute[i % 10]
        ov = Overlay(sim, cluster.network, topo, placement,
                     {1: StreamSpec(1, "sum")})
        ov.start_routers()
        up_got, down_got = [], []

        def be(pos):
            yield from ov.endpoint(pos).send_wave(1, 0, 1)
            pkt = yield from ov.endpoint(pos).recv_broadcast()
            down_got.append((pos, pkt.direction))

        def fe():
            pkt = yield from ov.endpoint(0).collect_wave()
            up_got.append(pkt)
            yield from ov.endpoint(0).broadcast(1, 1, "ctl")

        for pos in topo.backends():
            sim.process(be(pos))
        sim.process(fe())
        sim.run()
        # exactly one reduced 'up' packet, carrying every contribution
        assert len(up_got) == 1
        assert up_got[0].direction == "up"
        assert up_got[0].payload == 6
        # exactly one 'down' copy per leaf
        assert sorted(p for p, _ in down_got) == topo.backends()
        assert all(d == "down" for _, d in down_got)
