"""TBON self-repair: reparenting correctness, cost, and wave integrity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, ClusterSpec
from repro.simx import Simulator
from repro.tbon import Overlay, TBONTopology
from repro.tbon.overlay import StreamSpec
from repro.experiments.resilience import measure_tbon_repair


def _overlay(sim, topo, n_extra=0, seed=3):
    cluster = Cluster(sim, ClusterSpec(
        n_compute=topo.size + n_extra, seed=seed))
    placement = {0: cluster.front_end}
    comms = topo.comm_positions()
    for i, pos in enumerate(comms):
        placement[pos] = cluster.compute[i]
    for i, pos in enumerate(topo.backends()):
        placement[pos] = cluster.compute[len(comms) + i]
    overlay = Overlay(sim, cluster.network, topo, placement,
                      streams={1: StreamSpec(1, "concat")})
    overlay.start_routers()
    return cluster, placement, overlay


def _reaches_root(overlay, pos) -> bool:
    seen = set()
    while pos is not None and pos not in seen:
        if pos == 0:
            return True
        seen.add(pos)
        pos = overlay.parent_of(pos)
    return False


def _drive(sim, gen):
    proc = sim.process(gen, name="driver")
    sim.run(until=600)
    assert proc.triggered
    return proc.value


class TestRepair:
    def test_noop_when_nothing_dead(self, sim):
        topo = TBONTopology.balanced(16, fanout=4)
        _cluster, _placement, overlay = _overlay(sim, topo)

        def scenario():
            report = yield from overlay.repair()
            assert report.n_dead == 0
            assert report.n_reparented == 0
            assert report.t_repair == 0.0

        _drive(sim, scenario())

    def test_dead_comm_node_reparents_and_costs(self, sim):
        topo = TBONTopology.balanced(32, fanout=8)
        _cluster, placement, overlay = _overlay(sim, topo)
        victim = topo.comm_positions()[0]

        def scenario():
            placement[victim].fail("test")
            report = yield from overlay.repair()
            assert report.n_dead == 1
            # the victim's children now hang off the root directly
            assert report.n_reparented == len(topo.children(victim))
            assert all(p == 0 for p in report.reparented.values())
            assert report.t_repair > 0.0
            assert overlay.repairs == [report]

        _drive(sim, scenario())

    def test_wave_merges_after_repair(self, sim):
        topo = TBONTopology.balanced(24, fanout=4)
        _cluster, placement, overlay = _overlay(sim, topo)

        def scenario():
            for pos in topo.comm_positions()[:2]:
                placement[pos].fail("test")
            yield from overlay.repair()
            root = overlay.endpoint(0)
            for pos in overlay.live_backends():
                sim.process(overlay.endpoint(pos).send_wave(1, 1, [pos]),
                            name=f"w{pos}")
            pkt = yield from root.collect_wave()
            assert len(pkt.payload) == 24  # every leaf still reduces

        _drive(sim, scenario())

    def test_dead_leaf_is_removed_not_reparented(self, sim):
        topo = TBONTopology.balanced(16, fanout=4)
        _cluster, placement, overlay = _overlay(sim, topo)
        leaf = topo.backends()[3]

        def scenario():
            placement[leaf].fail("test")
            report = yield from overlay.repair()
            assert report.n_dead == 1
            assert leaf not in overlay.live_backends()
            assert report.n_reparented == 0  # leaves have no subtree

        _drive(sim, scenario())

    def test_stranded_comm_is_pruned_and_waves_still_merge(self, sim):
        # kill every leaf under one comm node (the comm itself survives):
        # the childless comm must be pruned from the tree, or the root's
        # router would wait forever for its contribution
        topo = TBONTopology.balanced(4, fanout=2)
        _cluster, placement, overlay = _overlay(sim, topo)
        victim_comm = topo.comm_positions()[0]
        orphan_leaves = topo.children(victim_comm)

        def scenario():
            for pos in orphan_leaves:
                placement[pos].fail("test")
            report = yield from overlay.repair()
            assert report.pruned == [victim_comm]
            assert victim_comm in overlay.dead_positions()
            root = overlay.endpoint(0)
            for pos in overlay.live_backends():
                sim.process(overlay.endpoint(pos).send_wave(1, 1, [pos]),
                            name=f"w{pos}")
            pkt = yield from root.collect_wave()
            assert len(pkt.payload) == 4 - len(orphan_leaves)

        _drive(sim, scenario())

    def test_experiment_helper(self):
        cell = measure_tbon_repair(n_backends=32, fanout=4, n_comm_kill=2)
        assert cell["leaves_after"] == cell["leaves_before"] == 32
        assert cell["wave_merged"] == 32
        assert cell["n_reparented"] > 0
        assert cell["report"]["t_repair"] == pytest.approx(cell["t_repair"])


class TestRepairProperty:
    @settings(max_examples=30, deadline=None)
    @given(n_be=st.integers(min_value=4, max_value=48),
           fanout=st.integers(min_value=2, max_value=6),
           data=st.data())
    def test_reparent_preserves_all_leaves(self, n_be, fanout, data):
        """Killing any subset of comm nodes never loses a live leaf: every
        BE position stays present and connected to the root through live
        ancestors only."""
        topo = TBONTopology.balanced(n_be, fanout=fanout)
        comms = topo.comm_positions()
        if not comms:
            return  # one-deep shape: no internal nodes to kill
        victims = data.draw(st.sets(st.sampled_from(comms)))
        sim = Simulator()
        _cluster, placement, overlay = _overlay(sim, topo)

        def scenario():
            for pos in victims:
                placement[pos].fail("property kill")
            report = yield from overlay.repair()
            return report

        proc = sim.process(scenario(), name="driver")
        sim.run(until=600)
        assert proc.triggered
        report = proc.value
        assert report.n_dead == len(victims)
        # all leaves preserved...
        assert overlay.live_backends() == topo.backends()
        # ...and each reaches the root without touching a dead position
        for leaf in overlay.live_backends():
            pos = leaf
            while pos != 0:
                pos = overlay.parent_of(pos)
                assert pos not in victims
            assert _reaches_root(overlay, leaf)
