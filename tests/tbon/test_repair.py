"""TBON self-repair: reparenting correctness, cost, and wave integrity
(one-shot waves are dropped; persistent-stream waves are re-credited)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, ClusterSpec
from repro.simx import Simulator
from repro.tbon import Overlay, TBONTopology
from repro.tbon.overlay import StreamSpec
from repro.experiments.resilience import measure_tbon_repair


def _overlay(sim, topo, n_extra=0, seed=3):
    cluster = Cluster(sim, ClusterSpec(
        n_compute=topo.size + n_extra, seed=seed))
    placement = {0: cluster.front_end}
    comms = topo.comm_positions()
    for i, pos in enumerate(comms):
        placement[pos] = cluster.compute[i]
    for i, pos in enumerate(topo.backends()):
        placement[pos] = cluster.compute[len(comms) + i]
    overlay = Overlay(sim, cluster.network, topo, placement,
                      streams={1: StreamSpec(1, "concat")})
    overlay.start_routers()
    return cluster, placement, overlay


def _reaches_root(overlay, pos) -> bool:
    seen = set()
    while pos is not None and pos not in seen:
        if pos == 0:
            return True
        seen.add(pos)
        pos = overlay.parent_of(pos)
    return False


def _drive(sim, gen):
    proc = sim.process(gen, name="driver")
    sim.run(until=600)
    assert proc.triggered
    return proc.value


class TestRepair:
    def test_noop_when_nothing_dead(self, sim):
        topo = TBONTopology.balanced(16, fanout=4)
        _cluster, _placement, overlay = _overlay(sim, topo)

        def scenario():
            report = yield from overlay.repair()
            assert report.n_dead == 0
            assert report.n_reparented == 0
            assert report.t_repair == 0.0

        _drive(sim, scenario())

    def test_dead_comm_node_reparents_and_costs(self, sim):
        topo = TBONTopology.balanced(32, fanout=8)
        _cluster, placement, overlay = _overlay(sim, topo)
        victim = topo.comm_positions()[0]

        def scenario():
            placement[victim].fail("test")
            report = yield from overlay.repair()
            assert report.n_dead == 1
            # the victim's children now hang off the root directly
            assert report.n_reparented == len(topo.children(victim))
            assert all(p == 0 for p in report.reparented.values())
            assert report.t_repair > 0.0
            assert overlay.repairs == [report]

        _drive(sim, scenario())

    def test_wave_merges_after_repair(self, sim):
        topo = TBONTopology.balanced(24, fanout=4)
        _cluster, placement, overlay = _overlay(sim, topo)

        def scenario():
            for pos in topo.comm_positions()[:2]:
                placement[pos].fail("test")
            yield from overlay.repair()
            root = overlay.endpoint(0)
            for pos in overlay.live_backends():
                sim.process(overlay.endpoint(pos).send_wave(1, 1, [pos]),
                            name=f"w{pos}")
            pkt = yield from root.collect_wave()
            assert len(pkt.payload) == 24  # every leaf still reduces

        _drive(sim, scenario())

    def test_dead_leaf_is_removed_not_reparented(self, sim):
        topo = TBONTopology.balanced(16, fanout=4)
        _cluster, placement, overlay = _overlay(sim, topo)
        leaf = topo.backends()[3]

        def scenario():
            placement[leaf].fail("test")
            report = yield from overlay.repair()
            assert report.n_dead == 1
            assert leaf not in overlay.live_backends()
            assert report.n_reparented == 0  # leaves have no subtree

        _drive(sim, scenario())

    def test_stranded_comm_is_pruned_and_waves_still_merge(self, sim):
        # kill every leaf under one comm node (the comm itself survives):
        # the childless comm must be pruned from the tree, or the root's
        # router would wait forever for its contribution
        topo = TBONTopology.balanced(4, fanout=2)
        _cluster, placement, overlay = _overlay(sim, topo)
        victim_comm = topo.comm_positions()[0]
        orphan_leaves = topo.children(victim_comm)

        def scenario():
            for pos in orphan_leaves:
                placement[pos].fail("test")
            report = yield from overlay.repair()
            assert report.pruned == [victim_comm]
            assert victim_comm in overlay.dead_positions()
            root = overlay.endpoint(0)
            for pos in overlay.live_backends():
                sim.process(overlay.endpoint(pos).send_wave(1, 1, [pos]),
                            name=f"w{pos}")
            pkt = yield from root.collect_wave()
            assert len(pkt.payload) == 4 - len(orphan_leaves)

        _drive(sim, scenario())

    def test_experiment_helper(self):
        cell = measure_tbon_repair(n_backends=32, fanout=4, n_comm_kill=2)
        assert cell["leaves_after"] == cell["leaves_before"] == 32
        assert cell["wave_merged"] == 32
        assert cell["n_reparented"] > 0
        assert cell["report"]["t_repair"] == pytest.approx(cell["t_repair"])


class TestStreamRepair:
    """Waves in flight across repair(): neither lost nor duplicated."""

    def _stream_scenario(self, sim, overlay, placement, victims,
                         n_waves, crash_at, n_be, stagger=0.002):
        stream = overlay.open_stream(StreamSpec(9, "concat",
                                                credit_limit=2))
        topo = overlay.topology

        def leaf(i, pos):
            yield sim.timeout(stagger * i)
            for w in range(n_waves):
                yield from stream.publish(pos, w, [[pos, w]])
                yield sim.timeout(0.004)

        delivered = []

        def subscriber():
            while len(delivered) < n_waves:
                pkt = yield from stream.next_wave()
                delivered.append(pkt)

        def chaos():
            yield sim.timeout(crash_at)
            for pos in victims:
                placement[pos].fail("stream-repair test")
            yield from overlay.repair()

        for i, pos in enumerate(topo.backends()):
            proc = sim.process(leaf(i, pos), name=f"leaf:{pos}")
            # publishers live on their leaf's node (as daemon bodies do):
            # a node crash kills its publisher with it
            placement[pos].register_body(proc)
        sub = sim.process(subscriber(), name="subscriber")
        sim.process(chaos(), name="chaos")
        sim.run(until=600)
        assert sub.triggered
        return stream, delivered

    def test_inflight_waves_survive_comm_death(self, sim):
        """A comm node dies mid-wave: every wave is still delivered
        exactly once, each carrying exactly one contribution per
        surviving leaf."""
        topo = TBONTopology.balanced(8, fanout=2)
        _cluster, placement, overlay = _overlay(sim, topo)
        victim = topo.comm_positions()[0]
        stream, delivered = self._stream_scenario(
            sim, overlay, placement, [victim], n_waves=6,
            crash_at=0.003, n_be=8)
        # no wave lost, none duplicated
        assert sorted(p.wave for p in delivered) == list(range(6))
        # every delivered wave carries every live leaf exactly once
        for pkt in delivered:
            senders = [pos for pos, _w in pkt.payload]
            assert sorted(senders) == overlay.live_backends()
        # the repair actually re-injected in-flight payloads
        assert stream.report.n_repairs == 1
        assert stream.report.n_republished > 0
        assert overlay.repairs[-1].n_streams_repaired == 1
        assert (overlay.repairs[-1].n_waves_republished
                == stream.report.n_republished)

    def test_inflight_waves_survive_leaf_death(self, sim):
        """A leaf dies mid-stream: its pending contributions are dropped
        with it, and subsequent waves assemble from the survivors."""
        topo = TBONTopology.balanced(6, fanout=3)
        _cluster, placement, overlay = _overlay(sim, topo)
        victim = topo.backends()[2]
        stream, delivered = self._stream_scenario(
            sim, overlay, placement, [victim], n_waves=5,
            crash_at=0.005, n_be=6)
        assert sorted(p.wave for p in delivered) == list(range(5))
        survivors = overlay.live_backends()
        assert victim not in survivors
        # late waves merge the survivor set only -- and no leaf twice
        late = delivered[-1]
        senders = [pos for pos, _w in late.payload]
        assert sorted(senders) == survivors
        assert len(senders) == len(set(senders))

    def test_repair_does_not_leak_delivery_credits(self, sim):
        """Regression: a repair that interrupts the root router while it
        waits for a delivery credit (slow subscriber, credit_limit=1)
        must not leak the credit -- the stranded getter dies with the
        rebuilt gate and the stream keeps delivering every wave."""
        topo = TBONTopology.balanced(8, fanout=2)
        _cluster, placement, overlay = _overlay(sim, topo)
        stream = overlay.open_stream(StreamSpec(9, "sum", credit_limit=1))
        victim = topo.comm_positions()[0]
        n_waves = 6

        def leaf(pos):
            for w in range(n_waves):
                yield from stream.publish(pos, w, 1)

        delivered = []

        def slow_subscriber():
            while len(delivered) < n_waves:
                pkt = yield from stream.next_wave()
                delivered.append(pkt.wave)
                yield sim.timeout(0.05)  # delivery queue saturates

        def chaos():
            yield sim.timeout(0.03)  # root router blocked on the gate
            placement[victim].fail("test")
            yield from overlay.repair()

        for pos in topo.backends():
            proc = sim.process(leaf(pos))
            placement[pos].register_body(proc)
        sub = sim.process(slow_subscriber())
        sim.process(chaos())
        sim.run(until=600)
        assert sub.triggered
        assert sorted(delivered) == list(range(n_waves))

    def test_double_repair_does_not_duplicate_republished_waves(self, sim):
        """Regression: a second repair landing while the first repair's
        re-publishers are still draining must supersede them (epoch
        pinning + plane tracking), not race them into duplicate
        contributions."""
        topo = TBONTopology.balanced(16, fanout=4)
        _cluster, placement, overlay = _overlay(sim, topo)
        stream = overlay.open_stream(StreamSpec(9, "concat",
                                                credit_limit=1))
        victims = topo.comm_positions()[:2]
        n_waves = 8

        def leaf(i, pos):
            yield sim.timeout(0.001 * i)
            for w in range(n_waves):
                yield from stream.publish(pos, w, [[pos, w]])
                yield sim.timeout(0.003)

        delivered = []

        def subscriber():
            # slow consumer, so leaves carry multi-wave unbanked
            # backlogs into the first repair and its re-publishers are
            # still draining (stalled on credits) at the second
            while len(delivered) < n_waves:
                pkt = yield from stream.next_wave()
                delivered.append(pkt)
                yield sim.timeout(0.03)

        def chaos():
            yield sim.timeout(0.03)
            placement[victims[0]].fail("first")
            yield from overlay.repair()
            yield sim.timeout(0.002)  # first repair still re-publishing
            placement[victims[1]].fail("second")
            yield from overlay.repair()

        for i, pos in enumerate(topo.backends()):
            proc = sim.process(leaf(i, pos))
            placement[pos].register_body(proc)
        sub = sim.process(subscriber())
        sim.process(chaos())
        sim.run(until=600)
        assert sub.triggered
        assert sorted(p.wave for p in delivered) == list(range(n_waves))
        for pkt in delivered:
            senders = [pos for pos, _w in pkt.payload]
            assert len(senders) == len(set(senders)), pkt  # no duplicates
        assert stream.report.n_repairs == 2

    def test_republished_waves_do_not_double_count_filter_state(self, sim):
        """Regression: a wave a position already folded into its windowed
        state, re-delivered by a repair, must merge upward again but
        must NOT be folded into the aggregates a second time."""
        topo = TBONTopology.balanced(8, fanout=2)
        _cluster, placement, overlay = _overlay(sim, topo)
        stream = overlay.open_stream(StreamSpec(
            9, "histogram", credit_limit=1, window=0))
        victim = topo.comm_positions()[0]
        n_waves = 3

        def leaf(i, pos):
            yield sim.timeout(0.0015 * i)
            for w in range(n_waves):
                yield from stream.publish(pos, w, {"R": 1})
                yield sim.timeout(0.004)

        def subscriber():
            # slow consumer: comm positions fold waves that sit unbanked
            # behind the saturated delivery gate when the crash lands
            for _ in range(n_waves):
                yield from stream.next_wave()
                yield sim.timeout(0.02)

        def chaos():
            yield sim.timeout(0.02)  # folded-but-unbanked waves exist
            placement[victim].fail("test")
            yield from overlay.repair()

        for i, pos in enumerate(topo.backends()):
            proc = sim.process(leaf(i, pos))
            placement[pos].register_body(proc)
        sub = sim.process(subscriber())
        sim.process(chaos())
        sim.run(until=600)
        assert sub.triggered
        assert stream.report.n_republished > 0  # the repair re-delivered
        # 8 leaves x 3 waves, exactly once each -- at the root AND at
        # every surviving comm position (its own subtree's count)
        assert stream.state_at(0)["running"] == {"R": 8 * n_waves}
        for pos in topo.comm_positions():
            if pos in overlay.dead_positions():
                continue
            subtree = len(overlay.children_of(pos))
            assert stream.state_at(pos)["running"] \
                == {"R": subtree * n_waves}

    def test_filter_window_state_survives_repair(self, sim):
        """The root's running windowed aggregate keeps accumulating
        across a repair -- stateful filters ride through."""
        topo = TBONTopology.balanced(8, fanout=2)
        _cluster, placement, overlay = _overlay(sim, topo)
        stream = overlay.open_stream(StreamSpec(
            9, "histogram", credit_limit=2, window=0))
        victim = topo.comm_positions()[0]
        n_waves = 4

        def leaf(pos):
            for w in range(n_waves):
                yield from stream.publish(pos, w, {"R": 1})
                yield sim.timeout(0.004)

        def subscriber():
            for _ in range(n_waves):
                yield from stream.next_wave()

        def chaos():
            yield sim.timeout(0.003)
            placement[victim].fail("test")
            yield from overlay.repair()

        for pos in topo.backends():
            sim.process(leaf(pos))
        sub = sim.process(subscriber())
        sim.process(chaos())
        sim.run(until=600)
        assert sub.triggered
        # all 8 leaves x 4 waves landed in the root's running histogram
        assert stream.state_at(0)["running"] == {"R": 32}


class TestRepairProperty:
    @settings(max_examples=30, deadline=None)
    @given(n_be=st.integers(min_value=4, max_value=48),
           fanout=st.integers(min_value=2, max_value=6),
           data=st.data())
    def test_reparent_preserves_all_leaves(self, n_be, fanout, data):
        """Killing any subset of comm nodes never loses a live leaf: every
        BE position stays present and connected to the root through live
        ancestors only."""
        topo = TBONTopology.balanced(n_be, fanout=fanout)
        comms = topo.comm_positions()
        if not comms:
            return  # one-deep shape: no internal nodes to kill
        victims = data.draw(st.sets(st.sampled_from(comms)))
        sim = Simulator()
        _cluster, placement, overlay = _overlay(sim, topo)

        def scenario():
            for pos in victims:
                placement[pos].fail("property kill")
            report = yield from overlay.repair()
            return report

        proc = sim.process(scenario(), name="driver")
        sim.run(until=600)
        assert proc.triggered
        report = proc.value
        assert report.n_dead == len(victims)
        # all leaves preserved...
        assert overlay.live_backends() == topo.backends()
        # ...and each reaches the root without touching a dead position
        for leaf in overlay.live_backends():
            pos = leaf
            while pos != 0:
                pos = overlay.parent_of(pos)
                assert pos not in victims
            assert _reaches_root(overlay, leaf)


class TestChildrenCacheInvalidation:
    """children_of memoizes one O(size) pass; every repair mutation must
    drop the memo, including the *second* repair in a session (a stale
    cache would silently route waves to dead or reparented children)."""

    @staticmethod
    def _brute_children(overlay, pos):
        return [q for q in range(1, overlay.topology.size)
                if q not in overlay._dead
                and overlay._parent[q] == pos]

    def _assert_cache_fresh(self, overlay):
        for pos in range(overlay.topology.size):
            assert overlay.children_of(pos) == \
                self._brute_children(overlay, pos), pos

    def test_second_repair_invalidates_again(self, sim):
        topo = TBONTopology.balanced(64, fanout=4)
        _cluster, placement, overlay = _overlay(sim, topo)
        first, second = topo.comm_positions()[:2]

        def scenario():
            # prime the memo, then mutate + check twice
            self._assert_cache_fresh(overlay)
            for victim in (first, second):
                placement[victim].fail("test")
                yield from overlay.repair()
                self._assert_cache_fresh(overlay)
                # top-level comm: its parent is the root
                assert victim not in overlay.children_of(0)

        _drive(sim, scenario())
        assert len(overlay.repairs) == 2

    def test_orphan_pruning_also_drops_the_memo(self, sim):
        # killing a whole subtree's leaves makes their comm node childless;
        # repair prunes it, which must invalidate the memo mid-repair
        topo = TBONTopology.balanced(64, fanout=4)
        _cluster, placement, overlay = _overlay(sim, topo)
        comm = topo.comm_positions()[0]
        leaves = topo.children(comm)

        def scenario():
            self._assert_cache_fresh(overlay)
            for pos in leaves:
                placement[pos].fail("test")
            yield from overlay.repair()
            self._assert_cache_fresh(overlay)
            assert overlay.children_of(comm) == []

        _drive(sim, scenario())
