"""Tests for TBON topology, overlay routing/filters, and startup paths."""

import pytest

from repro.apps import make_compute_app
from repro.cluster import Cluster, ClusterSpec
from repro.fe import ToolFrontEnd
from repro.runner import drive, make_env
from repro.simx import Simulator
from repro.tbon import (
    Overlay,
    StartupFailure,
    TBONTopology,
    TopologyError,
    get_filter,
    launchmon_startup,
    native_startup,
    register_filter,
)
from repro.tbon.overlay import StreamSpec
from repro.tbon.packets import Packet


class TestTopology:
    def test_one_deep_shape(self):
        t = TBONTopology.one_deep(4)
        assert t.size == 5
        assert t.backends() == [1, 2, 3, 4]
        assert t.comm_positions() == []
        assert t.depth() == 1

    def test_balanced_adds_comm_layer(self):
        t = TBONTopology.balanced(32, fanout=8)
        assert len(t.comm_positions()) == 4
        assert len(t.backends()) == 32
        assert t.depth() == 2

    def test_balanced_small_degenerates_to_one_deep(self):
        t = TBONTopology.balanced(4, fanout=8)
        assert t.comm_positions() == []

    def test_jsonable_roundtrip(self):
        t = TBONTopology.balanced(20, fanout=4)
        assert TBONTopology.from_jsonable(t.to_jsonable()) == t

    def test_invalid_topologies_rejected(self):
        with pytest.raises(TopologyError):
            TBONTopology((0, None), ("fe", "be"))  # root not first
        with pytest.raises(TopologyError):
            TBONTopology((None, 0), ("fe", "comm"))  # leaf comm
        with pytest.raises(TopologyError):
            TBONTopology.one_deep(0)


class TestFilters:
    def test_registry_lookup(self):
        assert get_filter("concat")([["a"], ["b"]]) == ["a", "b"]
        with pytest.raises(KeyError, match="unknown TBON filter"):
            get_filter("nonexistent")

    def test_register_custom(self):
        register_filter("test_min", min)
        assert get_filter("test_min")([3, 1, 2]) == 1

    def test_sum_and_max(self):
        assert get_filter("sum")([1, 2, 3]) == 6
        assert get_filter("max")([1, 5, 2]) == 5


class TestOverlayRouting:
    def _overlay(self, sim, n_be=4, filter_name="sum", fanout=2):
        cluster = Cluster(sim, ClusterSpec(n_compute=max(n_be, 2), seed=4))
        topo = (TBONTopology.balanced(n_be, fanout) if fanout
                else TBONTopology.one_deep(n_be))
        placement = {0: cluster.front_end}
        pool = list(cluster.compute)
        for pos in range(1, topo.size):
            placement[pos] = pool[pos % len(pool)]
        ov = Overlay(sim, cluster.network, topo, placement,
                     {1: StreamSpec(1, filter_name)})
        ov.start_routers()
        return ov

    def test_one_deep_reduction(self, sim):
        ov = self._overlay(sim, n_be=4, filter_name="sum", fanout=0)
        got = {}

        def be(pos, value):
            yield from ov.endpoint(pos).send_wave(1, 0, value)

        def fe():
            pkt = yield from ov.endpoint(0).collect_wave()
            got["pkt"] = pkt

        for i, pos in enumerate(ov.topology.backends()):
            sim.process(be(pos, i + 1))
        sim.process(fe())
        sim.run()
        assert got["pkt"].payload == 10  # 1+2+3+4

    def test_multilevel_reduction(self, sim):
        ov = self._overlay(sim, n_be=8, filter_name="sum", fanout=2)
        got = {}

        def be(pos):
            yield from ov.endpoint(pos).send_wave(1, 0, 1)

        def fe():
            pkt = yield from ov.endpoint(0).collect_wave()
            got["v"] = pkt.payload

        for pos in ov.topology.backends():
            sim.process(be(pos))
        sim.process(fe())
        sim.run()
        assert got["v"] == 8

    def test_waves_kept_separate(self, sim):
        ov = self._overlay(sim, n_be=3, filter_name="sum", fanout=0)
        got = []

        def be(pos):
            yield from ov.endpoint(pos).send_wave(1, 0, 1)
            yield from ov.endpoint(pos).send_wave(1, 1, 10)

        def fe():
            for _ in range(2):
                pkt = yield from ov.endpoint(0).collect_wave()
                got.append((pkt.wave, pkt.payload))

        for pos in ov.topology.backends():
            sim.process(be(pos))
        sim.process(fe())
        sim.run()
        assert sorted(got) == [(0, 3), (1, 30)]

    def test_broadcast_reaches_leaves(self, sim):
        ov = self._overlay(sim, n_be=6, filter_name="concat", fanout=3)
        seen = []

        def be(pos):
            pkt = yield from ov.endpoint(pos).recv_broadcast()
            seen.append((pos, pkt.payload))

        def fe():
            yield from ov.endpoint(0).broadcast(1, 0, "sample-now")

        for pos in ov.topology.backends():
            sim.process(be(pos))
        sim.process(fe())
        sim.run()
        assert len(seen) == 6
        assert all(p == "sample-now" for _, p in seen)

    def test_non_root_cannot_broadcast(self, sim):
        ov = self._overlay(sim, n_be=3)
        with pytest.raises(RuntimeError, match="root"):
            next(ov.endpoint(1).broadcast(1, 0, "x"))


class TestNativeStartup:
    def test_spawns_all_daemons(self, sim):
        cluster = Cluster(sim, ClusterSpec(n_compute=6, seed=4))
        box = {}

        def scenario():
            overlay, report = yield from native_startup(
                cluster, cluster.compute[:6], image_mb=2.0)
            box["report"] = report
            box["overlay"] = overlay

        sim.process(scenario())
        sim.run()
        assert box["report"].n_daemons == 6
        assert box["report"].total > 6 * 0.2  # sequential rsh slope
        # rsh clients held on the FE
        assert cluster.front_end.user_proc_count() >= 6

    def test_linear_scaling(self):
        def startup_time(n):
            sim = Simulator()
            cluster = Cluster(sim, ClusterSpec(n_compute=n, seed=4))
            box = {}

            def scenario():
                _, report = yield from native_startup(
                    cluster, cluster.compute[:n], image_mb=2.0)
                box["t"] = report.total

            sim.process(scenario())
            sim.run()
            return box["t"]

        t8, t32 = startup_time(8), startup_time(32)
        assert t32 == pytest.approx(4 * t8, rel=0.25)

    def test_fails_at_fe_proc_limit(self, sim):
        cluster = Cluster(sim, ClusterSpec(n_compute=24, seed=4,
                                           fe_max_user_procs=10))
        box = {}

        def scenario():
            try:
                yield from native_startup(cluster, cluster.compute,
                                          image_mb=2.0)
            except StartupFailure as exc:
                box["spawned"] = exc.spawned

        sim.process(scenario())
        sim.run()
        assert 0 < box["spawned"] < 24

    def test_fails_without_rshd(self, sim):
        cluster = Cluster(sim, ClusterSpec(n_compute=4, seed=4,
                                           compute_rshd=False))
        box = {}

        def scenario():
            try:
                yield from native_startup(cluster, cluster.compute,
                                          image_mb=2.0)
            except StartupFailure as exc:
                box["err"] = str(exc)

        sim.process(scenario())
        sim.run()
        assert "failed after 0 daemons" in box["err"]


class TestLaunchmonStartup:
    def test_connects_and_reports(self):
        env = make_env(n_compute=4)
        app = make_compute_app(n_tasks=32, tasks_per_node=8)
        box = {}

        def scenario(env):
            job = yield from env.rm.launch_job(app, env.rm.allocate(4))
            fe = ToolFrontEnd(env.cluster, env.rm, "tbon-test")
            yield from fe.init()
            session = fe.create_session()
            overlay, report = yield from launchmon_startup(
                fe, session, job, image_mb=2.0)
            box["report"] = report
            box["overlay"] = overlay
            box["fe_procs"] = env.cluster.front_end.user_proc_count()

        drive(env, scenario(env))
        assert box["report"].n_daemons == 4
        assert box["report"].mechanism == "launchmon"
        # no held rsh clients: the FE process count stays small
        assert box["fe_procs"] < 10

    def test_faster_than_native_at_scale(self):
        n = 32
        app = make_compute_app(n_tasks=8 * n, tasks_per_node=8)

        env = make_env(n_compute=n)
        box = {}

        def lmon(env=env, box=box):
            job = yield from env.rm.launch_job(app, env.rm.allocate(n))
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            s = fe.create_session()
            _, report = yield from launchmon_startup(fe, s, job, image_mb=2.0)
            box["t"] = report.total

        drive(env, lmon())

        env2 = make_env(n_compute=n)
        box2 = {}

        def native(env=env2, box=box2):
            job = yield from env.rm.launch_job(app, env.rm.allocate(n))
            _, report = yield from native_startup(
                env.cluster, [env.cluster.node(h) for h in
                              {t.host: None for t in job.tasks}],
                image_mb=2.0)
            box["t"] = report.total

        drive(env2, native())
        assert box2["t"] > 5 * box["t"]
