"""Bit-identity guard: with no streams opened, nothing moved.

The streaming data plane reuses the overlay, the filter registry, and the
network RNG stream -- all places where an accidental extra event or RNG
draw would silently shift every downstream timing. This guard pins the
contract the same way the fault-injection PR pinned its empty-FaultPlan
case: the ``fig6`` and ``lmx`` quick sweeps must match the PR 3 baseline
**byte for byte** (``tests/baselines/pr3_fig6_lmx_quick.txt``, captured
from the pre-streaming tree by running
``python -m repro.experiments fig6 lmx --quick``).

If this test fails after an intentional cost-model or mechanism change,
regenerate the baseline with that command and say so in the PR; if it
fails after a data-plane change, the data plane leaked into the
stream-less path -- fix the leak, not the baseline.
"""

from pathlib import Path

from repro.experiments.cli import QUICK_SWEEPS
from repro.experiments import run_fig6, run_launch_matrix

BASELINE = Path(__file__).parent.parent / "baselines" \
    / "pr3_fig6_lmx_quick.txt"


def test_fig6_and_lmx_quick_match_pr3_baseline_byte_for_byte():
    fig6 = run_fig6(**QUICK_SWEEPS["fig6"])
    lmx = run_launch_matrix(**QUICK_SWEEPS["lmx"])
    # exactly what `python -m repro.experiments fig6 lmx --quick` prints
    rendered = (fig6.format_table() + "\n\n"
                + lmx.format_table() + "\n\n")
    assert rendered == BASELINE.read_text()
