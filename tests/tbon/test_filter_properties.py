"""Executable algebraic spec for the built-in stream filters.

The data plane's correctness rests on one algebraic fact: every built-in
filter's per-wave merge is **associative and commutative**, so reducing
through *any* tree shape -- any fanout, any depth, any child arrival
order -- produces the same root value as one flat reduction over all leaf
payloads. These property tests pin that down:

* ``concat`` is associative but NOT commutative, so only the multiset of
  elements is shape-independent (asserted as such);
* ``sum`` is exact for ints (floats only to tolerance -- which is why the
  spec drives it with ints);
* ``histogram`` / ``top_k`` / ``prefix_tree_merge`` are exactly
  shape-independent (pointwise sums, max-deduplicated truncation, set
  unions);
* ``ewma`` reduces each wave to an exact sum, so the root's EWMA state
  equals the flat EWMA of the per-wave flat sums.

Arrival order is randomized by giving every leaf a drawn publish delay;
tree shape by drawing fanout and leaf count.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, ClusterSpec
from repro.simx import Simulator
from repro.tbon import Overlay, TBONTopology, make_filter
from repro.tbon.filters import RunningHistogramFilter, TopKFilter
from repro.tbon.overlay import StreamSpec
from repro.tools.stat_tool.prefix_tree import PrefixTree, merge_trees


def _build_overlay(n_be, fanout, seed=3):
    sim = Simulator()
    topo = (TBONTopology.balanced(n_be, fanout) if fanout
            else TBONTopology.one_deep(n_be))
    n_comm = len(topo.comm_positions())
    cluster = Cluster(sim, ClusterSpec(n_compute=n_be + n_comm + 1,
                                       seed=seed))
    placement = {0: cluster.front_end}
    for i, pos in enumerate(topo.comm_positions()):
        placement[pos] = cluster.compute[i]
    for i, pos in enumerate(topo.backends()):
        placement[pos] = cluster.compute[n_comm + i]
    overlay = Overlay(sim, cluster.network, topo, placement, streams={})
    overlay.start_routers()
    return sim, topo, overlay


def _stream_rootwise(filter_name, leaf_payloads_per_wave, fanout,
                     delays, window=0, filter_params=()):
    """Run the waves through a real overlay stream; return the delivered
    per-wave payloads and the root's final filter state."""
    n_be = len(leaf_payloads_per_wave[0])
    sim, topo, overlay = _build_overlay(n_be, fanout)
    stream = overlay.open_stream(StreamSpec(
        5, filter_name, credit_limit=3, window=window,
        filter_params=filter_params))

    def leaf(i, pos):
        yield sim.timeout(delays[i])
        for wave, payloads in enumerate(leaf_payloads_per_wave):
            yield from stream.publish(pos, wave, payloads[i])

    delivered = []

    def subscriber():
        for _ in range(len(leaf_payloads_per_wave)):
            pkt = yield from stream.next_wave()
            delivered.append((pkt.wave, pkt.payload))

    for i, pos in enumerate(topo.backends()):
        sim.process(leaf(i, pos))
    sub = sim.process(subscriber())
    sim.run(until=600)
    assert sub.triggered
    return dict(delivered), stream.state_at(0)


shapes = st.tuples(st.integers(min_value=2, max_value=16),
                   st.integers(min_value=0, max_value=4)).map(
    lambda t: (t[0], 0 if t[1] < 2 else t[1]))

delays_for = st.lists(st.floats(min_value=0.0, max_value=0.02),
                      min_size=16, max_size=16)


class TestFlatEqualsTree:
    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, delays=delays_for, data=st.data())
    def test_histogram(self, shape, delays, data):
        n_be, fanout = shape
        n_waves = data.draw(st.integers(min_value=1, max_value=3))
        payloads = [
            [{f"b{data.draw(st.integers(0, 3))}": data.draw(
                st.integers(1, 5))} for _ in range(n_be)]
            for _ in range(n_waves)]
        delivered, _ = _stream_rootwise("histogram", payloads, fanout,
                                        delays)
        for wave in range(n_waves):
            flat = RunningHistogramFilter.merge(payloads[wave])
            assert delivered[wave] == flat

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, delays=delays_for, data=st.data())
    def test_top_k(self, shape, delays, data):
        n_be, fanout = shape
        k = data.draw(st.integers(min_value=1, max_value=4))
        payloads = [[
            [[data.draw(st.integers(0, 50)), f"leaf{i}-{j}"]
             for j in range(data.draw(st.integers(0, 3)))]
            for i in range(n_be)]]
        delivered, _ = _stream_rootwise(
            "top_k", payloads, fanout, delays,
            filter_params=(("k", k),))
        flat = TopKFilter(k=k).merge(payloads[0])
        assert delivered[0] == flat

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, delays=delays_for, data=st.data())
    def test_sum_and_ewma_over_ints(self, shape, delays, data):
        n_be, fanout = shape
        n_waves = data.draw(st.integers(min_value=1, max_value=4))
        payloads = [[data.draw(st.integers(-100, 100))
                     for _ in range(n_be)] for _ in range(n_waves)]
        delivered, state = _stream_rootwise("ewma", payloads, fanout,
                                            delays)
        # per-wave: the merged value is the exact flat sum (ints)
        for wave in range(n_waves):
            assert delivered[wave] == sum(payloads[wave])
        # the root EWMA equals the flat EWMA of the flat wave sums
        ewma = None
        for wave in range(n_waves):
            total = sum(payloads[wave])
            ewma = total if ewma is None else 0.5 * total + 0.5 * ewma
        assert state["ewma"] == pytest.approx(ewma)

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, delays=delays_for, data=st.data())
    def test_prefix_tree_merge(self, shape, delays, data):
        n_be, fanout = shape
        trees = []
        for i in range(n_be):
            t = PrefixTree()
            for _ in range(data.draw(st.integers(1, 3))):
                stack = ["main"] + [
                    f"f{data.draw(st.integers(0, 2))}"
                    for _ in range(data.draw(st.integers(1, 3)))]
                t.insert(stack, i)
            trees.append(t)
        payloads = [[t.to_dict() for t in trees]]
        delivered, _ = _stream_rootwise("prefix_tree_merge", payloads,
                                        fanout, delays)
        flat = merge_trees(trees).to_dict()
        assert delivered[0] == flat

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, delays=delays_for, data=st.data())
    def test_concat_is_shape_independent_only_as_multiset(
            self, shape, delays, data):
        """concat is associative but not commutative: arrival order
        decides element order, so only the multiset is invariant."""
        n_be, fanout = shape
        payloads = [[[f"item{i}-{j}"
                      for j in range(data.draw(st.integers(1, 2)))]
                     for i in range(n_be)]]
        delivered, _ = _stream_rootwise("concat", payloads, fanout,
                                        delays)
        flat = [x for p in payloads[0] for x in p]
        assert sorted(delivered[0]) == sorted(flat)


class TestWindowedState:
    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, delays=delays_for, data=st.data())
    def test_histogram_window_equals_flat_window(self, shape, delays,
                                                 data):
        """The root's running histogram over a window of W waves equals
        the flat merge of the last W waves' leaf payloads -- i.e. the
        windowed state is as shape-independent as the waves are."""
        n_be, fanout = shape
        n_waves = data.draw(st.integers(min_value=2, max_value=5))
        window = data.draw(st.integers(min_value=1, max_value=3))
        payloads = [
            [{f"b{data.draw(st.integers(0, 2))}": 1} for _ in range(n_be)]
            for _ in range(n_waves)]
        _, state = _stream_rootwise("histogram", payloads, fanout,
                                    delays, window=window)
        tail = payloads[-window:]
        flat = RunningHistogramFilter.merge(
            [p for wave in tail for p in wave])
        assert state["running"] == flat
