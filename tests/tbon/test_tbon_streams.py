"""Persistent streams: flow control, attribution, error paths, taps."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.simx import Simulator
from repro.tbon import (
    DEFAULT_CREDIT_LIMIT,
    Overlay,
    StreamError,
    TBONTopology,
)
from repro.tbon.overlay import StreamSpec


def _overlay(sim, n_be=8, fanout=2, seed=4, legacy_streams=None):
    topo = (TBONTopology.balanced(n_be, fanout) if fanout
            else TBONTopology.one_deep(n_be))
    n_comm = len(topo.comm_positions())
    cluster = Cluster(sim, ClusterSpec(n_compute=n_be + n_comm + 1,
                                       seed=seed))
    placement = {0: cluster.front_end}
    for i, pos in enumerate(topo.comm_positions()):
        placement[pos] = cluster.compute[i]
    for i, pos in enumerate(topo.backends()):
        placement[pos] = cluster.compute[n_comm + i]
    overlay = Overlay(sim, cluster.network, topo, placement,
                      streams=dict(legacy_streams or {}))
    overlay.start_routers()
    return topo, overlay


def _run_waves(sim, topo, stream, n_waves, payload=1,
               publish_interval=0.0, consume_delay=0.0):
    delivered = []

    def leaf(pos):
        for w in range(n_waves):
            yield from stream.publish(pos, w, payload)
            if publish_interval > 0:
                yield sim.timeout(publish_interval)

    def subscriber():
        for _ in range(n_waves):
            pkt = yield from stream.next_wave()
            delivered.append((pkt.wave, pkt.payload))
            if consume_delay > 0:
                yield sim.timeout(consume_delay)

    for pos in topo.backends():
        sim.process(leaf(pos), name=f"leaf:{pos}")
    sub = sim.process(subscriber(), name="subscriber")
    sim.run(until=600)
    assert sub.triggered
    return delivered


class TestFlowControl:
    def test_inbox_depth_never_exceeds_credit_limit(self, sim):
        topo, overlay = _overlay(sim, n_be=12, fanout=0)
        stream = overlay.open_stream(StreamSpec(3, "sum", credit_limit=3))
        delivered = _run_waves(sim, topo, stream, n_waves=8,
                               consume_delay=0.01)
        assert [w for w, _ in delivered] == list(range(8))
        assert all(v == 12 for _, v in delivered)
        rep = stream.report
        assert rep.max_inbox_depth() <= 3
        for stats in rep.flow.values():
            assert stats.high_water <= stats.credit_limit

    def test_slow_subscriber_backpressures_publishers(self, sim):
        """With a slow consumer, publishers must stall (credit waits)
        rather than queue unboundedly -- and the stall time must show up
        in the flow stats."""
        topo, overlay = _overlay(sim, n_be=6, fanout=0)
        stream = overlay.open_stream(StreamSpec(3, "sum", credit_limit=2))
        _run_waves(sim, topo, stream, n_waves=10, consume_delay=0.05)
        rep = stream.report
        assert rep.total_stalls() > 0
        assert rep.total_stall_time() > 0.0
        # the backpressure shows up as delivery-dominated waves
        assert rep.dominant_phase() == "t_deliver"

    def test_waves_deliver_in_order(self, sim):
        topo, overlay = _overlay(sim, n_be=9, fanout=3)
        stream = overlay.open_stream(StreamSpec(3, "sum", credit_limit=2))
        delivered = _run_waves(sim, topo, stream, n_waves=12)
        assert [w for w, _ in delivered] == list(range(12))

    def test_multilevel_stateful_views(self, sim):
        """Every internal position holds a live windowed view of its own
        subtree -- the MW value-add of stateful filters."""
        topo, overlay = _overlay(sim, n_be=8, fanout=4)
        stream = overlay.open_stream(StreamSpec(
            3, "histogram", credit_limit=4, window=0))
        payload = {"R": 1}
        _run_waves(sim, topo, stream, n_waves=5, payload=payload)
        comm = topo.comm_positions()[0]
        subtree = len(topo.children(comm))
        assert stream.state_at(comm)["running"] == {"R": 5 * subtree}
        assert stream.state_at(0)["running"] == {"R": 5 * 8}

    def test_taps_observe_merged_waves(self, sim):
        topo, overlay = _overlay(sim, n_be=8, fanout=4)
        stream = overlay.open_stream(StreamSpec(3, "sum", credit_limit=4))
        comm = topo.comm_positions()[0]
        tap = stream.subscribe(comm)
        _run_waves(sim, topo, stream, n_waves=3)
        taps = [tap.items[i] for i in range(len(tap.items))]
        assert [w for w, _ in taps] == [0, 1, 2]
        assert all(v == len(topo.children(comm)) for _, v in taps)


class TestRuntimeStreamFaces:
    def test_be_and_mw_faces_end_to_end(self):
        """The whole daemon-side surface over a real LaunchMON startup
        with comm daemons: BEs attach/open, wait on the broadcast plane
        for the FE's go command, then publish; the comm daemons'
        Middleware runtimes (session.mw_runtimes, overlay-attached by
        the startup path) tap their subtree's merged waves and expose
        their windowed state; the FE collects via session.open_stream."""
        from repro.apps import make_compute_app
        from repro.fe import ToolFrontEnd
        from repro.runner import drive, make_env
        from repro.tbon import launchmon_startup

        n_be, n_waves = 8, 3
        env = make_env(n_compute=n_be + 2)  # +2 nodes for comm daemons
        app = make_compute_app(n_tasks=n_be * 2, tasks_per_node=2)
        topo = TBONTopology.balanced(n_be, fanout=4)
        spec = StreamSpec(80, "histogram", credit_limit=2)
        box: dict = {}
        started = []

        def daemon_body(be, ctx, endpoint):
            be.attach_overlay(endpoint)
            stream = be.stream_open(spec)
            # samplers are steered over the broadcast plane: wait for go
            pkt = yield from be.stream_subscribe()
            started.append(pkt.payload)
            for w in range(n_waves):
                yield from be.stream_publish(stream, w, {"R": 1})
                yield ctx.sim.timeout(0.005)

        def scenario(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            job = yield from env.rm.launch_job(app, env.rm.allocate(n_be))
            session = fe.create_session()
            overlay, _report = yield from launchmon_startup(
                fe, session, job, topology=topo, image_mb=2.0,
                daemon_body=daemon_body)
            stream = session.open_stream(
                stream_id=80, filter_name="histogram", credit_limit=2)
            assert stream.spec == spec  # both sides share one stream

            mw = session.mw_runtimes[0]
            tap = mw.stream_subscribe(stream)
            yield from overlay.endpoint(0).broadcast(1, 0, "go")
            for _ in range(n_waves):
                yield from stream.next_wave()
            box["taps"] = [tap.items[i] for i in range(len(tap.items))]
            box["mw_state"] = mw.stream_state(stream)
            box["root_state"] = stream.state_at(0)
            yield from fe.detach(session)

        drive(env, scenario(env))
        assert started == ["go"] * n_be
        # the MW tap saw every wave, merged over its own 4-leaf subtree
        assert [w for w, _ in box["taps"]] == list(range(n_waves))
        assert all(p == {"R": 4} for _w, p in box["taps"])
        assert box["mw_state"]["running"] == {"R": 4 * n_waves}
        assert box["root_state"]["running"] == {"R": n_be * n_waves}


class TestAttribution:
    def test_per_wave_phases_sum_to_latency(self, sim):
        topo, overlay = _overlay(sim, n_be=8, fanout=2)
        stream = overlay.open_stream(StreamSpec(3, "sum", credit_limit=4))
        _run_waves(sim, topo, stream, n_waves=6, consume_delay=0.002)
        rep = stream.report
        waves = rep.delivered_waves()
        assert len(waves) == 6
        for wt in waves:
            assert sum(wt.phases().values()) == pytest.approx(
                wt.latency, abs=1e-12)
        assert sum(rep.phase_totals().values()) == pytest.approx(
            rep.total_latency(), abs=1e-9)

    def test_report_as_dict_round_trips_to_json(self, sim):
        import json

        topo, overlay = _overlay(sim, n_be=4, fanout=0)
        stream = overlay.open_stream(StreamSpec(3, "sum", credit_limit=2))
        _run_waves(sim, topo, stream, n_waves=2)
        payload = stream.report.as_dict()
        assert json.loads(json.dumps(payload)) is not None
        assert payload["n_delivered"] == 2
        assert payload["dominant_phase"] in ("t_fanin", "t_filter",
                                             "t_deliver")


class TestStreamLifecycle:
    def test_open_is_idempotent_per_spec(self, sim):
        _topo, overlay = _overlay(sim)
        spec = StreamSpec(3, "sum", credit_limit=2)
        assert overlay.open_stream(spec) is overlay.open_stream(spec)

    def test_reopen_with_different_spec_rejected(self, sim):
        _topo, overlay = _overlay(sim)
        overlay.open_stream(StreamSpec(3, "sum", credit_limit=2))
        with pytest.raises(StreamError, match="already open"):
            overlay.open_stream(StreamSpec(3, "max", credit_limit=2))

    def test_legacy_spec_gets_default_credit_limit(self, sim):
        _topo, overlay = _overlay(sim)
        stream = overlay.open_stream(StreamSpec(3, "sum"))
        assert stream.spec.credit_limit == DEFAULT_CREDIT_LIMIT

    def test_id_collision_with_one_shot_stream_rejected(self, sim):
        _topo, overlay = _overlay(sim, legacy_streams={
            1: StreamSpec(1, "concat")})
        with pytest.raises(StreamError, match="one-shot"):
            overlay.open_stream(StreamSpec(1, "sum", credit_limit=2))

    def test_publish_rejections(self, sim):
        topo, overlay = _overlay(sim, n_be=8, fanout=2)
        stream = overlay.open_stream(StreamSpec(3, "sum", credit_limit=2))
        comm = topo.comm_positions()[0]
        with pytest.raises(StreamError, match="BE leaves"):
            next(stream.publish(comm, 0, 1))
        leaf = topo.backends()[0]

        def double_publish():
            yield from stream.publish(leaf, 0, 1)
            yield from stream.publish(leaf, 0, 2)

        proc = sim.process(double_publish())
        proc.defuse()
        sim.run(until=10)
        assert isinstance(proc.exception, StreamError)

    def test_closed_stream_rejects_publish_and_reopens(self, sim):
        topo, overlay = _overlay(sim)
        spec = StreamSpec(3, "sum", credit_limit=2)
        stream = overlay.open_stream(spec)
        report = stream.close()
        assert report.t_close == sim.now
        with pytest.raises(StreamError, match="closed"):
            next(stream.publish(topo.backends()[0], 0, 1))
        # the id is free again: a fresh open builds a fresh stream
        fresh = overlay.open_stream(spec)
        assert fresh is not stream
