"""Property tests for the checkpoint codec (hypothesis).

The contract under test (see ``repro/ctl/checkpoint.py``):

* canonical: the same :class:`Checkpoint` value always encodes to the
  same bytes, and the round trip is exact in both directions --
  ``decode(encode(cp)) == cp`` and ``encode(decode(b)) == b``;
* versioned: any version other than :data:`CHECKPOINT_VERSION` raises
  :class:`CheckpointVersionError` before any field is interpreted;
* strict: unknown fields (a future daemon's state) and missing fields
  are rejected with a versioned :class:`CheckpointError`, never dropped.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctl.checkpoint import (CHECKPOINT_VERSION, Checkpoint,
                                  CheckpointError, CheckpointVersionError,
                                  QueueRecord, SessionRecord,
                                  decode_checkpoint, encode_checkpoint)

# -- strategies ---------------------------------------------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
scalars = st.one_of(st.none(), st.booleans(),
                    st.integers(min_value=-2 ** 40, max_value=2 ** 40),
                    finite_floats,
                    st.text(alphabet="abcdefgh _-.:0123456789", max_size=12))
node_names = st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=12)


@st.composite
def params_tuples(draw):
    keys = draw(st.lists(st.text(alphabet="abcdef_", min_size=1, max_size=8),
                         max_size=4, unique=True))
    return tuple((k, draw(scalars)) for k in sorted(keys))


@st.composite
def session_records(draw, ctl_id=None):
    return SessionRecord(
        ctl_id=draw(st.integers(min_value=1, max_value=10 ** 6))
        if ctl_id is None else ctl_id,
        tool_name=draw(st.text(alphabet="abcdef-", min_size=1, max_size=16)),
        tool=draw(st.sampled_from(["generic-be", "overlay", "custom"])),
        n_nodes=draw(st.integers(min_value=1, max_value=4096)),
        params=draw(params_tuples()),
        state=draw(st.sampled_from(
            ["queued", "spawning", "ready", "degraded", "mw-ready"])),
        session_id=draw(st.integers(min_value=1, max_value=10 ** 6)),
        jobid=draw(st.integers(min_value=0, max_value=10 ** 6)),
        alloc_ids=tuple(draw(st.lists(
            st.integers(min_value=1, max_value=10 ** 6), max_size=4))),
        has_overlay=draw(st.booleans()),
        submitted_at=draw(finite_floats),
    )


@st.composite
def checkpoints(draw):
    n = draw(st.integers(min_value=0, max_value=6))
    return Checkpoint(
        generation=draw(st.integers(min_value=1, max_value=1000)),
        next_ctl_id=draw(st.integers(min_value=1, max_value=10 ** 6)),
        max_in_flight=draw(st.one_of(
            st.none(), st.integers(min_value=1, max_value=512))),
        written_at=draw(finite_floats),
        sessions=tuple(draw(session_records(ctl_id=i + 1))
                       for i in range(n)),
        alloc_queue=tuple(draw(st.lists(st.builds(
            QueueRecord,
            n_nodes=st.integers(min_value=1, max_value=4096),
            t_req=finite_floats), max_size=4))),
        blacklist=tuple(draw(st.lists(node_names, max_size=4, unique=True))),
    )


# -- round trip ---------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(checkpoints())
def test_round_trip_value_identical(cp):
    assert decode_checkpoint(encode_checkpoint(cp)) == cp


@settings(max_examples=200, deadline=None)
@given(checkpoints())
def test_round_trip_bit_identical(cp):
    data = encode_checkpoint(cp)
    assert encode_checkpoint(decode_checkpoint(data)) == data


@settings(max_examples=100, deadline=None)
@given(checkpoints())
def test_encoding_is_deterministic_bytes(cp):
    a = encode_checkpoint(cp)
    b = encode_checkpoint(cp)
    assert a == b
    assert isinstance(a, bytes)
    a.decode("ascii")  # canonical form is pure ASCII


# -- strictness: unknown / missing fields -------------------------------------

@settings(max_examples=60, deadline=None)
@given(checkpoints(),
       st.sampled_from(["drain_deadline", "lease_epoch", "shard"]))
def test_unknown_top_level_field_rejected(cp, field):
    doc = json.loads(encode_checkpoint(cp))
    doc[field] = 42
    with pytest.raises(CheckpointError) as ei:
        decode_checkpoint(json.dumps(doc).encode("ascii"))
    # the error is versioned and names the offending field
    assert ei.value.version == CHECKPOINT_VERSION
    assert field in str(ei.value)
    assert f"[checkpoint v{CHECKPOINT_VERSION}]" in str(ei.value)


@settings(max_examples=60, deadline=None)
@given(checkpoints(), st.sampled_from(["affinity", "gpu_ids"]))
def test_unknown_session_field_rejected(cp, field):
    doc = json.loads(encode_checkpoint(cp))
    doc["sessions"] = doc["sessions"] or [json.loads(encode_checkpoint(
        Checkpoint(1, 1, None, 0.0,
                   (SessionRecord(1, "t", "generic-be", 1, (), "ready",
                                  1, 1, (1,), False, 0.0),),
                   (), ())))["sessions"][0]]
    doc["sessions"][0][field] = "x"
    with pytest.raises(CheckpointError):
        decode_checkpoint(json.dumps(doc).encode("ascii"))


@settings(max_examples=60, deadline=None)
@given(checkpoints())
def test_missing_field_rejected(cp):
    doc = json.loads(encode_checkpoint(cp))
    doc.pop("blacklist")
    with pytest.raises(CheckpointError, match="missing"):
        decode_checkpoint(json.dumps(doc).encode("ascii"))


# -- versioning ---------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(checkpoints(), st.integers(min_value=-5, max_value=50))
def test_other_versions_rejected_with_version_error(cp, version):
    doc = json.loads(encode_checkpoint(cp))
    doc["version"] = version
    data = json.dumps(doc).encode("ascii")
    if version == CHECKPOINT_VERSION:
        decode_checkpoint(data)
        return
    with pytest.raises(CheckpointVersionError) as ei:
        decode_checkpoint(data)
    # the error reports the *document's* version claim
    assert ei.value.version == version


def test_version_checked_before_unknown_fields():
    """A future-version document full of future fields must fail on the
    version, not on its (legitimately unknown) fields."""
    doc = {"version": CHECKPOINT_VERSION + 1, "lease_epoch": 9}
    with pytest.raises(CheckpointVersionError):
        decode_checkpoint(json.dumps(doc).encode("ascii"))


def test_missing_version_rejected():
    with pytest.raises(CheckpointError, match="version"):
        decode_checkpoint(b'{"generation":1}')


# -- malformed documents ------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(checkpoints(), st.integers(min_value=1, max_value=40))
def test_truncated_bytes_rejected(cp, cut):
    data = encode_checkpoint(cp)
    with pytest.raises(CheckpointError):
        decode_checkpoint(data[:-min(cut, len(data) - 1)])


@pytest.mark.parametrize("blob", [b"", b"[]", b"null", b'"v1"', b"\xff\xfe"])
def test_non_object_documents_rejected(blob):
    with pytest.raises(CheckpointError):
        decode_checkpoint(blob)


def test_bool_is_not_an_integer():
    """JSON booleans must not satisfy integer fields (bool is an int
    subclass in Python -- the codec must not fall for it)."""
    cp = Checkpoint(1, 1, None, 0.0, (), (), ())
    doc = json.loads(encode_checkpoint(cp))
    doc["generation"] = True
    with pytest.raises(CheckpointError, match="generation"):
        decode_checkpoint(json.dumps(doc).encode("ascii"))


def test_state_vocabulary_is_closed():
    rec = SessionRecord(1, "t", "generic-be", 1, (), "ready", 1, 1, (),
                        False, 0.0)
    cp = Checkpoint(1, 2, None, 0.0, (rec,), (), ())
    doc = json.loads(encode_checkpoint(cp))
    doc["sessions"][0]["state"] = "hibernating"
    with pytest.raises(CheckpointError, match="hibernating"):
        decode_checkpoint(json.dumps(doc).encode("ascii"))


def test_non_finite_floats_refused_on_encode():
    cp = Checkpoint(1, 1, None, float("nan"), (), (), ())
    with pytest.raises(CheckpointError, match="non-finite"):
        encode_checkpoint(cp)
