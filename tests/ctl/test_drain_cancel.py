"""SessionHandle.cancel() racing a drain (satellite coverage).

A queued launch withdrawn *during* a drain must release its admission
slot and its RM queue entry, and must not block the drain's completion.
The drain walks every handle; a cancelled handle completes with an
Interrupt, which the walk must treat as "settled", not as a failure of
the drain itself.
"""

from __future__ import annotations

from repro.cluster import ClusterSpec
from repro.ctl import ControlPlane, CtlClient, DaemonState, decode_checkpoint
from repro.fe.session import SessionState
from repro.runner import make_env
from repro.simx import Interrupt

from tests.ctl.conftest import run_gen


def _gated_env(n_compute=12, max_in_flight=1):
    env = make_env(n_compute=n_compute,
                   spec=ClusterSpec(n_compute=n_compute, seed=5), seed=5)
    control = ControlPlane(env.cluster, env.rm, max_in_flight=max_in_flight)
    return env, control, CtlClient(control)


def test_cancel_of_admission_queued_launch_during_drain():
    env, control, client = _gated_env()
    sim = env.sim
    client.start()
    id1 = client.launch("generic-be", 3)
    id2 = client.launch("generic-be", 3)  # behind the admission gate

    def scenario():
        stop_proc = control.stop_async(drain=True)
        yield sim.timeout(0.001)
        assert control.daemon.state is DaemonState.DRAINING
        assert control.daemon.service.pending_admissions == 1
        assert client.cancel(id2) is True
        yield stop_proc

    run_gen(env, scenario())
    daemon = control.daemon
    assert daemon.state is DaemonState.STOPPED, "drain must complete"
    # the withdrawn launch settled with an Interrupt and released its slot
    h2 = daemon.get(id2).handle
    assert h2.done and isinstance(h2.exception, Interrupt)
    assert daemon.service.pending_admissions == 0
    assert daemon.service.in_flight == 0
    # the survivor drained to READY; the cancelled one holds nothing
    assert daemon.get(id1).session.state is SessionState.READY
    assert daemon.get(id2).session.state in (SessionState.KILLED,
                                             SessionState.FAILED)
    held = {n.name for a in env.rm.live_allocations.values()
            for n in a.nodes}
    assert held == {n.name for a
                    in daemon.get(id1).session.owned_allocs
                    for n in a.nodes}
    # the final checkpoint records only the survivor
    cp = decode_checkpoint(control.store.read())
    assert [r.ctl_id for r in cp.sessions] == [id1]


def test_cancel_of_rm_queued_launch_during_drain():
    """The cancelled launch already holds an RM queue entry (nodes, not
    admission): cancelling must withdraw that entry, or the drain's
    final accounting leaks a phantom request."""
    env, control, client = _gated_env(n_compute=4, max_in_flight=3)
    sim = env.sim
    client.start()
    id1 = client.launch("generic-be", 3)

    def scenario():
        # wait until id1 holds nodes, then queue id2 behind it at the RM
        while client.info(id1)["state"] in ("created", "queued"):
            yield sim.timeout(0.005)
        id2 = client.launch("generic-be", 3)
        yield sim.timeout(0.01)
        assert client.info(id2)["state"] == "queued"
        assert env.rm.queued_requests == 1
        stop_proc = control.stop_async(drain=True)
        yield sim.timeout(0.001)
        assert control.daemon.state is DaemonState.DRAINING
        assert client.cancel(id2) is True
        yield stop_proc
        return id2

    id2 = run_gen(env, scenario())
    daemon = control.daemon
    assert daemon.state is DaemonState.STOPPED
    assert env.rm.queued_requests == 0, "cancelled queue entry must go"
    h2 = daemon.get(id2).handle
    assert h2.done and isinstance(h2.exception, Interrupt)
    assert daemon.get(id1).session.state is SessionState.READY


def test_drain_completes_when_every_handle_is_cancelled():
    env, control, client = _gated_env()
    sim = env.sim
    client.start()
    ids = [client.launch("generic-be", 3) for _ in range(3)]

    def scenario():
        stop_proc = control.stop_async(drain=True)
        yield sim.timeout(0.001)
        for ctl_id in ids:
            client.cancel(ctl_id)
        yield stop_proc

    run_gen(env, scenario())
    assert control.daemon.state is DaemonState.STOPPED
    assert not env.rm.live_allocations
    assert env.rm.queued_requests == 0
    assert len(env.rm.free_nodes()) == 12
