"""Restore semantics: adopt / resubmit / reap -- never relaunch."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec
from repro.ctl import CTL_STREAM_ID, ControlPlane, CtlClient
from repro.fe.session import SessionState
from repro.runner import make_env

from tests.ctl.conftest import run_gen


def _small_env(n_compute=12, seed=3, max_in_flight=3):
    env = make_env(n_compute=n_compute,
                   spec=ClusterSpec(n_compute=n_compute, seed=seed),
                   seed=seed)
    control = ControlPlane(env.cluster, env.rm, max_in_flight=max_in_flight)
    return env, control, CtlClient(control)


def test_restart_adopts_ready_trees_without_relaunch(ctl_env):
    env, control, client = ctl_env
    client.start()
    ids = [client.launch("generic-be", 3) for _ in range(2)]
    for ctl_id in ids:
        run_gen(env, client.wait(ctl_id))
    gen1 = control.daemon
    pre = {}
    for ctl_id in ids:
        job = gen1.get(ctl_id).session.job
        pre[ctl_id] = (job, [d.proc for d in job.daemons])

    run_gen(env, client.stop(drain=True))  # graceful: trees left running
    for ctl_id, (job, procs) in pre.items():
        assert all(p.alive for p in procs), "trees must survive the stop"

    st = client.start()
    assert st["generation"] == 2
    daemon = control.daemon
    report = daemon.restore_report
    assert report.adopted == 2
    assert report.relaunched == 0
    assert report.resubmitted == 0
    for ctl_id, (job, procs) in pre.items():
        cs = daemon.get(ctl_id)
        assert cs.adopted
        # the *same* RM job and the *same* daemon processes: adopted,
        # not relaunched
        assert cs.session.job is job
        assert [d.proc for d in cs.session.job.daemons] == procs
        assert all(p.alive for p in procs)
        assert cs.session.state is SessionState.READY
        # the proctable was rebuilt from the still-running task set
        assert len(cs.session.rpdtab) == job.app.n_tasks

    # adopted sessions tear down cleanly through the new generation
    for ctl_id in ids:
        assert run_gen(env, client.end(ctl_id)) is True
    assert not env.rm.live_allocations


def test_adopted_overlay_serves_the_same_stream(ctl_env):
    env, control, client = ctl_env
    client.start()
    ctl_id = client.launch("overlay", 3, waves=2)
    run_gen(env, client.wait(ctl_id))
    stream_before = client.open_stream(ctl_id, stream_id=CTL_STREAM_ID)

    run_gen(env, client.stop(drain=True))
    client.start()
    cs = control.daemon.get(ctl_id)
    assert cs.adopted and cs.session.overlay is not None

    # data-plane continuity: the adopted session hands back the *same*
    # persistent stream object, and waves published by the (still
    # running) daemons before the restart are deliverable after it
    stream = client.open_stream(ctl_id, stream_id=CTL_STREAM_ID)
    assert stream is stream_before

    def read_waves():
        got = []
        for _ in range(2):
            pkt = yield from stream.next_wave()
            got.append(pkt.wave)
        return got

    waves = run_gen(env, read_waves())
    assert waves == [0, 1]
    assert run_gen(env, client.end(ctl_id)) is True


def test_queued_work_is_resubmitted_under_same_ctl_id():
    # 4 nodes, gate of 1: the second launch is still CREATED (waiting
    # for admission) when the daemon stops hard
    env, control, client = _small_env(n_compute=4, max_in_flight=1)
    sim = env.sim
    client.start()
    id1 = client.launch("generic-be", 3)
    id2 = client.launch("generic-be", 3)
    run_gen(env, client.wait(id1))
    assert client.info(id2)["state"] in ("created", "queued")

    control.crash()
    sim.run(until=sim.now + 0.1)
    client.start()
    daemon = control.daemon
    report = daemon.restore_report
    assert report.resubmitted == 1
    cs2 = daemon.get(id2)
    assert cs2.resubmitted and not cs2.adopted
    assert cs2.ctl_id == id2  # the client's ticket survived the restart
    # id1's tree was adopted; once it ends, id2's resubmission launches
    assert daemon.get(id1).adopted
    assert run_gen(env, client.end(id1)) is True
    run_gen(env, client.wait(id2))
    assert client.info(id2)["state"] == "ready"
    assert run_gen(env, client.end(id2)) is True
    assert not env.rm.allocated_node_names


def test_spawning_session_is_reaped_not_adopted():
    env, control, client = _small_env(n_compute=8)
    sim = env.sim
    client.start()
    ctl_id = client.launch("generic-be", 3)
    # step in small increments until the launch is mid-spawn
    while client.info(ctl_id)["state"] != "spawning":
        sim.run(until=sim.now + 0.005)
    control.crash()
    sim.run(until=sim.now + 0.2)

    client.start()
    report = control.daemon.restore_report
    assert report.adopted == 0
    assert report.reaped_sessions == 1
    assert ctl_id not in control.daemon.sessions  # nothing to resume
    # the aborted spawn left no nodes behind
    assert not env.rm.live_allocations
    assert not env.rm.allocated_node_names
    assert len(env.rm.free_nodes()) == 8


def test_orphan_grant_to_dead_waiter_is_swept():
    """Crash with one launch mid-spawn and one queued at the RM: the
    abort of the first *releases* nodes, which the RM grants to the
    frozen second waiter -- an allocation owned by no one. The restore's
    ledger sweep must reap it."""
    env, control, client = _small_env(n_compute=4, max_in_flight=3)
    sim = env.sim
    client.start()
    id1 = client.launch("generic-be", 3)
    while client.info(id1)["state"] != "spawning":
        sim.run(until=sim.now + 0.005)
    id2 = client.launch("generic-be", 3)
    sim.run(until=sim.now + 0.01)
    assert client.info(id2)["state"] == "queued"  # in the RM's FIFO line
    assert env.rm.queued_requests == 1

    control.crash()  # id1 aborts (releases nodes); id2's waiter is frozen
    sim.run(until=sim.now + 0.2)
    # the release pumped the queue: the dead waiter got nodes
    assert env.rm.live_allocations, "expected an orphan grant"

    client.start()
    report = control.daemon.restore_report
    assert report.orphan_allocs_reaped == 1
    assert report.queue_entries_withdrawn == 0  # consumed by the grant
    assert report.resubmitted == 1  # id2 rides again under its own id
    run_gen(env, client.wait(id2))
    assert client.info(id2)["state"] == "ready"
    assert run_gen(env, client.end(id2)) is True
    assert not env.rm.allocated_node_names
    assert len(env.rm.free_nodes()) == 4


def test_blacklist_survives_restart(ctl_env):
    env, control, client = ctl_env
    client.start()
    env.rm.node_blacklist.add("atlas0003")
    ctl_id = client.launch("generic-be", 2)
    run_gen(env, client.wait(ctl_id))
    run_gen(env, client.stop(drain=True))

    env.rm.node_blacklist.clear()  # simulate RM-side amnesia
    client.start()
    assert "atlas0003" in env.rm.node_blacklist
    assert control.daemon.restore_report.blacklist_applied == 1


def test_cold_start_has_no_restore_report(ctl_env):
    env, control, client = ctl_env
    client.start()
    assert control.daemon.restore_report is None
