"""Crash-restart soak: seeded random kill points across many lifecycle
sequences (launching / draining / mid-repair / gate-queued), asserting
that after re-adoption the node accounting balances to zero every time.

``CTL_SOAK_ITERS`` overrides the sequence count (CI runs a reduced
soak; the default matches the acceptance bar of 200 sequences).
"""

from __future__ import annotations

import os

from repro.ctl.harness import run_crash_restart, scenario_for_seed

SOAK_ITERS = int(os.environ.get("CTL_SOAK_ITERS", "200"))


def test_crash_restart_soak():
    failures = []
    totals = {"adopted": 0, "resubmitted": 0, "reaped": 0, "orphans": 0}
    for seed in range(SOAK_ITERS):
        res = run_crash_restart(scenario_for_seed(seed))
        totals["adopted"] += res.adopted
        totals["resubmitted"] += res.resubmitted
        totals["reaped"] += res.reaped_sessions
        totals["orphans"] += res.orphan_allocs_reaped
        if not (res.ok and res.relaunched == 0 and res.leaked_nodes_mid == 0
                and res.leaked_nodes_final == 0 and res.queue_leak_final == 0
                and res.index_balanced):
            failures.append((seed, res.as_dict()))
    assert not failures, f"{len(failures)} bad sequences: {failures[:3]}"
    # the soak must exercise every disposition, not just the happy adopt
    assert totals["adopted"] > 0
    if SOAK_ITERS >= 100:
        assert totals["resubmitted"] > 0
        assert totals["reaped"] > 0
