"""Daemon lifecycle: idempotent start, status, reload, drain, stop."""

from __future__ import annotations

import pytest

from repro.ctl import (CtlError, CtlUnavailable, DaemonState,
                       UnknownToolError, decode_checkpoint)
from repro.fe.session import SessionState

from tests.ctl.conftest import run_gen


def test_start_is_idempotent(ctl_env):
    env, control, client = ctl_env
    st1 = client.start()
    assert st1["started"] and not st1["already_running"]
    assert st1["generation"] == 1
    # a second start reports the live instance, it does not spawn a rival
    st2 = client.start()
    assert not st2["started"] and st2["already_running"]
    assert st2["generation"] == 1
    assert control.generation == 1
    assert control.daemon.state is DaemonState.RUNNING


def test_status_probes_without_booting(ctl_env):
    env, control, client = ctl_env
    st = client.status()
    assert st["state"] == "stopped"
    assert not st["has_checkpoint"]
    assert control.daemon is None  # the probe must not have started one
    client.start()
    assert client.status()["state"] == "running"


def test_submit_refused_while_down(ctl_env):
    env, control, client = ctl_env
    with pytest.raises(CtlUnavailable):
        client.launch("generic-be", 2)


def test_unknown_tool_is_an_error(ctl_env):
    env, control, client = ctl_env
    client.start()
    with pytest.raises(UnknownToolError):
        client.launch("no-such-recipe", 2)


def test_launch_and_wait(ctl_env):
    env, control, client = ctl_env
    client.start()
    ctl_id = client.launch("generic-be", 3)
    state = run_gen(env, client.wait(ctl_id))
    assert state == "ready"
    info = client.info(ctl_id)
    assert info["tool"] == "generic-be" and not info["adopted"]


def test_reload_resizes_admission_gate_live(ctl_env):
    env, control, client = ctl_env
    client.start()
    daemon = control.daemon
    daemon.service.set_max_in_flight(1)
    ids = [client.launch("generic-be", 2) for _ in range(3)]
    env.sim.run(until=0.01)
    # gate of 1: exactly one admitted, two waiting
    assert daemon.service.pending_admissions == 2
    st = client.reload(max_in_flight=3)
    assert st["max_in_flight"] == 3
    assert control.max_in_flight == 3  # config-of-record for restarts
    env.sim.run()
    for ctl_id in ids:
        assert client.info(ctl_id)["state"] == "ready"
    # the reloaded value is what the checkpoint now records
    cp = decode_checkpoint(control.store.read())
    assert cp.max_in_flight == 3


def test_drain_refuses_new_work_and_completes(ctl_env):
    env, control, client = ctl_env
    sim = env.sim
    client.start()
    ids = [client.launch("generic-be", 2) for _ in range(2)]

    def scenario():
        stop_proc = control.stop_async(drain=True)
        yield sim.timeout(0.001)
        assert control.daemon.state is DaemonState.DRAINING
        # draining daemon refuses admissions...
        with pytest.raises(CtlUnavailable):
            client.launch("generic-be", 2)
        # ...but already-admitted work runs to completion
        yield stop_proc

    run_gen(env, scenario())
    daemon = control.daemon
    assert daemon.state is DaemonState.STOPPED
    for ctl_id in ids:
        assert daemon.get(ctl_id).session.state is SessionState.READY
    # the final checkpoint describes the left-behind trees
    cp = decode_checkpoint(control.store.read())
    assert sorted(r.ctl_id for r in cp.sessions) == sorted(ids)
    assert all(r.state == "ready" for r in cp.sessions)


def test_hard_stop_cancels_in_flight_work(ctl_env):
    env, control, client = ctl_env
    sim = env.sim
    client.start()
    ctl_id = client.launch("generic-be", 2)

    def scenario():
        yield sim.timeout(0.001)  # let the launch get in flight
        result = yield from client.stop(drain=False)
        return result

    st = run_gen(env, scenario())
    assert st["state"] == "stopped"
    handle = control.daemon.get(ctl_id).handle
    assert handle.done
    # a cancelled launch ends in a terminal state and holds no nodes
    assert control.daemon.get(ctl_id).session.state in (
        SessionState.KILLED, SessionState.FAILED)
    assert not env.rm.live_allocations


def test_stop_when_never_started_is_a_noop(ctl_env):
    env, control, client = ctl_env
    st = run_gen(env, client.stop())
    assert st["state"] == "stopped"


def test_end_session_releases_nodes(ctl_env):
    env, control, client = ctl_env
    client.start()
    ctl_id = client.launch("generic-be", 3)
    run_gen(env, client.wait(ctl_id))
    assert env.rm.live_allocations
    ok = run_gen(env, client.end(ctl_id))
    assert ok is True
    assert client.info(ctl_id)["state"] == "detached"
    assert not env.rm.live_allocations
    assert not env.rm.allocated_node_names


def test_checkpoint_written_on_every_transition(ctl_env):
    env, control, client = ctl_env
    client.start()
    writes0 = control.store.writes
    ctl_id = client.launch("generic-be", 2)
    run_gen(env, client.wait(ctl_id))
    assert control.store.writes > writes0
    cp = decode_checkpoint(control.store.read())
    assert [r.ctl_id for r in cp.sessions] == [ctl_id]
    assert cp.sessions[0].state == "ready"
    assert cp.sessions[0].alloc_ids  # names the surviving RM allocations
