"""Deterministic crash-restart scenarios through the harness.

The soak (``test_soak.py``) randomizes kill points; these tests pin them
with ``CrashScenario.t_kill`` so each lifecycle phase -- queued,
spawning, serving, draining, mid-repair -- is hit on every run.
"""

from __future__ import annotations

import pytest

from repro.ctl.harness import (CrashScenario, run_crash_restart,
                               scenario_for_seed)


def _check(res):
    assert res.relaunched == 0, res.notes
    assert res.leaked_nodes_mid == 0
    assert res.leaked_nodes_final == 0
    assert res.queue_leak_final == 0
    assert res.index_balanced
    assert res.ok, res.as_dict()


@pytest.mark.parametrize("t_kill", [0.2, 0.5, 1.0, 2.0, 4.0])
def test_fixed_kill_points_plain(t_kill):
    _check(run_crash_restart(CrashScenario(seed=11, t_kill=t_kill)))


@pytest.mark.parametrize("t_kill", [0.3, 1.0, 3.0])
def test_fixed_kill_points_mid_drain(t_kill):
    _check(run_crash_restart(
        CrashScenario(seed=12, drain_mid=True, t_kill=t_kill)))


@pytest.mark.parametrize("t_kill", [0.5, 2.0, 5.0])
def test_fixed_kill_points_under_node_faults(t_kill):
    _check(run_crash_restart(
        CrashScenario(seed=13, fault_rate=0.1, t_kill=t_kill)))


@pytest.mark.parametrize("t_kill", [0.2, 0.4, 0.8])
def test_fixed_kill_points_gated_admission(t_kill):
    _check(run_crash_restart(CrashScenario(
        seed=14, max_in_flight=1, submit_gap=0.05, t_kill=t_kill)))


def test_kill_before_anything_launched():
    res = run_crash_restart(CrashScenario(seed=15, t_kill=0.01))
    _check(res)
    assert res.generations == 2
    assert res.submitted == 5  # the submitter retried through the outage


def test_kill_after_everything_is_ready():
    res = run_crash_restart(CrashScenario(seed=16, t_kill=7.5))
    _check(res)
    # by then every tree is up: the restart must adopt, not redo
    assert res.adopted == 5
    assert res.resubmitted == 0


def test_scenario_mix_covers_all_variants():
    variants = {scenario_for_seed(s).drain_mid for s in range(8)}
    assert variants == {True, False}
    assert any(scenario_for_seed(s).fault_rate > 0 for s in range(8))
    assert any(scenario_for_seed(s).max_in_flight == 1 for s in range(8))
    # the early-kill rotation halves est_makespan for half the seeds
    spans = {scenario_for_seed(s).est_makespan for s in range(8)}
    assert min(spans) < max(spans)


def test_result_dict_is_jsonable():
    import json
    res = run_crash_restart(CrashScenario(seed=17, t_kill=1.0))
    json.dumps(res.as_dict())
