"""Shared fixtures for the control-plane tests."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec
from repro.ctl import ControlPlane, CtlClient
from repro.runner import make_env


@pytest.fixture
def ctl_env():
    """A 12-node environment with a (not yet started) control plane."""
    env = make_env(n_compute=12, spec=ClusterSpec(n_compute=12, seed=3),
                   seed=3)
    control = ControlPlane(env.cluster, env.rm, max_in_flight=3)
    return env, control, CtlClient(control)


def drain_to(env, until=None):
    """Run the simulator until quiescent (or a given virtual time)."""
    if until is None:
        env.sim.run()
    else:
        env.sim.run(until=until)


def run_gen(env, gen):
    """Drive one generator to completion on the environment's simulator."""
    proc = env.sim.process(gen)
    env.sim.run()
    return proc.value
