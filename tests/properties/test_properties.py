"""Property-based tests (hypothesis) for core data structures/invariants."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.be.iccl import TreeTopology
from repro.lmonp import FrameDecoder, LmonpMessage, MsgClass
from repro.lmonp.header import MAX_TYPE
from repro.mpir import ProcDesc, RPDTAB
from repro.simx import SeededRNG, Simulator
from repro.tbon.topology import TBONTopology
from repro.tools.stat_tool import PrefixTree, merge_trees

# -- strategies ---------------------------------------------------------------

msg_classes = st.sampled_from([MsgClass.FE_ENGINE, MsgClass.FE_BE,
                               MsgClass.FE_MW])
payloads = st.binary(max_size=2048)


@st.composite
def lmonp_messages(draw):
    return LmonpMessage(
        msg_class=draw(msg_classes),
        msg_type=draw(st.integers(min_value=1, max_value=7)),
        num_tasks=draw(st.integers(min_value=0, max_value=2 ** 32 - 1)),
        sec_chk=draw(st.integers(min_value=0, max_value=0xFFFF)),
        lmon_payload=draw(payloads),
        usr_payload=draw(payloads),
    )


@st.composite
def rpdtabs(draw):
    n = draw(st.integers(min_value=0, max_value=64))
    hosts = draw(st.lists(
        st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=12),
        min_size=1, max_size=8))
    return RPDTAB(
        ProcDesc(rank=i, host_name=hosts[i % len(hosts)],
                 executable_name=draw(st.sampled_from(["app", "sim", "x"])),
                 pid=1000 + i)
        for i in range(n))


frames = st.lists(
    st.sampled_from(["main", "do_work", "solve", "MPI_Barrier", "MPI_Recv",
                     "compute", "io_write", "helper"]),
    min_size=1, max_size=6)
stacks_with_ranks = st.lists(
    st.tuples(frames, st.integers(min_value=0, max_value=200)),
    min_size=0, max_size=30)


def build_tree(samples):
    t = PrefixTree()
    for stack, rank in samples:
        t.insert(stack, rank)
    return t


# -- LMONP ---------------------------------------------------------------------

class TestLmonpProperties:
    @given(lmonp_messages())
    def test_encode_decode_roundtrip(self, msg):
        assert LmonpMessage.decode(msg.encode()) == msg

    @given(lmonp_messages())
    def test_wire_size_is_len_encode(self, msg):
        assert msg.wire_size() == len(msg.encode())

    @given(st.lists(lmonp_messages(), min_size=1, max_size=6),
           st.data())
    def test_frame_decoder_arbitrary_chunking(self, msgs, data):
        stream = b"".join(m.encode() for m in msgs)
        decoder = FrameDecoder()
        out = []
        i = 0
        while i < len(stream):
            step = data.draw(st.integers(min_value=1,
                                         max_value=len(stream) - i))
            out.extend(decoder.feed(stream[i:i + step]))
            i += step
        assert out == msgs
        assert decoder.pending_bytes == 0


# -- RPDTAB ---------------------------------------------------------------------

class TestRpdtabProperties:
    @given(rpdtabs())
    def test_codec_roundtrip(self, tab):
        assert RPDTAB.from_bytes(tab.to_bytes()) == tab

    @given(rpdtabs())
    def test_host_partition(self, tab):
        """entries_on over hosts partitions the table exactly."""
        seen = []
        for h in tab.hosts:
            seen.extend(tab.entries_on(h))
        assert sorted(e.rank for e in seen) == [e.rank for e in tab]

    @given(rpdtabs())
    def test_task_counts_sum(self, tab):
        assert sum(tab.task_counts().values()) == len(tab)


# -- prefix tree algebra -----------------------------------------------------------

class TestPrefixTreeProperties:
    @given(stacks_with_ranks, stacks_with_ranks)
    def test_merge_commutative(self, a, b):
        ab = build_tree(a).merge(build_tree(b))
        ba = build_tree(b).merge(build_tree(a))
        assert ab == ba

    @given(stacks_with_ranks, stacks_with_ranks, stacks_with_ranks)
    @settings(max_examples=50)
    def test_merge_associative(self, a, b, c)            :
        left = build_tree(a).merge(build_tree(b)).merge(build_tree(c))
        right = build_tree(a).merge(build_tree(b).merge(build_tree(c)))
        assert left == right

    @given(stacks_with_ranks)
    def test_merge_idempotent(self, a):
        t = build_tree(a)
        assert t.copy().merge(t.copy()) == t

    @given(stacks_with_ranks)
    def test_insert_order_irrelevant(self, samples):
        fwd = build_tree(samples)
        rev = build_tree(list(reversed(samples)))
        assert fwd == rev

    @given(stacks_with_ranks)
    def test_rank_preservation(self, samples):
        t = build_tree(samples)
        assert t.all_ranks == {r for _, r in samples}

    @given(stacks_with_ranks)
    def test_wire_roundtrip(self, samples):
        t = build_tree(samples)
        assert PrefixTree.from_dict(
            json.loads(json.dumps(t.to_dict()))) == t

    @given(st.lists(stacks_with_ranks, min_size=1, max_size=5))
    @settings(max_examples=50)
    def test_tbon_reduction_lossless(self, parts):
        """Merging partial trees in any grouping equals one big tree."""
        flat = [s for part in parts for s in part]
        assert merge_trees(build_tree(p) for p in parts) == build_tree(flat)


# -- ICCL topology invariants ----------------------------------------------------

class TestTopologyProperties:
    @given(st.integers(min_value=1, max_value=300),
           st.sampled_from(["flat", "binomial", "kary"]))
    def test_tree_is_spanning(self, n, kind):
        t = TreeTopology.make(n, kind)
        reached = set(t.subtree(0))
        assert reached == set(range(n))

    @given(st.integers(min_value=1, max_value=300),
           st.sampled_from(["flat", "binomial", "kary"]))
    def test_parent_child_consistency(self, n, kind):
        t = TreeTopology.make(n, kind)
        for rank in range(n):
            for c in t.children[rank]:
                assert t.parent[c] == rank
        assert t.parent[0] is None

    @given(st.integers(min_value=2, max_value=1024))
    def test_binomial_depth_bound(self, n):
        import math
        assert TreeTopology.binomial(n).depth() <= math.ceil(math.log2(n))

    @given(st.integers(min_value=1, max_value=64))
    def test_tbon_jsonable_roundtrip(self, n):
        t = TBONTopology.one_deep(n)
        assert TBONTopology.from_jsonable(
            json.loads(json.dumps(t.to_jsonable()))) == t


# -- TBON topology construction invariants -----------------------------------


class TestTBONTopologyProperties:
    """Balanced fan-out trees must satisfy the structural invariants the
    constructor validates, at every (n_backends, fanout) combination."""

    sizes = st.integers(min_value=1, max_value=400)
    fanouts = st.integers(min_value=2, max_value=32)

    @given(sizes, fanouts)
    def test_balanced_has_exactly_n_backends(self, n, fanout):
        t = TBONTopology.balanced(n, fanout)
        assert len(t.backends()) == n
        assert t.size == 1 + len(t.comm_positions()) + n

    @given(sizes, fanouts)
    def test_balanced_roundtrips_through_wire_form(self, n, fanout):
        t = TBONTopology.balanced(n, fanout)
        assert TBONTopology.from_jsonable(
            json.loads(json.dumps(t.to_jsonable()))) == t

    @given(sizes, fanouts)
    def test_balanced_parent_kind_invariants(self, n, fanout):
        """Re-validating the constructed tuples exercises every
        __post_init__ rule: root position, parent bounds, leaves are BEs,
        internals are fe/comm."""
        t = TBONTopology.balanced(n, fanout)
        assert TBONTopology(t.parent, t.kind) == t
        assert t.parent[0] is None and t.kind[0] == "fe"
        for p in range(1, t.size):
            assert 0 <= t.parent[p] < t.size and t.parent[p] != p
        for be in t.backends():
            assert not t.children(be)
        for comm in t.comm_positions():
            assert t.children(comm)

    @given(sizes, fanouts)
    def test_balanced_respects_fanout_and_depth(self, n, fanout):
        t = TBONTopology.balanced(n, fanout)
        # comm layer: each comm daemon serves at most fanout back ends,
        # and the whole tree is at most two levels deep
        for comm in t.comm_positions():
            assert len(t.children(comm)) <= fanout
        assert t.depth() <= 2

    @given(sizes, fanouts)
    def test_balanced_is_spanning(self, n, fanout):
        """Every position walks parent links back to the root (no cycles,
        no orphans)."""
        t = TBONTopology.balanced(n, fanout)
        for p in range(t.size):
            hops, q = 0, p
            while t.parent[q] is not None:
                q = t.parent[q]
                hops += 1
                assert hops <= t.size
            assert q == 0

    @given(sizes, fanouts, st.data())
    @settings(max_examples=60)
    def test_mutations_fail_validation(self, n, fanout, data):
        """Random structural corruption is rejected by __post_init__."""
        from repro.tbon.topology import TopologyError

        t = TBONTopology.balanced(n, fanout)
        mutation = data.draw(st.sampled_from(
            ["self-parent", "rootless", "be-internal", "comm-leaf"]))
        parent, kind = list(t.parent), list(t.kind)
        if mutation == "self-parent":
            pos = data.draw(st.integers(min_value=1, max_value=t.size - 1))
            parent[pos] = pos
        elif mutation == "rootless":
            parent[0] = 0
        elif mutation == "be-internal":
            be = data.draw(st.sampled_from(t.backends()))
            kind[be] = "comm"  # a leaf that is not a back end
        elif mutation == "comm-leaf":
            # point every backend at the root: comm daemons become leaves
            comms = t.comm_positions()
            if not comms:
                return  # one-deep shape: nothing to orphan
            for be in t.backends():
                parent[be] = 0
        with pytest.raises(TopologyError):
            TBONTopology(tuple(parent), tuple(kind))


# -- DES determinism ----------------------------------------------------------------

class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False), min_size=1, max_size=20))
    def test_clock_monotone(self, delays):
        sim = Simulator()
        observed = []

        def p(sim, d):
            yield sim.timeout(d)
            observed.append(sim.now)

        for d in delays:
            sim.process(p(sim, d))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)

    @given(st.integers(min_value=0, max_value=2 ** 31), st.text(min_size=1,
                                                                max_size=8))
    def test_rng_streams_reproducible(self, seed, name):
        a = SeededRNG(seed).child(name)
        b = SeededRNG(seed).child(name)
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)]
