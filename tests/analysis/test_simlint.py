"""simlint: every rule fires on its bad fixture, stays quiet on the tree."""

import json
from pathlib import Path

import pytest

from repro.analysis.simlint import (HOT_PATH_MODULES, RULES, Finding,
                                    lint_file, lint_paths, lint_source, main)

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


def rules_fired(findings):
    return sorted({f.rule for f in findings})


class TestFixturesFire:
    """Each bad fixture produces exactly its rule's findings."""

    def test_wall_clock(self):
        findings = lint_file(FIXTURES / "bad_wall_clock.py")
        assert rules_fired(findings) == ["wall-clock"]
        assert len(findings) == 3
        assert "sim.now" in findings[0].message

    def test_unseeded_random(self):
        findings = lint_file(FIXTURES / "bad_unseeded_random.py")
        assert rules_fired(findings) == ["unseeded-random"]
        # random.random(), randint() and the seedless random.Random();
        # random.Random(42) stays quiet
        assert len(findings) == 3

    def test_linear_scan_needs_hot_flag(self):
        path = FIXTURES / "bad_linear_scan.py"
        # not a registered hot-path module: the rule is scoped off
        assert lint_file(path) == []
        findings = lint_file(path, hot=True)
        assert rules_fired(findings) == ["linear-scan"]
        # .remove / .pop(0) / .insert(0, ...); plain .pop() and the
        # explicit set.remove(...) are exempt
        assert len(findings) == 3

    def test_sweep_pickle(self):
        findings = lint_file(FIXTURES / "bad_sweep_pickle.py")
        assert rules_fired(findings) == ["sweep-pickle"]
        assert len(findings) == 2
        assert any("lambda" in f.message for f in findings)
        assert any("nested def" in f.message for f in findings)

    def test_blocking_io(self):
        findings = lint_file(FIXTURES / "bad_blocking_io.py")
        assert rules_fired(findings) == ["blocking-io"]
        # sleep/open/subprocess inside the generator body only; the
        # plain helper and the non-generator outer stay quiet
        assert len(findings) == 3

    def test_agg_leaves_needs_agg_aware_flag(self):
        path = FIXTURES / "bad_agg_leaves.py"
        # not a registered hybrid hot-path module: the rule is scoped off
        assert lint_file(path) == []
        findings = lint_file(path, agg_aware=True)
        assert rules_fired(findings) == ["agg-leaves"]
        # .backends() and .live_backends() fire; the allowed site and the
        # aggregate-aware leaves()/live_leaves() stay quiet
        assert len(findings) == 2
        assert all("leaves()" in f.message for f in findings)

    def test_suppressions_silence_everything(self):
        assert lint_file(FIXTURES / "good_suppressed.py", hot=True) == []


class TestRuleMechanics:
    def test_alias_resolution_sees_through_import_as(self):
        findings = lint_source(
            "import time as t\n"
            "from time import monotonic as mono\n"
            "def f():\n"
            "    return t.time() + mono()\n")
        assert len(findings) == 2
        assert all(f.rule == "wall-clock" for f in findings)

    def test_selective_suppression_leaves_other_rules_armed(self):
        findings = lint_source(
            "import time, random\n"
            "def f():\n"
            "    return time.time() + random.random()"
            "  # simlint: allow[wall-clock]\n")
        assert rules_fired(findings) == ["unseeded-random"]

    def test_nested_generator_does_not_taint_outer_scope(self):
        findings = lint_source(
            "def outer(sim, path):\n"
            "    def inner():\n"
            "        yield sim.timeout(1)\n"
            "    return open(path).read(), inner\n")
        assert findings == []

    def test_syntax_error_becomes_a_finding(self):
        findings = lint_source("def broken(:\n", path="x.py")
        assert len(findings) == 1
        assert findings[0].rule == "syntax"

    def test_hot_path_registry_suffix_matches(self):
        src = "def f(xs, x):\n    xs.remove(x)\n"
        hot = lint_source(src, path="/r/src/repro/simx/core.py")
        cold = lint_source(src, path="/r/src/repro/apps.py")
        assert rules_fired(hot) == ["linear-scan"] and cold == []
        assert any(p.endswith("simx/core.py") for p in HOT_PATH_MODULES)

    def test_finding_str_and_dict_round_trip(self):
        f = Finding(path="m.py", line=3, col=4, rule="wall-clock",
                    message="time.time() reads the wall clock")
        assert str(f).startswith("m.py:3:4: [wall-clock]")
        assert f.as_dict()["rule"] == "wall-clock"


class TestRealTree:
    def test_src_is_clean(self):
        findings = lint_paths([SRC])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_every_rule_has_a_description(self):
        assert set(RULES) == {"wall-clock", "unseeded-random",
                              "linear-scan", "sweep-pickle", "blocking-io",
                              "agg-leaves"}
        assert all(desc for desc in RULES.values())


class TestCLI:
    def test_exit_one_and_json_on_findings(self, tmp_path, capsys):
        out = tmp_path / "findings.json"
        rc = main([str(FIXTURES / "bad_wall_clock.py"),
                   "--json", str(out)])
        assert rc == 1
        payload = json.loads(out.read_text())
        assert payload["ok"] is False
        assert len(payload["findings"]) == 3
        assert "3 finding(s)" in capsys.readouterr().out

    def test_exit_zero_on_clean_file(self, capsys):
        rc = main([str(FIXTURES / "good_suppressed.py")])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_hot_flag_extends_registry(self):
        rc = main([str(FIXTURES / "bad_linear_scan.py"),
                   "--hot", "fixtures/bad_linear_scan.py"])
        assert rc == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out
