"""simlint fixture: unpicklable map_grid point functions (2 findings)."""

from repro.experiments.sweep import map_grid


def module_level_point(n):
    return {"n": n}


def run_bad_sweeps(grid):
    def nested_point(n):
        return {"n": n * 2}

    rows = map_grid(lambda n: {"n": n}, grid, jobs=4)
    rows += map_grid(nested_point, grid, jobs=4)
    return rows


def run_good_sweep(grid):
    return map_grid(module_level_point, grid, jobs=4)
