"""simlint fixture: O(N) scans/shifts; lint with hot=True (3 findings)."""


class Queue:
    def __init__(self):
        self.waiters = []

    def cancel(self, proc):
        self.waiters.remove(proc)

    def take(self):
        return self.waiters.pop(0)

    def push_front(self, proc):
        self.waiters.insert(0, proc)

    def take_last(self):
        return self.waiters.pop()  # pop() from the end is O(1): allowed


def drop(names, name):
    set.remove(names, name)  # explicit set class: O(1), exempt
