"""Fixture: simulated-only leaf iteration in a hybrid hot-path module."""


def flood(topo, overlay):
    for pos in topo.backends():  # fires: drops aggregate spans
        print(pos)
    n = len(overlay.live_backends())  # fires: simulated-only count
    allowed = topo.backends()  # simlint: allow[agg-leaves] -- placement only
    ok = topo.leaves()  # aggregate-aware accessor: quiet
    also_ok = overlay.live_leaves()  # quiet
    return n, allowed, ok, also_ok
