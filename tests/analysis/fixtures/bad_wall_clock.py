"""simlint fixture: wall-clock reads in simulated code (3 findings)."""

import time
from time import perf_counter as pc

import repro  # noqa: F401  -- looks like simulator-driven code


def phase_cost():
    t0 = time.time()
    t1 = pc()
    return time.monotonic() - t1 - t0
