"""simlint fixture: blocking I/O inside simx process bodies (3 findings)."""

import subprocess
import time


def daemon_body(sim, path):
    time.sleep(0.1)
    with open(path) as fh:  # noqa: SIM115
        fh.read()
    subprocess.run(["hostname"])
    yield sim.timeout(1.0)


def plain_helper(path):
    # not a generator: blocking calls are fine in harness code
    with open(path) as fh:
        return fh.read()


def outer_with_nested_generator(path):
    def inner(sim):
        yield sim.timeout(1.0)

    # the *outer* function is no generator; open() here is fine
    return open(path).read(), inner
