"""simlint fixture: global / unseeded RNG draws (3 findings)."""

import random
from random import randint


def jitter():
    base = random.random()
    extra = randint(0, 3)
    rng = random.Random()  # unseeded: OS entropy, non-reproducible
    return base + extra + rng.random()


def seeded_is_fine():
    rng = random.Random(42)  # explicit seed: allowed
    return rng.random()
