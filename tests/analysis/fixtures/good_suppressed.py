"""simlint fixture: every hazard carries an allow comment (0 findings)."""

import time


def measured_harness():
    t0 = time.perf_counter()  # simlint: allow[wall-clock] -- harness timing
    return time.perf_counter() - t0  # simlint: allow[wall-clock]


def checkpointing_daemon(sim, state, path):
    time.sleep(0)  # simlint: allow
    yield sim.timeout(1.0)


class Registry:
    def __init__(self):
        self.entries = []

    def withdraw(self, entry):
        self.entries.remove(entry)  # simlint: allow[linear-scan] -- cold path
