"""scalecheck: decision logic on synthetic fits, plus the planted-fault
end-to-end proof that a reintroduced O(N^2) term fails the check."""

import json

import pytest

import repro.tbon.overlay as overlay_mod
import repro.tbon.startup as startup_mod
from repro.analysis.fitting import fit_metric_exponents
from repro.analysis.ladders import LADDERS
from repro.analysis.scalecheck import (DEFAULT_TOLERANCES, MIN_SIGNAL,
                                       TAIL_RATIO_LIMIT, compare_to_baseline,
                                       load_baseline, main, metric_kind,
                                       run_check, write_baseline)

SCALES = (64, 256, 1024)


def synth_samples(metric_values):
    """[(n, {metric: value})] from {metric: {n: value}}."""
    return [(n, {name: values[n] for name, values in metric_values.items()
                 if n in values})
            for n in sorted({n for v in metric_values.values() for n in v})]


def synth_baseline(metric_values, tolerances=None):
    """A baseline dict as write_baseline would record for these samples."""
    samples = synth_samples(metric_values)
    fits = fit_metric_exponents(samples)
    return {
        "experiment": "synth",
        "scales": [n for n, _ in samples],
        "tolerances": dict(tolerances or DEFAULT_TOLERANCES),
        "tail_ratio_limit": TAIL_RATIO_LIMIT,
        "metrics": {
            name: {"kind": metric_kind(name), **fit.as_dict(),
                   "values": {str(n): metric_values[name][n]
                              for n in sorted(metric_values[name])}}
            for name, fit in fits.items()},
    }


def judge(baseline_values, fresh_values, **kw):
    samples = synth_samples(fresh_values)
    fits = fit_metric_exponents(samples)
    return compare_to_baseline("synth", samples, fits,
                               synth_baseline(baseline_values), **kw)


LINEAR = {n: 1e-3 * n for n in SCALES}
QUADRATIC = {n: 1e-3 * n * (n / SCALES[0]) for n in SCALES}


class TestMetricKind:
    def test_kinds(self):
        assert metric_kind("wall_s") == "wall"
        assert metric_kind("sim_events") == "count"
        assert metric_kind("t_spawn") == "virtual"
        assert metric_kind("virtual_total") == "virtual"


class TestCompareToBaseline:
    def test_identical_run_is_clean(self):
        values = {"t_spawn": LINEAR, "sim_events": {n: 50.0 * n
                                                    for n in SCALES}}
        regressions, notes = judge(values, values)
        assert regressions == [] and notes == []

    def test_virtual_exponent_shift_beyond_tolerance_fails(self):
        regressions, _ = judge({"t_spawn": LINEAR},
                               {"t_spawn": QUADRATIC})
        assert len(regressions) == 1
        reg = regressions[0]
        assert (reg.metric, reg.kind, reg.check) == \
            ("t_spawn", "virtual", "exponent")
        assert reg.fitted == pytest.approx(2.0)
        assert reg.limit == pytest.approx(1.0 + 0.1)

    def test_shift_inside_tolerance_passes(self):
        drift = {n: v * (n / SCALES[-1]) ** 0.05 for n, v in LINEAR.items()}
        regressions, _ = judge({"t_spawn": LINEAR}, {"t_spawn": drift})
        assert regressions == []

    def test_uniformly_slower_host_passes_wall_checks(self):
        wall = {n: 0.2 * LINEAR[n] ** 0.5 for n in SCALES}
        slower = {n: 2.5 * v for n, v in wall.items()}
        regressions, _ = judge({"wall_s": wall}, {"wall_s": slower})
        assert regressions == []  # same exponent, flat fresh/base ratio

    def test_scale_dependent_slowdown_trips_tail_ratio(self):
        wall = {64: 0.1, 256: 0.4, 1024: 1.6}
        tail_heavy = {64: 0.1, 256: 0.6, 1024: 4.8}  # top 3x, bottom 1x
        regressions, _ = judge({"wall_s": wall}, {"wall_s": tail_heavy})
        checks = {r.check for r in regressions}
        assert "tail-ratio" in checks
        tail = next(r for r in regressions if r.check == "tail-ratio")
        assert tail.fitted == pytest.approx(3.0)
        assert tail.limit == TAIL_RATIO_LIMIT

    def test_signal_floor_skips_noise_metrics(self):
        tiny = {n: 0.0001 * (n / 64.0) ** 2 for n in SCALES}  # max 0.026s
        assert max(tiny.values()) < MIN_SIGNAL["wall"]
        regressions, notes = judge({"wall_s": {n: 0.01 for n in SCALES}},
                                   {"wall_s": tiny})
        assert regressions == []
        assert any("signal floor" in n for n in notes)

    def test_baseline_metric_without_fresh_fit_noted(self):
        regressions, notes = judge({"t_spawn": LINEAR,
                                    "t_repair": {n: 0.5 for n in SCALES}},
                                   {"t_spawn": LINEAR,
                                    "t_repair": {n: 0.0 for n in SCALES}})
        assert regressions == []
        assert any("t_repair" in n and "not judged" in n for n in notes)

    def test_new_metric_noted_not_judged(self):
        regressions, notes = judge({"t_spawn": LINEAR},
                                   {"t_spawn": LINEAR,
                                    "t_new": QUADRATIC})
        assert regressions == []
        assert any("new metric 't_new'" in n for n in notes)

    def test_disjoint_ladder_skips_tail_ratio_with_note(self):
        wall = {n: 0.2 * n / 64 for n in SCALES}
        shifted = {n * 2: v for n, v in wall.items()}
        regressions, notes = judge({"wall_s": wall}, {"wall_s": shifted})
        assert all(r.check != "tail-ratio" for r in regressions)
        assert any("tail-ratio check skipped" in n for n in notes)

    def test_tolerance_override_tightens_the_check(self):
        drift = {n: v * (n / 64.0) ** 0.08 for n, v in LINEAR.items()}
        clean, _ = judge({"t_spawn": LINEAR}, {"t_spawn": drift})
        strict, _ = judge({"t_spawn": LINEAR}, {"t_spawn": drift},
                          tolerances={"virtual": 0.05})
        assert clean == [] and len(strict) == 1


class TestBaselines:
    def test_committed_baselines_exist_and_are_coherent(self):
        for name, ladder in LADDERS.items():
            baseline = load_baseline(name)
            assert baseline["experiment"] == name
            assert tuple(baseline["scales"]) == ladder.quick_scales
            metrics = baseline["metrics"]
            assert "wall_s" in metrics and "sim_events" in metrics
            for metric, spec in metrics.items():
                assert spec["kind"] == metric_kind(metric)
                assert spec["n_points"] >= 2
                assert set(spec["values"]) == \
                    {str(n) for n in baseline["scales"]}

    def test_missing_baseline_names_the_fix(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--write-baselines"):
            load_baseline("fig6", baseline_dir=tmp_path)

    def test_write_then_check_round_trips(self, tmp_path):
        write_baseline("str", scales=(16, 64), baseline_dir=tmp_path)
        result = run_check("str", baseline_dir=tmp_path)
        assert result.scales == (16, 64)  # follows the baseline's ladder
        assert result.ok, [str(r) for r in result.regressions]
        d = result.as_dict()
        assert d["ok"] and d["experiment"] == "str"
        assert set(d["fits"]) == set(d["baseline_exponents"])


class TestEndToEnd:
    def test_current_tree_passes_against_committed_baseline(self):
        result = run_check("str", jobs=1, repeats=2)
        assert result.ok, [str(r) for r in result.regressions]
        # deterministic kinds reproduce their committed exponents exactly
        base = result.baseline["metrics"]
        for name, fit in result.fits.items():
            if metric_kind(name) != "wall" and name in base:
                assert fit.exponent == pytest.approx(
                    base[name]["exponent"], abs=1e-9), name

    def test_planted_quadratic_regression_is_detected(self, monkeypatch):
        # revert both PR-5 scalability fixes behind their test-only
        # hazard switches: per-daemon wire re-parsing (O(N) work x N
        # daemons) and the children_of cache (O(N) scan per lookup)
        monkeypatch.setattr(startup_mod, "REVERT_SHARED_PARSE", True)
        monkeypatch.setattr(overlay_mod, "REVERT_CHILDREN_CACHE", True)
        result = run_check("fig6", scales=(256, 1024), jobs=1, repeats=2)
        assert not result.ok
        walls = [r for r in result.regressions if r.metric == "wall_s"]
        assert walls, "the planted fault must surface in wall time"
        # the fault is wall-clock-only: virtual timings and event counts
        # are untouched, which is exactly why scalecheck fits wall_s too
        assert all(r.kind == "wall" for r in result.regressions)


class TestCLI:
    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["nope"])
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        rc = main(["str", "--baseline-dir", str(tmp_path)])
        assert rc == 2
        assert "--write-baselines" in capsys.readouterr().err

    def test_write_check_and_json_report(self, tmp_path, capsys):
        rc = main(["str", "--scales", "16,64",
                   "--write-baselines", "--baseline-dir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "str.json").exists()
        report = tmp_path / "report.json"
        rc = main(["str", "--baseline-dir", str(tmp_path),
                   "--json", str(report)])
        assert rc == 0
        payload = json.loads(report.read_text())
        assert payload["ok"] is True
        assert payload["experiments"]["str"]["scales"] == [16, 64]
        assert "scalecheck str" in capsys.readouterr().out

    def test_quick_conflicts_with_full(self, capsys):
        with pytest.raises(SystemExit):
            main(["--quick", "--full"])
