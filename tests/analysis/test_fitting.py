"""fit_power / fit_metric_exponents: the log-log regression layer."""

import math

import pytest

from repro.analysis.fitting import PowerFit, fit_metric_exponents, fit_power


class TestFitPower:
    def test_recovers_exact_power_law(self):
        ns = [64, 256, 1024, 4096]
        fit = fit_power(ns, [3.0 * n ** 2 for n in ns])
        assert fit.exponent == pytest.approx(2.0)
        assert fit.coeff == pytest.approx(3.0)
        assert fit.r2 == pytest.approx(1.0)
        assert fit.n_points == 4

    def test_recovers_linear_and_sublinear(self):
        ns = [16, 64, 256]
        assert fit_power(ns, [0.5 * n for n in ns]).exponent == \
            pytest.approx(1.0)
        assert fit_power(ns, [math.sqrt(n) for n in ns]).exponent == \
            pytest.approx(0.5)

    def test_constant_metric_fits_zero_exponent(self):
        fit = fit_power([16, 64, 256], [7.0, 7.0, 7.0])
        assert fit.exponent == pytest.approx(0.0)
        assert fit.coeff == pytest.approx(7.0)

    def test_predict_round_trips(self):
        ns = [256, 1024, 4096]
        fit = fit_power(ns, [1e-4 * n ** 1.5 for n in ns])
        assert fit.predict(16384) == pytest.approx(1e-4 * 16384 ** 1.5,
                                                   rel=1e-6)

    def test_noise_lowers_r2_not_much_the_exponent(self):
        ns = [64, 256, 1024, 4096]
        wobble = [1.07, 0.95, 1.04, 0.98]  # +-7% host noise
        fit = fit_power(ns, [w * 2e-5 * n for w, n in zip(wobble, ns)])
        assert fit.exponent == pytest.approx(1.0, abs=0.05)
        assert 0.99 < fit.r2 < 1.0

    def test_drops_non_positive_pairs(self):
        fit = fit_power([0, 64, 256, 1024], [5.0, 64.0, 256.0, 0.0])
        assert fit.n_points == 2
        assert fit.exponent == pytest.approx(1.0)

    def test_too_few_positive_points_raises(self):
        with pytest.raises(ValueError, match="2 positive"):
            fit_power([64, 256], [1.0, 0.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            fit_power([64, 256], [1.0])

    def test_identical_scales_raise(self):
        with pytest.raises(ValueError, match="identical"):
            fit_power([64, 64], [1.0, 2.0])

    def test_as_dict(self):
        d = fit_power([2, 4], [2.0, 4.0]).as_dict()
        assert set(d) == {"coeff", "exponent", "r2", "n_points"}


class TestFitMetricExponents:
    def test_one_fit_per_metric(self):
        samples = [(n, {"t_spawn": 1e-3 * n, "sim_events": 40.0 * n,
                        "t_flat": 2.5})
                   for n in (64, 256, 1024)]
        fits = fit_metric_exponents(samples)
        assert set(fits) == {"t_spawn", "sim_events", "t_flat"}
        assert fits["t_spawn"].exponent == pytest.approx(1.0)
        assert fits["t_flat"].exponent == pytest.approx(0.0)
        assert all(isinstance(f, PowerFit) for f in fits.values())

    def test_inactive_phase_is_omitted(self):
        samples = [(n, {"t_spawn": 1e-3 * n, "t_repair": 0.0})
                   for n in (64, 256, 1024)]
        fits = fit_metric_exponents(samples)
        assert "t_repair" not in fits  # all-zero: no growth information
        assert "t_spawn" in fits

    def test_metric_missing_at_some_scales_uses_what_exists(self):
        samples = [(64, {"a": 64.0}), (256, {"a": 256.0, "b": 1.0}),
                   (1024, {"a": 1024.0, "b": 4.0})]
        fits = fit_metric_exponents(samples)
        assert fits["a"].n_points == 3
        assert fits["b"].n_points == 2
        assert fits["b"].exponent == pytest.approx(1.0)
