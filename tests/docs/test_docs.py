"""docs/ is the canonical reference: links must resolve, examples must run."""

import doctest
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "scripts"))

import check_doc_links  # noqa: E402

PAGES = sorted((ROOT / "docs").rglob("*.md"))


def test_docs_tree_exists():
    names = {p.name for p in PAGES}
    assert {"architecture.md", "experiments.md", "failure-modes.md",
            "performance.md", "analysis.md"} <= names


def test_no_broken_internal_links():
    failures = []
    for page in [ROOT / "README.md", *PAGES]:
        failures.extend(check_doc_links.broken_links(page))
    assert not failures, failures


def test_fenced_examples_run():
    for page in PAGES:
        result = doctest.testfile(
            str(page), module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE)
        assert result.failed == 0, f"{page.name}: {result.failed} failures"


class TestAnchorValidation:
    def test_github_slugs(self):
        slug = check_doc_links.github_slug
        assert slug("Profiling how-to") == "profiling-how-to"
        assert slug("The `xl` tier and the parallel sweep engine") == \
            "the-xl-tier-and-the-parallel-sweep-engine"
        assert slug("Kernel design: the same-time fast lane") == \
            "kernel-design-the-same-time-fast-lane"

    def test_duplicate_headings_get_numbered_anchors(self, tmp_path):
        page = tmp_path / "dup.md"
        page.write_text("# Setup\n\n## Running it\nx\n## Running it\ny\n")
        anchors = check_doc_links.page_anchors(page.resolve())
        assert {"setup", "running-it", "running-it-1"} <= anchors

    def test_in_page_anchor_checked(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("# Alpha Beta\n\nsee [above](#alpha-beta) "
                        "and [nowhere](#gamma)\n")
        failures = check_doc_links.broken_links(page)
        assert len(failures) == 1
        assert "#gamma" in failures[0]

    def test_cross_page_anchor_checked(self, tmp_path):
        (tmp_path / "target.md").write_text("## Known Section\n")
        page = tmp_path / "page.md"
        page.write_text("[ok](target.md#known-section) "
                        "[bad](target.md#missing-section)\n")
        failures = check_doc_links.broken_links(page)
        assert len(failures) == 1
        assert "missing-section" in failures[0]

    def test_subdirectory_pages_are_checked_by_default(self, tmp_path,
                                                       monkeypatch,
                                                       capsys):
        # regression: the default page list used a top-level glob, so a
        # broken link inside docs/<subdir>/ never failed the build
        docs = tmp_path / "docs"
        (docs / "sub").mkdir(parents=True)
        (tmp_path / "README.md").write_text("hello\n")
        (docs / "sub" / "deep.md").write_text("[gone](missing.md)\n")
        monkeypatch.setattr(check_doc_links, "__file__",
                            str(tmp_path / "scripts" / "check.py"))
        rc = check_doc_links.main([])
        assert rc == 1
        assert "missing.md" in capsys.readouterr().err

    def test_code_fences_are_ignored(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("# T\n\n```md\n[fake](nope.md)\n```\n")
        assert check_doc_links.broken_links(page) == []
