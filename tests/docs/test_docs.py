"""docs/ is the canonical reference: links must resolve, examples must run."""

import doctest
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "scripts"))

import check_doc_links  # noqa: E402

PAGES = sorted((ROOT / "docs").glob("*.md"))


def test_docs_tree_exists():
    names = {p.name for p in PAGES}
    assert {"architecture.md", "experiments.md",
            "failure-modes.md"} <= names


def test_no_broken_internal_links():
    failures = []
    for page in [ROOT / "README.md", *PAGES]:
        failures.extend(check_doc_links.broken_links(page))
    assert not failures, failures


def test_fenced_examples_run():
    for page in PAGES:
        result = doctest.testfile(
            str(page), module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE)
        assert result.failed == 0, f"{page.name}: {result.failed} failures"
