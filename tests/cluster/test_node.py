"""Tests for Node: fork/exec, process table limits, rsh service."""

import pytest

from repro.cluster import Cluster, ClusterSpec, ForkError, Node, RemoteExecError
from repro.cluster.process import ProcState
from repro.simx import Simulator
from tests.conftest import run_gen


class TestForkExec:
    def test_fork_creates_live_process(self, sim):
        node = Node(sim, "n0")
        proc = run_gen(sim, node.fork_exec("daemon"))
        assert proc.alive
        assert proc.executable == "daemon"
        assert proc.pid in node.procs
        assert proc.host == "n0"

    def test_fork_costs_time(self, sim):
        node = Node(sim, "n0")
        run_gen(sim, node.fork_exec("daemon"))
        assert sim.now > 0.0

    def test_pids_unique_and_increasing(self, sim):
        node = Node(sim, "n0")
        p1 = run_gen(sim, node.fork_exec("a"))
        p2 = run_gen(sim, node.fork_exec("b"))
        assert p2.pid > p1.pid

    def test_parent_child_links(self, sim):
        node = Node(sim, "n0")
        parent = run_gen(sim, node.fork_exec("srun"))
        child = run_gen(sim, node.fork_exec("task", parent=parent))
        assert child.parent is parent
        assert child in parent.children

    def test_fork_limit_raises_eagain(self, sim):
        node = Node(sim, "n0", max_user_procs=3)
        for _ in range(3):
            run_gen(sim, node.fork_exec("d"))
        with pytest.raises(ForkError, match="process limit"):
            run_gen(sim, node.fork_exec("d"))

    def test_fork_limit_is_per_uid(self, sim):
        node = Node(sim, "n0", max_user_procs=2)
        run_gen(sim, node.fork_exec("d", uid="alice"))
        run_gen(sim, node.fork_exec("d", uid="alice"))
        # bob still has room
        proc = run_gen(sim, node.fork_exec("d", uid="bob"))
        assert proc.alive

    def test_exit_frees_slot(self, sim):
        node = Node(sim, "n0", max_user_procs=1)
        p = run_gen(sim, node.fork_exec("d"))
        p.exit(0)
        assert node.user_proc_count() == 0
        p2 = run_gen(sim, node.fork_exec("d"))
        assert p2.alive

    def test_processes_of_prefix_filter(self, sim):
        node = Node(sim, "n0")
        run_gen(sim, node.fork_exec("statd"))
        run_gen(sim, node.fork_exec("statd"))
        run_gen(sim, node.fork_exec("app"))
        assert len(node.processes_of("statd")) == 2
        assert len(node.processes_of()) == 3


class TestProcessLifecycle:
    def test_exit_sets_code_and_event(self, sim):
        node = Node(sim, "n0")
        p = run_gen(sim, node.fork_exec("d"))
        p.exit(3)
        sim.run()
        assert p.exit_code == 3
        assert p.exit_event.value == 3
        assert not p.alive

    def test_double_exit_is_noop(self, sim):
        node = Node(sim, "n0")
        p = run_gen(sim, node.fork_exec("d"))
        p.exit(0)
        p.exit(1)
        sim.run()
        assert p.exit_code == 0

    def test_stop_resume_states(self, sim):
        node = Node(sim, "n0")
        p = run_gen(sim, node.fork_exec("d"))
        p.stop()
        assert p.state is ProcState.STOPPED
        p.resume()
        assert p.state is ProcState.RUNNING

    def test_wait_resumed_triggers_on_resume(self, sim):
        node = Node(sim, "n0")
        p = run_gen(sim, node.fork_exec("d"))
        p.stop()
        log = []

        def waiter(sim):
            yield p.wait_resumed()
            log.append(sim.now)

        def resumer(sim):
            yield sim.timeout(2)
            p.resume()

        sim.process(waiter(sim))
        sim.process(resumer(sim))
        sim.run()
        assert log and log[0] >= 2.0

    def test_wait_resumed_immediate_if_running(self, sim):
        node = Node(sim, "n0")
        p = run_gen(sim, node.fork_exec("d"))
        ev = p.wait_resumed()
        assert ev.triggered

    def test_account_cpu(self, sim):
        node = Node(sim, "n0")
        p = run_gen(sim, node.fork_exec("d"))
        p.account_cpu(user=1.5, system=0.25)
        assert p.stats.utime == 1.5
        assert p.stats.stime == 0.25


class TestRsh:
    def test_rsh_spawn_remote_process(self, sim):
        src = Node(sim, "fe")
        dst = Node(sim, "c0")
        client, remote = run_gen(sim, src.rsh_spawn(dst, "daemon"))
        assert remote.node is dst
        assert remote.alive
        assert client is not None and client.node is src

    def test_rsh_cost_dominated_by_connect(self, sim):
        src = Node(sim, "fe")
        dst = Node(sim, "c0")
        run_gen(sim, src.rsh_spawn(dst, "daemon"))
        # rsh_connect default is 0.225s; total must be in that ballpark
        assert 0.15 < sim.now < 0.35

    def test_rsh_refused_without_rshd(self, sim):
        src = Node(sim, "fe")
        dst = Node(sim, "c0", rshd_enabled=False)
        with pytest.raises(RemoteExecError, match="refused"):
            run_gen(sim, src.rsh_spawn(dst, "daemon"))

    def test_rsh_hold_client_pins_slot(self, sim):
        src = Node(sim, "fe", max_user_procs=2)
        d1 = Node(sim, "c0")
        d2 = Node(sim, "c1")
        run_gen(sim, src.rsh_spawn(d1, "daemon", hold_client=True))
        run_gen(sim, src.rsh_spawn(d2, "daemon", hold_client=True))
        assert src.user_proc_count() == 2
        d3 = Node(sim, "c2")
        with pytest.raises(ForkError):
            run_gen(sim, src.rsh_spawn(d3, "daemon", hold_client=True))

    def test_rsh_release_client(self, sim):
        src = Node(sim, "fe", max_user_procs=1)
        dst = Node(sim, "c0")
        client, _ = run_gen(sim, src.rsh_spawn(dst, "d", hold_client=False))
        assert client is None
        assert src.user_proc_count() == 0
