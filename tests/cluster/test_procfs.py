"""Tests for the simulated /proc reading path."""

import pytest

from repro.cluster import Node
from repro.cluster.procfs import (
    SNAPSHOT_HEADER,
    ProcSnapshot,
    format_snapshot_line,
    read_snapshot,
)
from repro.cluster.process import ProcState
from tests.conftest import run_gen


@pytest.fixture
def task(sim):
    node = Node(sim, "c0")
    proc = run_gen(sim, node.fork_exec("app"))
    proc.stats.utime = 12.5
    proc.stats.stime = 0.75
    proc.stats.vm_hwm_kb = 200_000
    proc.stats.vm_rss_kb = 150_000
    proc.stats.vm_lck_kb = 4096
    proc.stats.maj_flt = 42
    proc.stats.num_threads = 3
    proc.stats.program_counter = 0x400abc
    return proc


class TestReadSnapshot:
    def test_fields_roundtrip(self, sim, task):
        snap = run_gen(sim, read_snapshot(task, rank=7))
        assert snap.rank == 7
        assert snap.hostname == "c0"
        assert snap.pid == task.pid
        assert snap.executable == "app"
        assert snap.state == "R"
        assert snap.utime == 12.5
        assert snap.stime == 0.75
        assert snap.vm_hwm_kb == 200_000
        assert snap.vm_lck_kb == 4096
        assert snap.maj_flt == 42
        assert snap.num_threads == 3

    def test_read_costs_time(self, sim, task):
        t0 = sim.now
        run_gen(sim, read_snapshot(task, rank=0))
        assert sim.now > t0

    def test_sleeping_state_letter(self, sim, task):
        task.state = ProcState.SLEEPING
        snap = run_gen(sim, read_snapshot(task, rank=0))
        assert snap.state == "S"

    def test_snapshot_is_frozen(self, sim, task):
        snap = run_gen(sim, read_snapshot(task, rank=0))
        with pytest.raises(Exception):
            snap.rank = 99


class TestFormatting:
    def test_line_contains_key_fields(self, sim, task):
        snap = run_gen(sim, read_snapshot(task, rank=3))
        line = format_snapshot_line(snap)
        assert " 3 " in f" {line} " or line.startswith("     3")
        assert "c0" in line
        assert "app" in line
        assert f"{task.pid}" in line

    def test_one_line_per_task(self, sim, task):
        snap = run_gen(sim, read_snapshot(task, rank=0))
        assert "\n" not in format_snapshot_line(snap)

    def test_header_matches_columns(self):
        assert "RANK" in SNAPSHOT_HEADER
        assert "MAJFLT" in SNAPSHOT_HEADER

    def test_to_tuple_width(self, sim, task):
        snap = run_gen(sim, read_snapshot(task, rank=0))
        assert len(snap.to_tuple()) == 13
