"""Tests for Network/Pipe timing and the shared-filesystem model."""

import pytest

from repro.cluster import Cluster, ClusterSpec, CostModel, Network, Node
from repro.cluster.network import message_size
from repro.cluster.cluster import SharedFilesystem
from repro.simx import SeededRNG, Simulator
from tests.conftest import run_gen


class TestMessageSize:
    def test_bytes(self):
        assert message_size(b"12345") == 5

    def test_str(self):
        assert message_size("abc") == 3

    def test_nested_list(self):
        assert message_size([b"ab", b"cd"]) == 16 + 4

    def test_wire_size_object(self):
        class M:
            def wire_size(self):
                return 123
        assert message_size(M()) == 123

    def test_opaque_default(self):
        assert message_size(object()) == 64


class TestNetwork:
    def test_connect_returns_duplex_pipe(self, sim, rng):
        net = Network(sim, rng=rng)
        a = Node(sim, "a")
        b = Node(sim, "b")
        pipe = run_gen(sim, net.connect(a, b))
        log = []

        def left(sim):
            pipe.a.send(b"ping")
            msg = yield pipe.a.recv()
            log.append(("a-got", msg))

        def right(sim):
            msg = yield pipe.b.recv()
            log.append(("b-got", msg))
            pipe.b.send(b"pong")

        sim.process(left(sim))
        sim.process(right(sim))
        sim.run()
        assert ("b-got", b"ping") in log
        assert ("a-got", b"pong") in log

    def test_connect_costs_handshake(self, sim, rng):
        costs = CostModel()
        net = Network(sim, costs, rng)
        a, b = Node(sim, "a"), Node(sim, "b")
        run_gen(sim, net.connect(a, b))
        assert sim.now >= 0.5 * costs.tcp_connect

    def test_transfer_time_scales_with_size(self, sim, rng):
        net = Network(sim, rng=rng)
        small = net.transfer_time(b"x" * 10)
        large = net.transfer_time(b"x" * 10_000_000)
        assert large > small * 10

    def test_larger_message_arrives_later(self, sim, rng):
        net = Network(sim, rng=rng)
        pipe = net.pipe("a", "b")
        arrivals = {}

        def sender(sim):
            pipe.a.send(b"x" * 1_000_000)
            yield sim.timeout(0)

        def receiver(sim):
            yield pipe.b.recv()
            arrivals["t"] = sim.now

        sim.process(sender(sim))
        sim.process(receiver(sim))
        sim.run()
        assert arrivals["t"] >= 1_000_000 / CostModel().net_bandwidth * 0.9


class TestSharedFilesystem:
    def test_single_load_cost(self, sim, rng):
        costs = CostModel()
        fs = SharedFilesystem(sim, costs, rng)
        run_gen(sim, fs.load_image(25.0))
        expected = costs.fs_open + 25 * 1024 * 1024 / costs.fs_bandwidth
        assert sim.now == pytest.approx(expected, rel=0.1)

    def test_zero_image_is_free(self, sim, rng):
        fs = SharedFilesystem(sim, CostModel(), rng)
        run_gen(sim, fs.load_image(0.0))
        assert sim.now == 0.0
        assert fs.loads == 0

    def test_concurrent_loads_serialize(self, sim, rng):
        """This is the binary-loading-storm model: N loads ~ N x one load."""
        costs = CostModel()
        fs = SharedFilesystem(sim, costs, rng)
        n = 8

        def loader(sim):
            yield from fs.load_image(25.0)

        procs = [sim.process(loader(sim)) for _ in range(n)]
        sim.run()
        one = costs.fs_open + 25 * 1024 * 1024 / costs.fs_bandwidth
        assert sim.now == pytest.approx(n * one, rel=0.15)
        assert fs.loads == n

    def test_multiple_servers_divide_time(self, sim, rng):
        costs = CostModel()
        fs = SharedFilesystem(sim, costs, rng, servers=4)
        n = 8

        def loader(sim):
            yield from fs.load_image(25.0)

        for _ in range(n):
            sim.process(loader(sim))
        sim.run()
        one = costs.fs_open + 25 * 1024 * 1024 / costs.fs_bandwidth
        assert sim.now == pytest.approx(n * one / 4, rel=0.2)


class TestClusterAssembly:
    def test_spec_shapes_cluster(self, sim):
        c = Cluster(sim, ClusterSpec(n_compute=12, fe_name="head"))
        assert len(c.compute) == 12
        assert c.front_end.name == "head"
        assert len(c.nodes) == 13

    def test_node_lookup(self, sim):
        c = Cluster(sim, ClusterSpec(n_compute=4))
        n = c.compute[2]
        assert c.node(n.name) is n
        assert c.node(c.front_end.name) is c.front_end

    def test_unknown_node_raises(self, sim):
        c = Cluster(sim, ClusterSpec(n_compute=2))
        with pytest.raises(KeyError):
            c.node("nope")

    def test_mpp_spec_disables_compute_rshd(self, sim):
        c = Cluster(sim, ClusterSpec(n_compute=4, compute_rshd=False))
        assert all(not n.rshd_enabled for n in c.compute)
        assert c.front_end.rshd_enabled

    def test_fe_proc_limit_from_spec(self, sim):
        c = Cluster(sim, ClusterSpec(n_compute=2, fe_max_user_procs=7))
        assert c.front_end.max_user_procs == 7
