"""Tests for Network/Pipe timing and the shared-filesystem model."""

import pytest

from repro.cluster import Cluster, ClusterSpec, CostModel, Network, Node
from repro.cluster.network import message_size
from repro.cluster.cluster import SharedFilesystem
from repro.simx import SeededRNG, Simulator
from tests.conftest import run_gen


class TestMessageSize:
    def test_bytes(self):
        assert message_size(b"12345") == 5

    def test_str(self):
        assert message_size("abc") == 3

    def test_nested_list(self):
        assert message_size([b"ab", b"cd"]) == 16 + 4

    def test_wire_size_object(self):
        class M:
            def wire_size(self):
                return 123
        assert message_size(M()) == 123

    def test_opaque_default(self):
        assert message_size(object()) == 64


class TestNetwork:
    def test_connect_returns_duplex_pipe(self, sim, rng):
        net = Network(sim, rng=rng)
        a = Node(sim, "a")
        b = Node(sim, "b")
        pipe = run_gen(sim, net.connect(a, b))
        log = []

        def left(sim):
            pipe.a.send(b"ping")
            msg = yield pipe.a.recv()
            log.append(("a-got", msg))

        def right(sim):
            msg = yield pipe.b.recv()
            log.append(("b-got", msg))
            pipe.b.send(b"pong")

        sim.process(left(sim))
        sim.process(right(sim))
        sim.run()
        assert ("b-got", b"ping") in log
        assert ("a-got", b"pong") in log

    def test_connect_costs_handshake(self, sim, rng):
        costs = CostModel()
        net = Network(sim, costs, rng)
        a, b = Node(sim, "a"), Node(sim, "b")
        run_gen(sim, net.connect(a, b))
        assert sim.now >= 0.5 * costs.tcp_connect

    def test_transfer_time_scales_with_size(self, sim, rng):
        net = Network(sim, rng=rng)
        small = net.transfer_time(b"x" * 10)
        large = net.transfer_time(b"x" * 10_000_000)
        assert large > small * 10

    def test_larger_message_arrives_later(self, sim, rng):
        net = Network(sim, rng=rng)
        pipe = net.pipe("a", "b")
        arrivals = {}

        def sender(sim):
            pipe.a.send(b"x" * 1_000_000)
            yield sim.timeout(0)

        def receiver(sim):
            yield pipe.b.recv()
            arrivals["t"] = sim.now

        sim.process(sender(sim))
        sim.process(receiver(sim))
        sim.run()
        assert arrivals["t"] >= 1_000_000 / CostModel().net_bandwidth * 0.9


class TestSharedFilesystem:
    def test_single_load_cost(self, sim, rng):
        costs = CostModel()
        fs = SharedFilesystem(sim, costs, rng)
        run_gen(sim, fs.load_image(25.0))
        expected = costs.fs_open + 25 * 1024 * 1024 / costs.fs_bandwidth
        assert sim.now == pytest.approx(expected, rel=0.1)

    def test_zero_image_is_free(self, sim, rng):
        fs = SharedFilesystem(sim, CostModel(), rng)
        run_gen(sim, fs.load_image(0.0))
        assert sim.now == 0.0
        assert fs.loads == 0

    def test_concurrent_loads_serialize(self, sim, rng):
        """This is the binary-loading-storm model: N loads ~ N x one load."""
        costs = CostModel()
        fs = SharedFilesystem(sim, costs, rng)
        n = 8

        def loader(sim):
            yield from fs.load_image(25.0)

        procs = [sim.process(loader(sim)) for _ in range(n)]
        sim.run()
        one = costs.fs_open + 25 * 1024 * 1024 / costs.fs_bandwidth
        assert sim.now == pytest.approx(n * one, rel=0.15)
        assert fs.loads == n

    def test_multiple_servers_divide_time(self, sim, rng):
        costs = CostModel()
        fs = SharedFilesystem(sim, costs, rng, servers=4)
        n = 8

        def loader(sim):
            yield from fs.load_image(25.0)

        for _ in range(n):
            sim.process(loader(sim))
        sim.run()
        one = costs.fs_open + 25 * 1024 * 1024 / costs.fs_bandwidth
        assert sim.now == pytest.approx(n * one / 4, rel=0.2)

    def test_interrupt_while_queued_releases_slot(self, sim, rng):
        """Regression: a loader killed while *queued* for a server slot must
        withdraw its request -- otherwise the granted-but-dead request
        wedges the filesystem for every later launch."""
        fs = SharedFilesystem(sim, CostModel(), rng)
        done = []

        def loader(tag):
            try:
                yield from fs.load_image(25.0)
            finally:
                done.append(tag)

        holder = sim.process(loader("holder"))
        queued = sim.process(loader("queued"))

        def killer(sim):
            yield sim.timeout(0.001)  # holder is serving, 'queued' waits
            queued.interrupt("daemon spawn aborted")

        sim.process(killer(sim))
        queued.defuse()
        sim.run()
        assert done == ["queued", "holder"]
        assert fs._servers.in_use == 0
        assert fs._servers.pending == 0
        # the aborted loader never consumed FS service
        assert fs.loads == 1

        # the slot is genuinely reusable: a later load completes normally
        t0 = sim.now
        after = sim.process(loader("after"))
        sim.run()
        assert after.ok and done[-1] == "after"
        assert sim.now > t0

    def test_interrupt_while_holding_slot_releases_it(self, sim, rng):
        """Regression: a loader killed mid-transfer releases its server."""
        fs = SharedFilesystem(sim, CostModel(), rng)

        def loader(sim):
            yield from fs.load_image(25.0)

        victim = sim.process(loader(sim))

        def killer(sim):
            yield sim.timeout(0.002)  # victim holds the slot, mid-read
            victim.interrupt("aborted")

        sim.process(killer(sim))
        victim.defuse()
        sim.run()
        assert fs._servers.in_use == 0
        survivor = sim.process(loader(sim))
        sim.run()
        assert survivor.ok


class TestStagingModes:
    def _fs(self, sim, rng, staging, servers=1):
        return SharedFilesystem(sim, CostModel(), rng, servers=servers,
                                staging=staging)

    def test_unknown_mode_rejected(self, sim, rng):
        from repro.cluster import StagingError
        with pytest.raises(StagingError, match="unknown staging mode"):
            SharedFilesystem(sim, CostModel(), rng, staging="carrier-pigeon")

    def test_shared_fs_mode_ignores_cache_hints(self, sim, rng):
        costs = CostModel()
        fs = self._fs(sim, rng, "shared-fs")
        node = Node(sim, "n0")
        for _ in range(2):
            run_gen(sim, fs.load_image(25.0, node=node, key="toold"))
        one = costs.fs_open + 25 * 1024 * 1024 / costs.fs_bandwidth
        assert sim.now == pytest.approx(2 * one, rel=0.1)
        assert fs.loads == 2
        assert fs.cache_hits == 0
        assert not fs.is_cached(node, "toold")

    def test_cache_mode_second_load_is_cheap(self, sim, rng):
        costs = CostModel()
        fs = self._fs(sim, rng, "cache")
        node = Node(sim, "n0")
        run_gen(sim, fs.load_image(25.0, node=node, key="toold"))
        t_cold = sim.now
        run_gen(sim, fs.load_image(25.0, node=node, key="toold"))
        assert fs.is_cached(node, "toold")
        assert fs.cache_hits == 1 and fs.cache_misses == 1
        assert sim.now - t_cold < 10 * costs.cache_hit

    def test_cache_is_per_node_and_per_key(self, sim, rng):
        fs = self._fs(sim, rng, "cache")
        a, b = Node(sim, "a"), Node(sim, "b")
        run_gen(sim, fs.load_image(25.0, node=a, key="toold"))
        run_gen(sim, fs.load_image(25.0, node=b, key="toold"))
        run_gen(sim, fs.load_image(25.0, node=a, key="other"))
        assert fs.loads == 3 and fs.cache_hits == 0

    def test_invalidate_drops_keys(self, sim, rng):
        fs = self._fs(sim, rng, "cache")
        node = Node(sim, "n0")
        run_gen(sim, fs.load_image(25.0, node=node, key="toold"))
        fs.invalidate("toold")
        assert not fs.is_cached(node, "toold")
        run_gen(sim, fs.load_image(25.0, node=node, key="toold"))
        assert fs.loads == 2

    def test_broadcast_one_fs_read_for_many_nodes(self, sim, rng):
        fs = self._fs(sim, rng, "broadcast")
        nodes = [Node(sim, f"n{i}") for i in range(64)]
        run_gen(sim, fs.stage_images(nodes, 25.0, "toold"))
        assert fs.loads == 1          # exactly one shared-FS read
        assert fs.broadcasts == 1
        assert fs.bytes_broadcast == 63 * 25.0 * 1024 * 1024
        assert all(fs.is_cached(n, "toold") for n in nodes)

    def test_broadcast_logarithmic_vs_serial_linear(self, rng):
        def staged_time(staging, n):
            sim = Simulator()
            fs = self._fs(sim, SeededRNG(7), staging)
            nodes = [Node(sim, f"n{i}") for i in range(n)]
            run_gen(sim, fs.stage_images(nodes, 25.0, "toold"))
            return sim.now

        serial = staged_time("shared-fs", 256)
        bcast = staged_time("broadcast", 256)
        assert bcast < serial / 10
        # doubling nodes adds ~one round, not ~double
        assert staged_time("broadcast", 512) < 1.3 * bcast

    def test_broadcast_warm_set_is_noop(self, sim, rng):
        fs = self._fs(sim, rng, "broadcast")
        nodes = [Node(sim, f"n{i}") for i in range(8)]
        run_gen(sim, fs.stage_images(nodes, 25.0, "toold"))
        loads = fs.loads
        t0 = sim.now
        run_gen(sim, fs.stage_images(nodes, 25.0, "toold"))
        assert fs.loads == loads
        assert sim.now - t0 < 10 * CostModel().cache_hit


class TestClusterAssembly:
    def test_spec_shapes_cluster(self, sim):
        c = Cluster(sim, ClusterSpec(n_compute=12, fe_name="head"))
        assert len(c.compute) == 12
        assert c.front_end.name == "head"
        assert len(c.nodes) == 13

    def test_node_lookup(self, sim):
        c = Cluster(sim, ClusterSpec(n_compute=4))
        n = c.compute[2]
        assert c.node(n.name) is n
        assert c.node(c.front_end.name) is c.front_end

    def test_unknown_node_raises(self, sim):
        c = Cluster(sim, ClusterSpec(n_compute=2))
        with pytest.raises(KeyError):
            c.node("nope")

    def test_mpp_spec_disables_compute_rshd(self, sim):
        c = Cluster(sim, ClusterSpec(n_compute=4, compute_rshd=False))
        assert all(not n.rshd_enabled for n in c.compute)
        assert c.front_end.rshd_enabled

    def test_fe_proc_limit_from_spec(self, sim):
        c = Cluster(sim, ClusterSpec(n_compute=2, fe_max_user_procs=7))
        assert c.front_end.max_user_procs == 7
