"""Tests for the FE session machinery and the middleware (MW) path."""

import pytest

from repro.apps import make_compute_app
from repro.be import BackEnd
from repro.fe import LMONSession, SessionState, ToolFrontEnd, FrontEndError
from repro.mw import Middleware
from repro.rm import DaemonSpec
from repro.runner import drive, make_env


def quiet_be(ctx):
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    yield from be.finalize()


def quiet_mw(ctx):
    mw = Middleware(ctx)
    yield from mw.init()
    yield from mw.ready()
    yield from mw.finalize()


class TestSessions:
    def test_session_ids_unique(self):
        a, b = LMONSession("t"), LMONSession("t")
        assert a.id != b.id
        assert a.key != b.key

    def test_require_state(self):
        s = LMONSession("t")
        s.require_state(SessionState.CREATED)
        with pytest.raises(RuntimeError, match="needs one of"):
            s.require_state(SessionState.READY)

    def test_fe_session_table(self):
        env = make_env(n_compute=2)
        fe = ToolFrontEnd(env.cluster, env.rm, "t")
        s1, s2 = fe.create_session(), fe.create_session()
        assert fe.sessions[s1.id] is s1
        assert fe.sessions[s2.id] is s2

    def test_launch_on_used_session_rejected(self):
        env = make_env(n_compute=2)
        app = make_compute_app(n_tasks=16, tasks_per_node=8)
        spec = DaemonSpec("d", main=quiet_be)

        def tool(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            s = fe.create_session()
            yield from fe.launch_and_spawn(s, app, spec)
            with pytest.raises(RuntimeError):
                yield from fe.launch_and_spawn(s, app, spec)
            yield from fe.detach(s)

        drive(env, tool(env))

    def test_usrdata_requires_ready_daemons(self):
        env = make_env(n_compute=2)

        def tool(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            s = fe.create_session()
            with pytest.raises(FrontEndError, match="no be_stream"):
                yield from fe.send_usrdata_be(s, {"x": 1})

        drive(env, tool(env))


class TestMiddlewarePath:
    def _run(self, n_app_nodes=2, n_mw_nodes=3, usr_data=None,
             mw_main=None, topology=None):
        env = make_env(n_compute=n_app_nodes + n_mw_nodes)
        app = make_compute_app(n_tasks=8 * n_app_nodes, tasks_per_node=8)
        box = {}

        def tool(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            s = fe.create_session()
            yield from fe.launch_and_spawn(
                s, app, DaemonSpec("be_d", main=quiet_be))
            yield from fe.launch_mw_daemons(
                s, DaemonSpec("mw_d", main=mw_main or quiet_mw),
                n_nodes=n_mw_nodes, usr_data=usr_data, topology=topology)
            box["session"] = s
            yield from fe.detach(s)

        drive(env, tool(env))
        box["env"] = env
        return box

    def test_mw_daemons_on_separate_allocation(self):
        box = self._run(n_app_nodes=2, n_mw_nodes=3)
        s = box["session"]
        assert s.state is SessionState.DETACHED
        assert len(s.mw_daemons) == 3
        be_nodes = {d.node.name for d in s.daemons}
        mw_nodes = {d.node.name for d in s.mw_daemons}
        assert not be_nodes & mw_nodes  # disjoint allocations

    def test_mw_state_transition(self):
        env = make_env(n_compute=4)
        app = make_compute_app(n_tasks=16, tasks_per_node=8)
        states = []

        def tool(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            s = fe.create_session()
            yield from fe.launch_and_spawn(
                s, app, DaemonSpec("be_d", main=quiet_be))
            states.append(s.state)
            yield from fe.launch_mw_daemons(
                s, DaemonSpec("mw_d", main=quiet_mw), n_nodes=2)
            states.append(s.state)
            yield from fe.detach(s)

        drive(env, tool(env))
        assert states == [SessionState.READY, SessionState.MW_READY]

    def test_personality_handles_and_rpdtab(self):
        seen = []

        def mw_main(ctx):
            mw = Middleware(ctx)
            yield from mw.init()
            seen.append({
                "personality": mw.get_personality(),
                "size": mw.get_size(),
                "rpdtab_len": len(ctx.rpdtab),
                "table": list(ctx.daemon_table),
                "is_master": mw.am_i_master(),
            })
            yield from mw.ready()
            yield from mw.finalize()

        self._run(n_app_nodes=2, n_mw_nodes=3, mw_main=mw_main)
        assert sorted(d["personality"] for d in seen) == [0, 1, 2]
        assert all(d["size"] == 3 for d in seen)
        # every TBON daemon received the full RPDTAB (Section 3.4)
        assert all(d["rpdtab_len"] == 16 for d in seen)
        # and the personality table is globally consistent
        tables = {tuple(map(tuple, d["table"])) for d in seen}
        assert len(tables) == 1
        assert sum(d["is_master"] for d in seen) == 1

    def test_mw_usr_data_piggyback(self):
        got = []

        def mw_main(ctx):
            mw = Middleware(ctx)
            yield from mw.init()
            got.append(ctx.usr_data_init)
            yield from mw.ready()
            yield from mw.finalize()

        self._run(n_mw_nodes=2, mw_main=mw_main,
                  usr_data={"tree": "1-deep"})
        assert got == [{"tree": "1-deep"}, {"tree": "1-deep"}]

    def test_mw_requires_ready_session(self):
        env = make_env(n_compute=4)

        def tool(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            s = fe.create_session()
            with pytest.raises(RuntimeError):
                yield from fe.launch_mw_daemons(
                    s, DaemonSpec("mw_d", main=quiet_mw), n_nodes=2)

        drive(env, tool(env))

    def test_mw_flat_topology_override(self):
        box = self._run(n_mw_nodes=4, topology="flat")
        fabric = box["session"].mw_fabric
        assert fabric.topology.children[0] == (1, 2, 3)


class TestMwUsrDataExchange:
    def test_fe_mw_bidirectional(self):
        env = make_env(n_compute=4)
        app = make_compute_app(n_tasks=16, tasks_per_node=8)
        box = {}

        def mw_main(ctx):
            mw = Middleware(ctx)
            yield from mw.init()
            yield from mw.ready()
            if mw.am_i_master():
                req = yield from mw.recv_usrdata()
                yield from mw.send_usrdata({"echo": req["ping"] + 1})
            yield from mw.finalize()

        def tool(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            s = fe.create_session()
            yield from fe.launch_and_spawn(
                s, app, DaemonSpec("be_d", main=quiet_be))
            yield from fe.launch_mw_daemons(
                s, DaemonSpec("mw_d", main=mw_main), n_nodes=2)
            yield from fe.send_usrdata_mw(s, {"ping": 41})
            box["reply"] = yield from fe.recv_usrdata_mw(s)
            yield from fe.detach(s)

        drive(env, tool(env))
        assert box["reply"] == {"echo": 42}
