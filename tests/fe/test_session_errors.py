"""Session-state error paths: misuse of the FE API fails loudly and early.

Covers the satellite checklist: ``require_state`` violations, ``kill()``
without an engine, data transfer before daemons are ready
(``_require_stream``), and double-``launch_and_spawn`` on one session.
"""

import pytest

from repro.apps import make_compute_app
from repro.be import BackEnd
from repro.fe import FrontEndError, SessionState, ToolFrontEnd
from repro.rm import DaemonSpec
from repro.runner import drive, make_env


def _daemon(ctx):
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    yield from be.finalize()


SPEC = DaemonSpec("errd", main=_daemon, image_mb=1.0)


def _fresh(n_compute=4):
    env = make_env(n_compute=n_compute)
    fe = ToolFrontEnd(env.cluster, env.rm, "err")
    return env, fe


class TestRequireState:
    def test_require_state_raises_with_context(self):
        _env, fe = _fresh()
        s = fe.create_session()
        s.state = SessionState.KILLED
        with pytest.raises(RuntimeError, match="needs one of"):
            s.require_state(SessionState.CREATED)

    def test_launch_on_detached_session_rejected(self):
        env, fe = _fresh()
        s = fe.create_session()
        s.state = SessionState.DETACHED
        app = make_compute_app(n_tasks=8, tasks_per_node=2)

        def tool(env):
            yield from fe.launch_and_spawn(s, app, SPEC)

        with pytest.raises(RuntimeError, match="detached"):
            drive(env, tool(env))

    def test_mw_launch_requires_ready(self):
        env, fe = _fresh()
        s = fe.create_session()  # still CREATED

        def tool(env):
            yield from fe.launch_mw_daemons(s, SPEC, 2)

        with pytest.raises(RuntimeError, match="needs one of"):
            drive(env, tool(env))


class TestKillWithoutEngine:
    def test_kill_raises_frontenderror(self):
        env, fe = _fresh()
        s = fe.create_session()

        def tool(env):
            yield from fe.kill(s)

        with pytest.raises(FrontEndError, match="no engine"):
            drive(env, tool(env))

    def test_session_state_unchanged_after_failed_kill(self):
        env, fe = _fresh()
        s = fe.create_session()

        def tool(env):
            yield from fe.kill(s)

        with pytest.raises(FrontEndError):
            drive(env, tool(env))
        assert s.state is SessionState.CREATED


class TestStreamsBeforeReady:
    @pytest.mark.parametrize("op,stream", [
        ("send_usrdata_be", "be_stream"),
        ("recv_usrdata_be", "be_stream"),
        ("send_usrdata_mw", "mw_stream"),
        ("recv_usrdata_mw", "mw_stream"),
    ])
    def test_usrdata_before_daemons_ready(self, op, stream):
        env, fe = _fresh()
        s = fe.create_session()
        args = (s, {"x": 1}) if op.startswith("send") else (s,)

        def tool(env):
            yield from getattr(fe, op)(*args)

        with pytest.raises(FrontEndError, match=stream):
            drive(env, tool(env))


class TestTerminalStates:
    def test_detach_on_terminal_session_rejected(self):
        env, fe = _fresh()
        s = fe.create_session()
        s.state = SessionState.KILLED

        def tool(env):
            yield from fe.detach(s)

        with pytest.raises(RuntimeError, match="needs one of"):
            drive(env, tool(env))
        assert s.state is SessionState.KILLED  # no resurrection

    def test_double_detach_rejected(self):
        env, fe = _fresh(n_compute=4)
        app = make_compute_app(n_tasks=8, tasks_per_node=2)

        def tool(env):
            yield from fe.init()
            s = fe.create_session()
            yield from fe.launch_and_spawn(s, app, SPEC)
            yield from fe.detach(s)
            yield from fe.detach(s)

        with pytest.raises(RuntimeError, match="state detached"):
            drive(env, tool(env))

    def test_detach_on_created_session_rejected(self):
        env, fe = _fresh()
        s = fe.create_session()  # never launched

        def tool(env):
            yield from fe.detach(s)

        with pytest.raises(RuntimeError, match="needs one of"):
            drive(env, tool(env))
        assert s.state is SessionState.CREATED


class TestDoubleLaunch:
    def test_second_launch_on_same_session_rejected(self):
        env, fe = _fresh(n_compute=4)
        app = make_compute_app(n_tasks=8, tasks_per_node=2)
        s = fe.create_session()

        def tool(env):
            yield from fe.init()
            yield from fe.launch_and_spawn(s, app, SPEC)
            # session is READY now; a second launch must be refused
            yield from fe.launch_and_spawn(s, app, SPEC)

        with pytest.raises(RuntimeError, match="state .*ready"):
            drive(env, tool(env))
        assert s.state is SessionState.READY

    def test_fresh_session_on_same_fe_still_works(self):
        env, fe = _fresh(n_compute=4)
        app = make_compute_app(n_tasks=4, tasks_per_node=2)
        done = {}

        def tool(env):
            yield from fe.init()
            s1 = fe.create_session()
            yield from fe.launch_and_spawn(s1, app, SPEC)
            yield from fe.detach(s1)
            s2 = fe.create_session()
            yield from fe.launch_and_spawn(s2, app, SPEC)
            yield from fe.detach(s2)
            done["states"] = (s1.state, s2.state)

        drive(env, tool(env))
        assert done["states"] == (SessionState.DETACHED,
                                  SessionState.DETACHED)
