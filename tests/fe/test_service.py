"""The non-blocking session-handle API and the multi-tenant ToolService."""

import pytest

from repro.apps import make_compute_app
from repro.be import BackEnd
from repro.fe import (
    FrontEndError,
    SessionState,
    ToolFrontEnd,
    ToolService,
)
from repro.rm import AllocationError, DaemonSpec
from repro.runner import drive, drive_many, make_env, make_service_env


def _daemon(ctx):
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    yield from be.finalize()


SPEC = DaemonSpec("svcd", main=_daemon, image_mb=1.0)


def _detach_body(fe, session):
    yield from fe.detach(session, reclaim_job=True)
    return session.id


def _app(nodes=4, tpn=2):
    return make_compute_app(n_tasks=nodes * tpn, tasks_per_node=tpn)


class TestSessionHandle:
    def test_result_before_done_raises(self):
        env = make_service_env(n_compute=4)
        h = env.service.submit_launch(_app(), SPEC)
        assert not h.done
        with pytest.raises(FrontEndError, match="in flight"):
            h.result()

    def test_handle_completes_and_returns_session(self):
        env = make_service_env(n_compute=4)
        h = env.service.submit_launch(_app(), SPEC)
        drive(env, env.service.drain())
        assert h.done
        assert h.exception is None
        assert h.result() is h.session
        assert h.session.state is SessionState.READY

    def test_wait_from_another_process(self):
        env = make_service_env(n_compute=4)
        h = env.service.submit_launch(_app(), SPEC, body=_detach_body)
        got = {}

        def waiter(env):
            session = yield from h.wait()
            got["session"] = session
            got["at"] = env.sim.now

        drive(env, waiter(env))
        assert got["session"] is h.session
        assert got["at"] == pytest.approx(h.finished_at)

    def test_wait_after_done_returns_immediately(self):
        env = make_service_env(n_compute=4)
        h = env.service.submit_launch(_app(), SPEC)
        drive(env, env.service.drain())

        def late_waiter(env):
            session = yield from h.wait()
            return session

        assert drive(env, late_waiter(env)) is h.session

    def test_status_callbacks_fire_for_every_transition(self):
        env = make_service_env(n_compute=4)
        seen = []
        h = env.service.submit_launch(_app(), SPEC, body=_detach_body)
        h.register_status_cb(lambda s, old, new: seen.append((old, new)))
        drive(env, env.service.drain())
        assert seen == [
            (SessionState.CREATED, SessionState.QUEUED),
            (SessionState.QUEUED, SessionState.SPAWNING),
            (SessionState.SPAWNING, SessionState.READY),
            (SessionState.READY, SessionState.DETACHED),
        ]
        # the handle's own recorder saw the same transitions with times
        assert [(o, n) for _, o, n in h.transitions] == seen
        assert h.state_times[SessionState.READY] <= \
            h.state_times[SessionState.DETACHED]

    def test_latency_decomposition_consistent(self):
        env = make_service_env(n_compute=4)
        h = env.service.submit_launch(_app(), SPEC, body=_detach_body)
        drive(env, env.service.drain())
        assert h.queue_wait == 0.0
        assert h.alloc_wait == 0.0
        assert h.launch_latency > 0
        assert h.launch_latency <= h.finished_at - h.submitted_at

    def test_failure_surfaces_via_result_not_crash(self):
        env = make_service_env(n_compute=4)
        # 8 nodes can never be granted on a 4-node cluster: AllocationError.
        # The op fails, but the sim run itself must survive so other
        # tenants are unaffected.
        bad = env.service.submit_launch(_app(nodes=8), SPEC)
        good = env.service.submit_launch(_app(nodes=2), SPEC,
                                         body=_detach_body)
        env.sim.run()
        assert bad.done
        assert isinstance(bad.exception, AllocationError)
        with pytest.raises(AllocationError):
            bad.result()
        assert good.done and good.exception is None

    def test_drain_reraises_failures(self):
        env = make_service_env(n_compute=4)
        env.service.submit_launch(_app(nodes=8), SPEC)
        with pytest.raises(AllocationError):
            drive(env, env.service.drain())


class TestFailureCleanup:
    def test_failing_body_releases_nodes_for_queued_tenants(self):
        """A tenant whose body crashes must not strand its allocation."""
        env = make_service_env(n_compute=4)  # one session's worth of nodes

        def bad_body(fe, session):
            raise RuntimeError("tenant tool crashed")
            yield  # pragma: no cover

        bad = env.service.submit_launch(_app(), SPEC, tool_name="bad",
                                        body=bad_body)
        queued = [env.service.submit_launch(_app(), SPEC, tool_name=f"q{i}",
                                            body=_detach_body)
                  for i in range(2)]
        env.sim.run()
        assert isinstance(bad.exception, RuntimeError)
        # the abandoned session died visibly, in a terminal state
        assert bad.session.state is SessionState.FAILED
        # the crashed tenant's nodes were returned; both queued sessions ran
        for h in queued:
            assert h.done and h.exception is None
            assert h.session.state is SessionState.DETACHED
        assert len(env.rm.free_nodes()) == 4

    def test_simultaneous_spawn_failures_do_not_crash_the_sim(self):
        """Two spawn workers failing at the same virtual instant must both
        be defused -- the failure surfaces via the handle, and co-tenants
        keep running."""
        from repro.cluster import ClusterSpec, ForkError
        env = make_service_env(
            n_compute=2,
            spec=ClusterSpec(n_compute=2, compute_max_user_procs=1, seed=1))
        # image_mb=0 skips the FS stage, so both daemon forks fail at the
        # same instant (each node's single process slot is taken by a task)
        app = make_compute_app(n_tasks=2, tasks_per_node=1)
        spec0 = DaemonSpec("zeroimg", main=_daemon, image_mb=0.0)
        h = env.service.submit_launch(app, spec0, tool_name="t")
        env.sim.run()  # must not raise
        assert isinstance(h.exception, ForkError)
        assert h.session.state is SessionState.FAILED
        assert len(env.rm.free_nodes()) == 2

    @pytest.mark.parametrize("fe_quota", [0, 1])
    def test_fe_init_failure_does_not_hang_peer_ops(self, fe_quota):
        """If a shared FE-side fork fails, waiting ops fail too -- loudly.

        quota 0 makes ``fe.init()`` itself fail (the _ensure_init path);
        quota 1 lets init succeed but fails the shared engine fork (the
        _obtain_engine_proc path). Either way no operation may hang.
        """
        from repro.cluster import ClusterSpec, ForkError
        env = make_service_env(
            n_compute=4,
            spec=ClusterSpec(n_compute=4, fe_max_user_procs=fe_quota,
                             seed=1))
        h1 = env.service.submit_launch(_app(), SPEC, tool_name="t")
        h2 = env.service.submit_launch(_app(), SPEC, tool_name="t")
        env.sim.run()
        assert h1.done and h2.done
        assert isinstance(h1.exception, ForkError)
        assert isinstance(h2.exception, ForkError)
        # no nodes stranded by the failed launches
        assert len(env.rm.free_nodes()) == 4

    def test_mw_failure_keeps_be_nodes_held(self):
        """A failed chained MW op must not release the live session's BE
        allocation -- that would double-book nodes daemons still occupy."""
        env = make_service_env(n_compute=4)
        h = env.service.submit_launch(_app(nodes=2), SPEC)
        # impossible MW request: fails with AllocationError after launch
        mw = env.service.submit_mw(
            h, DaemonSpec("mwd", main=_daemon, image_mb=1.0), n_nodes=8)
        env.sim.run()
        assert h.done and h.exception is None
        assert isinstance(mw.exception, AllocationError)
        # session still READY and still holding its 2 BE nodes
        assert h.session.state is SessionState.READY
        assert len(h.session.owned_allocs) == 1
        assert len(env.rm.free_nodes()) == 2

    def test_partial_launch_failure_retires_engine_job(self):
        """A launch failing mid-engine (daemon fork) must retire the job
        it already started, not just free its nodes."""
        from repro.cluster import ClusterSpec, ForkError
        # 2 tasks + 1 daemon per node, but room for only 2 processes:
        # spawn_daemons hits ForkError after the job's tasks are running
        env = make_service_env(
            n_compute=2,
            spec=ClusterSpec(n_compute=2, compute_max_user_procs=2, seed=1))
        h = env.service.submit_launch(_app(nodes=2), SPEC)
        env.sim.run()
        assert isinstance(h.exception, ForkError)
        assert len(env.rm.free_nodes()) == 2
        # the partially launched job was bound back and retired: no live
        # tasks squatting on the freed nodes
        assert h.session.job is not None
        assert not any(t.alive for t in h.session.job.tasks)
        # no orphan daemons or transient spawn launcher either
        for node in env.cluster.compute:
            assert node.processes_of("svcd") == []
        # the session died visibly: terminal FAILED state via callbacks
        assert h.session.state is SessionState.FAILED
        assert h.transitions[-1][2] is SessionState.FAILED
        # the shared filesystem was not wedged by the aborted spawn
        # (interrupted loaders must return their server slot): a smaller
        # follow-up launch that fits the quota completes normally
        app2 = make_compute_app(n_tasks=2, tasks_per_node=1)
        h2 = env.service.submit_launch(app2, SPEC, body=_detach_body)
        env.sim.run()
        assert h2.done and h2.exception is None
        assert env.cluster.fs._servers.in_use == 0

    def test_concurrent_sessions_share_one_engine_process(self):
        """Same-tenant concurrent ops must not double-fork the engine."""
        env = make_service_env(n_compute=8)
        handles = [env.service.submit_launch(_app(), SPEC, tool_name="same",
                                             body=_detach_body)
                   for i in range(2)]
        drive(env, env.service.drain())
        assert all(h.exception is None for h in handles)
        engines = {h.session.engine.proc for h in handles}
        assert len(engines) == 1
        fe_node = env.cluster.front_end
        assert len(fe_node.processes_of("launchmon-engine")) == 1


class TestToolService:
    def test_eight_concurrent_sessions_complete(self):
        env = make_service_env(n_compute=32)
        handles = [env.service.submit_launch(_app(), SPEC,
                                             tool_name=f"u{i}",
                                             body=_detach_body)
                   for i in range(8)]
        sessions = drive(env, env.service.drain())
        assert len(sessions) == 8
        assert all(h.done and h.exception is None for h in handles)
        assert all(h.session.state is SessionState.DETACHED for h in handles)
        assert env.service.peak_in_flight == 8

    def test_deterministic_across_runs(self):
        def wave():
            env = make_service_env(n_compute=8)
            handles = [env.service.submit_launch(_app(), SPEC,
                                                 tool_name=f"u{i}",
                                                 body=_detach_body)
                       for i in range(6)]
            drive(env, env.service.drain())
            return [(h.launch_latency, h.alloc_wait, h.finished_at)
                    for h in handles]

        assert wave() == wave()

    def test_max_in_flight_caps_concurrency(self):
        env = make_service_env(n_compute=32, max_in_flight=2)
        handles = [env.service.submit_launch(_app(), SPEC,
                                             tool_name=f"u{i}",
                                             body=_detach_body)
                   for i in range(6)]
        drive(env, env.service.drain())
        assert env.service.peak_in_flight == 2
        # later submissions pay admission wait even though nodes are free
        assert handles[-1].queue_wait > 0
        assert env.rm.alloc_queue_peak <= 2

    def test_node_contention_queues_fifo(self):
        env = make_service_env(n_compute=4)  # one session's worth of nodes
        handles = [env.service.submit_launch(_app(), SPEC,
                                             tool_name=f"u{i}",
                                             body=_detach_body)
                   for i in range(3)]
        drive(env, env.service.drain())
        # FIFO by *arrival* at the queue (per-tenant init jitter decides
        # who gets there first): the first arrival waits zero, later
        # arrivals wait strictly longer, in arrival order
        by_arrival = sorted(handles,
                            key=lambda h: h.state_times[SessionState.QUEUED])
        waits = [h.alloc_wait for h in by_arrival]
        assert waits[0] == 0.0
        assert 0 < waits[1] < waits[2]
        assert env.rm.alloc_queue_peak == 2
        assert len(env.rm.alloc_waits) == 3

    def test_one_frontend_per_tenant_with_engine_reuse(self):
        env = make_service_env(n_compute=8)
        h1 = env.service.submit_launch(_app(), SPEC, tool_name="same",
                                       body=_detach_body)
        drive(env, env.service.drain())
        h2 = env.service.submit_launch(_app(), SPEC, tool_name="same",
                                       body=_detach_body)
        drive(env, env.service.drain())
        assert h1.fe is h2.fe
        assert len(env.service.frontends) == 1
        # the engine process survived session 1's detach and was reused
        assert h1.session.engine.proc is h2.session.engine.proc
        assert h2.session.engine.proc.alive

    def test_submit_mw_chains_after_launch(self):
        env = make_service_env(n_compute=8)
        h = env.service.submit_launch(_app(nodes=4), SPEC)
        mw = env.service.submit_mw(h, DaemonSpec("mwd", main=_daemon,
                                                 image_mb=1.0), n_nodes=2)
        drive(env, env.service.drain())
        assert mw.done and mw.exception is None
        assert h.session.state is SessionState.MW_READY
        assert len(h.session.mw_daemons) == 2

    def test_mw_handle_reports_its_own_metrics_not_the_parents(self):
        """A chained MW handle shares the session but must not echo the
        parent launch's alloc_wait/launch_latency."""
        env = make_service_env(n_compute=6)
        h = env.service.submit_launch(_app(nodes=4), SPEC)
        mw = env.service.submit_mw(h, DaemonSpec("mwd", main=_daemon,
                                                 image_mb=1.0), n_nodes=2)
        drive(env, env.service.drain())
        assert mw.exception is None
        # launch_latency is a launch/attach metric; an MW handle has none
        assert mw.launch_latency is None
        assert h.launch_latency is not None
        # the MW op's own QUEUED wait, measured over its *own* transitions
        # (the parent's QUEUED interval happened before mw.started_at)
        assert mw.started_at >= h.finished_at
        assert mw.alloc_wait == 0.0
        # service latency summary counts each launch exactly once
        assert len(env.service.summary()["launch_latencies"]) == 1

    def test_chained_mw_does_not_hold_admission_slot_while_waiting(self):
        """A submit_mw waiting on its parent must not occupy gate capacity
        that an independent launch could use."""
        env = make_service_env(n_compute=8, max_in_flight=1)
        mw_spec = DaemonSpec("mwd", main=_daemon, image_mb=1.0)
        l1 = env.service.submit_launch(_app(nodes=2), SPEC, tool_name="a")
        mw1 = env.service.submit_mw(l1, mw_spec, n_nodes=2)
        l2 = env.service.submit_launch(_app(nodes=2), SPEC, tool_name="b")
        drive(env, env.service.drain())
        assert all(h.exception is None for h in (l1, mw1, l2))
        # l2 was admitted while mw1 idled on its parent, not behind it
        assert l2.started_at <= mw1.started_at

    def test_parent_handle_metrics_not_polluted_by_chained_mw(self):
        """The parent handle stops recording at op completion, so a later
        MW op's QUEUED wait is never misattributed to it."""
        env = make_service_env(n_compute=6)
        app = _app(nodes=4)
        box = {}

        def scenario(env):
            job = yield from env.rm.launch_job(app, env.rm.allocate(4))
            h = env.service.submit_attach(job, SPEC)
            box["h"] = h
            yield from h.wait()
            box["mw"] = env.service.submit_mw(
                h, DaemonSpec("mwd", main=_daemon, image_mb=1.0), n_nodes=2)

        drive(env, scenario(env))
        drive(env, env.service.drain())
        h, mw = box["h"], box["mw"]
        assert mw.exception is None
        # attach never queues for nodes; the MW op's QUEUED transition
        # must not leak into the attach handle's metrics
        assert h.alloc_wait is None
        assert SessionState.QUEUED not in dict(
            (new, t) for t, _old, new in h.transitions)

    def test_submit_attach(self):
        env = make_service_env(n_compute=4)
        app = _app()
        box = {}

        def starter(env):
            job = yield from env.rm.launch_job(app, env.rm.allocate(4))
            box["h"] = env.service.submit_attach(job, SPEC,
                                                 body=_detach_body)

        drive(env, starter(env))
        drive(env, env.service.drain())
        h = box["h"]
        assert h.done and h.exception is None
        assert len(h.session.rpdtab) == app.n_tasks


class TestReclaimSemantics:
    def test_plain_detach_leaves_job_running_and_nodes_held(self):
        """Classic LaunchMON semantics: the job outlives the tool."""
        env = make_service_env(n_compute=4)
        h = env.service.submit_launch(_app(), SPEC)
        drive(env, env.service.drain())
        box = {}

        def finish(env):
            yield from h.fe.detach(h.session)
            box["free"] = len(env.rm.free_nodes())

        drive(env, finish(env))
        from repro.rm import JobState
        assert h.session.job.state is JobState.RUNNING
        assert any(t.alive for t in h.session.job.tasks)
        assert box["free"] == 0  # the running job still occupies its nodes

    def test_reclaiming_detach_retires_job_before_freeing_nodes(self):
        """Freed nodes must not still host the prior tenant's live tasks."""
        env = make_service_env(n_compute=4)
        h = env.service.submit_launch(_app(), SPEC)
        drive(env, env.service.drain())

        def finish(env):
            yield from h.fe.detach(h.session, reclaim_job=True)

        drive(env, finish(env))
        from repro.rm import JobState
        assert h.session.job.state is JobState.COMPLETED
        assert not any(t.alive for t in h.session.job.tasks)
        assert len(env.rm.free_nodes()) == 4

    def test_attached_job_never_reclaimed(self):
        """reclaim only ends jobs the session launched itself."""
        env = make_service_env(n_compute=4)
        app = _app()
        box = {}

        def scenario(env):
            job = yield from env.rm.launch_job(app, env.rm.allocate(4))
            box["job"] = job
            h = env.service.submit_attach(job, SPEC)
            yield from h.wait()
            yield from h.fe.detach(h.session, reclaim_job=True)

        drive(env, scenario(env))
        from repro.rm import JobState
        assert box["job"].state is JobState.RUNNING
        assert all(t.alive for t in box["job"].tasks)

    def test_body_crash_after_clean_detach_respects_terminal_state(self):
        """A body that detached (classic semantics) before raising keeps
        its DETACHED state and its deliberately-running job."""
        from repro.rm import JobState
        env = make_service_env(n_compute=4)

        def detach_then_crash(fe, session):
            yield from fe.detach(session)  # classic: job keeps running
            raise RuntimeError("post-detach assertion failed")

        h = env.service.submit_launch(_app(), SPEC, body=detach_then_crash)
        env.sim.run()
        assert isinstance(h.exception, RuntimeError)
        assert h.session.state is SessionState.DETACHED  # not resurrected
        assert h.session.job.state is JobState.RUNNING   # job untouched
        assert len(env.rm.free_nodes()) == 0             # nodes still held

    def test_repeat_mw_launch_replaces_current_set_and_reclaims_all(self):
        """mw_daemons means the *current* set; reclaim ends every set."""
        env = make_service_env(n_compute=8)
        mw_spec = DaemonSpec("mwd", main=_daemon, image_mb=1.0)
        h = env.service.submit_launch(_app(nodes=2), SPEC)
        m1 = env.service.submit_mw(h, mw_spec, n_nodes=2)
        m2 = env.service.submit_mw(m1, mw_spec, n_nodes=3)
        drive(env, env.service.drain())
        assert m2.exception is None
        assert len(h.session.mw_daemons) == 3       # latest set only
        assert len(h.session.all_mw_daemons) == 5   # both sets tracked

        def finish(env):
            yield from h.fe.detach(h.session, reclaim_job=True)

        drive(env, finish(env))
        assert len(env.rm.free_nodes()) == 8
        for d in h.session.all_mw_daemons:
            assert not d.proc.alive

    def test_cancel_unblocks_a_queued_launch(self):
        """handle.cancel() is the escape hatch for a launch stuck in the
        allocation queue (kill() needs an engine, which does not exist
        yet); the queue entry is withdrawn and later tenants proceed."""
        from repro.simx import Interrupt
        env = make_service_env(n_compute=8)
        h1 = env.service.submit_launch(_app(nodes=8), SPEC, tool_name="a",
                                       body=_detach_body)
        h2 = env.service.submit_launch(_app(nodes=8), SPEC, tool_name="b")
        h3 = env.service.submit_launch(_app(nodes=8), SPEC, tool_name="c",
                                       body=_detach_body)

        def canceller(env):
            yield env.sim.timeout(0.05)  # h2 is QUEUED behind h1 by now
            assert h2.cancel("user gave up")

        env.sim.process(canceller(env))
        env.sim.run()
        assert isinstance(h2.exception, Interrupt)
        assert h2.session.state is SessionState.FAILED
        # the tenants around the cancelled one are unaffected
        assert h1.exception is None and h3.exception is None
        assert env.rm.queued_requests == 0
        assert len(env.rm.free_nodes()) == 8

    def test_stall_cancel_recover_workflow_end_to_end(self):
        """The documented recovery path actually works: drive() stalls
        with a starvation hint, cancel() the stuck handle, drain again
        cleanly, then free the nodes -- no stale failure detonates."""
        from repro.simx import Interrupt
        env = make_service_env(n_compute=8)
        a = env.service.submit_launch(_app(nodes=8), SPEC, tool_name="a")
        b = env.service.submit_launch(_app(nodes=8), SPEC, tool_name="b")
        with pytest.raises(RuntimeError, match="node starvation"):
            drive(env, env.service.drain())
        # whichever tenant's init arrived second is the queued one
        stuck, won = (a, b) if not a.done else (b, a)
        assert stuck.cancel()
        sessions = drive(env, env.service.drain())  # must not raise
        assert [s.id for s in sessions] == [won.session.id]
        assert won.exception is None
        assert isinstance(stuck.exception, Interrupt)
        assert stuck.session.state is SessionState.FAILED

        def detacher(env):
            yield from won.fe.detach(won.session, reclaim_job=True)

        drive(env, detacher(env))  # unharmed by the abandoned first drain
        assert len(env.rm.free_nodes()) == 8
        # cancellation is accounted as such, not as a failure
        summary = env.service.summary()
        assert summary["failed"] == 0
        assert summary["cancelled"] == 1
        # and pruning drops the completed history
        assert len(env.service.prune_handles()) == 2
        assert env.service.handles == []

    def test_cancel_after_done_returns_false(self):
        env = make_service_env(n_compute=4)
        h = env.service.submit_launch(_app(), SPEC)
        drive(env, env.service.drain())
        assert h.cancel() is False
        assert h.exception is None

    def test_kill_reclaims_daemons_and_nodes(self):
        """Killed sessions leave genuinely empty nodes: daemons exited,
        allocation back in the free pool."""
        env = make_service_env(n_compute=4)
        h = env.service.submit_launch(_app(), SPEC)
        drive(env, env.service.drain())

        def finish(env):
            yield from h.fe.kill(h.session)

        drive(env, finish(env))
        assert h.session.state is SessionState.KILLED
        assert not any(d.proc.alive for d in h.session.daemons)
        assert len(env.rm.free_nodes()) == 4

    def test_gate_queued_op_blocks_tenant_retirement(self):
        """An op waiting at the admission gate counts as tenant activity:
        its FE must not be retired out from under it."""
        env = make_service_env(n_compute=8, max_in_flight=1)
        env.service.keep_warm = 0  # retire aggressively
        handles = [env.service.submit_launch(_app(nodes=2), SPEC,
                                             tool_name="same",
                                             body=_detach_body)
                   for _ in range(2)]
        drive(env, env.service.drain())
        assert all(h.exception is None for h in handles)
        # with keep_warm=0 and no pending work, everything was retired:
        # no leaked FE or engine processes on the front-end node
        fe_node = env.cluster.front_end
        assert fe_node.processes_of("launchmon-engine") == []
        assert fe_node.processes_of("same-fe") == []
        assert env.service.frontends == {}

    def test_retirement_evicts_longest_idle_tenant_first(self):
        """LRU eviction: the tenant idle longest loses its warm processes;
        the most recently active one keeps them."""
        env = make_service_env(n_compute=8)
        env.service.keep_warm = 1
        h_old = env.service.submit_launch(_app(nodes=2), SPEC,
                                          tool_name="old",
                                          body=_detach_body)
        drive(env, env.service.drain())
        h_new = env.service.submit_launch(_app(nodes=2), SPEC,
                                          tool_name="new",
                                          body=_detach_body)
        drive(env, env.service.drain())
        assert h_old.exception is None and h_new.exception is None
        # 'old' went idle first, so it was evicted; 'new' stays warm
        assert set(env.service.frontends) == {"new"}
        fe_node = env.cluster.front_end
        assert fe_node.processes_of("old-fe") == []
        assert len(fe_node.processes_of("new-fe")) == 1

    def test_tenant_churn_does_not_exhaust_fe_process_table(self):
        """Hundreds of distinct tenants must not pin FE processes forever."""
        env = make_service_env(n_compute=4, max_in_flight=4)
        env.service.keep_warm = 8
        handles = [env.service.submit_launch(_app(nodes=2), SPEC,
                                             tool_name=f"tenant{i}",
                                             body=_detach_body)
                   for i in range(250)]  # > fe_max_user_procs / 2
        drive(env, env.service.drain())
        assert all(h.exception is None for h in handles)
        fe_node = env.cluster.front_end
        # bounded by 2 x (keep_warm idle + max_in_flight busy) FE+engine
        # pairs, plus transient launcher processes
        assert fe_node.user_proc_count() <= 2 * (8 + 4) + 4
        assert len(env.service.frontends) <= 8 + 4
        # and an explicit shutdown retires the rest
        env.service.shutdown_idle()
        assert len(env.service.frontends) == 0

    def test_live_session_blocks_tenant_retirement(self):
        """A READY session keeps its FE + engine alive through retirement
        sweeps; once it ends, the tenant becomes retirable."""
        env = make_service_env(n_compute=8)
        env.service.keep_warm = 0  # retire as aggressively as possible
        h = env.service.submit_launch(_app(nodes=4), SPEC, tool_name="u")
        mw = env.service.submit_mw(h, DaemonSpec("mwd", main=_daemon,
                                                 image_mb=1.0), n_nodes=2)
        drive(env, env.service.drain())
        assert mw.exception is None
        # the session is READY/MW_READY: its engine must have survived
        assert h.session.engine.proc.alive
        assert "u" in env.service.frontends

        def finish(env):
            yield from h.fe.detach(h.session, reclaim_job=True)

        drive(env, finish(env))
        assert env.service.shutdown_idle() == 1
        fe_node = env.cluster.front_end
        assert fe_node.processes_of("u-fe") == []
        assert fe_node.processes_of("launchmon-engine") == []

    def test_concurrent_mw_on_one_session_are_serialized(self):
        """Two submit_mw ops chained on one parent must not race the
        session's state machine -- both succeed, in order."""
        env = make_service_env(n_compute=16)
        mw_spec = DaemonSpec("mwd", main=_daemon, image_mb=1.0)
        h = env.service.submit_launch(_app(nodes=2), SPEC)
        m1 = env.service.submit_mw(h, mw_spec, n_nodes=2)
        m2 = env.service.submit_mw(h, mw_spec, n_nodes=2)  # same parent!
        drive(env, env.service.drain())
        assert m1.exception is None
        assert m2.exception is None
        assert m2.started_at >= m1.finished_at
        assert h.session.state is SessionState.MW_READY
        assert len(h.session.all_mw_daemons) == 4

    def test_failed_second_mw_launch_spares_first_mw_set(self):
        """A failing repeat launch_mw_daemons must not destroy the healthy
        MW set from the first call."""
        env = make_service_env(n_compute=8)
        h = env.service.submit_launch(_app(nodes=4), SPEC)
        mw_spec = DaemonSpec("mwd", main=_daemon, image_mb=1.0)
        env.service.submit_mw(h, mw_spec, n_nodes=2)
        drive(env, env.service.drain())
        first_set = list(h.session.mw_daemons)
        assert len(first_set) == 2
        # impossible second MW request fails after the first succeeded
        bad = env.service.submit_mw(h, mw_spec, n_nodes=16)
        env.sim.run()
        assert isinstance(bad.exception, AllocationError)
        assert h.session.mw_daemons == first_set
        assert h.session.mw_fabric is not None
        assert h.session.state is SessionState.MW_READY


class TestDriveMany:
    def test_blocking_api_multi_tenant_via_drive_many(self):
        env = make_env(n_compute=8)
        results = {}

        def tenant(env, name):
            fe = ToolFrontEnd(env.cluster, env.rm, name)
            yield from fe.init()
            s = fe.create_session()
            yield from fe.launch_and_spawn(s, _app(), SPEC)
            yield from fe.detach(s, reclaim_job=True)
            results[name] = s.state
            return name

        names = [f"t{i}" for i in range(3)]
        values = drive_many(env, [tenant(env, n) for n in names])
        assert values == names
        assert all(results[n] is SessionState.DETACHED for n in names)

    def test_unfinished_driver_raises(self):
        env = make_env(n_compute=4)

        def stuck(env):
            yield env.sim.event()  # never triggers

        with pytest.raises(RuntimeError, match="did not finish"):
            drive_many(env, [stuck(env)])

    def test_node_starvation_is_diagnosed(self):
        """A driver stuck in the allocation queue gets a useful error,
        not just the generic 'did not finish'."""
        env = make_env(n_compute=4)
        env.rm.allocate(3)  # held forever, never released

        def tenant(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "starved")
            yield from fe.init()
            s = fe.create_session()
            yield from fe.launch_and_spawn(s, _app(nodes=2), SPEC)

        with pytest.raises(RuntimeError, match="node starvation"):
            drive(env, tenant(env))


class TestLegacyApiUnchanged:
    def test_blocking_launch_still_single_drive(self):
        """The classic quickstart flow, byte-for-byte the old API."""
        env = make_env(n_compute=4)
        app = _app()
        out = {}

        def tool(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "legacy")
            yield from fe.init()
            session = fe.create_session()
            yield from fe.launch_and_spawn(session, app, SPEC)
            out["session"] = session
            yield from fe.detach(session)

        drive(env, tool(env))
        assert out["session"].state is SessionState.DETACHED
        assert out["session"].n_daemons == 4

    def test_legacy_detach_retires_engine_process(self):
        """Seed semantics: without reuse_engine, detach exits the engine
        process rather than keeping it warm."""
        env = make_env(n_compute=4)

        def tool(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "legacy")
            yield from fe.init()
            session = fe.create_session()
            yield from fe.launch_and_spawn(session, _app(), SPEC)
            yield from fe.detach(session)

        drive(env, tool(env))
        fe_node = env.cluster.front_end
        assert fe_node.processes_of("launchmon-engine") == []
