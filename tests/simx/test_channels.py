"""Tests for Store and Channel message-passing primitives."""

import pytest

from repro.simx import Channel, SimulationError, Simulator, Store


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def p(sim):
            yield store.put("x")
            item = yield store.get()
            got.append(item)

        sim.process(p(sim))
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter(sim):
            item = yield store.get()
            got.append((sim.now, item))

        def putter(sim):
            yield sim.timeout(5)
            yield store.put("late")

        sim.process(getter(sim))
        sim.process(putter(sim))
        sim.run()
        assert got == [(5.0, "late")]

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def p(sim):
            for i in range(4):
                yield store.put(i)
            for _ in range(4):
                item = yield store.get()
                got.append(item)

        sim.process(p(sim))
        sim.run()
        assert got == [0, 1, 2, 3]

    def test_getters_served_fifo(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter(sim, tag):
            item = yield store.get()
            got.append((tag, item))

        for tag in ("first", "second"):
            sim.process(getter(sim, tag))

        def putter(sim):
            yield sim.timeout(1)
            yield store.put("a")
            yield store.put("b")

        sim.process(putter(sim))
        sim.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_bounded_capacity_blocks_putter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        timeline = []

        def putter(sim):
            yield store.put("a")
            timeline.append(("put-a", sim.now))
            yield store.put("b")  # blocks until a get frees space
            timeline.append(("put-b", sim.now))

        def getter(sim):
            yield sim.timeout(3)
            item = yield store.get()
            timeline.append(("got", item, sim.now))

        sim.process(putter(sim))
        sim.process(getter(sim))
        sim.run()
        assert ("put-a", 0.0) in timeline
        assert ("got", "a", 3.0) in timeline
        assert ("put-b", 3.0) in timeline

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)

    def test_len_and_items_snapshot(self):
        sim = Simulator()
        store = Store(sim)

        def p(sim):
            yield store.put(1)
            yield store.put(2)

        sim.process(p(sim))
        sim.run()
        assert len(store) == 2
        assert store.items == (1, 2)


class TestChannel:
    def test_zero_latency_delivery(self):
        sim = Simulator()
        chan = Channel(sim)
        got = []

        def p(sim):
            chan.send("hello")
            msg = yield chan.recv()
            got.append((sim.now, msg))

        sim.process(p(sim))
        sim.run()
        assert got == [(0.0, "hello")]

    def test_latency_delays_delivery(self):
        sim = Simulator()
        chan = Channel(sim, latency_fn=lambda m: 2.0)
        got = []

        def p(sim):
            chan.send("m")
            msg = yield chan.recv()
            got.append((sim.now, msg))

        sim.process(p(sim))
        sim.run()
        assert got == [(2.0, "m")]

    def test_size_dependent_latency(self):
        sim = Simulator()
        chan = Channel(sim, latency_fn=lambda m: len(m) * 0.1)
        got = []

        def p(sim):
            chan.send(b"abcd")  # 0.4s
            msg = yield chan.recv()
            got.append((round(sim.now, 6), msg))

        sim.process(p(sim))
        sim.run()
        assert got == [(0.4, b"abcd")]

    def test_in_order_delivery_same_latency(self):
        sim = Simulator()
        chan = Channel(sim, latency_fn=lambda m: 1.0)
        got = []

        def p(sim):
            chan.send(1)
            chan.send(2)
            chan.send(3)
            for _ in range(3):
                got.append((yield chan.recv()))

        sim.process(p(sim))
        sim.run()
        assert got == [1, 2, 3]

    def test_negative_latency_rejected(self):
        sim = Simulator()
        chan = Channel(sim, latency_fn=lambda m: -1.0)
        with pytest.raises(SimulationError):
            chan.send("x")

    def test_counters(self):
        sim = Simulator()
        chan = Channel(sim, latency_fn=lambda m: 0.5)

        def p(sim):
            chan.send("a")
            chan.send("b")
            yield chan.recv()

        sim.process(p(sim))
        sim.run()
        assert chan.sent_count == 2
        assert chan.delivered_count == 2
        assert chan.pending() == 1
