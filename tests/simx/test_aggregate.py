"""The hybrid tier's contract: aggregation plans and hybrid-vs-full parity.

Three layers of guarantee, cheapest first:

* **plan algebra** -- :class:`AggregationPlan` partitions the leaf space,
  respects group alignment, keeps ragged tails exact, and its
  auto-expanded exact region always contains every special position
  (property-tested over random fault/tap placements);
* **topology construction** -- hybrid trees preserve the virtual leaf and
  daemon counts of the full trees they stand in for;
* **end-to-end parity** -- a hybrid fig6 launch matches the full
  simulation's virtual total within the model's error band with exact
  class counts, a hybrid stream delivers bit-identical wave payloads and
  final state, and the non-hybrid paths stay bit-identical run to run
  (the hybrid machinery must be invisible when off).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simx import AggregationError, AggregationPlan, auto_expand
from repro.tbon import TBONTopology


class TestPlanBuild:
    def test_partition_and_head_rounding(self):
        plan = AggregationPlan.build(64, exact_head=5, group=4)
        # head rounds up to a group boundary
        assert plan.exact_head == 8
        assert set(plan.exact) == set(range(8))
        assert plan.n_exact + plan.n_aggregated == 64
        [sub] = plan.subtrees
        assert (sub.leaf_lo, sub.leaf_hi, sub.n_contrib) == (8, 64, 14)

    def test_special_deaggregates_its_whole_group(self):
        plan = AggregationPlan.build(64, exact_head=8, special=(42,), group=8)
        assert set(range(40, 48)) <= set(plan.exact)
        assert all(not sub.covers(42) for sub in plan.subtrees)
        # the runs on either side of the special group stay aggregated
        assert {(s.leaf_lo, s.leaf_hi) for s in plan.subtrees} == \
            {(8, 40), (48, 64)}

    def test_ragged_tail_stays_exact(self):
        plan = AggregationPlan.build(1000, exact_head=16, group=16)
        tail = set(range(992, 1000))
        assert tail <= set(plan.exact)
        assert all(sub.leaf_hi <= 992 for sub in plan.subtrees)

    def test_fully_exact_when_head_covers_everything(self):
        plan = AggregationPlan.build(32, exact_head=32, group=4)
        assert plan.n_aggregated == 0 and not plan.subtrees

    def test_rejects_bad_inputs(self):
        with pytest.raises(AggregationError):
            AggregationPlan.build(0)
        with pytest.raises(AggregationError):
            AggregationPlan.build(8, group=0)
        with pytest.raises(AggregationError):
            AggregationPlan.build(8, special=(9,))

    def test_with_special_only_grows_the_exact_region(self):
        plan = AggregationPlan.build(256, exact_head=16, group=16)
        grown = plan.with_special(200)
        assert set(plan.exact) <= set(grown.exact)
        assert grown.is_exact(200)
        # already-exact specials are a no-op (same object back)
        assert grown.with_special(200) is grown


class TestAutoExpandProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_exact_region_always_contains_every_special(self, data):
        n_total = data.draw(st.integers(min_value=1, max_value=4096))
        group = data.draw(st.sampled_from((1, 2, 4, 8, 16)))
        exact_head = data.draw(st.integers(min_value=0, max_value=n_total))
        leaves = st.integers(min_value=0, max_value=n_total - 1)
        faults = data.draw(st.lists(leaves, max_size=6))
        taps = data.draw(st.lists(leaves, max_size=6))
        repairs = data.draw(st.lists(leaves, max_size=3))
        black = data.draw(st.lists(leaves, max_size=3))

        plan = auto_expand(
            AggregationPlan.build(n_total, exact_head=exact_head,
                                  group=group),
            fault_leaves=faults, tap_leaves=taps,
            repair_leaves=repairs, blacklisted=black)

        specials = set(faults) | set(taps) | set(repairs) | set(black)
        exact = set(plan.exact)
        assert specials <= exact
        # ...and each special pulled its whole group out of aggregation
        for leaf in specials:
            lo = (leaf // group) * group
            assert set(range(lo, min(lo + group, n_total))) <= exact
        # plan invariants: exact + subtree spans partition the leaf space
        covered = sorted(set(plan.exact) | {
            leaf for sub in plan.subtrees
            for leaf in range(sub.leaf_lo, sub.leaf_hi)})
        assert covered == list(range(n_total))
        assert plan.n_exact + plan.n_aggregated == n_total

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_hybrid_topologies_preserve_virtual_counts(self, data):
        fanout = data.draw(st.sampled_from((2, 4, 8, 16)))
        # grouped aggregation only makes sense with a real comm layer
        # (n_total > fanout); below that balanced() degenerates to one-deep
        n_total = data.draw(st.integers(min_value=fanout + 1,
                                        max_value=1024))
        exact_head = data.draw(st.integers(min_value=0, max_value=n_total))
        specials = data.draw(st.lists(
            st.integers(min_value=0, max_value=n_total - 1), max_size=4))

        flat_plan = auto_expand(
            AggregationPlan.build(n_total, exact_head=exact_head),
            tap_leaves=specials)
        flat = TBONTopology.hybrid_one_deep(flat_plan)
        assert flat.virtual_leaf_count() == n_total
        assert flat.virtual_daemon_count() == n_total
        assert len(flat.backends()) == flat_plan.n_exact

        grouped = auto_expand(
            AggregationPlan.build(n_total, exact_head=exact_head,
                                  group=fanout),
            tap_leaves=specials)
        tree = TBONTopology.hybrid_balanced(grouped, fanout)
        assert tree.virtual_leaf_count() == n_total
        full = TBONTopology.balanced(n_total, fanout)
        # same modeled daemon population as the full balanced tree
        assert tree.virtual_daemon_count() == full.size - 1


class TestHybridVsFullParity:
    def test_fig6_hybrid_matches_full_within_model_band(self):
        from repro.experiments.fig6 import measure_stat_startup

        full = measure_stat_startup(2048, "launchmon", tasks_per_daemon=1)
        hybrid = measure_stat_startup(2048, "launchmon", tasks_per_daemon=1,
                                      hybrid=True, exact_head=256)
        assert hybrid["classes"] == full["classes"]
        assert hybrid["n_tasks"] == full["n_tasks"]
        err = abs(hybrid["startup"].total - full["startup"].total) \
            / full["startup"].total
        assert err < 0.05, f"hybrid fig6 off by {err:.2%}"
        # the hybrid point must actually be cheaper to simulate
        assert hybrid["sim_events"] < full["sim_events"]

    def test_stream_hybrid_delivers_bit_identical_waves(self):
        from repro.experiments.streaming import measure_stream

        for filter_name in ("histogram", "top_k", "ewma"):
            full = measure_stream(512, filter_name=filter_name, window=4,
                                  credit_limit=4, n_waves=6)
            hybrid = measure_stream(512, filter_name=filter_name, window=4,
                                    credit_limit=4, n_waves=6, hybrid=True,
                                    exact_head=64)
            assert hybrid["waves"] == full["waves"], filter_name
            assert hybrid["final_state"] == full["final_state"], filter_name
            assert hybrid["delivered"] == full["delivered"]
            assert hybrid["sim_events"] < full["sim_events"]
            err = abs(hybrid["throughput"] - full["throughput"]) \
                / full["throughput"]
            assert err < 0.05, f"{filter_name} throughput off by {err:.2%}"

    def test_stream_hybrid_exact_on_ragged_leaf_count(self):
        from repro.experiments.streaming import measure_stream

        full = measure_stream(500, filter_name="histogram", window=4,
                              credit_limit=4, n_waves=4)
        hybrid = measure_stream(500, filter_name="histogram", window=4,
                                credit_limit=4, n_waves=4, hybrid=True,
                                exact_head=64)
        assert hybrid["waves"] == full["waves"]
        assert hybrid["final_state"] == full["final_state"]

    def test_non_hybrid_paths_stay_bit_identical(self):
        from repro.experiments.fig6 import measure_stat_startup
        from repro.experiments.streaming import measure_stream

        a = measure_stat_startup(512, "launchmon", tasks_per_daemon=1)
        b = measure_stat_startup(512, "launchmon", tasks_per_daemon=1)
        assert a["startup"].total == b["startup"].total
        assert a["sim_events"] == b["sim_events"]
        sa = measure_stream(128, n_waves=4)
        sb = measure_stream(128, n_waves=4)
        assert sa["total_latency"] == sb["total_latency"]
        assert sa["waves"] == sb["waves"]
