"""Fast-lane determinism spec + O(1) interrupt-detach regressions.

The same-time FIFO lanes must be *invisible*: any program run under
``Simulator(fast_lane=True)`` (the default) and under
``Simulator(fast_lane=False)`` (the pure-heap pre-optimization scheduler)
must fire the exact same events in the exact same ``(time, priority,
seq)`` order. The hypothesis spec below generates random DAGs of
timeouts, manually-triggered events, process spawns and interrupts and
compares full firing traces recorded through the ``Simulator.trace``
hook.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simx import Interrupt, SimulationError, Simulator


def record_trace(sim):
    """Attach a trace hook; returns the list it appends to."""
    trace = []
    sim.trace = lambda when, prio, seq, event: trace.append(
        (when, prio, seq, type(event).__name__))
    return trace


# ---------------------------------------------------------------------------
# the hypothesis determinism spec
# ---------------------------------------------------------------------------

OPS = ("spawn", "succeed", "interrupt", "tick", "gate")

op_strategy = st.lists(
    st.tuples(st.sampled_from(OPS), st.integers(min_value=0, max_value=7)),
    min_size=1, max_size=40)


def _worker(sim, gates, plan):
    """A worker that waits on a mix of gates and timeouts, absorbing
    interrupts (each absorbed interrupt skips to the next wait)."""
    for kind, idx in plan:
        try:
            if kind == "gate":
                yield gates[idx % len(gates)]
            else:
                yield sim.timeout(0.25 * idx)
        except Interrupt:
            continue
    return "done"


def _run_script(script, fast_lane):
    """Execute one generated script; return the full firing trace."""
    sim = Simulator(fast_lane=fast_lane)
    trace = record_trace(sim)
    gates = [sim.event() for _ in range(3)]
    workers = []

    def driver():
        for op, a in script:
            if op == "spawn":
                plan = [("gate", a), ("t", a % 3), ("gate", a + 1)]
                workers.append(
                    sim.process(_worker(sim, gates, plan)))
            elif op == "succeed":
                gate = gates[a % len(gates)]
                if not gate.triggered:
                    gate.succeed(a)
            elif op == "interrupt":
                if workers:
                    w = workers[a % len(workers)]
                    if w.is_alive:
                        w.defuse()
                        w.interrupt(("why", a))
            elif op == "tick":
                yield sim.timeout(0.25 * (a % 3))  # 0 is a valid delay
            elif op == "gate":
                gates.append(sim.event())
        return len(workers)

    sim.process(driver())
    sim.run()
    return trace, sim.stats


class TestDeterminismSpec:
    @given(op_strategy)
    @settings(max_examples=60, deadline=None)
    def test_fast_lane_trace_identical_to_pure_heap(self, script):
        fast_trace, fast_stats = _run_script(script, fast_lane=True)
        heap_trace, heap_stats = _run_script(script, fast_lane=False)
        assert fast_trace == heap_trace
        # same events processed; the fast kernel routed the zero-delay
        # share through the lanes, the pure-heap kernel through the heap
        assert fast_stats.events == heap_stats.events
        assert heap_stats.fast_events == 0

    def test_same_time_events_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            ev = sim.event()
            ev.callbacks.append(lambda e, tag=tag: fired.append(tag))
            ev.succeed()
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_urgent_beats_normal_at_same_time(self):
        # a process bootstrap (URGENT) scheduled *after* a zero-delay
        # NORMAL event still fires first -- the heap contract
        sim = Simulator()
        fired = []
        ev = sim.event()
        ev.callbacks.append(lambda e: fired.append("normal"))
        ev.succeed()

        def proc():
            fired.append("bootstrap")
            yield sim.timeout(0)

        sim.process(proc())
        sim.run()
        assert fired == ["bootstrap", "normal"]

    def test_zero_delay_interleaves_with_same_time_heap_entries(self):
        # two timeouts land at t=1; the first one's callback schedules a
        # zero-delay event, which must fire *after* the second timeout
        # (smaller seq) -- exactly the pure-heap order
        sim = Simulator()
        fired = []
        t_a = sim.timeout(1.0)
        t_b = sim.timeout(1.0)

        def on_a(e):
            fired.append("a")
            late = sim.event()
            late.callbacks.append(lambda e: fired.append("late"))
            late.succeed()

        t_a.callbacks.append(on_a)
        t_b.callbacks.append(lambda e: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "late"]


# ---------------------------------------------------------------------------
# kernel stats / trace / scheduling surface
# ---------------------------------------------------------------------------

class TestKernelStats:
    def test_counters_split_fast_and_heap(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.event().succeed()
        sim.run()
        assert sim.stats.events == 2
        assert sim.stats.fast_events == 1
        assert sim.stats.heap_pushes == 1
        assert sim.stats.heap_high_water == 1

    def test_fast_lane_disabled_pushes_everything(self):
        sim = Simulator(fast_lane=False)
        sim.event().succeed()
        sim.run()
        assert sim.stats.fast_events == 0
        assert sim.stats.heap_pushes == 1

    def test_wall_time_accumulates_and_rates(self):
        sim = Simulator()
        for _ in range(100):
            sim.event().succeed()
        sim.run()
        assert sim.stats.wall_time > 0
        assert sim.stats.events_per_sec() > 0
        d = sim.stats.as_dict()
        assert d["events"] == 100 and "events_per_sec" in d

    def test_peek_sees_lane_and_heap(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.timeout(3.0)
        assert sim.peek() == 3.0
        sim.event().succeed()
        assert sim.peek() == 0.0  # the lane head is due *now*
        sim.step()
        assert sim.peek() == 3.0

    def test_step_drains_lanes_before_future_heap(self):
        sim = Simulator()
        t = sim.timeout(1.0)
        ev = sim.event().succeed()
        sim.step()
        assert ev.processed and not t.processed and sim.now == 0.0
        sim.step()
        assert t.processed and sim.now == 1.0
        with pytest.raises(SimulationError):
            sim.step()

    def test_run_until_drains_due_lane_then_stops(self):
        sim = Simulator()
        fired = []
        sim.event().callbacks.append(lambda e: fired.append("x"))
        ev = sim.event()
        ev.callbacks.append(lambda e: fired.append("now"))
        ev.succeed()
        sim.timeout(5.0).callbacks.append(lambda e: fired.append("later"))
        sim.run(until=1.0)
        assert fired == ["now"] and sim.now == 1.0


# ---------------------------------------------------------------------------
# O(1) interrupt detach (waiter tombstones)
# ---------------------------------------------------------------------------

def _gate_waiter(gate):
    try:
        value = yield gate
    except Interrupt:
        return "interrupted"
    return value


class TestInterruptTombstone:
    def test_interrupt_does_not_scan_or_shrink_callback_list(self):
        sim = Simulator()
        gate = sim.event()
        procs = [sim.process(_gate_waiter(gate)) for _ in range(100)]
        sim.run()  # park all waiters
        n_subscribed = len(gate.callbacks)
        procs[37].interrupt("one down")
        # detach is a tombstone, not a list.remove: same list length
        assert len(gate.callbacks) == n_subscribed
        sim.run()
        gate.succeed("go")
        sim.run()
        assert procs[37].value == "interrupted"
        for i, p in enumerate(procs):
            if i != 37:
                assert p.value == "go"

    def test_interrupt_storm_on_shared_gate(self):
        # every waiter of a go-broadcast gate torn down at once; the gate
        # later firing must resume nobody
        sim = Simulator()
        gate = sim.event()
        procs = [sim.process(_gate_waiter(gate)) for _ in range(500)]
        sim.run()
        for p in procs:
            p.interrupt("teardown")
        sim.run()
        assert all(p.value == "interrupted" for p in procs)
        gate.succeed("too late")
        sim.run()  # tombstoned waiters: no resurrection, no crash
        assert all(p.value == "interrupted" for p in procs)

    def test_interrupt_before_bootstrap_detaches_at_delivery(self):
        # interrupt() called in the same instant the process is created,
        # before its bootstrap event fires: the process only subscribes
        # to its first target *after* the interrupt was requested, so the
        # detach must happen at interrupt *delivery* -- otherwise the
        # first target stays subscribed and resumes the process a second
        # time with a stale value
        sim = Simulator()
        gate, second = sim.event(), sim.event()
        out = []

        def body():
            try:
                out.append(("got", (yield gate)))
            except Interrupt:
                out.append("interrupted")
            out.append((yield second))

        proc = sim.process(body())
        proc.interrupt("early")  # before _Initialize has run
        sim.run()
        assert out == ["interrupted"]
        gate.succeed("stale")
        sim.run()  # the old subscription must be a tombstone by now
        assert out == ["interrupted"]
        second.succeed("fresh")
        sim.run()
        assert out == ["interrupted", "fresh"] and proc.triggered

    def test_reuse_after_interrupt_subscribes_fresh_waiter(self):
        # an interrupted process that waits again must get woken by its
        # *new* target, never by the old one
        sim = Simulator()
        first, second = sim.event(), sim.event()
        out = []

        def body():
            try:
                yield first
                out.append("first?!")
            except Interrupt:
                out.append("interrupted")
            value = yield second
            out.append(value)

        proc = sim.process(body())
        sim.run()
        proc.interrupt()
        sim.run()
        first.succeed("stale")
        sim.run()
        assert out == ["interrupted"]  # the stale gate resumed nothing
        second.succeed("fresh")
        sim.run()
        assert out == ["interrupted", "fresh"]
        assert proc.triggered
