"""Tests for deterministic hierarchical RNG streams."""

from repro.simx import SeededRNG


class TestSeededRNG:
    def test_same_seed_same_stream(self):
        a = SeededRNG(5).uniform(0, 1)
        b = SeededRNG(5).uniform(0, 1)
        assert a == b

    def test_different_seeds_differ(self):
        assert SeededRNG(1).uniform(0, 1) != SeededRNG(2).uniform(0, 1)

    def test_child_streams_independent_of_sibling_creation(self):
        root = SeededRNG(9)
        x = root.child("net").uniform(0, 1)
        # creating another sibling first must not perturb "net"
        root2 = SeededRNG(9)
        _ = root2.child("fs")
        y = root2.child("net").uniform(0, 1)
        assert x == y

    def test_child_path_distinguishes(self):
        root = SeededRNG(3)
        assert root.child("a").uniform(0, 1) != root.child("b").uniform(0, 1)

    def test_nested_children(self):
        a = SeededRNG(1).child("x").child("y").random()
        b = SeededRNG(1).child("x").child("y").random()
        assert a == b

    def test_jitter_bounds(self):
        rng = SeededRNG(7)
        for _ in range(200):
            v = rng.jitter(1.0, rel=0.1)
            assert 0.9 <= v <= 1.1

    def test_jitter_zero_base(self):
        assert SeededRNG(1).jitter(0.0) == 0.0
        assert SeededRNG(1).jitter(-1.0) == 0.0

    def test_jitter_never_negative(self):
        rng = SeededRNG(11)
        for _ in range(100):
            assert rng.jitter(1e-9, rel=2.0) >= 0.0

    def test_randint_choice_shuffle(self):
        rng = SeededRNG(13)
        assert 1 <= rng.randint(1, 3) <= 3
        assert rng.choice(["a", "b"]) in ("a", "b")
        seq = list(range(10))
        rng.shuffle(seq)
        assert sorted(seq) == list(range(10))
