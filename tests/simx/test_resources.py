"""Tests for the counted FIFO Resource."""

import pytest

from repro.simx import Resource, SimulationError, Simulator


class TestResource:
    def test_grant_within_capacity_is_immediate(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        grants = []

        def p(sim, tag):
            yield res.request()
            grants.append((tag, sim.now))

        sim.process(p(sim, "a"))
        sim.process(p(sim, "b"))
        sim.run()
        assert grants == [("a", 0.0), ("b", 0.0)]
        assert res.in_use == 2

    def test_waiter_blocks_until_release(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def holder(sim):
            yield res.request()
            yield sim.timeout(5)
            res.release()

        def waiter(sim):
            yield sim.timeout(1)
            yield res.request()
            log.append(sim.now)

        sim.process(holder(sim))
        sim.process(waiter(sim))
        sim.run()
        assert log == [5.0]

    def test_fifo_grant_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def holder(sim):
            yield res.request()
            yield sim.timeout(1)
            res.release()

        def waiter(sim, tag, releases):
            yield res.request()
            order.append(tag)
            if releases:
                res.release()

        sim.process(holder(sim))
        sim.process(waiter(sim, "w1", True))
        sim.process(waiter(sim, "w2", True))
        sim.process(waiter(sim, "w3", False))
        sim.run()
        assert order == ["w1", "w2", "w3"]

    def test_try_request_nonblocking(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        assert res.try_request() is True
        assert res.try_request() is False
        res.release()
        assert res.try_request() is True

    def test_release_idle_raises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_high_water_mark(self):
        sim = Simulator()
        res = Resource(sim, capacity=4)
        for _ in range(3):
            assert res.try_request()
        res.release()
        assert res.max_in_use == 3
        assert res.available == 2

    def test_serialization_makes_total_time_linear(self):
        """N unit-time jobs through capacity-1 resource take N time units --
        the shared-filesystem contention model depends on this."""
        sim = Simulator()
        res = Resource(sim, capacity=1)
        finish = []

        def job(sim):
            yield res.request()
            yield sim.timeout(1.0)
            res.release()
            finish.append(sim.now)

        for _ in range(5):
            sim.process(job(sim))
        sim.run()
        assert finish == [1.0, 2.0, 3.0, 4.0, 5.0]
