"""Unit tests for the DES kernel: events, processes, conditions, clock."""

import pytest

from repro.simx import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(2.5)

        sim.process(p(sim))
        sim.run()
        assert sim.now == 2.5

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()
        seen = []

        def p(sim):
            yield sim.timeout(1.0)
            seen.append(sim.now)
            yield sim.timeout(0.5)
            seen.append(sim.now)

        sim.process(p(sim))
        sim.run()
        assert seen == [1.0, 1.5]

    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(10.0)

        sim.process(p(sim))
        sim.run(until=4.0)
        assert sim.now == 4.0
        sim.run()  # drain the rest
        assert sim.now == 10.0

    def test_run_until_past_raises(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(5.0)

        sim.process(p(sim))
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_peek_reports_next_event_time(self):
        sim = Simulator()
        sim.timeout(3.0)
        assert sim.peek() == 3.0

    def test_peek_empty_is_inf(self):
        assert Simulator().peek() == float("inf")

    def test_step_on_empty_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()


class TestEvent:
    def test_succeed_carries_value(self):
        sim = Simulator()
        ev = sim.event()
        results = []

        def p(sim, ev):
            value = yield ev
            results.append(value)

        sim.process(p(sim, ev))
        ev.succeed("payload")
        sim.run()
        assert results == ["payload"]

    def test_double_succeed_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_propagates_into_waiter(self):
        sim = Simulator()
        ev = sim.event()
        caught = []

        def p(sim, ev):
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(p(sim, ev))
        ev.fail(ValueError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_fail_requires_exception_instance(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_unhandled_failure_raises_at_run(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError, match="lost"):
            sim.run()

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_yield_already_processed_event_continues(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(7)
        sim.run()
        assert ev.processed
        got = []

        def p(sim, ev):
            v = yield ev  # already processed: must not deadlock
            got.append(v)

        sim.process(p(sim, ev))
        sim.run()
        assert got == [7]


class TestProcess:
    def test_process_value_is_return(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(1)
            return 42

        proc = sim.process(p(sim))
        sim.run()
        assert proc.value == 42

    def test_process_is_waitable_event(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(2)
            return "done"

        def parent(sim):
            result = yield sim.process(child(sim))
            return ("parent saw", result)

        proc = sim.process(parent(sim))
        sim.run()
        assert proc.value == ("parent saw", "done")

    def test_exception_propagates_to_waiter(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(1)
            raise KeyError("inner")

        def parent(sim):
            try:
                yield sim.process(child(sim))
            except KeyError:
                return "caught"

        proc = sim.process(parent(sim))
        sim.run()
        assert proc.value == "caught"

    def test_unobserved_process_exception_surfaces(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(1)
            raise RuntimeError("unobserved")

        sim.process(p(sim))
        with pytest.raises(RuntimeError, match="unobserved"):
            sim.run()

    def test_yield_non_event_raises(self):
        sim = Simulator()

        def p(sim):
            yield 42

        sim.process(p(sim))
        with pytest.raises(SimulationError, match="non-event"):
            sim.run()

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_interrupt_delivers_cause(self):
        sim = Simulator()
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        proc = sim.process(sleeper(sim))

        def interrupter(sim, proc):
            yield sim.timeout(1)
            proc.interrupt("wakeup")

        sim.process(interrupter(sim, proc))
        sim.run()
        assert log == [(1.0, "wakeup")]

    def test_interrupt_finished_process_raises(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(1)

        proc = sim.process(p(sim))
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_is_alive_transitions(self):
        sim = Simulator()

        def p(sim):
            yield sim.timeout(1)

        proc = sim.process(p(sim))
        assert proc.is_alive
        sim.run()
        assert not proc.is_alive


class TestDeterminism:
    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []

        def maker(tag):
            def p(sim):
                yield sim.timeout(1.0)
                order.append(tag)
            return p

        for tag in ("a", "b", "c", "d"):
            sim.process(maker(tag)(sim))
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_two_identical_runs_identical_traces(self):
        def build():
            sim = Simulator()
            trace = []

            def p(sim, k):
                for i in range(3):
                    yield sim.timeout(0.1 * k)
                    trace.append((round(sim.now, 6), k, i))

            for k in (1, 2, 3):
                sim.process(p(sim, k))
            sim.run()
            return trace

        assert build() == build()


class TestConditions:
    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        done = []

        def p(sim):
            t1, t2 = sim.timeout(1), sim.timeout(3)
            yield sim.all_of([t1, t2])
            done.append(sim.now)

        sim.process(p(sim))
        sim.run()
        assert done == [3.0]

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        done = []

        def p(sim):
            yield sim.any_of([sim.timeout(5), sim.timeout(2)])
            done.append(sim.now)

        sim.process(p(sim))
        sim.run()
        assert done == [2.0]

    def test_all_of_empty_triggers_immediately(self):
        sim = Simulator()
        done = []

        def p(sim):
            yield sim.all_of([])
            done.append(sim.now)

        sim.process(p(sim))
        sim.run()
        assert done == [0.0]

    def test_all_of_collects_values(self):
        sim = Simulator()
        out = {}

        def p(sim):
            t1 = sim.timeout(1, value="one")
            t2 = sim.timeout(2, value="two")
            result = yield sim.all_of([t1, t2])
            out.update({"vals": sorted(str(v) for v in result.values())})

        sim.process(p(sim))
        sim.run()
        assert out["vals"] == ["one", "two"]

    def test_all_of_over_processes(self):
        sim = Simulator()

        def worker(sim, d):
            yield sim.timeout(d)
            return d

        def coordinator(sim):
            procs = [sim.process(worker(sim, d)) for d in (3, 1, 2)]
            yield sim.all_of(procs)
            return [p.value for p in procs]

        proc = sim.process(coordinator(sim))
        sim.run()
        assert proc.value == [3, 1, 2]
        assert sim.now == 3.0
