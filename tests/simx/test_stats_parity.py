"""SimStats parity: the counters stay truthful when fast_lane is off.

``test_fast_lane.py`` proves the *traces* match between the lane kernel
and the pure-heap kernel; this file pins down the *accounting*: under
either scheduler every processed event is counted exactly once, the
lane/heap split adds up, and a realistic subsystem workload (a TBON
stream over a cluster network) reports identical totals in both modes.
"""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.simx import Simulator
from repro.tbon import Overlay, TBONTopology
from repro.tbon.overlay import StreamSpec


def _mixed_workload(sim):
    """Timeouts, zero-delay churn and interrupts; drains completely."""
    gates = [sim.event() for _ in range(4)]

    def waiter(gate):
        try:
            yield gate
        except BaseException:
            return
        yield sim.timeout(0)

    workers = [sim.process(waiter(gates[i % 4])) for i in range(12)]

    def driver():
        for i, gate in enumerate(gates):
            yield sim.timeout(0.5 * i)
            gate.succeed(i)
        yield sim.timeout(1.0)

    sim.process(driver())
    sim.run()
    assert all(w.processed for w in workers)


def _stream_workload(sim, n_leaves=32, n_waves=5):
    """A credit-flow-controlled stream run, the kernel's real customer."""
    topo = TBONTopology.balanced(n_leaves, fanout=8)
    comms = topo.comm_positions()
    cluster = Cluster(sim, ClusterSpec(n_compute=topo.size, seed=3))
    placement = {0: cluster.front_end}
    for i, pos in enumerate(comms):
        placement[pos] = cluster.compute[i]
    for i, pos in enumerate(topo.backends()):
        placement[pos] = cluster.compute[len(comms) + i]
    overlay = Overlay(sim, cluster.network, topo, placement, streams={})
    overlay.start_routers()
    stream = overlay.open_stream(StreamSpec(7, "sum", credit_limit=2))

    def leaf(pos):
        for wave in range(n_waves):
            yield from stream.publish(pos, wave, 1)

    for pos in topo.backends():
        sim.process(leaf(pos), name=f"leaf:{pos}")

    def subscriber():
        for _ in range(n_waves):
            yield from stream.next_wave()

    done = sim.process(subscriber())
    sim.run(until=600)
    assert done.triggered


@pytest.mark.parametrize("workload", [_mixed_workload, _stream_workload],
                         ids=["mixed", "stream"])
class TestStatsParity:
    def test_event_totals_match_across_schedulers(self, workload):
        fast, heap = Simulator(fast_lane=True), Simulator(fast_lane=False)
        workload(fast)
        workload(heap)
        assert fast.stats.events == heap.stats.events
        assert fast.now == heap.now

    def test_heap_mode_routes_nothing_through_lanes(self, workload):
        sim = Simulator(fast_lane=False)
        workload(sim)
        assert sim.stats.fast_events == 0
        # a fully drained run: every processed event was heap-pushed
        assert sim.stats.heap_pushes == sim.stats.events

    def test_fast_mode_split_accounts_for_every_event(self, workload):
        sim = Simulator(fast_lane=True)
        workload(sim)
        stats = sim.stats
        assert stats.fast_events > 0
        # drained run: lane pops + heap pushes cover all processed events
        assert stats.fast_events + stats.heap_pushes == stats.events

    def test_lanes_shrink_the_heap_high_water(self, workload):
        fast, heap = Simulator(fast_lane=True), Simulator(fast_lane=False)
        workload(fast)
        workload(heap)
        assert fast.stats.heap_high_water <= heap.stats.heap_high_water
        assert heap.stats.heap_high_water > 0

    def test_as_dict_reports_both_modes(self, workload):
        for fast_lane in (True, False):
            sim = Simulator(fast_lane=fast_lane)
            workload(sim)
            d = sim.stats.as_dict()
            assert d["events"] == sim.stats.events
            assert d["fast_events"] == sim.stats.fast_events
            assert d["heap_pushes"] == sim.stats.heap_pushes
            assert d["heap_high_water"] == sim.stats.heap_high_water
            assert d["live_high_water"] == sim.stats.live_high_water
            assert d["peak_rss_kb"] == sim.stats.peak_rss_kb
            assert sim.stats.wall_time >= 0.0

    def test_live_high_water_bounds_the_heap_high_water(self, workload):
        for fast_lane in (True, False):
            sim = Simulator(fast_lane=fast_lane)
            workload(sim)
            stats = sim.stats
            # the live footprint covers the heap plus both lanes, so it
            # can never sit below the heap-only high water
            assert stats.live_high_water >= stats.heap_high_water
            assert stats.live_high_water > 0

    def test_peak_rss_sampled_after_run(self, workload):
        pytest.importorskip("resource")
        sim = Simulator()
        workload(sim)
        # any real process has a nonzero max RSS once run() returned
        assert sim.stats.peak_rss_kb > 0
