"""Tests for the TBON extensions: multi-level STAT and Jobsnap-over-TBON.

These cover the paper's future-work directions: communication daemons
launched through the MW API for deeper topologies, and TBON-based
collection for Jobsnap (Section 5.1's closing remark).
"""

import pytest

from repro.apps import make_compute_app, make_hang_app
from repro.runner import drive, make_env
from repro.tbon import TBONTopology
from repro.tools.jobsnap import run_jobsnap, run_jobsnap_tbon
from repro.tools.stat_tool import run_stat_launchmon


class TestMultiLevelStat:
    def test_balanced_topology_same_answer_as_flat(self):
        """Reduction through comm daemons is lossless."""
        n = 16
        app = make_hang_app(n_tasks=8 * n, tasks_per_node=8,
                            stuck_ranks=(5,), deadlocked_pair=True)

        def run(topology):
            env = make_env(n_compute=n + 8)
            box = {}

            def s(env=env, box=box):
                job = yield from env.rm.launch_job(app, env.rm.allocate(n))
                box["r"] = yield from run_stat_launchmon(
                    env.cluster, env.rm, job, topology=topology)

            drive(env, s())
            return box["r"]

        flat = run(None)
        deep = run(TBONTopology.balanced(n, fanout=4))
        assert flat.tree == deep.tree
        assert flat.classes == deep.classes

    def test_comm_daemons_on_extra_nodes(self):
        n = 8
        app = make_hang_app(n_tasks=8 * n, tasks_per_node=8)
        env = make_env(n_compute=n + 4)
        box = {}

        def s(env=env, box=box):
            job = yield from env.rm.launch_job(app, env.rm.allocate(n))
            box["r"] = yield from run_stat_launchmon(
                env.cluster, env.rm, job,
                topology=TBONTopology.balanced(n, fanout=4))
            box["mw_procs"] = [
                node for node in env.cluster.compute
                if node.processes_of("mrnet_commnode")]

        drive(env, s())
        # two comm daemons for 8 BEs at fanout 4, on non-job nodes
        assert len(box["mw_procs"]) == 2
        assert box["r"].tree.all_ranks == set(range(64))


class TestJobsnapTbon:
    def _run_both(self, n, n_waves=1):
        app = make_compute_app(n_tasks=8 * n, tasks_per_node=8)

        env = make_env(n_compute=n)
        box = {}

        def classic(env=env, box=box):
            job = yield from env.rm.launch_job(app, env.rm.allocate(n))
            box["r"] = yield from run_jobsnap(env.cluster, env.rm, job)

        drive(env, classic())
        c = box["r"]

        env = make_env(n_compute=n + max(2, n // 16))
        box = {}

        def tbon(env=env, box=box):
            job = yield from env.rm.launch_job(app, env.rm.allocate(n))
            box["r"] = yield from run_jobsnap_tbon(
                env.cluster, env.rm, job, n_waves=n_waves)

        drive(env, tbon())
        return c, box["r"]

    def test_identical_reports(self):
        classic, tbon = self._run_both(8)
        assert ([s.to_tuple() for s in classic.report.snapshots]
                == [s.to_tuple() for s in tbon.report.snapshots])

    def test_collection_phase_much_faster(self):
        classic, tbon = self._run_both(32)
        classic_collect = classic.t_total - classic.t_launchmon
        tbon_collect = tbon.component_times["t_collect_per_wave"]
        assert tbon_collect < classic_collect / 2

    def test_repeated_waves_cheaper_than_startup(self):
        _, tbon = self._run_both(16, n_waves=4)
        per_wave = tbon.component_times["t_collect_per_wave"]
        assert per_wave * 4 < tbon.t_launchmon

    def test_daemon_count_includes_comm_layer(self):
        _, tbon = self._run_both(32)
        assert tbon.n_daemons == 32 + 2  # 32 BEs + ceil(32/16) comm daemons


class TestAblationA4:
    def test_runner_shape(self):
        from repro.experiments import run_ablation_jobsnap_tbon
        r = run_ablation_jobsnap_tbon(daemon_counts=(32,), n_waves=2)
        row = r.rows[0]
        assert row["collect_speedup"] > 2
        assert row["tbon_startup"] > row["iccl_startup"]
