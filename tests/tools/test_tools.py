"""Functional tests for the three case-study tools."""

import pytest

from repro.apps import make_compute_app, make_hang_app, make_io_heavy_app
from repro.runner import drive, make_env
from repro.tools.jobsnap import run_jobsnap
from repro.tools.oss import (
    DpclError,
    DpclInfrastructure,
    DpclInstrumentor,
    LaunchmonInstrumentor,
)
from repro.tools.stat_tool import run_stat_launchmon, run_stat_mrnet_native


def _with_job(n_nodes, app, body):
    env = make_env(n_compute=n_nodes)
    box = {}

    def scenario(env):
        job = yield from env.rm.launch_job(app, env.rm.allocate(n_nodes))
        yield from body(env, job, box)

    drive(env, scenario(env))
    return box


class TestJobsnap:
    def test_one_line_per_task(self):
        app = make_compute_app(n_tasks=24, tasks_per_node=8)

        def body(env, job, box):
            box["r"] = yield from run_jobsnap(env.cluster, env.rm, job)

        box = _with_job(3, app, body)
        r = box["r"]
        assert len(r.report) == 24
        assert [s.rank for s in r.report.snapshots] == list(range(24))
        text = r.report.to_text()
        assert text.count("\n") == 24  # header + 24 lines

    def test_snapshot_fields_match_behavior(self):
        app = make_io_heavy_app(n_tasks=16, tasks_per_node=8)

        def body(env, job, box):
            box["r"] = yield from run_jobsnap(env.cluster, env.rm, job)

        box = _with_job(2, app, body)
        snaps = box["r"].report.snapshots
        writers = [s for s in snaps if s.rank % 8 == 0]
        others = [s for s in snaps if s.rank % 8 != 0]
        assert all(s.state == "D" for s in writers)
        assert all(s.vm_lck_kb == 4096 for s in writers)
        assert all(s.state == "S" for s in others)
        assert all(s.maj_flt == 900 for s in writers)

    def test_timing_split(self):
        app = make_compute_app(n_tasks=32, tasks_per_node=8)

        def body(env, job, box):
            box["r"] = yield from run_jobsnap(env.cluster, env.rm, job)

        box = _with_job(4, app, body)
        r = box["r"]
        assert 0 < r.t_launchmon < r.t_total
        assert r.n_daemons == 4
        assert r.n_tasks == 32

    def test_launchmon_dominates_runtime(self):
        """Fig 5's structure: most of Jobsnap's time is the launch span."""
        app = make_compute_app(n_tasks=64, tasks_per_node=8)

        def body(env, job, box):
            box["r"] = yield from run_jobsnap(env.cluster, env.rm, job)

        box = _with_job(8, app, body)
        r = box["r"]
        assert r.t_launchmon / r.t_total > 0.6


class TestStat:
    def _hang_app(self, n_tasks=32):
        return make_hang_app(n_tasks=n_tasks, tasks_per_node=8,
                             stuck_ranks=(3, 17), deadlocked_pair=True)

    def test_launchmon_finds_equivalence_classes(self):
        def body(env, job, box):
            box["r"] = yield from run_stat_launchmon(env.cluster, env.rm, job)

        box = _with_job(4, self._hang_app(), body)
        r = box["r"]
        classes = {path[-1]: ranks for path, ranks in r.classes}
        assert classes["MPI_Barrier"] == set(range(32)) - {0, 3, 17}
        assert classes["inner_loop"] == {3, 17}
        assert classes["MPI_Recv"] == {0}

    def test_native_and_launchmon_agree_on_tree(self):
        def lbody(env, job, box):
            box["r"] = yield from run_stat_launchmon(env.cluster, env.rm, job)

        def nbody(env, job, box):
            box["r"] = yield from run_stat_mrnet_native(env.cluster, env.rm,
                                                        job)

        box_l = _with_job(4, self._hang_app(), lbody)
        box_n = _with_job(4, self._hang_app(), nbody)
        assert box_l["r"].tree == box_n["r"].tree

    def test_launchmon_startup_much_faster_at_scale(self):
        n = 32

        def lbody(env, job, box):
            box["r"] = yield from run_stat_launchmon(env.cluster, env.rm, job)

        def nbody(env, job, box):
            box["r"] = yield from run_stat_mrnet_native(env.cluster, env.rm,
                                                        job)

        t_l = _with_job(n, self._hang_app(8 * n), lbody)["r"].startup.total
        t_n = _with_job(n, self._hang_app(8 * n), nbody)["r"].startup.total
        assert t_n > 5 * t_l

    def test_all_ranks_covered(self):
        def body(env, job, box):
            box["r"] = yield from run_stat_launchmon(env.cluster, env.rm, job)

        box = _with_job(4, self._hang_app(), body)
        assert box["r"].tree.all_ranks == set(range(32))


class TestOss:
    def test_apai_tables_identical(self):
        app = make_compute_app(n_tasks=16, tasks_per_node=8)

        def body(env, job, box):
            dpcl = DpclInfrastructure(env.cluster)
            yield from dpcl.preinstall()
            old = DpclInstrumentor(env.cluster, dpcl)
            new = LaunchmonInstrumentor(env.cluster, env.rm)
            box["dpcl"] = yield from old.acquire_apai(job)
            box["lmon"] = yield from new.acquire_apai(job)

        box = _with_job(2, app, body)
        assert box["dpcl"].proctable == box["lmon"].proctable
        assert len(box["lmon"].proctable) == 16

    def test_dpcl_roughly_constant_and_slow(self):
        app = make_compute_app(n_tasks=16, tasks_per_node=8)

        def body(env, job, box):
            dpcl = DpclInfrastructure(env.cluster)
            yield from dpcl.preinstall()
            old = DpclInstrumentor(env.cluster, dpcl)
            box["r"] = yield from old.acquire_apai(job)

        box = _with_job(2, app, body)
        assert 30 < box["r"].t_access < 40  # the ~34 s constant
        assert box["r"].used_root_daemons

    def test_launchmon_subsecond_and_rootless(self):
        app = make_compute_app(n_tasks=16, tasks_per_node=8)

        def body(env, job, box):
            new = LaunchmonInstrumentor(env.cluster, env.rm)
            box["r"] = yield from new.acquire_apai(job)

        box = _with_job(2, app, body)
        assert box["r"].t_access < 1.0
        assert not box["r"].used_root_daemons

    def test_dpcl_requires_preinstalled_daemons(self):
        app = make_compute_app(n_tasks=8, tasks_per_node=8)

        def body(env, job, box):
            dpcl = DpclInfrastructure(env.cluster)  # NOT preinstalled
            old = DpclInstrumentor(env.cluster, dpcl)
            try:
                yield from old.acquire_apai(job)
            except DpclError as exc:
                box["err"] = str(exc)

        box = _with_job(1, app, body)
        assert "root" in box["err"]

    def test_dpcl_daemons_run_as_root(self):
        env = make_env(n_compute=2)
        box = {}

        def scenario(env):
            dpcl = DpclInfrastructure(env.cluster)
            yield from dpcl.preinstall()
            box["root"] = all(
                dpcl.is_root_daemon(n) for n in env.cluster.nodes)

        drive(env, scenario(env))
        assert box["root"]
