"""Tests for STAT's call-graph prefix tree."""

import pytest

from repro.tools.stat_tool import PrefixTree, merge_trees


def build(samples):
    t = PrefixTree()
    for stack, rank in samples:
        t.insert(stack, rank)
    return t


BARRIER = ("_start", "main", "do_work", "MPI_Barrier")
COMPUTE = ("_start", "main", "do_work", "compute_kernel", "inner_loop")
RECV = ("_start", "main", "do_work", "exchange", "MPI_Recv")


class TestInsertAndQuery:
    def test_single_stack(self):
        t = build([(BARRIER, 0)])
        assert t.paths() == [(BARRIER, frozenset({0}))]
        assert t.all_ranks == {0}

    def test_shared_prefix_not_duplicated(self):
        t = build([(BARRIER, 0), (COMPUTE, 1)])
        # shared: _start, main, do_work; distinct: MPI_Barrier vs
        # compute_kernel/inner_loop
        assert t.node_count() == 3 + 1 + 2

    def test_ranks_propagate_along_prefix(self):
        t = build([(BARRIER, 0), (COMPUTE, 1), (BARRIER, 2)])
        assert t.ranks_at(("_start", "main", "do_work")) == {0, 1, 2}
        assert t.ranks_at(BARRIER) == {0, 2}
        assert t.ranks_at(COMPUTE) == {1}

    def test_ranks_at_missing_path_empty(self):
        t = build([(BARRIER, 0)])
        assert t.ranks_at(("nope",)) == frozenset()

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            PrefixTree().insert([], 0)

    def test_equivalence_classes_largest_first(self):
        samples = [(BARRIER, r) for r in range(6)]
        samples += [(COMPUTE, 6)]
        samples += [(RECV, 7)]
        classes = build(samples).equivalence_classes()
        assert classes[0] == (BARRIER, frozenset(range(6)))
        assert len(classes) == 3

    def test_classes_partition_ranks(self):
        samples = ([(BARRIER, r) for r in range(5)]
                   + [(COMPUTE, 5), (COMPUTE, 6)])
        classes = build(samples).equivalence_classes()
        all_ranks = [r for _, ranks in classes for r in ranks]
        assert sorted(all_ranks) == list(range(7))


class TestMerge:
    def test_merge_unions_ranks(self):
        a = build([(BARRIER, 0)])
        b = build([(BARRIER, 1)])
        a.merge(b)
        assert a.ranks_at(BARRIER) == {0, 1}

    def test_merge_disjoint_paths(self):
        a = build([(BARRIER, 0)])
        b = build([(COMPUTE, 1)])
        a.merge(b)
        assert len(a.paths()) == 2

    def test_merge_trees_helper(self):
        trees = [build([(BARRIER, r)]) for r in range(10)]
        merged = merge_trees(trees)
        assert merged.ranks_at(BARRIER) == set(range(10))

    def test_merge_order_irrelevant(self):
        parts = [build([(BARRIER, 0), (COMPUTE, 1)]),
                 build([(RECV, 2)]),
                 build([(BARRIER, 3)])]
        ab = merge_trees(parts)
        ba = merge_trees(reversed(parts))
        assert ab == ba

    def test_merge_idempotent(self):
        a = build([(BARRIER, 0), (COMPUTE, 1)])
        b = a.copy().merge(a.copy())
        assert b.paths() == a.paths()


class TestWireForm:
    def test_roundtrip(self):
        t = build([(BARRIER, 0), (COMPUTE, 1), (RECV, 2)])
        back = PrefixTree.from_dict(t.to_dict())
        assert back == t
        assert back.paths() == t.paths()

    def test_dict_is_jsonable(self):
        import json
        t = build([(BARRIER, 0)])
        assert json.loads(json.dumps(t.to_dict())) == t.to_dict()

    def test_filter_registered(self):
        from repro.tbon import get_filter
        fn = get_filter("prefix_tree_merge")
        a = build([(BARRIER, 0)]).to_dict()
        b = build([(BARRIER, 1)]).to_dict()
        merged = PrefixTree.from_dict(fn([a, b]))
        assert merged.ranks_at(BARRIER) == {0, 1}
