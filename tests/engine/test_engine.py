"""Tests for the engine: decoder, handlers, timeline, error paths."""

import pytest

from repro.apps import make_compute_app
from repro.be import BackEnd
from repro.cluster.process import DebugEvent, DebugEventType
from repro.engine import (
    ComponentTimes,
    EventDecoder,
    EventHandlerTable,
    LaunchTimeline,
    LMONEventType,
    LaunchMONEngine,
    EngineError,
)
from repro.fe import ToolFrontEnd
from repro.rm import DaemonSpec, JobState, RshRM, UnsupportedOperation
from repro.runner import drive, make_env
from repro.simx import Simulator


class TestEventDecoder:
    def setup_method(self):
        self.dec = EventDecoder()

    def test_mpir_breakpoint_is_tasks_spawned(self):
        ev = DebugEvent(DebugEventType.BREAKPOINT, 1, "MPIR_Breakpoint")
        assert self.dec.decode(ev).etype is LMONEventType.TASKS_SPAWNED

    def test_other_breakpoint_unknown(self):
        ev = DebugEvent(DebugEventType.BREAKPOINT, 1, "user_bp")
        assert self.dec.decode(ev).etype is LMONEventType.UNKNOWN

    def test_fork_exec_exit_mapping(self):
        assert self.dec.decode(DebugEvent(DebugEventType.FORK, 1)).etype \
            is LMONEventType.RM_HELPER_FORKED
        assert self.dec.decode(DebugEvent(DebugEventType.EXEC, 1)).etype \
            is LMONEventType.RM_EXEC
        assert self.dec.decode(DebugEvent(DebugEventType.EXITED, 1)).etype \
            is LMONEventType.RM_EXITED

    def test_signal_is_abort(self):
        ev = DebugEvent(DebugEventType.SIGNAL, 1, "SIGSEGV")
        decoded = self.dec.decode(ev)
        assert decoded.etype is LMONEventType.JOB_ABORTED
        assert decoded.detail == "SIGSEGV"


class TestHandlerTable:
    def test_dispatch_charges_cost_and_counts(self, sim):
        table = EventHandlerTable(sim, event_handle_cost=0.002)
        from repro.engine.events import LMONEvent

        def driver(sim):
            yield from table.dispatch(
                LMONEvent(LMONEventType.RM_HELPER_FORKED))
            yield from table.dispatch(
                LMONEvent(LMONEventType.RM_HELPER_FORKED))

        sim.process(driver(sim))
        sim.run()
        assert table.dispatched == 2
        assert table.trace_time == pytest.approx(0.004)

    def test_handler_body_not_in_trace_time(self, sim):
        table = EventHandlerTable(sim, event_handle_cost=0.001)
        from repro.engine.events import LMONEvent

        def slow_handler(event):
            yield sim.timeout(1.0)
            return "done"

        table.register(LMONEventType.TASKS_SPAWNED, slow_handler)
        out = {}

        def driver(sim):
            out["r"] = yield from table.dispatch(
                LMONEvent(LMONEventType.TASKS_SPAWNED))

        sim.process(driver(sim))
        sim.run()
        assert out["r"] == "done"
        assert table.trace_time == pytest.approx(0.001)


class TestTimeline:
    def test_span_and_total(self):
        tl = LaunchTimeline()
        tl.mark("e0_client_call", 1.0)
        tl.mark("e3_breakpoint", 3.5)
        tl.mark("e11_returned", 5.0)
        assert tl.span("e0_client_call", "e3_breakpoint") == 2.5
        assert tl.total() == 4.0

    def test_component_times_close_books(self):
        ct = ComponentTimes(t_job=1.0, t_trace=0.1, total=1.5)
        ct.close_books()
        assert ct.t_other == pytest.approx(0.4)
        assert ct.launchmon_time() == pytest.approx(0.5)
        assert ct.launchmon_fraction() == pytest.approx(0.5 / 1.5)

    def test_rm_vs_launchmon_split(self):
        ct = ComponentTimes(t_job=1, t_daemon=2, t_setup=3, t_collective=4,
                            t_trace=5, t_rpdtab=6, t_handshake=7, t_other=8)
        assert ct.rm_time() == 10
        assert ct.launchmon_time() == 26


class TestEngineErrors:
    def test_attach_to_unlaunched_job_rejected(self):
        env = make_env(n_compute=2)
        app = make_compute_app(n_tasks=8)

        def scenario(env):
            job = yield from env.rm.create_launcher(app, env.rm.allocate(1))
            engine = LaunchMONEngine(env.cluster, env.rm)
            spec = DaemonSpec("d", main=lambda ctx: iter(()))
            try:
                yield from engine.attach_and_spawn(job, spec, lambda *a: None)
            except EngineError as exc:
                return str(exc)

        msg = drive(env, scenario(env))
        assert "cannot attach" in msg

    def test_rsh_rm_daemon_launch_unsupported(self):
        """The portability argument: no native launch service -> no spawn."""
        env = make_env(n_compute=2, rm_cls=RshRM)
        app = make_compute_app(n_tasks=8)

        def daemon(ctx):
            yield ctx.sim.timeout(0)

        def scenario(env):
            job = yield from env.rm.launch_job(app, env.rm.allocate(1))
            assert job.state is JobState.RUNNING
            spec = DaemonSpec("d", main=daemon)
            try:
                yield from env.rm.spawn_daemons(job, spec, lambda *a: None)
            except UnsupportedOperation as exc:
                return str(exc)

        msg = drive(env, scenario(env))
        assert "no native tool-daemon launch service" in msg

    def test_kill_job_terminates_everything(self):
        env = make_env(n_compute=2)
        app = make_compute_app(n_tasks=16, tasks_per_node=8)

        def daemon(ctx):
            be = BackEnd(ctx)
            yield from be.init()
            yield from be.ready()
            yield from be.finalize()

        box = {}

        def scenario(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            s = fe.create_session()
            yield from fe.launch_and_spawn(
                s, app, DaemonSpec("d", main=daemon))
            yield from fe.kill(s)
            box["job"] = s.job

        drive(env, scenario(env))
        assert box["job"].state is JobState.FAILED
        assert all(not t.alive for t in box["job"].tasks)
        assert not box["job"].launcher.alive


class TestBglPlatform:
    def test_bgl_spawning_significantly_slower(self):
        """Section 4: T(job)/T(daemon) much higher on BG/L's mpirun."""
        from repro.experiments.fig3 import measure_launch_and_spawn
        from repro import BglMpirunRM

        atlas_times, _, _ = measure_launch_and_spawn(16)

        env = make_env(n_compute=16, rm_cls=BglMpirunRM)
        app = make_compute_app(n_tasks=128, tasks_per_node=8)

        def daemon(ctx):
            be = BackEnd(ctx)
            yield from be.init()
            yield from be.ready()
            yield from be.finalize()

        box = {}

        def tool(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "bench")
            yield from fe.init()
            s = fe.create_session()
            yield from fe.launch_and_spawn(
                s, app, DaemonSpec("d", main=daemon, image_mb=1.0))
            box["times"] = s.times
            yield from fe.detach(s)

        drive(env, tool(env))
        bgl = box["times"]
        assert bgl.t_job > 1.5 * atlas_times.t_job
        assert bgl.t_daemon > 1.5 * atlas_times.t_daemon
        # but LaunchMON's own overheads stay similar (the paper's finding)
        assert bgl.t_trace == pytest.approx(atlas_times.t_trace, rel=0.3)
        assert bgl.t_rpdtab == pytest.approx(atlas_times.t_rpdtab, rel=0.3)

    def test_bgl_launcher_is_mpirun(self):
        from repro import BglMpirunRM
        env = make_env(n_compute=2, rm_cls=BglMpirunRM)
        assert env.rm.launcher_executable() == "mpirun"
