"""Tests for the unified launch strategy layer and image staging modes."""

import pytest

from repro.cluster import Cluster, ClusterSpec, ForkError
from repro.launch import (
    LaunchReport,
    LaunchRequest,
    PHASES,
    get_strategy,
    strategy_names,
)
from repro.rm.base import DaemonSpec
from repro.runner import drive, make_env
from repro.simx import Simulator
from tests.conftest import run_gen


def _request(cluster, nodes, **kw):
    kw.setdefault("executable", "toold")
    return LaunchRequest(cluster=cluster, nodes=nodes, **kw)


class TestRegistry:
    def test_names(self):
        assert strategy_names() == ("rm-bulk", "serial-rsh", "tree-rsh")

    def test_lookup(self):
        for name in strategy_names():
            assert get_strategy(name).name == name

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown launch strategy"):
            get_strategy("teleport")


class TestSerialRsh:
    def test_spawns_and_reports(self, sim):
        cluster = Cluster(sim, ClusterSpec(n_compute=6, seed=2))
        res = run_gen(sim, get_strategy("serial-rsh").launch(
            _request(cluster, cluster.compute)))
        assert res.n_spawned == 6
        assert not res.report.failed
        assert res.report.n_daemons == 6
        assert res.report.requested == 6
        assert res.report.total > 6 * 0.2  # sequential rsh slope
        assert res.report.t_spawn == pytest.approx(res.report.total)

    def test_per_index_hooks(self, sim):
        cluster = Cluster(sim, ClusterSpec(n_compute=3, seed=2))
        seen = []

        def post(i, node, proc):
            seen.append((i, node.name, proc.args))

        res = run_gen(sim, get_strategy("serial-rsh").launch(_request(
            cluster, cluster.compute,
            args_for=lambda i, node: (f"idx={i}",),
            post_spawn=post)))
        assert [p.args for p in res.procs] == [
            ("idx=0",), ("idx=1",), ("idx=2",)]
        assert [i for i, _, _ in seen] == [0, 1, 2]

    def test_failure_recorded_not_raised(self, sim):
        cluster = Cluster(sim, ClusterSpec(n_compute=8, seed=2,
                                           fe_max_user_procs=4))
        res = run_gen(sim, get_strategy("serial-rsh").launch(
            _request(cluster, cluster.compute, hold_clients=True)))
        assert res.report.failed
        assert "process limit" in res.report.failure
        assert 0 < res.n_spawned < 8

    def test_raise_on_error_propagates(self, sim):
        cluster = Cluster(sim, ClusterSpec(n_compute=8, seed=2,
                                           fe_max_user_procs=4))
        with pytest.raises(ForkError):
            run_gen(sim, get_strategy("serial-rsh").launch(_request(
                cluster, cluster.compute, hold_clients=True,
                raise_on_error=True)))


class TestTreeRsh:
    def test_spawns_all_logarithmically(self):
        def elapsed(n):
            sim = Simulator()
            cluster = Cluster(sim, ClusterSpec(n_compute=n, seed=2))
            res = run_gen(sim, get_strategy("tree-rsh").launch(
                _request(cluster, cluster.compute, fanout=8)))
            assert res.n_spawned == n
            return res.report.total

        assert elapsed(64) < 2.5 * elapsed(8)

    def test_failure_recorded(self, sim):
        cluster = Cluster(sim, ClusterSpec(n_compute=4, seed=2,
                                           compute_rshd=False))
        res = run_gen(sim, get_strategy("tree-rsh").launch(
            _request(cluster, cluster.compute)))
        assert res.report.failed
        assert "refused" in res.report.failure

    def test_per_index_hooks_see_request_order(self, sim):
        """args_for/post_spawn receive each node's index in req.nodes even
        though the tree spawns out of order."""
        cluster = Cluster(sim, ClusterSpec(n_compute=12, seed=2))
        seen = {}

        def post(i, node, proc):
            seen[i] = node.name

        res = run_gen(sim, get_strategy("tree-rsh").launch(_request(
            cluster, cluster.compute, fanout=3,
            args_for=lambda i, node: (f"idx={i}",),
            post_spawn=post)))
        assert sorted(seen) == list(range(12))
        assert seen == {i: n.name for i, n in enumerate(cluster.compute)}
        assert {p.args[0] for p in res.procs} == {
            f"idx={i}" for i in range(12)}


class TestRmBulk:
    def test_parallel_forks(self, sim):
        cluster = Cluster(sim, ClusterSpec(n_compute=32, seed=2))
        res = run_gen(sim, get_strategy("rm-bulk").launch(
            _request(cluster, cluster.compute, image_mb=0.0)))
        assert res.n_spawned == 32
        # parallel forks: far below 32 sequential fork costs
        assert res.report.total < 32 * cluster.costs.fork_exec

    def test_image_stage_attribution(self, sim):
        cluster = Cluster(sim, ClusterSpec(n_compute=16, seed=2))
        res = run_gen(sim, get_strategy("rm-bulk").launch(_request(
            cluster, cluster.compute, image_mb=15.0, stage_images=True)))
        rep = res.report
        # serialized shared-FS loads dominate and are attributed to staging
        assert rep.t_image_stage > 10 * rep.t_spawn
        assert rep.dominant_phase() == "t_image_stage"
        assert rep.t_spawn + rep.t_image_stage == pytest.approx(rep.total)

    def test_rm_records_last_launch_report(self):
        env = make_env(n_compute=4)
        spec = DaemonSpec("toold", main=_noop_daemon, image_mb=2.0)

        def factory(d, ds, fab):
            class Ctx:
                pass
            return Ctx()

        def scenario(env):
            alloc = env.rm.allocate(4)
            yield from env.rm.spawn_on_allocation(alloc, spec, factory)

        drive(env, scenario(env))
        rep = env.rm.last_launch_report
        assert isinstance(rep, LaunchReport)
        assert rep.mechanism == "rm-bulk(slurm)"
        assert rep.n_daemons == 4
        assert rep.staging_mode == "shared-fs"
        assert rep.t_spawn > 0  # includes the RM protocol overhead


class TestStagingModes:
    def _launch(self, staging, n=32, warm_pass=False):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(n_compute=n, seed=2,
                                           staging_mode=staging))
        strat = get_strategy("rm-bulk")

        def scenario():
            first = yield from strat.launch(_request(
                cluster, cluster.compute, image_mb=15.0, stage_images=True))
            for p in first.procs:
                p.exit(0)
            second = yield from strat.launch(_request(
                cluster, cluster.compute, image_mb=15.0, stage_images=True))
            return first.report, second.report

        cold, warm = run_gen(sim, scenario())
        return warm if warm_pass else cold

    def test_broadcast_beats_shared_fs_cold(self):
        sf = self._launch("shared-fs")
        bc = self._launch("broadcast")
        assert bc.total < sf.total
        # the win is the image-stage phase, not the spawn phase
        assert bc.t_image_stage < 0.5 * sf.t_image_stage
        assert bc.t_spawn == pytest.approx(sf.t_spawn, rel=0.25)

    def test_cache_cold_matches_shared_fs(self):
        sf = self._launch("shared-fs")
        ca = self._launch("cache")
        assert ca.total == pytest.approx(sf.total, rel=0.05)

    def test_cache_warm_relaunch_skips_fs(self):
        cold = self._launch("cache")
        warm = self._launch("cache", warm_pass=True)
        assert warm.total < 0.2 * cold.total
        assert warm.t_image_stage < 0.1 * cold.t_image_stage

    def test_shared_fs_warm_relaunch_pays_again(self):
        cold = self._launch("shared-fs")
        warm = self._launch("shared-fs", warm_pass=True)
        assert warm.total == pytest.approx(cold.total, rel=0.1)

    def test_broadcast_scales_logarithmically(self):
        t64 = self._launch("broadcast", n=64).t_image_stage
        t512 = self._launch("broadcast", n=512).t_image_stage
        sf64 = self._launch("shared-fs", n=64).t_image_stage
        sf512 = self._launch("shared-fs", n=512).t_image_stage
        assert sf512 == pytest.approx(8 * sf64, rel=0.2)  # linear term
        assert t512 < 2.5 * t64                           # ~log term


class TestReport:
    def test_phase_listing(self):
        rep = LaunchReport("m", n_daemons=1, t_spawn=1.0, t_connect=2.0)
        assert tuple(rep.phases()) == PHASES
        assert rep.dominant_phase() == "t_connect"

    def test_as_dict_carries_staging(self):
        rep = LaunchReport("m", n_daemons=1, staging_mode="broadcast")
        d = rep.as_dict()
        assert d["staging_mode"] == "broadcast"
        assert d["t_image_stage"] == 0.0


class TestSessionPlumbing:
    def test_session_and_handle_expose_launch_report(self):
        from repro.apps import make_compute_app
        from repro.runner import make_service_env

        env = make_service_env(n_compute=4)
        app = make_compute_app(n_tasks=16, tasks_per_node=8)
        spec = DaemonSpec("toold", main=_be_daemon, image_mb=2.0)
        handle = env.service.submit_launch(app, spec, tool_name="t1")
        drive(env, env.service.drain())
        rep = handle.launch_report
        assert isinstance(rep, LaunchReport)
        assert rep.mechanism == "rm-bulk(slurm)"
        assert rep.n_daemons == handle.session.n_daemons
        assert handle.session.launch_report is rep


def _noop_daemon(ctx):
    return
    yield  # pragma: no cover


def _be_daemon(ctx):
    from repro.be import BackEnd

    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    yield from be.finalize()
