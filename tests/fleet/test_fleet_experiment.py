"""The fleet experiment runner and the generalized result plumbing.

Covers the ``fleet`` sweep itself (failover under the injected crash,
leak audit, determinism across worker counts) and the
``ExperimentResult.check`` / ``write_json_report`` machinery that PR's
satellite generalized for *every* runner -- machine-readable pass/fail
with a recorded audit trail.
"""

import json

from repro.experiments import ExperimentResult
from repro.experiments.cli import QUICK_SWEEPS, main as cli_main
from repro.experiments.common import write_json_report
from repro.experiments.fleet import run_fleet, run_fleet_once


class TestRunFleetOnce:
    def test_faulted_stream_serves_everyone_and_leaks_nothing(self):
        env, handles, info = run_fleet_once(4, 8.0, n_arrivals=12,
                                            nodes_per_cluster=8)
        assert info["fault_target"] in env.fleet.member_names
        assert info["killed"] >= 1
        assert info["audit"]["ok"], info["audit"]
        summary = env.fleet.door.summary()
        assert summary["completed"] == 12
        assert summary["failovers"] >= 1
        assert all(m.leaked_allocations == 0 for m in env.fleet.members)

    def test_fault_free_stream_has_no_failovers(self):
        env, handles, info = run_fleet_once(4, 8.0, n_arrivals=8,
                                            fault=False)
        assert info["fault_target"] is None
        assert env.fleet.door.summary()["failovers"] == 0
        assert info["audit"]["ok"]

    def test_same_seed_same_stream(self):
        def fingerprint():
            env, handles, info = run_fleet_once(3, 4.0, n_arrivals=8,
                                                seed=42)
            return [(h.cluster, h.failovers, h.launch_latency)
                    for h in handles]
        assert fingerprint() == fingerprint()


class TestRunFleetSweep:
    def test_quick_grid_passes_its_own_checks(self):
        result = run_fleet(cluster_counts=(2, 4),
                           arrival_rates=(4.0, 8.0), n_arrivals=12)
        assert result.ok, result.notes
        assert len(result.rows) == 4
        audits = {a["name"] for a in result.audits}
        assert {"zero-leaked-nodes", "clean-fleet-audits",
                "failover-under-fault",
                "service-continuity"} <= audits
        for row in result.rows:
            assert row["leaked"] == 0
            assert row["audit_ok"]
            if row["clusters"] >= 2:
                assert row["failovers"] >= 1

    def test_parallel_sweep_is_byte_identical_to_serial(self):
        kwargs = dict(cluster_counts=(2,), arrival_rates=(4.0, 8.0),
                      n_arrivals=8)
        serial = run_fleet(jobs=1, **kwargs)
        fanned = run_fleet(jobs=2, **kwargs)
        assert serial.format_table() == fanned.format_table()
        assert serial.rows == fanned.rows


class TestCliIntegration:
    def test_fleet_quick_json_report(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        # trimmed relative to QUICK_SWEEPS for test-suite latency; the CI
        # job runs the real `fleet --quick --json` grid
        assert "fleet" in QUICK_SWEEPS
        rc = cli_main(["fleet", "--quick", "--json", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet:" in out and "failovers" in out
        report = json.loads(path.read_text())
        assert report["ok"] and report["failed"] == []
        (fleet_result,) = report["results"]
        assert fleet_result["exp_id"] == "fleet"
        assert all(a["ok"] for a in fleet_result["audits"])


class TestResultChecks:
    def test_check_records_audit_and_keeps_ok(self):
        r = ExperimentResult("x", "demo", ["a"])
        assert r.check("looks-fine", True, "all good")
        assert r.ok
        assert r.audits == [{"name": "looks-fine", "ok": True,
                             "detail": "all good"}]
        assert not any("AUDIT FAILURE" in n for n in r.notes)

    def test_failed_check_flips_ok_and_notes_why(self):
        r = ExperimentResult("x", "demo", ["a"])
        assert not r.check("leak-audit", False, "3 nodes leaked")
        assert not r.ok
        assert any("AUDIT FAILURE [leak-audit]: 3 nodes leaked" in n
                   for n in r.notes)
        r.check("second", True)
        assert not r.ok  # a later pass never un-fails the result

    def test_audits_travel_through_as_dict(self):
        r = ExperimentResult("x", "demo", ["a"])
        r.check("gate", False, "nope")
        d = r.as_dict()
        assert d["ok"] is False
        assert d["audits"] == [{"name": "gate", "ok": False,
                                "detail": "nope"}]


class TestJsonReport:
    def _result(self, exp_id, ok):
        r = ExperimentResult(exp_id, "demo", ["a"])
        r.add_row(a=1)
        r.check("gate", ok, "detail")
        return r

    def test_report_structure_and_verdict(self, tmp_path):
        path = tmp_path / "report.json"
        results = [self._result("good", True), self._result("bad", False)]
        report = write_json_report(path, results, scale="quick")
        assert json.loads(path.read_text()) == report
        assert report["scale"] == "quick"
        assert report["ok"] is False
        assert report["failed"] == ["bad"]
        assert [r["exp_id"] for r in report["results"]] == ["good", "bad"]

    def test_all_green_report(self, tmp_path):
        report = write_json_report(tmp_path / "r.json",
                                   [self._result("good", True)])
        assert report["ok"] is True and report["failed"] == []
        assert report["scale"] == "full"
