"""Fleet partition-chaos soak: seeded storm schedules across every
variant (minority split, asymmetric links, flap + message weather,
split + member crash, door-in-minority), asserting the standing
invariants on every single run: zero double allocations, zero leaked
nodes, bounded failover, post-heal view convergence.

``FLEETCHAOS_SOAK_ITERS`` overrides the storm count (CI runs a reduced
soak; the default matches the acceptance bar of 200 storms).
"""

from __future__ import annotations

import os

from repro.fleet.chaos import run_fleet_chaos, scenario_for_seed

SOAK_ITERS = int(os.environ.get("FLEETCHAOS_SOAK_ITERS", "200"))


def test_fleet_chaos_soak():
    failures = []
    totals = {"abandoned": 0, "fences": 0, "fenced_kills": 0,
              "stale_done": 0, "readmissions": 0, "minority_rej": 0}
    for seed in range(SOAK_ITERS):
        res = run_fleet_chaos(scenario_for_seed(seed))
        totals["abandoned"] += res.abandoned
        totals["fences"] += res.fences_delivered
        totals["fenced_kills"] += res.fenced_kills
        totals["stale_done"] += res.stale_completions
        totals["readmissions"] += res.readmissions
        totals["minority_rej"] += res.minority_rejections
        if not (res.ok and res.double_allocations == 0 and res.leaked == 0
                and res.converged
                and res.max_request_failovers <= res.scenario.max_failovers):
            failures.append((seed, res.as_dict()))
    assert not failures, f"{len(failures)} bad storms: {failures[:3]}"
    # the soak must exercise the fencing machinery, not just ride out
    # storms that never strand an attempt
    assert totals["abandoned"] > 0
    assert totals["fences"] > 0
    assert totals["readmissions"] > 0
    if SOAK_ITERS >= 100:
        assert totals["fenced_kills"] + totals["stale_done"] > 0
