"""Cross-cluster failover under a member crash, audited against RM ledgers.

The acceptance property: a cluster crash mid-launch fails the affected
requests over to surviving members **without double-allocating nodes**
anywhere -- after the drain, every member RM's live-allocation ledger is
empty (the crashed member's included: its sessions were cancelled through
the same FE cleanup paths, so the nodes came back before the lights went
out) and free-node counts are fully restored.
"""

import pytest

from repro.apps import make_compute_app
from repro.be import BackEnd
from repro.fleet import FleetUnavailable, audit_fleet, make_fleet_env
from repro.rm import DaemonSpec
from repro.runner import drive


def _daemon(ctx):
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    yield from be.finalize()


SPEC = DaemonSpec("fleetd", main=_daemon, image_mb=1.0)


def _app(nodes=2, tpn=2):
    return make_compute_app(n_tasks=nodes * tpn, tasks_per_node=tpn)


def _body(hold):
    def body(fe, session):
        yield fe.cluster.sim.timeout(hold)
        yield from fe.detach(session, reclaim_job=True)
        return session.id
    return body


def _crash_mid_launch(env, n_requests=6, crash_at=0.05, hold=0.3):
    """Submit a burst, crash whichever member took request 0 while its
    launch is still in flight, drain, and return (fleet, victim)."""
    fleet = env.fleet
    handles = [fleet.submit_launch(_app(), SPEC, tool_name=f"u{i}",
                                   body=_body(hold))
               for i in range(n_requests)]
    box = {}

    def scenario():
        yield env.sim.timeout(crash_at)
        box["victim"] = handles[0].attempts[0]
        box["killed"] = fleet.crash(box["victim"])
        yield from fleet.drain()

    drive(env, scenario())
    return fleet, handles, box


class TestCrashFailover:
    @pytest.fixture(scope="class")
    def crashed_fleet(self):
        env = make_fleet_env(n_clusters=4, nodes_per_cluster=8,
                             shard_size=2, seed=7)
        fleet, handles, box = _crash_mid_launch(env)
        return fleet, handles, box

    def test_victim_sessions_fail_over_and_complete(self, crashed_fleet):
        fleet, handles, box = crashed_fleet
        assert box["killed"] > 0
        failed_over = [h for h in handles
                       if h.attempts and h.attempts[0] == box["victim"]
                       and h.failovers > 0]
        assert failed_over
        for h in failed_over:
            assert h.exception is None
            assert h.cluster != box["victim"]
            assert h.result().state.name in ("READY", "DETACHED")

    def test_every_request_completed_despite_the_crash(self, crashed_fleet):
        fleet, handles, box = crashed_fleet
        assert all(h.done and h.exception is None for h in handles)
        assert fleet.door.summary()["completed"] == len(handles)

    def test_no_member_ledger_leaks_a_single_allocation(self, crashed_fleet):
        fleet, handles, box = crashed_fleet
        for member in fleet.members:
            assert member.rm.live_allocations == {}, member.name
            assert member.rm.queued_requests == 0, member.name

    def test_survivor_free_counts_fully_restored(self, crashed_fleet):
        fleet, handles, box = crashed_fleet
        for member in fleet.members:
            if member.name != box["victim"]:
                assert member.n_free == member.n_total, member.name

    def test_audit_is_clean(self, crashed_fleet):
        fleet, handles, box = crashed_fleet
        audit = audit_fleet(fleet)
        assert audit["ok"], audit
        assert audit["leaked_allocations"] == {}

    def test_door_marked_victim_down(self, crashed_fleet):
        fleet, handles, box = crashed_fleet
        rec = fleet.door.view.get(box["victim"])
        assert rec is not None and not rec.routable


class TestAfterTheCrash:
    def test_later_arrivals_never_try_the_corpse(self):
        env = make_fleet_env(n_clusters=3, nodes_per_cluster=8,
                             shard_size=2, seed=3)
        fleet = env.fleet
        early = [fleet.submit_launch(_app(), SPEC, tool_name=f"e{i}",
                                     body=_body(0.2))
                 for i in range(3)]
        late = []

        def scenario():
            yield env.sim.timeout(0.05)
            victim = early[0].attempts[0]
            fleet.crash(victim)
            yield env.sim.timeout(0.5)
            for i in range(4):
                late.append(fleet.submit_launch(
                    _app(), SPEC, tool_name=f"l{i}", body=_body(0.1)))
            sessions = yield from fleet.drain()
            assert sessions
            for h in late:
                assert victim not in h.attempts

        drive(env, scenario())
        assert audit_fleet(fleet)["ok"]

    def test_whole_fleet_down_rejects_cleanly(self):
        env = make_fleet_env(n_clusters=2, nodes_per_cluster=4, seed=5)
        fleet = env.fleet

        def scenario():
            for name in fleet.member_names:
                fleet.crash(name)
            handle = fleet.submit_launch(_app(), SPEC, tool_name="doomed")
            yield from fleet.drain()
            assert handle.done
            assert isinstance(handle.exception, FleetUnavailable)
            with pytest.raises(FleetUnavailable):
                handle.result()

        drive(env, scenario())
        assert fleet.door.rejected == 1
        assert fleet.door.summary()["rejected"] == 1
        assert audit_fleet(fleet)["ok"]

    def test_repeated_crashes_cascade_until_last_survivor(self):
        env = make_fleet_env(n_clusters=3, nodes_per_cluster=8,
                             shard_size=3, seed=11)
        fleet = env.fleet
        handle = fleet.submit_launch(_app(), SPEC, tool_name="survivor",
                                     body=_body(0.4))

        def scenario():
            # shoot whichever member is serving, twice; the request must
            # keep walking to fresh members
            for _ in range(2):
                yield env.sim.timeout(0.05)
                if not handle.done and handle.attempts:
                    fleet.crash(handle.attempts[-1])
            yield from fleet.drain()

        drive(env, scenario())
        assert handle.exception is None
        assert handle.failovers == 2
        assert len(set(handle.attempts)) == 3
        assert audit_fleet(fleet)["ok"]
