"""Front-door behavior: admission, shunned-spill, stickiness, cancel.

Failover under crashes is ``test_failover.py``'s subject; here the fleet
is healthy and the door's *routing* contracts are pinned: the fleet-wide
admission gate, spilling past members the view says are saturated or
DEGRADED, hash-policy stickiness end to end, the outstanding-requests
overlay (``effective_view``), and clean client-side cancellation.
"""

from dataclasses import replace

import pytest

from repro.apps import make_compute_app
from repro.be import BackEnd
from repro.fleet import (
    ClusterState,
    FleetView,
    audit_fleet,
    make_fleet_env,
    make_fleet_member_env,
)
from repro.rm import DaemonSpec
from repro.runner import drive
from repro.simx import Interrupt


def _daemon(ctx):
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    yield from be.finalize()


SPEC = DaemonSpec("doord", main=_daemon, image_mb=1.0)


def _app(nodes=2, tpn=2):
    return make_compute_app(n_tasks=nodes * tpn, tasks_per_node=tpn)


def _hold_body(hold):
    def body(fe, session):
        yield fe.cluster.sim.timeout(hold)
        yield from fe.detach(session, reclaim_job=True)
        return session.id
    return body


class TestAdmissionGate:
    def test_fleet_gate_caps_concurrent_sessions_fleetwide(self):
        env = make_fleet_env(n_clusters=4, nodes_per_cluster=8,
                             max_in_flight=2, seed=2)
        fleet = env.fleet
        for i in range(8):
            fleet.submit_launch(_app(), SPEC, tool_name=f"u{i}",
                                body=_hold_body(0.2))
        peaks = []

        def monitor():
            while any(not h.done for h in fleet.door.handles):
                peaks.append(sum(m.in_flight for m in fleet.members))
                yield env.sim.timeout(0.01)

        def scenario():
            env.sim.process(monitor(), name="monitor")
            yield from fleet.drain()

        drive(env, scenario())
        assert max(peaks) <= 2
        assert fleet.door.summary()["completed"] == 8
        assert audit_fleet(fleet)["ok"]

    def test_ungated_door_runs_wide_open(self):
        env = make_fleet_env(n_clusters=4, nodes_per_cluster=8, seed=2)
        fleet = env.fleet
        for i in range(8):
            fleet.submit_launch(_app(), SPEC, tool_name=f"u{i}",
                                body=_hold_body(0.2))
        drive(env, fleet.drain())
        summary = fleet.door.summary()
        assert summary["completed"] == 8
        # with 4 idle clusters and no gate, the burst spreads
        assert len(summary["served_by"]) >= 2


class TestShunnedSpill:
    def _poison(self, door, name, state=ClusterState.DEGRADED, **over):
        rec = door.view.get(name)
        door.view.put(replace(rec, state=state,
                              version=rec.version + 1, **over))

    def test_degraded_member_is_spilled_past(self):
        env = make_fleet_env(n_clusters=2, nodes_per_cluster=8, seed=4)
        fleet = env.fleet
        # the view says c0 is DEGRADED; least-loaded must pick c1
        self._poison(fleet.door, "c0")
        handle = fleet.submit_launch(_app(), SPEC, tool_name="u0")
        drive(env, fleet.drain())
        assert handle.attempts == ["c1"]

    def test_saturated_member_avoided_while_alternative_exists(self):
        env = make_fleet_env(n_clusters=3, nodes_per_cluster=8, seed=4)
        fleet = env.fleet
        self._poison(fleet.door, "c1", state=ClusterState.UP, n_free=0)
        handles = [fleet.submit_launch(_app(), SPEC, tool_name=f"u{i}")
                   for i in range(2)]
        drive(env, fleet.drain())
        for handle in handles:
            assert handle.cluster != "c1"

    def test_fully_shunned_fleet_still_serves(self):
        """When *every* member looks shunned, the door routes anyway
        (requests go somewhere rather than nowhere)."""
        env = make_fleet_env(n_clusters=2, nodes_per_cluster=8, seed=4)
        fleet = env.fleet
        for name in fleet.member_names:
            self._poison(fleet.door, name)
        handle = fleet.submit_launch(_app(), SPEC, tool_name="u0")
        drive(env, fleet.drain())
        assert handle.exception is None
        assert handle.cluster in fleet.member_names


class TestHashStickiness:
    def test_same_tool_name_lands_on_same_cluster(self):
        env = make_fleet_env(n_clusters=4, nodes_per_cluster=16,
                             policy="hash", seed=6)
        fleet = env.fleet
        handles = [fleet.submit_launch(_app(), SPEC, tool_name="sticky",
                                       body=_hold_body(0.05))
                   for _ in range(4)]
        other = fleet.submit_launch(_app(), SPEC, tool_name="someone-else",
                                    key="other-key", body=_hold_body(0.05))
        drive(env, fleet.drain())
        assert len({h.cluster for h in handles}) == 1
        assert other.exception is None


class TestEffectiveView:
    def test_outstanding_requests_are_charged_onto_the_view(self):
        env = make_fleet_env(n_clusters=2, nodes_per_cluster=8, seed=8)
        door = env.fleet.door
        base = door.view.get("c0")
        door._note_routed("c0", 3)
        eff = door.effective_view().get("c0")
        assert eff.n_free == base.n_free - 3
        assert eff.in_flight == base.in_flight + 1
        # the gossiped view itself is untouched
        assert door.view.get("c0") == base
        door._note_finished("c0", 3)
        assert door.effective_view().get("c0") == base

    def test_same_instant_burst_spreads_over_members(self):
        env = make_fleet_env(n_clusters=4, nodes_per_cluster=8, seed=8)
        fleet = env.fleet
        for i in range(8):
            fleet.submit_launch(_app(), SPEC, tool_name=f"u{i}",
                                body=_hold_body(0.2))
        drive(env, fleet.drain())
        served = fleet.door.summary()["served_by"]
        # 8 two-node sessions over 4x8 nodes: no single member can have
        # taken the whole burst if outstanding charging works
        assert len(served) >= 3
        assert max(served.values()) <= 4


class TestCancellation:
    def test_client_cancel_unwinds_cleanly(self):
        env = make_fleet_env(n_clusters=2, nodes_per_cluster=8, seed=10)
        fleet = env.fleet
        victim = fleet.submit_launch(_app(), SPEC, tool_name="victim",
                                     body=_hold_body(1.0))
        keeper = fleet.submit_launch(_app(), SPEC, tool_name="keeper",
                                     body=_hold_body(0.1))

        def scenario():
            yield env.sim.timeout(0.4)
            assert victim.cancel()
            yield from fleet.drain()

        drive(env, scenario())
        assert isinstance(victim.exception, Interrupt)
        assert keeper.exception is None
        summary = fleet.door.summary()
        assert summary["cancelled"] == 1 and summary["completed"] == 1
        assert audit_fleet(fleet)["ok"]

    def test_cancel_after_done_returns_false(self):
        env = make_fleet_env(n_clusters=2, nodes_per_cluster=8, seed=10)
        handle = env.fleet.submit_launch(_app(), SPEC, tool_name="u0")
        drive(env, env.fleet.drain())
        assert handle.done
        assert not handle.cancel()


class TestSingleMemberFleet:
    def test_member_env_serves_and_audits_clean(self):
        env = make_fleet_member_env(n_compute=8)
        handle = env.fleet.submit_launch(_app(), SPEC, tool_name="solo",
                                         body=_hold_body(0.05))
        drive(env, env.fleet.drain())
        assert handle.exception is None
        assert handle.cluster == "c0"
        assert handle.launch_latency is not None
        assert audit_fleet(env.fleet)["ok"]

    def test_member_env_cluster_is_make_env_shaped(self):
        from repro.runner import make_env
        direct = make_env(n_compute=8)
        via = make_fleet_member_env(n_compute=8)
        assert [n.name for n in via.cluster.compute] \
            == [n.name for n in direct.cluster.compute]
        assert via.cluster.spec == direct.cluster.spec
