"""Network-fault injection: round-windowed verdicts and mesh integration.

The injector's contract is declarative determinism: topology verdicts
(partitions, directed link-downs, flap square waves) are pure functions
of the round number, message weather (loss/delay/dup) draws from one
dedicated seeded stream, and a mesh without an injector -- or with an
empty plan -- behaves bit-identically to the pre-netfault build. The
mesh-level tests then pin the semantics the chaos harness relies on: a
blocked edge feeds the same DOWN-suspicion path a crash does, a delayed
digest is a *made* contact (no suspicion) merged late, a duplicated
digest is a no-op, and a healed partition re-admits the slandered side
within ``suspect_rounds + diameter`` rounds.
"""

from repro.cluster import (
    FlappingLink,
    GossipDelay,
    GossipDup,
    GossipLoss,
    NetFaultInjector,
    NetFaultPlan,
    NetLinkDown,
    NetPartition,
)
from repro.cluster.faults import NEVER
from repro.fleet import ClusterHealth, ClusterState, FleetView, GossipMesh


class FakeMember:
    """The minimal gossip persona: versioned self-reports plus a view."""

    def __init__(self, name):
        self.name = name
        self.view = FleetView()
        self.crashed = False
        self.degraded = False
        self._version = 0
        self.view.put(self.publish_health())

    def publish_health(self):
        self._version += 1
        state = (ClusterState.DEGRADED if self.degraded
                 else ClusterState.UP)
        return ClusterHealth(cluster=self.name, state=state,
                             version=self._version, n_free=4, n_total=4,
                             in_flight=0, queued=0)


def _members(n):
    return [FakeMember(f"c{i:02d}") for i in range(n)]


def _mesh(n, shard_size=3, **kw):
    members = _members(n)
    return members, GossipMesh(members, shard_size=shard_size, **kw)


def _states_of(mesh, cluster):
    return {m.name: (m.view.get(cluster).state
                     if m.view.get(cluster) else None)
            for m in mesh.live_members()}


# -- injector verdicts (no mesh) ----------------------------------------------

class TestInjectorTopology:
    def test_partition_blocks_cross_group_both_ways_within_window(self):
        plan = NetFaultPlan(partitions=(
            NetPartition(groups=(("a", "b"), ("c", "d")),
                         at_round=2, heal_round=5),))
        nf = NetFaultInjector(plan)
        nf.begin_round(1)
        assert not nf.edge_blocked("a", "c")
        nf.begin_round(2)
        assert nf.edge_blocked("a", "c") and nf.edge_blocked("c", "a")
        assert nf.edge_blocked("b", "d")
        # in-group pairs keep talking
        assert not nf.edge_blocked("a", "b")
        assert not nf.edge_blocked("c", "d")
        nf.begin_round(5)
        assert not nf.edge_blocked("a", "c")
        assert nf.all_healed()

    def test_link_down_is_directed_unless_symmetric(self):
        plan = NetFaultPlan(link_downs=(
            NetLinkDown(src="a", dst="b"),
            NetLinkDown(src="c", dst="d", symmetric=True),))
        nf = NetFaultInjector(plan)
        nf.begin_round(0)
        # a->b dead: b cannot hear a; a still hears b
        assert nf.edge_blocked("b", "a")
        assert not nf.edge_blocked("a", "b")
        assert not nf.data_path_open("a", "b")
        assert nf.data_path_open("b", "a")
        # symmetric: both directions dead
        assert nf.edge_blocked("c", "d") and nf.edge_blocked("d", "c")

    def test_flap_square_wave_is_phase_anchored(self):
        flap = FlappingLink(a="a", b="b", down_rounds=2, up_rounds=1,
                            at_round=3, heal_round=9)
        assert [flap.down_at(r) for r in range(11)] == [
            False, False, False,        # before onset
            True, True, False,          # down 2, up 1
            True, True, False,          # repeat
            False, False]               # healed for good

    def test_weather_respects_windows(self):
        plan = NetFaultPlan(losses=(GossipLoss(rate=1.0, window=(2, 4)),))
        nf = NetFaultInjector(plan, seed=7)
        nf.begin_round(1)
        assert not nf.digest_lost("a", "b")
        nf.begin_round(2)
        assert nf.digest_lost("a", "b")
        nf.begin_round(4)
        assert not nf.digest_lost("a", "b")
        assert nf.stats.lost_digests == 1

    def test_delay_and_dup_draw_and_log(self):
        plan = NetFaultPlan(delays=(GossipDelay(rate=1.0, rounds=3),),
                            dups=(GossipDup(rate=1.0),))
        nf = NetFaultInjector(plan)
        nf.begin_round(0)
        assert nf.digest_delay("a", "b") == 3
        assert nf.digest_duplicated("a", "b")
        kinds = {entry[1] for entry in nf.log}
        assert kinds == {"digest-delayed", "digest-dup"}

    def test_empty_plan_draws_nothing_and_blocks_nothing(self):
        plan = NetFaultPlan()
        assert plan.empty and plan.last_heal_round == 0
        nf = NetFaultInjector(plan, seed=3)
        for r in range(5):
            nf.begin_round(r)
            assert not nf.edge_blocked("a", "b")
            assert nf.data_path_open("a", "b")
            assert not nf.digest_lost("a", "b")
            assert nf.digest_delay("a", "b") == 0
            assert not nf.digest_duplicated("a", "b")
        assert nf.stats.as_dict() == {
            "blocked_edges": 0, "lost_digests": 0, "delayed_digests": 0,
            "duplicated_digests": 0, "data_sends_blocked": 0}
        assert nf.all_healed() and not nf.log

    def test_verdicts_are_a_pure_function_of_plan_and_seed(self):
        plan = NetFaultPlan(
            partitions=(NetPartition(groups=(("a",), ("b", "c")),
                                     at_round=1, heal_round=4),),
            losses=(GossipLoss(rate=0.5),),
            delays=(GossipDelay(rate=0.5, rounds=2),))

        def trace(nf):
            out = []
            for r in range(6):
                nf.begin_round(r)
                out.append((nf.edge_blocked("b", "a"),
                            nf.digest_lost("b", "c"),
                            nf.digest_delay("c", "b")))
            return out

        assert (trace(NetFaultInjector(plan, seed=11))
                == trace(NetFaultInjector(plan, seed=11)))

    def test_last_heal_round_spans_windows_and_ignores_never(self):
        plan = NetFaultPlan(
            partitions=(NetPartition(groups=(("a",), ("b",)),
                                     heal_round=5),),
            flaps=(FlappingLink(a="a", b="b", heal_round=NEVER),),
            dups=(GossipDup(rate=0.1, window=(0, 9)),))
        assert plan.last_heal_round == 9


# -- mesh integration ---------------------------------------------------------

class TestMeshUnderNetFaults:
    def test_partition_drives_suspicion_then_heal_readmits(self):
        """The chaos harness's core loop in miniature: a netsplit makes
        each side call the other DOWN, and within ``suspect_rounds +
        diameter`` rounds of heal the slander is out-gossiped, views
        state-agree, and re-admissions are counted."""
        plan = NetFaultPlan(partitions=(
            NetPartition(groups=(("c00", "c01", "c02"),
                                 ("c03", "c04", "c05")),
                         at_round=0, heal_round=6),))
        members, mesh = _mesh(6, shard_size=3, suspect_rounds=2,
                              netfaults=NetFaultInjector(plan))
        mesh.run_rounds(6)
        # the bridge listeners missed suspect_rounds contacts: each side
        # now believes the other side's head is DOWN
        assert members[0].view.get("c03").state is ClusterState.DOWN
        assert members[3].view.get("c00").state is ClusterState.DOWN
        mesh.run_rounds(mesh.suspect_rounds + mesh.diameter())
        assert mesh.state_converged()
        assert ClusterState.DOWN not in _states_of(mesh, "c03").values()
        assert ClusterState.DOWN not in _states_of(mesh, "c00").values()
        assert members[0].view.readmissions > 0

    def test_blocked_edge_counts_as_missed_contact_not_instant_down(self):
        plan = NetFaultPlan(partitions=(
            NetPartition(groups=(("c00", "c01", "c02"),
                                 ("c03", "c04", "c05")),),))
        members, mesh = _mesh(6, shard_size=3, suspect_rounds=3,
                              netfaults=NetFaultInjector(plan))
        mesh.run_rounds(2)  # two misses < suspect_rounds: no verdict yet
        rec = members[0].view.get("c03")
        assert rec is None or rec.state is not ClusterState.DOWN
        mesh.run_round()  # third consecutive miss: now it's a verdict
        assert members[0].view.get("c03").state is ClusterState.DOWN

    def test_delayed_digests_are_made_contacts_merged_late(self):
        """Total delay weather slows news but never fabricates DOWN
        verdicts: the contact succeeded, only the payload is late."""
        plan = NetFaultPlan(delays=(
            GossipDelay(rate=1.0, rounds=2, window=(1, NEVER)),))
        members, mesh = _mesh(4, shard_size=4, suspect_rounds=1,
                              netfaults=NetFaultInjector(plan))
        mesh.run_round()  # round 0 is clean: everyone learns everyone
        members[3].degraded = True
        mesh.run_rounds(2)  # rounds 1-2: every pull in flight, 2 late
        assert members[0].view.get("c03").state is ClusterState.UP
        mesh.run_round()  # round 1's snapshots land at round 3
        assert members[0].view.get("c03").state is ClusterState.DEGRADED
        # and despite suspect_rounds=1, no one was slandered
        for m in members:
            assert ClusterState.DOWN not in _states_of(mesh, m.name).values()

    def test_duplicated_digests_are_idempotent(self):
        plan = NetFaultPlan(dups=(GossipDup(rate=1.0),))
        nf = NetFaultInjector(plan)
        members, mesh = _mesh(4, shard_size=4, netfaults=nf)
        members[2].degraded = True
        mesh.run_rounds(2)
        assert nf.stats.duplicated_digests > 0
        assert mesh.converged()
        assert set(_states_of(mesh, "c02").values()) \
            == {ClusterState.DEGRADED}

    def test_total_loss_slanders_then_heal_readmits_everyone(self):
        plan = NetFaultPlan(losses=(GossipLoss(rate=1.0, window=(0, 3)),))
        members, mesh = _mesh(4, shard_size=4, suspect_rounds=2,
                              netfaults=NetFaultInjector(plan))
        mesh.run_rounds(3)
        assert ClusterState.DOWN in _states_of(mesh, "c01").values()
        mesh.run_rounds(mesh.suspect_rounds + mesh.diameter())
        assert mesh.state_converged()
        for m in members:
            assert ClusterState.DOWN not in _states_of(mesh, m.name).values()
        assert sum(m.view.readmissions for m in members) > 0

    def test_empty_injector_is_bit_identical_to_no_injector(self):
        """The byte-identity gate at mesh level: an attached injector
        with nothing scheduled changes no view and draws no RNG."""
        plain_members, plain = _mesh(6, shard_size=3, suspect_rounds=2)
        nf = NetFaultInjector(NetFaultPlan(), seed=9)
        faulted_members, faulted = _mesh(6, shard_size=3, suspect_rounds=2,
                                         netfaults=nf)
        plain_members[4].degraded = True
        faulted_members[4].degraded = True
        plain.run_rounds(5)
        faulted.run_rounds(5)
        for a, b in zip(plain_members, faulted_members):
            assert a.view.records() == b.view.records()
        assert nf.stats.as_dict()["blocked_edges"] == 0
        assert not nf.log
