"""Hypothesis properties for partition tolerance: arbitrary seeded
netsplit schedules can never double-allocate, and views always
reconverge within ``suspect_rounds + diameter`` rounds of heal.

The chaos harness's scripted variants cover the storms we thought of;
these properties cover the ones we did not: Hypothesis draws arbitrary
two-sided splits of the fleet (any subset of members and/or the front
door vs the rest), arbitrary onset/heal windows -- optionally two
back-to-back windows with different sides -- and an arbitrary traffic
seed, then holds every run to the same invariants the soak audits:

* **zero double allocations** -- every fenced re-placement bumped the
  epoch first, no stale session outlives its fence, no abandoned
  session is left non-terminal, no fence goes undelivered;
* **zero leaked nodes** -- every member RM ledger drains to empty;
* **reconvergence** -- the harness runs exactly ``suspect_rounds +
  diameter`` rounds past the last heal and requires state agreement,
  so a passing run *is* the bound, not an eventually-converges claim.

Derandomized like the placement properties: a chaos run is a pure
function of (seed, plan), so its property tests may as well be pure
functions of the source tree.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import NetFaultPlan, NetPartition
from repro.fleet import ChaosScenario, run_fleet_chaos

PARTICIPANTS = ("c0", "c1", "c2", "c3", "c4", "frontdoor")

sides = st.sets(st.sampled_from(PARTICIPANTS), min_size=1,
                max_size=len(PARTICIPANTS) - 1)
onsets = st.integers(min_value=0, max_value=4)
durations = st.integers(min_value=1, max_value=6)
seeds = st.integers(min_value=0, max_value=2 ** 16)


def _split(side, at_round, duration):
    other = tuple(sorted(set(PARTICIPANTS) - side))
    return NetPartition(groups=(tuple(sorted(side)), other),
                        at_round=at_round, heal_round=at_round + duration)


def _run(seed, partitions):
    scenario = ChaosScenario(
        seed=seed, variant="property",
        plan=NetFaultPlan(partitions=tuple(partitions)))
    return run_fleet_chaos(scenario)


class TestPartitionScheduleProperties:
    @settings(derandomize=True, max_examples=25, deadline=None)
    @given(seed=seeds, side=sides, at_round=onsets, duration=durations)
    def test_any_single_split_is_safe_and_reconverges(
            self, seed, side, at_round, duration):
        res = _run(seed, [_split(side, at_round, duration)])
        assert res.double_allocations == 0, res.failures
        assert res.leaked == 0, res.failures
        assert res.converged, res.failures
        assert res.ok, res.failures

    @settings(derandomize=True, max_examples=15, deadline=None)
    @given(seed=seeds, side_a=sides, side_b=sides,
           at_round=onsets, dur_a=durations, dur_b=durations,
           gap=st.integers(min_value=0, max_value=3))
    def test_back_to_back_splits_are_safe_and_reconverge(
            self, seed, side_a, side_b, at_round, dur_a, dur_b, gap):
        first = _split(side_a, at_round, dur_a)
        second = _split(side_b, at_round + dur_a + gap, dur_b)
        res = _run(seed, [first, second])
        assert res.double_allocations == 0, res.failures
        assert res.leaked == 0, res.failures
        assert res.converged, res.failures
        assert res.ok, res.failures
