"""Hypothesis property tests for fleet placement (ring + policies).

The consistent-hash move bound is tested the only way it can be *exact*:
with a key set that covers every ring slot exactly once (one blake2b
preimage per slot, found deterministically at import). For such a
keyspace-covering key set, keys moved == slots moved, and the balanced
slot ring guarantees structurally that a join or leave relocates at most
``ceil(K / N)`` of the ``K`` keys -- no statistical slack needed. For
arbitrary session keys the bound degrades gracefully into the *minimal
disruption* property (only keys whose slot changed hands move, and only
to the joiner / from the leaver), which is also pinned here.

All tests run derandomized: placement must be a pure function of its
inputs, so its property tests may as well be pure functions of the
source tree.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.fleet import (
    ClusterHealth,
    ClusterState,
    ConsistentHashPolicy,
    FleetView,
    HashRing,
    LeastLoadedPolicy,
    LocalityAwarePolicy,
    PlacementRequest,
    get_policy,
    policy_names,
)

# -- a keyspace-covering key set (one preimage key per slot) ------------------

N_SLOTS = 256


def _slot_covering_keys(n_slots):
    """Deterministic session-style keys, exactly one per ring slot."""
    probe = HashRing(["seed"], n_slots=n_slots)
    found = {}
    i = 0
    while len(found) < n_slots:
        key = f"session-{i}"
        slot = probe.slot_of(key)
        if slot not in found:
            found[slot] = key
        i += 1
    return tuple(found[slot] for slot in range(n_slots))


SLOT_KEYS = _slot_covering_keys(N_SLOTS)

members_counts = st.integers(min_value=2, max_value=12)
session_keys = st.lists(
    st.integers(min_value=0, max_value=10_000).map("session-{}".format),
    min_size=1, max_size=64, unique=True)


def _ring(n):
    return HashRing([f"c{i}" for i in range(n)], n_slots=N_SLOTS)


# -- the move bound, exact ----------------------------------------------------

class TestRingMoveBound:
    @settings(derandomize=True, max_examples=40)
    @given(n=members_counts)
    def test_join_moves_at_most_ceil_K_over_N_keys(self, n):
        before = _ring(n).assignment(SLOT_KEYS)
        ring = _ring(n)
        ring.join("joiner")
        after = ring.assignment(SLOT_KEYS)
        moved = [k for k in SLOT_KEYS if after[k] != before[k]]
        assert len(moved) <= math.ceil(len(SLOT_KEYS) / (n + 1))
        # minimal disruption: every moved key went *to the joiner*
        assert all(after[k] == "joiner" for k in moved)

    @settings(derandomize=True, max_examples=40)
    @given(n=members_counts, victim=st.integers(min_value=0, max_value=11))
    def test_leave_moves_at_most_ceil_K_over_N_keys(self, n, victim):
        victim = f"c{victim % n}"
        before = _ring(n).assignment(SLOT_KEYS)
        ring = _ring(n)
        ring.leave(victim)
        after = ring.assignment(SLOT_KEYS)
        moved = [k for k in SLOT_KEYS if after[k] != before[k]]
        assert len(moved) <= math.ceil(len(SLOT_KEYS) / n)
        # minimal disruption: only the leaver's keys moved
        assert all(before[k] == victim for k in moved)

    @settings(derandomize=True, max_examples=40)
    @given(n=members_counts, keys=session_keys)
    def test_arbitrary_keys_move_only_to_joiner(self, n, keys):
        before = _ring(n).assignment(keys)
        ring = _ring(n)
        ring.join("joiner")
        after = ring.assignment(keys)
        assert all(after[k] == "joiner"
                   for k in keys if after[k] != before[k])

    @settings(derandomize=True, max_examples=40)
    @given(n=members_counts, keys=session_keys,
           victim=st.integers(min_value=0, max_value=11))
    def test_arbitrary_keys_move_only_from_leaver(self, n, keys, victim):
        victim = f"c{victim % n}"
        before = _ring(n).assignment(keys)
        ring = _ring(n)
        ring.leave(victim)
        after = ring.assignment(keys)
        assert all(before[k] == victim
                   for k in keys if after[k] != before[k])


# -- ring structure -----------------------------------------------------------

class TestRingStructure:
    @settings(derandomize=True, max_examples=40)
    @given(ops=st.lists(st.integers(min_value=0, max_value=19),
                        min_size=1, max_size=24))
    def test_balance_within_one_slot_under_any_history(self, ops):
        """After any join/leave sequence, member slot counts never differ
        by more than one (op i joins member ``m{i}`` if absent, else
        leaves it -- a deterministic churn schedule)."""
        ring = HashRing(["c0"], n_slots=N_SLOTS)
        for op in ops:
            name = f"m{op}"
            if name in ring.clusters:
                ring.leave(name)
            else:
                ring.join(name)
            sizes = [len(ring.slots_of(c)) for c in ring.clusters]
            if sizes:
                assert max(sizes) - min(sizes) <= 1
                assert sum(sizes) == N_SLOTS

    @settings(derandomize=True, max_examples=40)
    @given(n=members_counts)
    def test_slots_moved_equal_reported_and_bounded(self, n):
        ring = _ring(n)
        taken = ring.join("joiner")
        assert taken == len(ring.slots_of("joiner"))
        assert taken <= math.ceil(N_SLOTS / n)
        given_back = ring.leave("joiner")
        assert given_back == taken

    @settings(derandomize=True, max_examples=40)
    @given(n=members_counts, keys=session_keys)
    def test_ring_is_pure_function_of_history(self, n, keys):
        assert _ring(n).assignment(keys) == _ring(n).assignment(keys)

    @settings(derandomize=True, max_examples=40)
    @given(n=members_counts, keys=session_keys,
           excluded=st.sets(st.integers(min_value=0, max_value=11),
                            max_size=11))
    def test_walking_never_lands_on_excluded(self, n, keys, excluded):
        ring = _ring(n)
        banned = {f"c{i % n}" for i in excluded}
        for key in keys:
            got = ring.owner_walking(key, banned)
            if len(banned) >= n:
                assert got is None
            else:
                assert got is not None and got not in banned


# -- policies over views ------------------------------------------------------

def _record(i, state, n_free, queued=0, in_flight=0, zone=""):
    return ClusterHealth(cluster=f"c{i}", state=state, version=1,
                         n_free=n_free, n_total=8, in_flight=in_flight,
                         queued=queued, zone=zone)


@st.composite
def fleet_views(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    records = []
    for i in range(n):
        state = draw(st.sampled_from(list(ClusterState)))
        n_free = draw(st.integers(min_value=0, max_value=8))
        queued = draw(st.integers(min_value=0, max_value=3))
        in_flight = draw(st.integers(min_value=0, max_value=5))
        zone = draw(st.sampled_from(["za", "zb", ""]))
        records.append(_record(i, state, n_free, queued, in_flight, zone))
    return FleetView(records)


class TestPolicyProperties:
    @settings(derandomize=True, max_examples=100)
    @given(view=fleet_views())
    def test_least_loaded_never_saturated_while_alternative_exists(
            self, view):
        choice = LeastLoadedPolicy().choose(
            PlacementRequest(key="k"), view)
        routable = view.routable()
        if not routable:
            assert choice is None
            return
        chosen = view.health(choice)
        if any(not r.shunned for r in routable):
            assert not chosen.shunned

    @settings(derandomize=True, max_examples=25, deadline=None)
    @given(view=fleet_views(), key=st.text(min_size=1, max_size=16),
           zone=st.sampled_from(["za", "zb", ""]))
    def test_every_policy_is_deterministic_and_routable_only(
            self, view, key, zone):
        request = PlacementRequest(key=key, zone=zone)
        clusters = view.clusters
        for name in policy_names():
            first = get_policy(name, clusters).choose(request, view)
            again = get_policy(name, clusters).choose(request, view)
            assert first == again
            if first is not None:
                assert view.health(first).routable
            else:
                assert not view.routable()

    @settings(derandomize=True, max_examples=25, deadline=None)
    @given(view=fleet_views(), key=st.text(min_size=1, max_size=16))
    def test_hash_policy_sticky_and_respects_exclusions(self, view, key):
        policy = ConsistentHashPolicy(view.clusters)
        request = PlacementRequest(key=key)
        first = policy.choose(request, view)
        assert first == policy.choose(request, view)
        if first is not None:
            rerouted = policy.choose(request, view, exclude={first})
            assert rerouted != first

    @settings(derandomize=True, max_examples=100)
    @given(view=fleet_views())
    def test_locality_prefers_healthy_zone_member(self, view):
        policy = LocalityAwarePolicy()
        choice = policy.choose(PlacementRequest(key="k", zone="za"), view)
        local_healthy = [r for r in view.routable()
                         if r.zone == "za" and not r.shunned]
        if local_healthy:
            assert view.health(choice).zone == "za"
            assert not view.health(choice).shunned
        elif view.routable():
            assert choice is not None
