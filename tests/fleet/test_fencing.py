"""Split-brain fencing: member epoch floors, door abandonment, breakers.

The safety property under test: once the (majority) door abandons an
attempt and re-places the request at a bumped epoch, the old attempt can
never win -- the member refuses stale-epoch submissions
(:class:`~repro.fleet.member.StaleEpoch`), and the fence delivered on
heal kills any session the stale epoch managed to start. The liveness
properties ride along: a minority door degrades to reject-or-local
instead of routing blind, circuit breakers damp flapping members without
ever causing a total outage, the failover budget turns storms into
bounded rejections, and a *wrongly* suspected member comes back routable
after heal without losing the sessions it was serving all along
(the PR 10 regression).
"""

import pytest

from repro.be import BackEnd
from repro.apps import make_compute_app
from repro.cluster import NetFaultPlan, NetPartition
from repro.fleet import (
    FenceToken,
    FleetCluster,
    FleetUnavailable,
    PlacementRequest,
    StaleEpoch,
    audit_fleet,
    make_fleet_env,
)
from repro.rm import DaemonSpec
from repro.runner import drive
from repro.simx import Interrupt, Simulator

HOLD_TIME = 2.0


def _daemon(ctx):
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    yield from be.finalize()


def _hold_and_detach(fe, session):
    yield fe.cluster.sim.timeout(HOLD_TIME)
    yield from fe.detach(session, reclaim_job=True)
    return session.id


def _app_and_spec():
    return (make_compute_app(n_tasks=4, tasks_per_node=2),
            DaemonSpec("fence_tool_be", main=_daemon, image_mb=1.0))


# -- member-level epoch floors ------------------------------------------------

class TestMemberFencing:
    def test_fence_sets_floor_and_refuses_stale_epochs(self):
        member = FleetCluster.build(Simulator(), "c0", 8)
        app, spec = _app_and_spec()
        assert member.fence(request=7, epoch=2) == 0
        assert member.fence_stats["fences_received"] == 1
        with pytest.raises(StaleEpoch):
            member.submit_launch(app, spec, tool_name="t", body=None,
                                 fence_token=FenceToken(7, 1))
        # the fenced epoch itself is still admissible (floor, not past)
        member.submit_launch(app, spec, tool_name="t",
                             body=_hold_and_detach,
                             fence_token=FenceToken(7, 2))
        # re-fencing at or below the floor is an idempotent no-op
        assert member.fence(request=7, epoch=2) == 0
        assert member.fence(request=7, epoch=1) == 0
        assert member.fence_stats["fences_received"] == 1

    def test_fence_kills_live_stale_session(self):
        sim = Simulator()
        member = FleetCluster.build(sim, "c0", 8)
        app, spec = _app_and_spec()
        handle = member.submit_launch(app, spec, tool_name="t",
                                      body=_hold_and_detach,
                                      fence_token=FenceToken(0, 0))
        sim.run(until=0.5)  # mid-hold: the session is live
        assert not handle.done
        assert member.fence(request=0, epoch=1) == 1
        assert member.fence_stats["fenced_kills"] == 1
        sim.run()
        assert handle.done and isinstance(handle.exception, Interrupt)
        assert member.stale_live_sessions() == 0
        assert member.leaked_allocations == 0

    def test_fence_counts_already_finished_stale_attempts(self):
        sim = Simulator()
        member = FleetCluster.build(sim, "c0", 8)
        app, spec = _app_and_spec()
        handle = member.submit_launch(app, spec, tool_name="t",
                                      body=_hold_and_detach,
                                      fence_token=FenceToken(1, 0))
        sim.run()
        assert handle.done and handle.exception is None
        # the shadow completion the majority re-placed: counted, not killed
        assert member.fence(request=1, epoch=1) == 0
        assert member.fence_stats["stale_completions"] == 1
        assert member.fence_stats["fenced_kills"] == 0


# -- door-level partition tolerance -------------------------------------------

def _isolating_plan(victim, others, at_round=1, heal_round=10):
    return NetFaultPlan(partitions=(
        NetPartition(groups=((victim,), tuple(others)),
                     at_round=at_round, heal_round=heal_round),))


def _run_fleet(env, n_sessions):
    fleet = env.fleet
    app, spec = _app_and_spec()
    handles = []

    def driver():
        for i in range(n_sessions):
            handles.append(fleet.submit_launch(
                app, spec, tool_name=f"t{i}", body=_hold_and_detach))
        yield from fleet.drain()

    drive(env, driver())
    return fleet, handles


class TestDoorFencing:
    def test_abandonment_fences_before_replacing(self):
        """The tentpole path end to end: a partition strands an in-flight
        attempt, the majority door bumps the epoch, queues the fence and
        re-places; on heal the fence kills the stale session, and the
        ledgers balance -- no double allocation."""
        env = make_fleet_env(
            n_clusters=3, nodes_per_cluster=4, shard_size=1,
            suspect_rounds=2, gossip_period=0.1, abandon_after=0.15,
            max_failovers=4,
            net_fault_plan=_isolating_plan(
                "c1", ("c0", "c2", "frontdoor")))
        fleet, handles = _run_fleet(env, 3)
        door = fleet.door
        stranded = [h for h in handles if h.attempts
                    and h.attempts[0] == "c1"]
        assert stranded, "no session was placed on the partitioned member"
        handle = stranded[0]
        # fenced exactly once, re-placed away from c1, and still served
        assert handle.epoch == 1
        assert len(handle.fenced_attempts) == 1
        assert handle.fenced_attempts[0][0] == "c1"
        assert handle.exception is None and handle.cluster != "c1"
        assert all(s.done for s in handle.abandoned_sessions)
        c1 = fleet.member("c1")
        assert c1.fence_stats["fences_received"] == 1
        assert (c1.fence_stats["fenced_kills"]
                + c1.fence_stats["stale_completions"]) == 1
        assert c1.stale_live_sessions() == 0
        assert door.abandoned == 1
        assert door.pending_fences == 0
        assert door.summary()["per_member"]["c1"]["fenced"] == 1
        # heal re-admitted the shunned member
        assert door.view.get("c1").routable
        assert door.view.readmissions > 0
        assert audit_fleet(fleet)["ok"]

    def test_minority_door_routes_local_only(self):
        """A door on the small side of a split never routes blind: every
        session lands on its own side, nothing is fenced or re-placed."""
        env = make_fleet_env(
            n_clusters=3, nodes_per_cluster=4, shard_size=1,
            suspect_rounds=2, gossip_period=0.1, abandon_after=0.15,
            net_fault_plan=NetFaultPlan(partitions=(
                NetPartition(groups=(("frontdoor", "c0"), ("c1", "c2")),
                             at_round=0),)))
        fleet, handles = _run_fleet(env, 3)
        door = fleet.door
        assert all(h.exception is None for h in handles)
        assert {h.cluster for h in handles} == {"c0"}
        assert door.abandoned == 0 and door.pending_fences == 0
        for member in fleet.members:
            assert member.fence_stats["fences_received"] == 0
        assert audit_fleet(fleet)["ok"]

    def test_minority_door_rejects_when_its_side_dies(self):
        env = make_fleet_env(
            n_clusters=3, nodes_per_cluster=4, shard_size=1,
            suspect_rounds=2, gossip_period=0.1,
            net_fault_plan=NetFaultPlan(partitions=(
                NetPartition(groups=(("frontdoor", "c0"), ("c1", "c2")),
                             at_round=0),)))
        fleet = env.fleet
        fleet.crash("c0")
        app, spec = _app_and_spec()
        handle = fleet.submit_launch(app, spec, tool_name="t",
                                     body=_hold_and_detach)
        env.sim.run()
        with pytest.raises(FleetUnavailable):
            handle.result()
        assert fleet.door.minority_rejections >= 1
        assert fleet.door.rejected >= 1

    def test_failover_budget_turns_storms_into_bounded_rejection(self):
        env = make_fleet_env(n_clusters=3, nodes_per_cluster=4,
                             shard_size=1, max_failovers=0)
        fleet = env.fleet
        for name in fleet.member_names:
            fleet.crash(name)
        app, spec = _app_and_spec()
        handle = fleet.submit_launch(app, spec, tool_name="t",
                                     body=_hold_and_detach)
        env.sim.run()
        with pytest.raises(FleetUnavailable, match="failover budget"):
            handle.result()
        assert len(handle.attempts) == 1  # budget 0: one attempt, no storm
        assert fleet.door.rejected == 1

    def test_breakers_trip_exclude_and_half_open_fallback(self):
        env = make_fleet_env(n_clusters=2, nodes_per_cluster=4,
                             shard_size=1, breaker_threshold=2,
                             breaker_cooldown=5.0)
        door = env.fleet.door
        request = PlacementRequest(key="k", n_nodes=2)
        door._breaker_failure("c0")
        assert not door._breaker_open("c0")  # one failure is not a trip
        door._breaker_failure("c0")
        assert door._breaker_open("c0")
        assert door.summary()["breaker_trips"] == 1
        assert door._place(request, set()) == "c1"
        # every candidate breaker-open: half-open fallback still routes
        door._breaker_failure("c1")
        door._breaker_failure("c1")
        assert door._place(request, set()) is not None
        # cooldown expiry closes the breaker
        def clock():
            yield env.sim.timeout(6.0)
        env.sim.process(clock())
        env.sim.run()
        assert not door._breaker_open("c0")
        # a success resets the consecutive-failure count
        door._breaker_failure("c0")
        door._breaker_success("c0")
        door._breaker_failure("c0")
        assert not door._breaker_open("c0")

    def test_wrongly_suspected_member_recovers_with_sessions_intact(self):
        """PR 10 regression: a slow-but-alive member cut off by a
        transient partition is suspected DOWN, yet keeps serving its
        in-flight sessions; after heal it is routable again, re-admission
        is counted, and nothing was lost or fenced."""
        env = make_fleet_env(
            n_clusters=3, nodes_per_cluster=4, shard_size=1,
            suspect_rounds=2, gossip_period=0.1,
            abandon_after=10.0,  # grace >> storm: the door never fences
            net_fault_plan=_isolating_plan(
                "c1", ("c0", "c2", "frontdoor"), at_round=1,
                heal_round=8))
        fleet, handles = _run_fleet(env, 3)
        door = fleet.door
        # every session completed, including the one on the suspect
        assert all(h.exception is None for h in handles)
        on_c1 = [h for h in handles if h.cluster == "c1"]
        assert on_c1 and all(h.failovers == 0 for h in on_c1)
        # the door really did call c1 DOWN mid-storm -- and took it back
        assert door.view.readmissions > 0
        assert door.view.get("c1").routable
        # no fencing, no abandonment, no leaks: the suspicion was wrong
        # and the machinery knew better than to act on it within grace
        assert door.abandoned == 0
        assert fleet.member("c1").fence_stats["fences_received"] == 0
        assert audit_fleet(fleet)["ok"]
