"""Bit-identity guard: a fleet of one cluster changes nothing.

Same contract (and same baseline file) as the streaming and hybrid
guards before it: the ``fig6`` and ``lmx`` quick sweeps, rerun with every
point's machine built as a **single-member fleet**
(:func:`repro.fleet.make_fleet_member_env` via ``via_fleet=True``), must
match ``tests/baselines/pr3_fig6_lmx_quick.txt`` **byte for byte**.

That holds only if the fleet wrapping -- member ToolService, gossip
mesh, front door -- schedules zero events and draws zero RNG until
actually exercised. A failure here after a fleet change means the fleet
layer leaked into the single-cluster path (an extra process, an eager
gossip round, an RNG draw at construction): fix the leak, not the
baseline.
"""

from pathlib import Path

from repro.experiments.cli import QUICK_SWEEPS
from repro.experiments import run_fig6, run_launch_matrix

BASELINE = Path(__file__).parent.parent / "baselines" \
    / "pr3_fig6_lmx_quick.txt"


def test_single_member_fleet_matches_direct_path_byte_for_byte():
    fig6 = run_fig6(via_fleet=True, **QUICK_SWEEPS["fig6"])
    lmx = run_launch_matrix(via_fleet=True, **QUICK_SWEEPS["lmx"])
    rendered = (fig6.format_table() + "\n\n"
                + lmx.format_table() + "\n\n")
    assert rendered == BASELINE.read_text()


def test_fleet_member_env_runs_zero_events_at_construction():
    from repro.fleet import make_fleet_member_env
    env = make_fleet_member_env(n_compute=16)
    assert env.sim.stats.events == 0
    assert env.sim.now == 0.0
