"""Partitioned gossip: shard-local peering, bounded convergence, suspicion.

The mesh's contract is topological: digests travel exactly one hop per
round, so any news reaches every live participant within
``mesh.diameter()`` rounds -- *despite* each member peering only with its
shard (plus one bridge link per shard boundary, s_group style). These
tests pin the partition structure, that exact bound, the
evidence-based DOWN suspicion, and that a live member out-gossips
slander about itself.

Participants here are minimal fakes (name/view/publish_health/crashed):
the mesh's protocol surface, nothing else -- crash/failover integration
against real clusters lives in ``test_failover.py``.
"""

import pytest

from repro.fleet import ClusterHealth, ClusterState, FleetView, GossipMesh


class FakeMember:
    """The minimal gossip persona: versioned self-reports plus a view."""

    def __init__(self, name, zone=""):
        self.name = name
        self.zone = zone
        self.view = FleetView()
        self.crashed = False
        self.degraded = False
        self._version = 0
        self.view.put(self.publish_health())

    def publish_health(self):
        self._version += 1
        state = (ClusterState.DEGRADED if self.degraded
                 else ClusterState.UP)
        return ClusterHealth(cluster=self.name, state=state,
                             version=self._version, n_free=4, n_total=4,
                             in_flight=0, queued=0, zone=self.zone)


class FakeObserver:
    def __init__(self, name="door"):
        self.name = name
        self.view = FleetView()
        self.crashed = False


def _members(n):
    return [FakeMember(f"c{i:02d}") for i in range(n)]


def _mesh(n, shard_size=3, **kw):
    members = _members(n)
    return members, GossipMesh(members, shard_size=shard_size, **kw)


def _states_of(mesh, cluster):
    """``cluster``'s state as seen by every live participant."""
    return {m.name: (m.view.get(cluster).state
                     if m.view.get(cluster) else None)
            for m in mesh.live_members()}


class TestTopology:
    def test_shards_partition_members_in_sorted_order(self):
        members, mesh = _mesh(8, shard_size=3)
        assert mesh.shards == (("c00", "c01", "c02"),
                               ("c03", "c04", "c05"),
                               ("c06", "c07"))
        for member in members:
            assert member.name in mesh.shards[mesh.shard_of(member.name)]

    def test_edges_are_shard_local_plus_head_ring_only(self):
        members, mesh = _mesh(9, shard_size=3)
        heads = {shard[0] for shard in mesh.shards}
        for a, b in mesh.edges:
            same_shard = mesh.shard_of(a) == mesh.shard_of(b)
            head_bridge = a in heads and b in heads
            assert same_shard or head_bridge
        # a non-head member never peers outside its shard
        assert all(mesh.shard_of(p) == mesh.shard_of("c01")
                   for p in mesh.neighbors("c01"))

    def test_no_all_to_all_blowup(self):
        """The s_groups point: edge count grows like N, not N^2."""
        n = 24
        members, mesh = _mesh(n, shard_size=4)
        full_mesh = n * (n - 1) // 2
        # 6 shards: 6 edges each intra-shard + 6 head-ring bridges
        assert len(mesh.edges) == 6 * 6 + 6
        assert len(mesh.edges) < full_mesh / 5

    def test_observer_peers_with_every_shard_head(self):
        members, mesh = _mesh(8, shard_size=3)
        door = FakeObserver()
        mesh.attach_observer(door)
        assert mesh.neighbors("door") == ("c00", "c03", "c06")

    def test_duplicate_names_rejected(self):
        members, mesh = _mesh(4)
        with pytest.raises(ValueError, match="duplicate"):
            GossipMesh(_members(2) + [FakeMember("c00")])
        with pytest.raises(ValueError, match="duplicate"):
            mesh.attach_observer(FakeObserver("c01"))


class TestConvergence:
    def test_single_shard_converges_in_one_round(self):
        members, mesh = _mesh(4, shard_size=4)
        assert mesh.diameter() == 1
        mesh.run_round()
        assert mesh.converged()

    def test_news_reaches_everyone_within_diameter_rounds(self):
        members, mesh = _mesh(12, shard_size=3)
        bound = mesh.diameter()
        members[-1].degraded = True
        mesh.run_rounds(bound)
        assert set(_states_of(mesh, members[-1].name).values()) \
            == {ClusterState.DEGRADED}

    def test_news_does_not_teleport(self):
        """One hop per round, literally: after a single round a change at
        one shard's tail is visible to its neighbors but not yet at the
        far end of the peering graph."""
        members, mesh = _mesh(12, shard_size=3)
        assert mesh.diameter() >= 3
        members[-1].degraded = True  # c11, tail of the last shard
        mesh.run_round()
        states = _states_of(mesh, "c11")
        assert states["c10"] is ClusterState.DEGRADED
        assert states["c01"] is not ClusterState.DEGRADED

    def test_observer_hears_fleetwide_news_within_bound(self):
        members, mesh = _mesh(12, shard_size=3)
        door = FakeObserver()
        mesh.attach_observer(door)
        members[7].degraded = True
        mesh.run_rounds(mesh.diameter())
        assert door.view.get("c07").state is ClusterState.DEGRADED


class TestSuspicion:
    def test_crash_becomes_down_everywhere_within_bound(self):
        members, mesh = _mesh(9, shard_size=3, suspect_rounds=2)
        mesh.run_rounds(mesh.diameter())  # everyone knows everyone
        members[4].crashed = True
        # neighbors need suspect_rounds misses, the verdict then travels
        mesh.run_rounds(mesh.suspect_rounds + mesh.diameter())
        assert set(_states_of(mesh, "c04").values()) == {ClusterState.DOWN}
        assert members[4] not in mesh.live_members()

    def test_one_missed_round_is_not_a_verdict(self):
        members, mesh = _mesh(4, shard_size=4, suspect_rounds=3)
        mesh.run_round()
        members[0].crashed = True
        mesh.run_round()
        down = [s for s in _states_of(mesh, "c00").values()
                if s is ClusterState.DOWN]
        assert not down

    def test_live_member_outgossips_slander(self):
        members, mesh = _mesh(6, shard_size=3)
        mesh.run_rounds(mesh.diameter())
        # a false rumor: someone installs a DOWN record for the live c02
        smeared = members[2].publish_health().suspect_down()
        members[5].view.put(smeared)
        assert members[5].view.get("c02").state is ClusterState.DOWN
        # c02 keeps publishing; fresher versions beat the rumor fleetwide
        mesh.run_rounds(mesh.diameter() + 1)
        assert ClusterState.DOWN not in _states_of(mesh, "c02").values()

    def test_crashed_member_views_freeze(self):
        members, mesh = _mesh(6, shard_size=3, suspect_rounds=1)
        mesh.run_rounds(2)
        members[0].crashed = True
        frozen = {r.cluster: r.version for r in members[0].view.records()}
        mesh.run_rounds(3)
        assert {r.cluster: r.version
                for r in members[0].view.records()} == frozen
