"""Tests for ad-hoc launchers, app scenarios and the runner harness."""

import pytest

from repro.adhoc import sequential_rsh_launch, tree_rsh_launch
from repro.apps import (
    AppSpec,
    make_compute_app,
    make_hang_app,
    make_io_heavy_app,
    uniform_behavior,
)
from repro.cluster import ClusterSpec
from repro.cluster.process import ProcState
from repro.runner import drive, make_env
from repro.simx import Simulator


class TestSequentialRsh:
    def test_spawns_one_daemon_per_node(self):
        env = make_env(n_compute=6)
        box = {}

        def s(env):
            box["r"] = yield from sequential_rsh_launch(
                env.cluster, env.cluster.compute)

        drive(env, s(env))
        r = box["r"]
        assert not r.failed
        assert r.n_spawned == 6
        assert {p.node.name for p in r.spawned} == {
            n.name for n in env.cluster.compute}

    def test_elapsed_linear(self):
        def t(n):
            env = make_env(n_compute=n)
            box = {}

            def s(env):
                box["r"] = yield from sequential_rsh_launch(
                    env.cluster, env.cluster.compute)

            drive(env, s(env))
            return box["r"].elapsed

        assert t(16) == pytest.approx(2 * t(8), rel=0.15)

    def test_fails_when_fe_table_full(self):
        env = make_env(n_compute=12,
                       spec=ClusterSpec(n_compute=12, fe_max_user_procs=5))
        box = {}

        def s(env):
            box["r"] = yield from sequential_rsh_launch(
                env.cluster, env.cluster.compute)

        drive(env, s(env))
        assert box["r"].failed
        assert "process limit" in box["r"].failure
        assert box["r"].n_spawned == 5

    def test_without_holding_clients_no_limit(self):
        env = make_env(n_compute=12,
                       spec=ClusterSpec(n_compute=12, fe_max_user_procs=5))
        box = {}

        def s(env):
            box["r"] = yield from sequential_rsh_launch(
                env.cluster, env.cluster.compute, hold_clients=False)

        drive(env, s(env))
        assert not box["r"].failed
        assert box["r"].n_spawned == 12

    def test_fails_on_mpp(self):
        env = make_env(n_compute=4,
                       spec=ClusterSpec(n_compute=4, compute_rshd=False))
        box = {}

        def s(env):
            box["r"] = yield from sequential_rsh_launch(
                env.cluster, env.cluster.compute)

        drive(env, s(env))
        assert box["r"].failed
        assert "refused" in box["r"].failure


class TestTreeRsh:
    def test_spawns_all(self):
        env = make_env(n_compute=20)
        box = {}

        def s(env):
            box["r"] = yield from tree_rsh_launch(
                env.cluster, env.cluster.compute, fanout=4)

        drive(env, s(env))
        assert not box["r"].failed
        assert box["r"].n_spawned == 20

    def test_much_faster_than_sequential(self):
        n = 64
        times = {}
        for name, launcher in (("seq", sequential_rsh_launch),
                               ("tree", tree_rsh_launch)):
            env = make_env(n_compute=n)
            box = {}

            def s(env=env, box=box, launcher=launcher):
                box["r"] = yield from launcher(env.cluster,
                                               env.cluster.compute)

            drive(env, s())
            times[name] = box["r"].elapsed
        assert times["seq"] > 10 * times["tree"]

    def test_depth_scaling(self):
        """Tree launch grows ~logarithmically, not linearly."""
        def t(n):
            env = make_env(n_compute=n)
            box = {}

            def s(env=env, box=box):
                box["r"] = yield from tree_rsh_launch(
                    env.cluster, env.cluster.compute, fanout=8)

            drive(env, s())
            return box["r"].elapsed

        assert t(64) < 2.5 * t(8)


class TestAppScenarios:
    def test_nodes_needed_ceil(self):
        assert AppSpec("x", n_tasks=17, tasks_per_node=8).nodes_needed() == 3
        assert AppSpec("x", n_tasks=16, tasks_per_node=8).nodes_needed() == 2

    def test_uniform_behavior(self):
        b = uniform_behavior(stack=("a", "b"))
        assert b(0).call_stack == ("a", "b")
        assert b(999) == b(0)

    def test_hang_app_classes(self):
        app = make_hang_app(32, stuck_ranks=(5,), deadlocked_pair=True)
        stacks = {app.behavior(r).call_stack[-1] for r in range(32)}
        assert stacks == {"MPI_Barrier", "inner_loop", "MPI_Recv"}
        assert app.behavior(5).state is ProcState.RUNNING
        assert app.behavior(1).state is ProcState.SLEEPING

    def test_io_app_writer_pattern(self):
        app = make_io_heavy_app(16, tasks_per_node=8)
        assert app.behavior(0).state is ProcState.DISK_WAIT
        assert app.behavior(8).state is ProcState.DISK_WAIT
        assert app.behavior(1).state is ProcState.SLEEPING

    def test_apply_behavior_imprints_process(self, sim):
        from repro.cluster import Node
        from tests.conftest import run_gen
        node = Node(sim, "n0")
        proc = run_gen(sim, node.fork_exec("app"))
        app = make_compute_app(8)
        app.apply_behavior(proc, 3)
        assert proc.call_stack[-1] == "MPI_Waitall"
        assert proc.stats.utime > 100


class TestRunnerHarness:
    def test_drive_returns_value(self):
        env = make_env(n_compute=2)

        def g(env):
            yield env.sim.timeout(1)
            return "done"

        assert drive(env, g(env)) == "done"

    def test_drive_propagates_exception(self):
        env = make_env(n_compute=2)

        def g(env):
            yield env.sim.timeout(1)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            drive(env, g(env))

    def test_drive_until_unfinished_raises(self):
        env = make_env(n_compute=2)

        def g(env):
            yield env.sim.timeout(100)

        with pytest.raises(RuntimeError, match="did not finish"):
            drive(env, g(env), until=1.0)

    def test_make_env_rm_kwargs(self):
        from repro.rm import SlurmConfig
        env = make_env(n_compute=2, config=SlurmConfig(fanout=4))
        assert env.rm.config.fanout == 4

    def test_make_env_seed_determinism(self):
        def run():
            env = make_env(n_compute=4, seed=9)
            app = make_compute_app(16, tasks_per_node=8)

            def g(env):
                job = yield from env.rm.launch_job(app, env.rm.allocate(2))
                return env.sim.now

            return drive(env, g(env))

        assert run() == run()
