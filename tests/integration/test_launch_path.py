"""End-to-end integration: launchAndSpawn / attachAndSpawn over LaunchMON.

These tests run the complete critical path of Figure 2 -- engine fork,
launcher tracing, MPIR breakpoint, RPDTAB fetch, daemon co-location, fabric
wireup, LMONP handshake, ready -- with a minimal tool daemon.
"""

import pytest

from repro.apps import make_compute_app
from repro.be import BackEnd
from repro.fe import SessionState, ToolFrontEnd
from repro.rm import DaemonSpec, JobState
from repro.runner import drive, make_env


def echo_daemon(ctx):
    """Minimal tool daemon: init, report local tasks, finalize."""
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    local = [e.rank for e in be.get_my_proctab()]
    gathered = yield from be.gather(local)
    if be.am_i_master():
        yield from be.send_usrdata({"all_ranks": sorted(
            r for chunk in gathered for r in chunk)})
    yield from be.finalize()


@pytest.fixture
def launch_result():
    env = make_env(n_compute=4)
    app = make_compute_app(n_tasks=32, tasks_per_node=8)
    spec = DaemonSpec("echod", main=echo_daemon, image_mb=1.0)
    out = {}

    def tool(env):
        fe = ToolFrontEnd(env.cluster, env.rm, "echo")
        yield from fe.init()
        session = fe.create_session()
        yield from fe.launch_and_spawn(session, app, spec,
                                       usr_data={"hello": "daemons"})
        out["session"] = session
        out["report"] = yield from fe.recv_usrdata_be(session)
        yield from fe.detach(session)

    drive(env, tool(env))
    out["env"] = env
    return out


class TestLaunchAndSpawn:
    def test_session_ready_then_detached(self, launch_result):
        assert launch_result["session"].state is SessionState.DETACHED

    def test_job_running_with_all_tasks(self, launch_result):
        job = launch_result["session"].job
        assert job.state is JobState.RUNNING
        assert len(job.tasks) == 32

    def test_rpdtab_complete(self, launch_result):
        rpdtab = launch_result["session"].rpdtab
        assert len(rpdtab) == 32
        assert len(rpdtab.hosts) == 4

    def test_one_daemon_per_node(self, launch_result):
        session = launch_result["session"]
        assert session.n_daemons == 4
        assert {d.node.name for d in session.daemons} == set(
            session.rpdtab.hosts)

    def test_daemons_saw_all_ranks(self, launch_result):
        assert launch_result["report"]["all_ranks"] == list(range(32))

    def test_timeline_is_ordered(self, launch_result):
        tl = launch_result["session"].timeline
        order = ["e0_client_call", "e1_engine_invoked", "e2_launcher_started",
                 "e3_breakpoint", "e4_rpdtab_fetched", "e5_daemon_spawn_req",
                 "e6_daemons_spawned", "e7_handshake_begin", "e10_ready",
                 "e11_returned"]
        times = [tl.marks[name] for name in order]
        assert times == sorted(times)

    def test_component_times_sum_to_total(self, launch_result):
        times = launch_result["session"].times
        parts = (times.rm_time() + times.t_trace + times.t_rpdtab
                 + times.t_handshake + times.t_other)
        assert parts == pytest.approx(times.total, rel=1e-6)

    def test_launchmon_share_is_small(self, launch_result):
        """The headline claim: LaunchMON's own overhead is a small fraction."""
        times = launch_result["session"].times
        assert 0.0 < times.launchmon_fraction() < 0.35

    def test_tracing_cost_near_18ms(self, launch_result):
        times = launch_result["session"].times
        assert times.t_trace == pytest.approx(0.018, abs=0.004)


class TestAttachAndSpawn:
    def _run(self, n_nodes=4, n_tasks=32):
        env = make_env(n_compute=n_nodes)
        app = make_compute_app(n_tasks=n_tasks, tasks_per_node=8)
        spec = DaemonSpec("echod", main=echo_daemon, image_mb=1.0)
        out = {}

        def scenario(env):
            # a job launched normally, no tool attached
            job = yield from env.rm.launch_job(app, env.rm.allocate(n_nodes))
            fe = ToolFrontEnd(env.cluster, env.rm, "echo")
            yield from fe.init()
            session = fe.create_session()
            t0 = env.sim.now
            yield from fe.attach_and_spawn(session, job, spec)
            out["attach_time"] = env.sim.now - t0
            out["session"] = session
            out["report"] = yield from fe.recv_usrdata_be(session)
            yield from fe.detach(session)

        drive(env, scenario(env))
        return out

    def test_attach_acquires_all_tasks(self):
        out = self._run()
        assert len(out["session"].rpdtab) == 32
        assert out["report"]["all_ranks"] == list(range(32))

    def test_attach_has_no_job_launch_component(self):
        out = self._run()
        assert out["session"].times.t_job == 0.0

    def test_attach_faster_than_launch(self):
        env = make_env(n_compute=4)
        app = make_compute_app(n_tasks=32, tasks_per_node=8)
        spec = DaemonSpec("echod", main=echo_daemon, image_mb=1.0)
        res = {}

        def scenario(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "echo")
            yield from fe.init()
            s1 = fe.create_session()
            t0 = env.sim.now
            yield from fe.launch_and_spawn(s1, app, spec)
            res["launch"] = env.sim.now - t0
            yield from fe.recv_usrdata_be(s1)
            yield from fe.detach(s1)

        drive(env, scenario(env))
        out = self._run()
        assert out["attach_time"] < res["launch"]


class TestUserDataPiggyback:
    def test_usr_data_reaches_every_daemon(self):
        env = make_env(n_compute=3)
        app = make_compute_app(n_tasks=24, tasks_per_node=8)
        seen = []

        def daemon(ctx):
            be = BackEnd(ctx)
            yield from be.init()
            seen.append((ctx.rank, ctx.usr_data_init))
            yield from be.ready()
            yield from be.finalize()

        spec = DaemonSpec("d", main=daemon)

        def tool(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            s = fe.create_session()
            yield from fe.launch_and_spawn(s, app, spec,
                                           usr_data={"topo": [1, 2, 3]})
            yield from fe.detach(s)

        drive(env, tool(env))
        assert sorted(r for r, _ in seen) == [0, 1, 2]
        assert all(d == {"topo": [1, 2, 3]} for _, d in seen)

    def test_pack_unpack_registration(self):
        env = make_env(n_compute=2)
        app = make_compute_app(n_tasks=16, tasks_per_node=8)
        got = {}

        def daemon(ctx):
            be = BackEnd(ctx)
            yield from be.init()
            yield from be.ready()
            if be.am_i_master():
                yield from be.send_usrdata([3, 1, 2])
            yield from be.finalize()

        spec = DaemonSpec("d", main=daemon)

        def tool(env):
            fe = ToolFrontEnd(env.cluster, env.rm, "t")
            yield from fe.init()
            s = fe.create_session()
            fe.register_pack(s, be_to_fe=lambda data: sorted(data))
            yield from fe.launch_and_spawn(s, app, spec)
            got["data"] = yield from fe.recv_usrdata_be(s)
            yield from fe.detach(s)

        drive(env, tool(env))
        assert got["data"] == [1, 2, 3]
