"""Tests for the RPDTAB (MPIR proctable) and its binary codec."""

import pytest

from repro.mpir import ProcDesc, RPDTAB


def make_table(n_tasks=16, tasks_per_node=4, exe="app"):
    return RPDTAB(
        ProcDesc(rank=r, host_name=f"node{r // tasks_per_node:03d}",
                 executable_name=exe, pid=1000 + r)
        for r in range(n_tasks))


class TestRPDTAB:
    def test_len_and_iteration_rank_order(self):
        tab = make_table(8)
        assert len(tab) == 8
        assert [e.rank for e in tab] == list(range(8))

    def test_getitem_by_rank(self):
        tab = make_table(8)
        assert tab[5].pid == 1005

    def test_hosts_in_first_rank_order(self):
        tab = make_table(8, tasks_per_node=4)
        assert tab.hosts == ["node000", "node001"]

    def test_entries_on_host(self):
        tab = make_table(8, tasks_per_node=4)
        local = tab.entries_on("node001")
        assert [e.rank for e in local] == [4, 5, 6, 7]

    def test_entries_on_unknown_host_empty(self):
        assert make_table(4).entries_on("nowhere") == []

    def test_task_counts(self):
        tab = make_table(10, tasks_per_node=4)
        assert tab.task_counts() == {"node000": 4, "node001": 4, "node002": 2}

    def test_unsorted_input_sorted(self):
        entries = [ProcDesc(2, "h", "x", 3), ProcDesc(0, "h", "x", 1),
                   ProcDesc(1, "h", "x", 2)]
        tab = RPDTAB(entries)
        assert [e.rank for e in tab] == [0, 1, 2]

    def test_empty_table(self):
        tab = RPDTAB()
        assert len(tab) == 0
        assert tab.hosts == []
        assert RPDTAB.from_bytes(tab.to_bytes()) == tab


class TestCodec:
    def test_roundtrip(self):
        tab = make_table(64, tasks_per_node=8)
        assert RPDTAB.from_bytes(tab.to_bytes()) == tab

    def test_roundtrip_unicode_names(self):
        tab = RPDTAB([ProcDesc(0, "nöde-α", "exé", 42)])
        back = RPDTAB.from_bytes(tab.to_bytes())
        assert back[0].host_name == "nöde-α"
        assert back[0].executable_name == "exé"

    def test_string_table_dedupes(self):
        """Wire size grows ~linearly in tasks, not in total string bytes."""
        small = make_table(10, tasks_per_node=10).wire_size()
        big = make_table(1000, tasks_per_node=10).wire_size()
        per_task = (big - small) / 990
        assert per_task < 40  # fixed record + occasional new hostname

    def test_wire_size_matches_bytes(self):
        tab = make_table(32)
        assert tab.wire_size() == len(tab.to_bytes())

    def test_wire_size_linear_in_tasks(self):
        s1 = make_table(100).wire_size()
        s2 = make_table(200).wire_size()
        s3 = make_table(400).wire_size()
        assert (s3 - s2) == pytest.approx(2 * (s2 - s1), rel=0.2)

    def test_equality_semantics(self):
        assert make_table(8) == make_table(8)
        assert make_table(8) != make_table(9)
        assert make_table(8) != object()
