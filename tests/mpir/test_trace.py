"""Tests for ptrace-style tracing and proctable fetching."""

import pytest

from repro.cluster import Node
from repro.cluster.process import DebugEvent, DebugEventType, ProcState
from repro.mpir import (
    MPIR_PROCTABLE,
    MPIR_PROCTABLE_SIZE,
    ProcDesc,
    TraceError,
    TracedProcess,
)
from tests.conftest import run_gen


@pytest.fixture
def target(sim):
    node = Node(sim, "fe")
    proc = run_gen(sim, node.fork_exec("srun"))
    return proc


class TestAttachDetach:
    def test_attach_stops_target(self, sim, target):
        tr = TracedProcess(target)
        run_gen(sim, tr.attach())
        assert tr.attached
        assert target.traced_by is tr
        assert target.state is ProcState.STOPPED

    def test_double_attach_rejected(self, sim, target):
        tr1 = TracedProcess(target)
        run_gen(sim, tr1.attach())
        tr2 = TracedProcess(target)
        with pytest.raises(TraceError, match="already traced"):
            run_gen(sim, tr2.attach())

    def test_attach_dead_process_rejected(self, sim, target):
        target.exit(0)
        sim.run()
        with pytest.raises(TraceError, match="dead"):
            run_gen(sim, TracedProcess(target).attach())

    def test_detach_resumes(self, sim, target):
        tr = TracedProcess(target)
        run_gen(sim, tr.attach())
        run_gen(sim, tr.detach())
        assert target.traced_by is None
        assert target.state is ProcState.RUNNING

    def test_operation_without_attach_raises(self, sim, target):
        tr = TracedProcess(target)
        with pytest.raises(TraceError):
            run_gen(sim, tr.read_symbol("x"))


class TestSymbols:
    def test_read_write_symbol(self, sim, target):
        tr = TracedProcess(target)
        run_gen(sim, tr.attach())
        run_gen(sim, tr.write_symbol("MPIR_being_debugged", 1))
        value = run_gen(sim, tr.read_symbol("MPIR_being_debugged"))
        assert value == 1

    def test_missing_symbol_raises(self, sim, target):
        tr = TracedProcess(target)
        run_gen(sim, tr.attach())
        with pytest.raises(TraceError, match="not found"):
            run_gen(sim, tr.read_symbol("no_such_symbol"))

    def test_reads_cost_time_and_counted(self, sim, target):
        tr = TracedProcess(target)
        run_gen(sim, tr.attach())
        t0 = sim.now
        run_gen(sim, tr.write_symbol("s", 1))
        run_gen(sim, tr.read_symbol("s"))
        assert sim.now > t0
        assert tr.words_read == 2


class TestEvents:
    def test_wait_event_blocks_then_delivers(self, sim, target):
        tr = TracedProcess(target)
        run_gen(sim, tr.attach())
        got = []

        def waiter(sim):
            ev = yield from tr.wait_event()
            got.append(ev)

        def emitter(sim):
            yield sim.timeout(1.0)
            target.emit_debug_event(
                DebugEvent(DebugEventType.BREAKPOINT, target.pid,
                           "MPIR_Breakpoint"))

        sim.process(waiter(sim))
        sim.process(emitter(sim))
        sim.run()
        assert got[0].etype is DebugEventType.BREAKPOINT
        assert tr.events_seen == 1

    def test_events_not_delivered_when_untraced(self, sim, target):
        target.emit_debug_event(
            DebugEvent(DebugEventType.FORK, target.pid))
        assert len(target.debug_events) == 0


class TestProctableFetch:
    def _publish(self, target, n):
        table = [ProcDesc(rank=r, host_name=f"n{r//8}", executable_name="a",
                          pid=100 + r) for r in range(n)]
        target.memory[MPIR_PROCTABLE] = table
        target.memory[MPIR_PROCTABLE_SIZE] = n

    def test_fetch_roundtrip(self, sim, target):
        self._publish(target, 32)
        tr = TracedProcess(target)
        run_gen(sim, tr.attach())
        tab = run_gen(sim, tr.read_proctable())
        assert len(tab) == 32
        assert tab[7].pid == 107

    def test_fetch_cost_linear_in_tasks(self, sim, target):
        """Region B of the paper's model: RPDTAB fetch ~ linear in tasks."""
        tr = TracedProcess(target)
        run_gen(sim, tr.attach())

        def timed_fetch(n):
            self._publish(target, n)
            t0 = sim.now
            run_gen(sim, tr.read_proctable())
            return sim.now - t0

        t100 = timed_fetch(100)
        t800 = timed_fetch(800)
        assert t800 == pytest.approx(8 * t100, rel=0.15)

    def test_word_reads_counted_3_per_entry(self, sim, target):
        self._publish(target, 50)
        tr = TracedProcess(target)
        run_gen(sim, tr.attach())
        run_gen(sim, tr.read_proctable())
        # 1 size read + 3 per entry
        assert tr.words_read == 1 + 3 * 50

    def test_unpublished_table_raises(self, sim, target):
        target.memory[MPIR_PROCTABLE_SIZE] = 5
        tr = TracedProcess(target)
        run_gen(sim, tr.attach())
        with pytest.raises(TraceError, match="not published"):
            run_gen(sim, tr.read_proctable())

    def test_size_mismatch_raises(self, sim, target):
        self._publish(target, 4)
        target.memory[MPIR_PROCTABLE_SIZE] = 5
        tr = TracedProcess(target)
        run_gen(sim, tr.attach())
        with pytest.raises(TraceError, match="size"):
            run_gen(sim, tr.read_proctable())
