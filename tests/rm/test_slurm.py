"""Tests for the SLURM RM: allocation, job launch, daemon spawn, events."""

import pytest

from repro.apps import make_compute_app
from repro.be import BackEnd
from repro.cluster import Cluster, ClusterSpec
from repro.mpir import MPIR_DEBUG_STATE, MPIR_PROCTABLE, MPIR_PROCTABLE_SIZE
from repro.rm import DaemonSpec, JobState, RMError, SlurmConfig, SlurmRM
from repro.simx import Simulator
from tests.conftest import run_gen


@pytest.fixture
def cluster(sim):
    return Cluster(sim, ClusterSpec(n_compute=8, seed=2))


@pytest.fixture
def rm(cluster):
    return SlurmRM(cluster)


class TestAllocation:
    def test_allocate_grants_nodes(self, rm):
        alloc = rm.allocate(4)
        assert len(alloc) == 4
        assert len({n.name for n in alloc.nodes}) == 4

    def test_allocations_disjoint(self, rm):
        a1 = rm.allocate(3)
        a2 = rm.allocate(3)
        assert not ({n.name for n in a1.nodes} & {n.name for n in a2.nodes})

    def test_over_allocation_raises(self, rm):
        with pytest.raises(RMError, match="only"):
            rm.allocate(9)

    def test_release_returns_nodes(self, rm):
        a = rm.allocate(8)
        rm.release(a)
        assert len(rm.allocate(8)) == 8


class TestJobLaunch:
    def test_launch_creates_all_tasks(self, sim, rm):
        app = make_compute_app(n_tasks=32, tasks_per_node=8)
        alloc = rm.allocate(4)
        job = run_gen(sim, rm.launch_job(app, alloc))
        assert job.state is JobState.RUNNING
        assert len(job.tasks) == 32
        ranks = [t.memory["_rank"] for t in job.tasks]
        assert ranks == list(range(32))

    def test_tasks_block_placed(self, sim, rm):
        app = make_compute_app(n_tasks=16, tasks_per_node=8)
        job = run_gen(sim, rm.launch_job(app, rm.allocate(2)))
        hosts = {t.memory["_rank"]: t.host for t in job.tasks}
        assert len({hosts[r] for r in range(8)}) == 1
        assert hosts[0] != hosts[8]

    def test_behavior_applied(self, sim, rm):
        app = make_compute_app(n_tasks=8)
        job = run_gen(sim, rm.launch_job(app, rm.allocate(1)))
        t = job.tasks[0]
        assert t.call_stack[-1] == "MPI_Waitall"
        assert t.stats.utime > 0

    def test_mpir_published(self, sim, rm):
        app = make_compute_app(n_tasks=16, tasks_per_node=8)
        job = run_gen(sim, rm.launch_job(app, rm.allocate(2)))
        mem = job.launcher.memory
        assert mem[MPIR_PROCTABLE_SIZE] == 16
        assert len(mem[MPIR_PROCTABLE]) == 16
        assert mem[MPIR_PROCTABLE][3].pid == job.tasks[3].pid

    def test_launcher_is_srun_on_fe(self, sim, rm, cluster):
        app = make_compute_app(n_tasks=8)
        job = run_gen(sim, rm.launch_job(app, rm.allocate(1)))
        assert job.launcher.executable == "srun"
        assert job.launcher.node is cluster.front_end

    def test_launch_time_grows_with_nodes(self):
        def launch_time(n_nodes):
            sim = Simulator()
            cluster = Cluster(sim, ClusterSpec(n_compute=n_nodes, seed=2))
            rm = SlurmRM(cluster)
            app = make_compute_app(n_tasks=8 * n_nodes, tasks_per_node=8)
            run_gen(sim, rm.launch_job(app, rm.allocate(n_nodes)))
            return sim.now

        t4, t32 = launch_time(4), launch_time(32)
        assert t32 > t4
        # tree launch: far better than linear scaling per node
        assert t32 < t4 * 8


class TestDaemonSpawn:
    @staticmethod
    def trivial_daemon(ctx):
        ctx.tool_state["ran"] = True
        yield ctx.sim.timeout(0.001)

    @staticmethod
    def make_factory(collected):
        def factory(daemon, daemons, fabric):
            class Ctx:
                pass
            ctx = Ctx()
            ctx.sim = daemon.node.sim
            ctx.tool_state = {}
            ctx.rank = daemon.rank
            collected.append(ctx)
            return ctx
        return factory

    def test_one_daemon_per_job_node(self, sim, rm):
        app = make_compute_app(n_tasks=32, tasks_per_node=8)
        job = run_gen(sim, rm.launch_job(app, rm.allocate(4)))
        ctxs = []
        spec = DaemonSpec("toold", main=self.trivial_daemon, image_mb=1.0)
        daemons, fabric = run_gen(
            sim, rm.spawn_daemons(job, spec, self.make_factory(ctxs)))
        assert len(daemons) == 4
        assert fabric.size == 4
        assert sorted(d.rank for d in daemons) == [0, 1, 2, 3]
        hosts = {d.node.name for d in daemons}
        assert hosts == {t.host for t in job.tasks}

    def test_daemon_bodies_run(self, sim, rm):
        app = make_compute_app(n_tasks=16, tasks_per_node=8)
        job = run_gen(sim, rm.launch_job(app, rm.allocate(2)))
        ctxs = []
        spec = DaemonSpec("toold", main=self.trivial_daemon)
        run_gen(sim, rm.spawn_daemons(job, spec, self.make_factory(ctxs)))
        sim.run()
        assert all(c.tool_state.get("ran") for c in ctxs)

    def test_daemon_procs_on_nodes(self, sim, rm):
        app = make_compute_app(n_tasks=16, tasks_per_node=8)
        job = run_gen(sim, rm.launch_job(app, rm.allocate(2)))
        spec = DaemonSpec("toold", main=self.trivial_daemon)
        daemons, _ = run_gen(
            sim, rm.spawn_daemons(job, spec, self.make_factory([])))
        for d in daemons:
            assert d.proc.executable == "toold"
            assert d.proc.node is d.node

    def test_spawn_into_pending_job_rejected(self, sim, rm):
        app = make_compute_app(n_tasks=8)
        job = run_gen(sim, rm.create_launcher(app, rm.allocate(1)))
        spec = DaemonSpec("toold", main=self.trivial_daemon)
        with pytest.raises(RMError, match="not launchable"):
            run_gen(sim, rm.spawn_daemons(job, spec, self.make_factory([])))

    def test_spawn_on_allocation_for_mw(self, sim, rm):
        spec = DaemonSpec("commd", main=self.trivial_daemon)
        alloc = rm.allocate(3)
        daemons, fabric = run_gen(
            sim, rm.spawn_on_allocation(alloc, spec, self.make_factory([])))
        assert len(daemons) == 3
        assert {d.node.name for d in daemons} == {n.name for n in alloc.nodes}


class TestDebugEvents:
    def test_well_designed_event_count_is_scale_independent(self):
        """The paper: SLURM has no events that grow with scale (post-fix)."""
        def count_events(n_nodes):
            sim = Simulator()
            cluster = Cluster(sim, ClusterSpec(n_compute=n_nodes, seed=2))
            rm = SlurmRM(cluster)
            app = make_compute_app(n_tasks=8 * n_nodes, tasks_per_node=8)
            job = run_gen(sim, rm.create_launcher(app, rm.allocate(n_nodes)))
            # attach a fake tracer that just counts and resumes
            from repro.mpir import TracedProcess
            tr = TracedProcess(job.launcher)
            run_gen(sim, tr.attach())
            run_gen(sim, tr.write_symbol("MPIR_being_debugged", 1))
            counted = []

            def pump(sim):
                sim.process(rm.run_launcher(job))
                yield from tr.cont()
                while True:
                    ev = yield from tr.wait_event()
                    counted.append(ev)
                    if ev.detail == "MPIR_Breakpoint":
                        break
                    yield from tr.cont()

            run_gen(sim, pump(sim))
            return len(counted)

        assert count_events(2) == count_events(8)

    def test_legacy_mode_events_grow_with_tasks(self):
        def count_events(n_nodes):
            sim = Simulator()
            cluster = Cluster(sim, ClusterSpec(n_compute=n_nodes, seed=2))
            rm = SlurmRM(cluster, config=SlurmConfig(legacy_events=True))
            app = make_compute_app(n_tasks=8 * n_nodes, tasks_per_node=8)
            job = run_gen(sim, rm.create_launcher(app, rm.allocate(n_nodes)))
            from repro.mpir import TracedProcess
            tr = TracedProcess(job.launcher)
            run_gen(sim, tr.attach())
            run_gen(sim, tr.write_symbol("MPIR_being_debugged", 1))
            counted = []

            def pump(sim):
                sim.process(rm.run_launcher(job))
                yield from tr.cont()
                while True:
                    ev = yield from tr.wait_event()
                    counted.append(ev)
                    if ev.detail == "MPIR_Breakpoint":
                        break
                    yield from tr.cont()

            run_gen(sim, pump(sim))
            return len(counted)

        assert count_events(8) - count_events(2) == 48  # 64-16 extra tasks
