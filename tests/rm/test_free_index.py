"""Free-node index: O(1)-amortized allocation bookkeeping, scan-identical.

The RM used to rescan all N compute nodes on every allocate / queue pump;
it now maintains an incremental index. These tests pin the contract: the
index-backed ``free_nodes()`` must always equal the brute-force predicate
scan (not allocated, not crashed, not blacklisted -- in compute order),
through every mutation path: grants, releases, node crashes (while free
*and* while allocated), and direct mutation of the shared
``node_blacklist`` set by the launch layer.
"""

import random

import pytest

from repro.rm import AllocationError
from repro.runner import make_env


def brute_force_free(env):
    """The historical O(N) definition, straight from the predicate."""
    return [n for n in env.cluster.compute
            if n.name not in env.rm._allocated
            and not n.failed
            and n.name not in env.rm.node_blacklist]


def assert_index_exact(env):
    assert [n.name for n in env.rm.free_nodes()] \
        == [n.name for n in brute_force_free(env)]


class TestFreeNodeIndex:
    @pytest.fixture
    def env(self):
        return make_env(n_compute=16)

    def test_initially_everything_is_free_in_compute_order(self, env):
        assert env.rm.free_nodes() == env.cluster.compute
        assert_index_exact(env)

    def test_grant_takes_lowest_positions_first(self, env):
        alloc = env.rm.allocate(4)
        assert alloc.nodes == env.cluster.compute[:4]
        assert env.rm.free_nodes() == env.cluster.compute[4:]
        assert_index_exact(env)

    def test_release_restores_and_reorders_deterministically(self, env):
        a = env.rm.allocate(3)
        b = env.rm.allocate(3)
        env.rm.release(a)
        assert_index_exact(env)
        # the released low positions are granted again before higher ones
        c = env.rm.allocate(3)
        assert c.nodes == a.nodes
        env.rm.release(b)
        env.rm.release(c)
        assert env.rm.free_nodes() == env.cluster.compute

    def test_double_release_is_harmless(self, env):
        a = env.rm.allocate(2)
        env.rm.release(a)
        env.rm.release(a)
        assert env.rm.free_nodes() == env.cluster.compute
        assert_index_exact(env)

    def test_crash_while_free_removes_from_index(self, env):
        env.cluster.compute[5].fail("boom")
        names = [n.name for n in env.rm.free_nodes()]
        assert env.cluster.compute[5].name not in names
        assert len(names) == 15
        assert_index_exact(env)

    def test_crash_while_allocated_never_returns(self, env):
        alloc = env.rm.allocate(4)
        dead = alloc.nodes[2]
        dead.fail("boom")
        env.rm.release(alloc)
        assert dead not in env.rm.free_nodes()
        assert len(env.rm.free_nodes()) == 15
        assert_index_exact(env)

    def test_direct_blacklist_add_reaches_the_index(self, env):
        # the launch layer mutates rm.node_blacklist directly -- the
        # observed set must keep the index exact without an RM call
        condemned = env.cluster.compute[7].name
        env.rm.node_blacklist.add(condemned)
        assert condemned not in {n.name for n in env.rm.free_nodes()}
        assert_index_exact(env)
        # idempotent re-add
        env.rm.node_blacklist.add(condemned)
        assert len(env.rm.free_nodes()) == 15

    def test_blacklist_update_and_discard(self, env):
        names = [env.cluster.compute[i].name for i in (1, 2, 3)]
        env.rm.node_blacklist.update(names)
        assert len(env.rm.free_nodes()) == 13
        assert_index_exact(env)
        env.rm.node_blacklist.discard(names[1])
        assert len(env.rm.free_nodes()) == 14
        assert_index_exact(env)
        env.rm.node_blacklist.clear()
        assert env.rm.free_nodes() == env.cluster.compute

    def test_blacklisted_while_allocated_not_freed_on_release(self, env):
        alloc = env.rm.allocate(2)
        env.rm.node_blacklist.add(alloc.nodes[0].name)
        env.rm.release(alloc)
        assert alloc.nodes[0] not in env.rm.free_nodes()
        assert alloc.nodes[1] in env.rm.free_nodes()
        assert_index_exact(env)

    def test_allocation_error_reports_exact_free_count(self, env):
        env.cluster.compute[0].fail("boom")
        env.rm.node_blacklist.add(env.cluster.compute[1].name)
        with pytest.raises(AllocationError, match="only 14 free of 16"):
            env.rm.allocate(15)

    def test_inplace_set_operators_reach_the_index(self, env):
        # the C-level in-place operators must not bypass the index
        names = [env.cluster.compute[i].name for i in (4, 5, 6)]
        env.rm.node_blacklist |= set(names)
        assert len(env.rm.free_nodes()) == 13
        assert_index_exact(env)
        env.rm.node_blacklist -= {names[0]}
        assert len(env.rm.free_nodes()) == 14
        assert_index_exact(env)
        env.rm.node_blacklist ^= {names[1], "nonexistent"}
        assert_index_exact(env)
        env.rm.node_blacklist &= {names[2]}
        assert len(env.rm.free_nodes()) == 15
        assert_index_exact(env)
        popped = env.rm.node_blacklist.pop()
        assert popped == names[2]
        assert env.rm.free_nodes() == env.cluster.compute
        assert_index_exact(env)
        with pytest.raises(KeyError):  # set.pop drop-in semantics
            env.rm.node_blacklist.pop()

    def test_randomized_ops_stay_scan_identical(self):
        env = make_env(n_compute=32)
        rng = random.Random(1234)
        live_allocs = []
        for _ in range(300):
            op = rng.randrange(5)
            if op == 0:
                want = rng.randrange(1, 6)
                try:
                    live_allocs.append(env.rm.allocate(want))
                except AllocationError:
                    pass
            elif op == 1 and live_allocs:
                env.rm.release(live_allocs.pop(
                    rng.randrange(len(live_allocs))))
            elif op == 2:
                env.cluster.compute[rng.randrange(32)].fail("chaos")
            elif op == 3:
                env.rm.node_blacklist.add(
                    env.cluster.compute[rng.randrange(32)].name)
            elif op == 4 and env.rm.node_blacklist:
                env.rm.node_blacklist.discard(
                    rng.choice(sorted(env.rm.node_blacklist)))
            assert_index_exact(env)
