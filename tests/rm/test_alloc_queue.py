"""The RM allocation queue: typed errors, FIFO waits, release wakeups."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.rm import AllocationError, RMError, SlurmRM
from repro.simx import Simulator


@pytest.fixture
def rm(sim):
    cluster = Cluster(sim, ClusterSpec(n_compute=8, seed=3))
    return SlurmRM(cluster)


class TestAllocateSync:
    def test_insufficient_free_nodes_raises_typed_error(self, rm):
        rm.allocate(6)
        with pytest.raises(AllocationError, match="only 2 free of 8"):
            rm.allocate(3)

    def test_allocation_error_is_an_rm_error(self):
        # existing callers catching RMError keep working
        assert issubclass(AllocationError, RMError)

    def test_release_returns_nodes(self, rm):
        a = rm.allocate(8)
        rm.release(a)
        assert len(rm.allocate(8)) == 8


class TestAllocateAsync:
    def test_grant_without_contention_is_instant(self, sim, rm):
        out = {}

        def requester(sim):
            alloc = yield from rm.allocate_async(4)
            out["alloc"] = alloc
            out["t"] = sim.now

        sim.process(requester(sim))
        sim.run()
        assert len(out["alloc"]) == 4
        assert out["t"] == 0.0
        assert rm.alloc_waits == [0.0]

    def test_oversized_request_fails_fast(self, sim, rm):
        def requester(sim):
            yield from rm.allocate_async(9)

        proc = sim.process(requester(sim))
        with pytest.raises(AllocationError, match="cluster has only"):
            sim.run()
        assert proc.triggered

    def test_waits_until_release(self, sim, rm):
        held = rm.allocate(8)
        out = {}

        def requester(sim):
            alloc = yield from rm.allocate_async(4)
            out["t_granted"] = sim.now
            out["alloc"] = alloc

        def releaser(sim):
            yield sim.timeout(2.5)
            rm.release(held)

        sim.process(requester(sim))
        sim.process(releaser(sim))
        sim.run()
        assert out["t_granted"] == 2.5
        assert rm.alloc_waits == [2.5]
        assert rm.alloc_queue_peak == 1

    def test_fifo_no_starvation_of_large_request(self, sim, rm):
        """A big request at the head is not starved by later small ones."""
        held = rm.allocate(6)  # 2 free
        order = []

        def requester(name, n, delay):
            def gen(sim):
                yield sim.timeout(delay)
                yield from rm.allocate_async(n)
                order.append((name, sim.now))
            return gen

        # big arrives first (t=0.1), small second (t=0.2); 2 nodes are free
        # the whole time but FIFO keeps the small request behind the big one
        sim.process(requester("big", 6, 0.1)(sim))
        sim.process(requester("small", 2, 0.2)(sim))

        def releaser(sim):
            yield sim.timeout(1.0)
            rm.release(held)

        sim.process(releaser(sim))
        sim.run()
        assert [name for name, _ in order] == ["big", "small"]
        assert order[0][1] == 1.0
        assert rm.alloc_queue_peak == 2

    def test_sync_allocate_cannot_overtake_queue(self, sim, rm):
        """allocate() refuses to jump ahead of queued async requests."""
        held = rm.allocate(8)

        def requester(sim):
            alloc = yield from rm.allocate_async(4)
            return alloc

        sim.process(requester(sim))
        sim.run()  # requester is now queued, nothing released yet
        rm.release(held)  # grants the queued request, 4 nodes remain free

        def late_sync(sim):
            yield sim.timeout(0.1)

        # queue is drained, sync path works again
        sim.process(late_sync(sim))
        sim.run()
        assert len(rm.allocate(4)) == 4

    def test_sync_allocate_raises_while_requests_queued(self, sim, rm):
        held = rm.allocate(8)

        def requester(sim):
            yield from rm.allocate_async(2)

        sim.process(requester(sim))
        sim.run()
        with pytest.raises(AllocationError, match="queued ahead"):
            rm.allocate(1)
        rm.release(held)

    def test_aborted_head_request_unblocks_the_queue(self, sim, rm):
        """Withdrawing a blocking head-of-line request re-pumps the queue
        so smaller requests behind it are granted."""
        from repro.simx import Interrupt
        rm.allocate(6)  # 2 free
        out = {}

        def big(sim):
            try:
                yield from rm.allocate_async(4)  # head: cannot fit
            except Interrupt:
                out["big"] = "aborted"
                return

        def small(sim):
            yield sim.timeout(0.1)
            alloc = yield from rm.allocate_async(2)  # fits, behind big
            out["small_granted_at"] = sim.now
            return alloc

        p_big = sim.process(big(sim))

        def aborter(sim):
            yield sim.timeout(1.0)
            p_big.interrupt("cancelled")

        sim.process(small(sim))
        sim.process(aborter(sim))
        sim.run()
        assert out["big"] == "aborted"
        assert out["small_granted_at"] == 1.0
        assert not rm._alloc_waiters

    def test_multiple_waiters_drain_in_order(self, sim, rm):
        held = rm.allocate(8)
        grants = []

        def requester(i):
            def gen(sim):
                yield sim.timeout(0.01 * (i + 1))  # arrival order 0,1,2,3
                yield from rm.allocate_async(2)
                grants.append(i)
            return gen

        for i in range(4):
            sim.process(requester(i)(sim))

        def releaser(sim):
            yield sim.timeout(1.0)
            rm.release(held)  # all 8 nodes at once -> all four fit

        sim.process(releaser(sim))
        sim.run()
        assert grants == [0, 1, 2, 3]
        assert len(rm.alloc_waits) == 4
