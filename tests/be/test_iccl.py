"""Tests for ICCL topologies and collectives."""

import pytest

from repro.be.iccl import ICCLError, ICCLFabric, TreeTopology
from repro.cluster import ClusterSpec, Cluster
from repro.simx import Simulator


class TestTopology:
    def test_flat_shape(self):
        t = TreeTopology.flat(5)
        assert t.parent == (None, 0, 0, 0, 0)
        assert t.children[0] == (1, 2, 3, 4)
        assert t.depth() == 1

    def test_flat_single_rank(self):
        t = TreeTopology.flat(1)
        assert t.depth() == 0
        assert t.subtree(0) == [0]

    def test_binomial_parent_rule(self):
        t = TreeTopology.binomial(8)
        # parent clears the lowest set bit
        assert t.parent[1] == 0
        assert t.parent[2] == 0
        assert t.parent[3] == 2
        assert t.parent[5] == 4
        assert t.parent[6] == 4
        assert t.parent[7] == 6

    def test_binomial_depth_logarithmic(self):
        assert TreeTopology.binomial(2 ** 6).depth() == 6
        assert TreeTopology.binomial(1024).depth() == 10

    def test_kary_shape(self):
        t = TreeTopology.kary(7, 2)
        assert t.parent[1] == 0 and t.parent[2] == 0
        assert t.parent[3] == 1 and t.parent[4] == 1
        assert t.depth() == 2

    def test_subtree_partition(self):
        t = TreeTopology.binomial(16)
        covered = sorted(
            r for child in t.children[0] for r in t.subtree(child))
        assert covered == list(range(1, 16))

    def test_all_ranks_reach_root(self):
        for kind in ("flat", "binomial", "kary"):
            t = TreeTopology.make(37, kind)
            for r in range(37):
                steps, p = 0, r
                while t.parent[p] is not None:
                    p = t.parent[p]
                    steps += 1
                    assert steps <= 37
                assert p == 0

    def test_invalid_sizes(self):
        with pytest.raises(ICCLError):
            TreeTopology.flat(0)
        with pytest.raises(ICCLError):
            TreeTopology.make(4, "mystery")


def _make_fabric(sim, n, kind="binomial", per_rec=0.0):
    cluster = Cluster(sim, ClusterSpec(n_compute=max(n, 2), seed=5))
    topo = TreeTopology.make(n, kind)
    return ICCLFabric(sim, cluster.network, cluster.compute[:n], topo,
                      costs=cluster.costs, rng=cluster.rng,
                      per_rec_cost=per_rec)


def _run_collective(sim, fabric, body):
    """Run `body(ep, rank)` in one process per rank; return rank->result."""
    results = {}

    def daemon(rank):
        ep = fabric.endpoint(rank)
        yield from ep.wireup()
        value = yield from body(ep, rank)
        results[rank] = value

    for r in range(fabric.size):
        sim.process(daemon(r), name=f"d{r}")
    sim.run()
    return results


@pytest.mark.parametrize("kind", ["flat", "binomial", "kary"])
@pytest.mark.parametrize("n", [1, 2, 5, 16, 33])
class TestCollectives:
    def test_gather_rank_order(self, sim, kind, n):
        fabric = _make_fabric(sim, n, kind)

        def body(ep, rank):
            out = yield from ep.gather(f"payload-{rank}")
            return out

        results = _run_collective(sim, fabric, body)
        assert results[0] == [f"payload-{r}" for r in range(n)]
        assert all(results[r] is None for r in range(1, n))

    def test_broadcast_reaches_all(self, sim, kind, n):
        fabric = _make_fabric(sim, n, kind)

        def body(ep, rank):
            obj = {"cfg": 7} if rank == 0 else None
            out = yield from ep.broadcast(obj)
            return out

        results = _run_collective(sim, fabric, body)
        assert all(results[r] == {"cfg": 7} for r in range(n))

    def test_scatter_delivers_own_slice(self, sim, kind, n):
        fabric = _make_fabric(sim, n, kind)
        data = [f"slice-{r}" for r in range(n)]

        def body(ep, rank):
            out = yield from ep.scatter(data if rank == 0 else None)
            return out

        results = _run_collective(sim, fabric, body)
        assert results == {r: f"slice-{r}" for r in range(n)}

    def test_barrier_synchronizes(self, sim, kind, n):
        fabric = _make_fabric(sim, n, kind)
        release_times = {}

        def body(ep, rank):
            # stagger arrivals; all must leave at/after the last arrival
            yield ep.fabric.sim.timeout(0.01 * rank)
            yield from ep.barrier()
            release_times[rank] = ep.fabric.sim.now
            return None

        _run_collective(sim, fabric, body)
        last_arrival = 0.01 * (n - 1)
        assert all(t >= last_arrival - 1e-9 for t in release_times.values())


class TestCollectiveCosts:
    def test_per_rec_cost_linear_at_root(self, sim):
        """T(collective)'s linear term: root-side per-record processing."""
        def gather_time(n):
            s = Simulator()
            fabric = _make_fabric(s, n, "binomial", per_rec=0.001)

            def body(ep, rank):
                out = yield from ep.gather(rank)
                return out

            _run_collective(s, fabric, body)
            return s.now

        t8, t64 = gather_time(8), gather_time(64)
        assert t64 > t8
        assert (t64 - t8) == pytest.approx(0.001 * 56, rel=0.5)

    def test_wireup_required_before_collectives(self, sim):
        fabric = _make_fabric(sim, 4)
        ep = fabric.endpoint(1)
        with pytest.raises(ICCLError, match="not wired"):
            next(ep.gather("x"))

    def test_scatter_requires_exact_count(self, sim):
        fabric = _make_fabric(sim, 3)

        def body(ep, rank):
            if rank == 0:
                with pytest.raises(ICCLError, match="exactly"):
                    yield from ep.scatter(["a"])
                # recover: supply the correct count so others can finish
                out = yield from ep.scatter(["a", "b", "c"])
            else:
                out = yield from ep.scatter()
            return out

        results = _run_collective(sim, fabric, body)
        assert results[2] == "c"

    def test_topology_node_mismatch_raises(self, sim):
        cluster = Cluster(sim, ClusterSpec(n_compute=4, seed=5))
        with pytest.raises(ICCLError, match="size"):
            ICCLFabric(sim, cluster.network, cluster.compute[:3],
                       TreeTopology.flat(4))

    def test_collective_time_accounted(self, sim):
        fabric = _make_fabric(sim, 8, per_rec=0.001)

        def body(ep, rank):
            out = yield from ep.gather(rank)
            return out

        _run_collective(sim, fabric, body)
        assert fabric.endpoint(0).collective_time > 0
