#!/usr/bin/env python3
"""Streaming demo: continuous monitoring over the TBON data plane.

Two acts on a 32-node cluster:

1. **The monitor tool end-to-end** -- daemons come up through LaunchMON,
   then sample their local tasks every period and publish each sample as
   a wave on a persistent, credit-flow-controlled stream
   (``Session.open_stream``). The front end receives one merged running
   histogram per period, and the stream's ``StreamReport`` attributes
   every wave's latency exactly (fanin / filter / deliver) alongside the
   flow-control counters (inbox high-water <= credit limit, stalls).

2. **Streaming through a node crash** -- a synthetic stream over a
   balanced overlay keeps delivering while a communication node dies
   mid-wave: ``Overlay.repair`` reparents the orphans AND re-publishes
   the in-flight waves of every surviving leaf, so nothing is lost and
   nothing is duplicated.

Run:  python examples/streaming_demo.py
"""

from repro.apps import make_compute_app
from repro.runner import drive, make_env
from repro.tbon import Overlay, TBONTopology
from repro.tbon.overlay import StreamSpec
from repro.tools.monitor import run_monitor

N_NODES = 32
N_WAVES = 12


def act_one_monitor():
    print("=== Act 1: the monitor tool (continuous sampling) ===")
    env = make_env(n_compute=N_NODES)
    app = make_compute_app(n_tasks=N_NODES * 4, tasks_per_node=4)
    box = {}

    def scenario(env):
        job = yield from env.rm.launch_job(app, env.rm.allocate(N_NODES))
        res = yield from run_monitor(
            env.cluster, env.rm, job, n_waves=N_WAVES, interval=0.05,
            filter_name="histogram", window=4, credit_limit=4)
        box["res"] = res

    drive(env, scenario(env))
    res = box["res"]
    rep = res.report
    print(f"daemons up in {res.startup.total:.3f}s "
          f"({res.startup.mechanism}); monitored {res.n_tasks} tasks")
    print(f"delivered {rep.n_delivered}/{N_WAVES} waves at "
          f"{rep.throughput():.1f} waves/s "
          f"(mean latency {rep.mean_latency() * 1e3:.2f} ms)")
    totals = rep.phase_totals()
    for phase, t in totals.items():
        print(f"  {phase:10s} {t:.5f}s")
    print(f"  (phases sum to total latency: {sum(totals.values()):.5f}s "
          f"== {rep.total_latency():.5f}s)")
    print(f"flow control: max inbox depth {rep.max_inbox_depth()} "
          f"(credit limit {rep.credit_limit}), "
          f"{rep.total_stalls()} publisher stalls")
    print(f"windowed cluster state (last 4 waves): "
          f"{res.final_state['running']}")
    print()


def act_two_stream_through_a_crash():
    print("=== Act 2: streaming through a comm-node crash ===")
    env = make_env(n_compute=24)
    topo = TBONTopology.balanced(16, fanout=4)
    comms = topo.comm_positions()
    placement = {0: env.cluster.front_end}
    for i, pos in enumerate(comms):
        placement[pos] = env.cluster.compute[i]
    for i, pos in enumerate(topo.backends()):
        placement[pos] = env.cluster.compute[len(comms) + i]
    overlay = Overlay(env.sim, env.cluster.network, topo, placement,
                      streams={})
    overlay.start_routers()
    stream = overlay.open_stream(StreamSpec(7, "sum", credit_limit=2))
    sim = env.sim

    def leaf(i, pos):
        # staggered sampling cadences, so waves are genuinely in flight
        # (partially assembled) when the crash lands
        yield sim.timeout(0.0015 * i)
        for w in range(N_WAVES):
            yield from stream.publish(pos, w, 1)
            yield sim.timeout(0.004)

    def chaos():
        yield sim.timeout(0.006)  # mid-stream
        victim = comms[0]
        placement[victim].fail("demo crash")
        report = yield from overlay.repair()
        print(f"t={sim.now:.4f}s comm position {victim} died: "
              f"{report.n_reparented} leaves reparented in "
              f"{report.t_repair * 1e3:.2f} ms, "
              f"{report.n_waves_republished} in-flight payloads "
              f"re-published")

    def subscriber():
        for _ in range(N_WAVES):
            pkt = yield from stream.next_wave()
            tag = " <- repaired" if stream.report.waves[pkt.wave].republished \
                else ""
            print(f"t={sim.now:.4f}s wave {pkt.wave:2d} merged "
                  f"{pkt.payload} leaves{tag}")

    for i, pos in enumerate(topo.backends()):
        proc = sim.process(leaf(i, pos))
        placement[pos].register_body(proc)
    sim.process(chaos())
    drive(env, subscriber())
    rep = stream.report
    print(f"all {rep.n_delivered} waves delivered exactly once across "
          f"{rep.n_repairs} repair ({rep.n_republished} re-publishes)")


def main():
    act_one_monitor()
    act_two_stream_through_a_crash()


if __name__ == "__main__":
    main()
