#!/usr/bin/env python3
"""Control-plane demo: a daemon restart under live tool sessions.

Starts the persistent control-plane daemon, launches two tool sessions
through it (one with a TBON overlay publishing into a persistent
stream), then kills the daemon mid-service and restarts it. The new
generation restores from the checkpoint: both trees are *adopted* --
rebound to the same RM jobs and the same daemon processes, never
relaunched -- and the overlay's stream keeps delivering the waves the
daemons published while the control plane was dead.

Run:  python examples/ctl_demo.py
"""

from repro import make_env
from repro.cluster import ClusterSpec
from repro.ctl import CTL_STREAM_ID, ControlPlane, CtlClient


def run_gen(env, gen):
    proc = env.sim.process(gen)
    env.sim.run()
    return proc.value


def main():
    env = make_env(n_compute=12, spec=ClusterSpec(n_compute=12, seed=7),
                   seed=7)
    sim = env.sim
    control = ControlPlane(env.cluster, env.rm, max_in_flight=3)
    client = CtlClient(control)

    print("=== generation 1: start, launch, serve ===\n")
    st = client.start()
    print(f"daemon {st['state']}, generation {st['generation']}")
    id_be = client.launch("generic-be", 3)
    id_ov = client.launch("overlay", 3, waves=2)
    run_gen(env, client.wait(id_be))
    run_gen(env, client.wait(id_ov))
    for ctl_id in (id_be, id_ov):
        info = client.info(ctl_id)
        print(f"ctl{ctl_id}: {info['tool']} -> {info['state']}")
    # a second start against a live daemon is an idempotent no-op
    st = client.start()
    print(f"start again: already_running={st['already_running']}")

    daemons_before = {
        ctl_id: [d.proc for d in control.daemon.get(ctl_id).session.job.daemons]
        for ctl_id in (id_be, id_ov)
    }

    print("\n=== crash: SIGKILL mid-service ===\n")
    control.crash()
    print(f"daemon state: {control.cmd_status()['state']}")
    sim.run(until=sim.now + 0.5)  # the trees keep running headless
    alive = sum(p.alive for procs in daemons_before.values() for p in procs)
    print(f"daemon processes still alive while control plane is down: "
          f"{alive}")

    print("\n=== generation 2: restart + restore ===\n")
    st = client.start()
    report = control.daemon.restore_report
    print(f"daemon {st['state']}, generation {st['generation']}")
    print(f"restore: adopted={report.adopted} resubmitted="
          f"{report.resubmitted} relaunched={report.relaunched}")
    for ctl_id in (id_be, id_ov):
        cs = control.daemon.get(ctl_id)
        same = [d.proc for d in cs.session.job.daemons] \
            == daemons_before[ctl_id]
        print(f"ctl{ctl_id}: adopted={cs.adopted}, same daemon "
              f"processes={same}")

    # data-plane continuity: read the waves published before the crash
    stream = client.open_stream(id_ov, stream_id=CTL_STREAM_ID)

    def read_waves():
        got = []
        for _ in range(2):
            pkt = yield from stream.next_wave()
            got.append(pkt.wave)
        return got

    waves = run_gen(env, read_waves())
    print(f"\nstream over the adopted overlay delivered waves: {waves}")

    print("\n=== teardown ===\n")
    for ctl_id in (id_be, id_ov):
        run_gen(env, client.end(ctl_id))
    st = run_gen(env, client.stop())
    print(f"daemon {st['state']}; allocated nodes left: "
          f"{len(env.rm.allocated_node_names)} (must be 0)")


if __name__ == "__main__":
    main()
