#!/usr/bin/env python3
"""Scaling study: launch mechanisms and the analytic model, side by side.

Sweeps daemon counts and compares: sequential rsh, tree-based rsh, and the
RM-native path LaunchMON drives -- then overlays the Section 4 model's
prediction for the full launchAndSpawn. This generalizes Figure 6 beyond
STAT and shows where each mechanism's scaling breaks.

Run:  python examples/scaling_study.py
"""

from repro import drive, make_env
from repro.adhoc import sequential_rsh_launch, tree_rsh_launch
from repro.experiments.fig3 import DAEMON_IMAGE_MB, measure_launch_and_spawn
from repro.perfmodel import LaunchModel, ModelInputs


def time_adhoc(launcher, n):
    env = make_env(n_compute=n)
    box = {}

    def scenario(env):
        r = yield from launcher(env.cluster, env.cluster.compute,
                                image_mb=1.0)
        box["r"] = r

    drive(env, scenario(env))
    r = box["r"]
    return None if r.failed else r.elapsed, r


def main():
    print("=== daemon launching at scale: mechanism comparison ===\n")
    print(f"{'daemons':>8} {'rsh-seq':>10} {'rsh-tree':>10} "
          f"{'launchmon':>10} {'model':>10}")
    model = LaunchModel()
    for n in (8, 32, 128, 512):
        t_seq, seq_res = time_adhoc(sequential_rsh_launch, n)
        t_tree, _ = time_adhoc(tree_rsh_launch, n)
        measured, _, _ = measure_launch_and_spawn(n)
        predicted = model.predict(
            ModelInputs(n, daemon_image_mb=DAEMON_IMAGE_MB))
        seq_cell = f"{t_seq:10.2f}" if t_seq is not None else \
            f"FAIL@{seq_res.n_spawned:4d}"
        print(f"{n:8d} {seq_cell:>10} {t_tree:10.2f} "
              f"{measured.total:10.2f} {predicted.total:10.2f}")

    print("\nnotes:")
    print(" * rsh-seq: one held rsh client per daemon; linear at ~0.24 "
          "s/daemon, dies when the front-end process table fills")
    print(" * rsh-tree: parallelizes the rsh cost but still needs rshd on "
          "compute nodes (impossible on BG/L or Cray XT)")
    print(" * launchmon column is the FULL launchAndSpawn (job launch + "
          "daemon launch + handshake); the others launch daemons only")
    print(" * model: the Section 4 closed-form prediction for launchAndSpawn")

    print("\n=== portability: the same tool on an MPP (no compute rshd) ===")
    from repro.cluster import ClusterSpec
    env = make_env(n_compute=8, spec=ClusterSpec(n_compute=8,
                                                 compute_rshd=False))
    box = {}

    def scenario(env):
        r = yield from sequential_rsh_launch(env.cluster,
                                             env.cluster.compute)
        box["r"] = r

    drive(env, scenario(env))
    print(f"  ad-hoc rsh:  FAILED ({box['r'].failure.split(':')[-1].strip()})")
    m, _, _ = measure_launch_and_spawn(8)
    print(f"  launchmon:   works unchanged ({m.total:.2f} s) -- the RM's "
          f"native launcher needs no node-local remote access")


if __name__ == "__main__":
    main()
