#!/usr/bin/env python3
"""Multi-tenant demo: ten tool sessions sharing one simulated cluster.

The non-blocking face of the FE API: submit ``launchAndSpawn`` operations
to a :class:`~repro.fe.service.ToolService` and get back
:class:`~repro.fe.service.SessionHandle` futures. Status callbacks
(``LMON_fe_regStatusCB`` style) announce every session-state transition;
afterwards the handles' timing fields decompose each tenant's latency into
admission wait, node-allocation wait and actual spawn time.

The cluster fits 4 concurrent sessions (32 nodes, 8 per session) and the
service admits at most 6 at a time -- so tenants 5+ queue, first at the
service's admission gate, then in the RM's FIFO node queue. That queueing
is precisely what the classic one-session-at-a-time API could not express.

Run:  python examples/multitenant_demo.py
"""

from repro import DaemonSpec, drive, make_service_env
from repro.apps import make_compute_app
from repro.be import BackEnd

N_TENANTS = 10
N_COMPUTE = 32
NODES_PER_SESSION = 8


def tool_daemon(ctx):
    """Each tenant's back-end daemon: init, report, finalize."""
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    if be.am_i_master():
        yield from be.send_usrdata({"daemons": be.get_size()})
    yield from be.finalize()


def tenant_body(fe, session):
    """Per-session tool logic, run inside the session's own sim process."""
    report = yield from fe.recv_usrdata_be(session)
    yield from fe.detach(session, reclaim_job=True)
    return report


def main():
    env = make_service_env(n_compute=N_COMPUTE, max_in_flight=6)
    app = make_compute_app(n_tasks=NODES_PER_SESSION * 4, tasks_per_node=4)
    spec = DaemonSpec("demo_be", main=tool_daemon, image_mb=1.0)

    print(f"=== {N_TENANTS} concurrent tool sessions on {N_COMPUTE} "
          f"simulated nodes ({NODES_PER_SESSION} nodes each, "
          f"admission cap 6) ===\n")

    def announce(session, old, new):
        print(f"  [t={env.sim.now:7.3f}] session {session.id:2d} "
              f"({session.tool_name}): {old.value} -> {new.value}")

    handles = []
    for i in range(N_TENANTS):
        h = env.service.submit_launch(app, spec, tool_name=f"user{i}",
                                      body=tenant_body)
        h.register_status_cb(announce)
        handles.append(h)

    print("state transitions (all sessions interleaved):")
    drive(env, env.service.drain())

    print(f"\nper-tenant latency decomposition (virtual seconds):")
    print(f"{'tenant':>8} {'admission':>10} {'alloc_wait':>10} "
          f"{'spawn':>8} {'total':>8}")
    for h in handles:
        spawn = h.launch_latency - h.queue_wait - h.alloc_wait
        print(f"{h.fe.tool_name:>8} {h.queue_wait:10.3f} "
              f"{h.alloc_wait:10.3f} {spawn:8.3f} {h.launch_latency:8.3f}")

    summary = env.service.summary()
    lats = summary["launch_latencies"]
    makespan = max(h.finished_at for h in handles)
    print(f"\n{summary['completed']}/{summary['submitted']} sessions "
          f"completed in {makespan:.3f}s "
          f"({summary['completed'] / makespan:.1f} sessions/s), "
          f"peak concurrency {summary['peak_in_flight']}")
    print(f"latency: min {lats[0]:.3f}s, max {lats[-1]:.3f}s -- the spread "
          f"is pure queueing; every daemon report arrived: "
          f"{all(h.body_result == {'daemons': NODES_PER_SESSION} for h in handles)}")


if __name__ == "__main__":
    main()
