#!/usr/bin/env python3
"""Quickstart: launch a parallel job under tool control with LaunchMON.

This is the minimal end-to-end use of the public API: build a simulated
SLURM cluster, write a 20-line tool daemon, and run ``launchAndSpawn`` --
the paper's Figure 2 critical path -- printing the resulting timeline and
component breakdown.

Run:  python examples/quickstart.py
"""

from repro import DaemonSpec, ToolFrontEnd, drive, make_env
from repro.apps import make_compute_app
from repro.be import BackEnd


def my_tool_daemon(ctx):
    """A complete LaunchMON tool daemon.

    Every daemon initializes (fabric wireup + handshake), then uses the
    ICCL collectives; the master exchanges data with the front end.
    """
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()

    local_ranks = [entry.rank for entry in be.get_my_proctab()]
    all_ranks = yield from be.gather(local_ranks)

    if be.am_i_master():
        flat = sorted(r for chunk in all_ranks for r in chunk)
        yield from be.send_usrdata({
            "daemons": be.get_size(),
            "tasks_seen": len(flat),
            "contiguous": flat == list(range(len(flat))),
        })
    yield from be.finalize()


def main():
    env = make_env(n_compute=16)
    app = make_compute_app(n_tasks=128, tasks_per_node=8)
    spec = DaemonSpec("mytool_be", main=my_tool_daemon, image_mb=1.0)

    results = {}

    def tool(env):
        fe = ToolFrontEnd(env.cluster, env.rm, "mytool")
        yield from fe.init()
        session = fe.create_session()
        yield from fe.launch_and_spawn(session, app, spec,
                                       usr_data={"greeting": "hello"})
        results["report"] = yield from fe.recv_usrdata_be(session)
        results["session"] = session
        yield from fe.detach(session)

    drive(env, tool(env))

    session = results["session"]
    print("=== quickstart: launchAndSpawn on 16 simulated nodes ===\n")
    print(f"job: {app.n_tasks} tasks of '{app.executable}' on "
          f"{session.n_daemons} nodes, one tool daemon per node\n")
    print(f"master daemon reported: {results['report']}\n")

    print("critical-path timeline (Figure 2 events, virtual seconds):")
    for name, t in sorted(session.timeline.marks.items(), key=lambda kv: kv[1]):
        print(f"  {name:24s} {t:8.4f}")

    t = session.times
    print("\ncomponent breakdown (Section 4 model terms):")
    for key, value in t.as_dict().items():
        print(f"  {key:14s} {value:8.4f} s")
    print(f"\nLaunchMON's own share: {100 * t.launchmon_fraction():.1f}% "
          f"of {t.total:.3f} s  (paper: ~5.2% at 128 daemons)")

    # every session also keeps the RM's daemon-spawn phase attribution
    # (see examples/resilience_demo.py for the failure-attribution face)
    report = session.launch_report
    print(f"\ndaemon-spawn phases ({report.mechanism}, "
          f"dominant: {report.dominant_phase()}):")
    for phase, seconds in report.phases().items():
        if seconds:
            print(f"  {phase:14s} {seconds:8.4f} s")


if __name__ == "__main__":
    main()
