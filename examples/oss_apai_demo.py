#!/usr/bin/env python3
"""Open|SpeedShop demo: APAI acquisition with and without LaunchMON.

Reproduces one Table 1 scenario end to end: the original DPCL-based O|SS
Instrumentor (persistent root daemons + a full parse of the srun binary)
versus the LaunchMON-based replacement (debugger-style attach, read exactly
the RPDTAB). Same proctable, ~55x less time, no root daemons.

Run:  python examples/oss_apai_demo.py
"""

from repro import drive, make_env
from repro.apps import make_compute_app
from repro.tools.oss import (
    DpclInfrastructure,
    DpclInstrumentor,
    LaunchmonInstrumentor,
)


def main():
    n_nodes = 16
    env = make_env(n_compute=n_nodes)
    app = make_compute_app(n_tasks=8 * n_nodes, tasks_per_node=8)

    box = {}

    def scenario(env):
        # an administrator must have preinstalled DPCL's root daemons --
        # precisely the deployment burden Section 5.3 calls out
        dpcl = DpclInfrastructure(env.cluster)
        yield from dpcl.preinstall()

        job = yield from env.rm.launch_job(app, env.rm.allocate(n_nodes))

        old = DpclInstrumentor(env.cluster, dpcl)
        box["dpcl"] = yield from old.acquire_apai(job)

        new = LaunchmonInstrumentor(env.cluster, env.rm)
        box["lmon"] = yield from new.acquire_apai(job)

    drive(env, scenario(env))
    d, l = box["dpcl"], box["lmon"]

    print("=== O|SS: time to acquire APAI information "
          f"({n_nodes} nodes, {d.n_tasks} tasks) ===\n")
    print(f"  DPCL Instrumentor:      {d.t_access:7.3f} s   "
          f"(root daemons: {d.used_root_daemons})")
    print(f"  LaunchMON Instrumentor: {l.t_access:7.3f} s   "
          f"(root daemons: {l.used_root_daemons})")
    print(f"\n  improvement: {d.t_access / l.t_access:.0f}x   "
          f"identical proctables: {d.proctable == l.proctable}")
    print("\nTable 1 (paper): DPCL 34.32 s vs LaunchMON 0.617 s at 16 nodes")
    print("The DPCL constant is the full parse of the RM binary -- pure "
          "overhead when all the tool needs is the proctable.")


if __name__ == "__main__":
    main()
