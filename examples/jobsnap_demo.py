#!/usr/bin/env python3
"""Jobsnap demo: snapshot the distributed state of a running MPI job.

Launches an I/O-heavy checkpointing application (one writer rank per node,
high system time and major faults), then runs Jobsnap against it exactly as
a user would: attach, collect one /proc record per task, print one line per
task (Section 5.1 / Figure 4).

Run:  python examples/jobsnap_demo.py
"""

from repro import drive, make_env
from repro.apps import make_io_heavy_app
from repro.tools.jobsnap import run_jobsnap


def main():
    n_nodes = 8
    env = make_env(n_compute=n_nodes)
    app = make_io_heavy_app(n_tasks=8 * n_nodes, tasks_per_node=8)

    box = {}

    def scenario(env):
        # the job is already running; Jobsnap attaches to it
        job = yield from env.rm.launch_job(app, env.rm.allocate(n_nodes))
        box["result"] = yield from run_jobsnap(env.cluster, env.rm, job)

    drive(env, scenario(env))
    result = box["result"]

    print("=== jobsnap: one line per task ===\n")
    text = result.report.to_text()
    lines = text.split("\n")
    print("\n".join(lines[:14]))
    print(f"... ({len(lines) - 14} more lines)\n")

    writers = [s for s in result.report.snapshots if s.state == "D"]
    print(f"{len(result.report)} tasks snapshotted on {result.n_daemons} "
          f"nodes")
    print(f"{len(writers)} tasks in disk wait (the checkpoint writers), "
          f"each with {writers[0].maj_flt} major faults and "
          f"{writers[0].vm_lck_kb} KB locked memory")
    print(f"\ntiming: total {result.t_total:.3f} s, of which LaunchMON "
          f"(init->attachAndSpawn) {result.t_launchmon:.3f} s")
    print("(Figure 5 reports 2.92 s total / 2.76 s LaunchMON at 8192 tasks)")


if __name__ == "__main__":
    main()
