#!/usr/bin/env python3
"""Resilience demo: a callback-driven launch that survives node crashes.

A 64-node cluster with a :class:`~repro.cluster.FaultPlan`: 6% of the
compute nodes crash while the tool's daemon set is spawning. The resource
manager runs under a :class:`~repro.launch.LaunchPolicy` (per-daemon
timeout, bounded retry with backoff, node blacklisting, a
``min_daemon_fraction`` acceptance threshold), so instead of collapsing,
the launch routes around the dead nodes and the session comes up
**DEGRADED** -- with ``LMON_fe_regStatusCB``-style callbacks announcing
every state transition, and ``session.launch_report`` attributing the
outcome per phase (t_spawn / t_image_stage / ... / t_repair) and per
daemon index (ok / failed / skipped, retries, blacklisted nodes).

Run:  python examples/resilience_demo.py
"""

from repro import DaemonSpec, ToolFrontEnd, drive, make_env
from repro.apps import make_compute_app
from repro.be import BackEnd
from repro.cluster import ClusterSpec, FaultPlan
from repro.launch import LaunchPolicy

N_NODES = 64
CRASH_RATE = 0.06


def tool_daemon(ctx):
    """A well-behaved daemon; the fabric is built over the survivors."""
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    if be.am_i_master():
        yield from be.send_usrdata({"daemons_up": be.get_size()})
    yield from be.finalize()


def main():
    plan = FaultPlan(crash_rate=CRASH_RATE, crash_window=(0.0, 0.8),
                     auto_arm=False)  # armed when the spawn begins
    policy = LaunchPolicy(per_daemon_timeout=5.0, max_retries=2,
                          retry_backoff=0.05, min_daemon_fraction=0.8,
                          handshake_timeout=30.0)
    env = make_env(n_compute=N_NODES,
                   spec=ClusterSpec(n_compute=N_NODES, fault_plan=plan),
                   policy=policy, launch_strategy="tree-rsh")
    app = make_compute_app(n_tasks=N_NODES * 2, tasks_per_node=2)
    spec = DaemonSpec("resilient_be", main=tool_daemon, image_mb=6.0)
    results = {}

    def announce(session, old, new):
        print(f"  t={env.sim.now:7.3f}s  session {session.id}: "
              f"{old.value} -> {new.value}")

    def tool(env):
        fe = ToolFrontEnd(env.cluster, env.rm, "restool")
        yield from fe.init()
        job = yield from env.rm.launch_job(app, env.rm.allocate(N_NODES))
        env.cluster.faults.arm()  # the crash clock starts with the spawn
        session = fe.create_session()
        fe.register_status_cb(session, announce)
        yield from fe.attach_and_spawn(session, job, spec)
        results["report"] = yield from fe.recv_usrdata_be(session)
        results["session"] = session
        yield from fe.detach(session)

    print(f"=== tree-rsh launch of {N_NODES} daemons with "
          f"{CRASH_RATE:.0%} node-crash rate ===\n")
    drive(env, tool(env))

    session = results["session"]
    report = session.launch_report
    stats = env.cluster.faults.stats
    print(f"\nsession state: {session.state.value} "
          f"({report.n_daemons}/{report.requested} daemons up; "
          f"master counted {results['report']['daemons_up']})")
    print(f"faults injected: {stats.crashes} node crashes, "
          f"{stats.procs_killed} processes killed")
    print(f"recovery: {report.n_retried} retries, "
          f"{report.n_blacklisted} nodes blacklisted "
          f"{report.blacklisted}")
    print(f"failed daemon indices: {report.failed_indices()}")
    print("\nper-phase attribution (virtual seconds):")
    for phase, seconds in report.phases().items():
        print(f"  {phase:>14}: {seconds:8.4f}")
    print(f"  {'total':>14}: {report.total:8.4f} "
          f"(dominant: {report.dominant_phase()})")


if __name__ == "__main__":
    main()
