#!/usr/bin/env python3
"""STAT demo: find why a parallel job hangs, at scale.

A 256-task application is stuck: most ranks wait in MPI_Barrier, two ranks
spin in a compute kernel, and rank 0 blocks in MPI_Recv. STAT launches
stack-sampling daemons through LaunchMON, merges every task's stack into a
call-graph prefix tree over the TBON, and reduces one million potential
debugging targets to three process equivalence classes (Section 5.2).

The demo also runs the ad-hoc MRNet-native startup on the same job to show
the launch-time gap Figure 6 quantifies.

Run:  python examples/stat_hang_analysis.py
"""

from repro import drive, make_env
from repro.apps import make_hang_app
from repro.tools.stat_tool import run_stat_launchmon, run_stat_mrnet_native


def main():
    n_nodes = 32
    env = make_env(n_compute=n_nodes)
    app = make_hang_app(n_tasks=8 * n_nodes, tasks_per_node=8,
                        stuck_ranks=(37, 141), deadlocked_pair=True)

    box = {}

    def scenario(env):
        job = yield from env.rm.launch_job(app, env.rm.allocate(n_nodes))
        box["lmon"] = yield from run_stat_launchmon(env.cluster, env.rm, job)

    drive(env, scenario(env))
    res = box["lmon"]

    print("=== STAT: stack trace analysis of a hung 256-task job ===\n")
    print(f"merged call-graph prefix tree: {res.tree.node_count()} nodes "
          f"covering {len(res.tree.all_ranks)} ranks\n")
    print("process equivalence classes (largest first):")
    for path, ranks in res.classes:
        head = sorted(ranks)[:6]
        suffix = "..." if len(ranks) > 6 else ""
        print(f"  {len(ranks):4d} ranks  {' > '.join(path)}")
        print(f"             e.g. ranks {head}{suffix}")
    print("\n-> attach a full debugger to ONE representative per class "
          "(3 processes instead of 256)")

    print(f"\nstartup via LaunchMON: {res.startup.total:.2f} s "
          f"({res.startup.n_daemons} daemons)")

    # same analysis with the ad-hoc MRNet-native startup, for contrast
    env2 = make_env(n_compute=n_nodes)
    box2 = {}

    def scenario2(env):
        job = yield from env.rm.launch_job(app, env.rm.allocate(n_nodes))
        box2["native"] = yield from run_stat_mrnet_native(env.cluster,
                                                          env.rm, job)

    drive(env2, scenario2(env2))
    native = box2["native"]
    print(f"startup via ad-hoc rsh:  {native.startup.total:.2f} s "
          f"(same tree: {native.tree == res.tree})")
    print(f"LaunchMON speedup: {native.startup.total / res.startup.total:.1f}x"
          f"  (Figure 6: >10x at 256 daemons; ad-hoc fails outright at 512)")


if __name__ == "__main__":
    main()
