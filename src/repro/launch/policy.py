"""LaunchPolicy: the resilience knobs a launch (or a whole RM) runs under.

The fault model (:mod:`repro.cluster.faults`) makes daemons die, stall and
straggle; this policy is the recovery structure that survives them --
designed into the launch layer per the "Scaling Reliably" argument (see
PAPERS.md), not bolted on by callers:

* **per-daemon timeout** -- a spawn attempt (image load + fork/rsh) that
  exceeds ``per_daemon_timeout`` is interrupted and counted as a failure
  (catches stragglers and FS stalls, which never return an error on their
  own);
* **bounded retry with backoff** -- each failed attempt is retried up to
  ``max_retries`` times, sleeping ``retry_backoff * 2**k`` between attempts
  (rides out transient rsh/link faults);
* **node blacklisting** -- a node whose retries are exhausted is added to
  the shared blacklist: later spawns skip it instantly and the resource
  manager never allocates it again within the session
  (:meth:`~repro.rm.base.ResourceManager.free_nodes`);
* **min-daemon fraction** -- the session-level verdict: a partial daemon
  set with at least ``ceil(min_daemon_fraction * requested)`` survivors
  proceeds in the ``DEGRADED`` session state; below it the launch raises
  and the session lands in ``FAILED`` with its nodes reclaimed;
* **handshake timeout** -- bounds the FE<->master-BE handshake so a daemon
  killed mid-handshake fails the session instead of hanging it forever
  (``0`` = wait forever, the classic behaviour).

The all-defaults policy (``LaunchPolicy()``) is *not* the same as no policy:
it still demands a complete daemon set (min fraction 1.0) but routes the
launch through the resilient bookkeeping, so per-index outcomes are
recorded. ``ResourceManager(policy=None)`` -- the default everywhere --
keeps the exact legacy semantics and timing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LaunchPolicy"]


@dataclass(frozen=True)
class LaunchPolicy:
    """Resilience policy for daemon launches (see module docstring)."""

    #: interrupt a single daemon's spawn attempt after this many virtual
    #: seconds (0 = no per-daemon timeout)
    per_daemon_timeout: float = 0.0
    #: extra spawn attempts per daemon after the first fails
    max_retries: int = 1
    #: base backoff between attempts; doubles per retry (exponential)
    retry_backoff: float = 0.05
    #: proceed (DEGRADED) when at least this fraction of daemons came up
    min_daemon_fraction: float = 1.0
    #: condemn nodes whose retries are exhausted (skip + never re-allocate)
    blacklist_nodes: bool = True
    #: bound the FE<->master-BE handshake (0 = wait forever, classic)
    handshake_timeout: float = 0.0

    def min_daemons(self, requested: int) -> int:
        """Smallest acceptable daemon count for a ``requested``-wide set."""
        return max(1, math.ceil(self.min_daemon_fraction * requested))
