"""repro.launch -- the unified daemon-launch strategy layer.

One pluggable :class:`LaunchStrategy` interface (``serial-rsh``,
``tree-rsh``, ``rm-bulk``) behind every launch path in the repo, with a
common :class:`LaunchReport` carrying the per-phase timing breakdown
(spawn / image-stage / topo-dist / connect / handshake / repair) *and*,
for resilient launches, per-index failure attribution (outcomes / retries
/ blacklisted nodes). :class:`LaunchPolicy` bundles the resilience knobs
-- per-daemon timeout, bounded retry with backoff, node blacklisting,
min-daemon fraction -- that resource managers apply to every spawn. See
:mod:`repro.launch.strategy` for the mechanism semantics,
:mod:`repro.cluster.cluster` for the image staging modes the strategies
drive (``shared-fs`` / ``cache`` / ``broadcast``), and
:mod:`repro.cluster.faults` for the faults the policy defends against.
"""

from repro.launch.report import LaunchReport, PHASES
from repro.launch.policy import LaunchPolicy
from repro.launch.strategy import (
    LaunchRequest,
    LaunchResult,
    LaunchStrategy,
    LaunchTimeout,
    RmBulkStrategy,
    SPAWN_ERRORS,
    SerialRshStrategy,
    TreeRshStrategy,
    get_strategy,
    strategy_names,
)

__all__ = [
    "LaunchPolicy",
    "LaunchReport",
    "LaunchRequest",
    "LaunchResult",
    "LaunchStrategy",
    "LaunchTimeout",
    "PHASES",
    "RmBulkStrategy",
    "SPAWN_ERRORS",
    "SerialRshStrategy",
    "TreeRshStrategy",
    "get_strategy",
    "strategy_names",
]
