"""repro.launch -- the unified daemon-launch strategy layer.

One pluggable :class:`LaunchStrategy` interface (``serial-rsh``,
``tree-rsh``, ``rm-bulk``) behind every launch path in the repo, with a
common :class:`LaunchReport` carrying the per-phase timing breakdown
(spawn / image-stage / topo-dist / connect / handshake). See
:mod:`repro.launch.strategy` for the mechanism semantics and
:mod:`repro.cluster.cluster` for the image staging modes the strategies
drive (``shared-fs`` / ``cache`` / ``broadcast``).
"""

from repro.launch.report import LaunchReport, PHASES
from repro.launch.strategy import (
    LaunchRequest,
    LaunchResult,
    LaunchStrategy,
    RmBulkStrategy,
    SerialRshStrategy,
    TreeRshStrategy,
    get_strategy,
    strategy_names,
)

__all__ = [
    "LaunchReport",
    "LaunchRequest",
    "LaunchResult",
    "LaunchStrategy",
    "PHASES",
    "RmBulkStrategy",
    "SerialRshStrategy",
    "TreeRshStrategy",
    "get_strategy",
    "strategy_names",
]
