"""LaunchStrategy: the single pluggable layer behind every daemon launch.

The repo used to carry three divergent copies of the hottest path in the
codebase -- the ad-hoc rsh loops in :mod:`repro.adhoc.launchers`, the RM
bulk spawn inside each resource manager, and the TBON startup spawn loop in
:mod:`repro.tbon.startup`. All of them now route through one of three
strategies:

* :class:`SerialRshStrategy` (``serial-rsh``) -- one rsh per daemon, in a
  loop; optionally holding every client open (the MRNet behaviour that
  exhausts the front end's process table at scale).
* :class:`TreeRshStrategy` (``tree-rsh``) -- spawned daemons spawn their
  children, parallelizing the rsh cost across tree levels.
* :class:`RmBulkStrategy` (``rm-bulk``) -- the paper's efficient path: the
  RM's scalable launch machinery forks every daemon in parallel; resource
  managers wrap it with their protocol costs (controller bookkeeping,
  fan-out tree descent).

Every strategy takes a :class:`LaunchRequest`, stages executable images
through the cluster's storage layer (:class:`~repro.cluster.SharedFilesystem`,
honouring its ``shared-fs``/``cache``/``broadcast`` staging mode) when
``stage_images`` is set, and returns a :class:`LaunchResult` carrying the
spawned processes plus a per-phase :class:`~repro.launch.report.LaunchReport`.

Failure contracts differ by design, mirroring the mechanisms they model:
the rsh strategies *record* the first failure in the report and return the
partial result (ad-hoc practice limps along; callers inspect
``report.failed``), while ``rm-bulk`` is all-or-nothing -- it reaps partial
daemons and re-raises, like a real RM aborting a job step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Sequence

from repro.cluster import Cluster, ForkError, Node, RemoteExecError, SimProcess
from repro.launch.report import LaunchReport

__all__ = [
    "LaunchRequest",
    "LaunchResult",
    "LaunchStrategy",
    "RmBulkStrategy",
    "SerialRshStrategy",
    "TreeRshStrategy",
    "get_strategy",
    "strategy_names",
]


@dataclass
class LaunchRequest:
    """One daemon-launch work order, mechanism-independent.

    ``image_mb < 0`` resolves to ``CostModel.daemon_image_mb``. The
    per-index hooks exist for callers whose daemons are not uniform:
    ``args_for(i, node)`` / ``image_mb_for(i, node)`` override ``args`` /
    ``image_mb`` per spawn, and ``post_spawn(i, node, proc)`` runs right
    after each successful spawn (it may return a generator to cost virtual
    time -- e.g. the ad-hoc topology-file read -- or do plain bookkeeping
    and return None).
    """

    cluster: Cluster
    nodes: Sequence[Node]
    executable: str
    image_mb: float = -1.0
    args: tuple = ()
    uid: str = "user"
    #: keep each rsh client alive to carry daemon stdio (MRNet behaviour)
    hold_clients: bool = False
    #: fan-out of the tree-rsh strategy
    fanout: int = 8
    #: route ``image_mb`` through the storage layer's staging mode
    stage_images: bool = False
    #: cache key for staged images (defaults to the executable name)
    image_key: Optional[str] = None
    #: node the launch originates from (defaults to the front end)
    source: Optional[Node] = None
    #: serial-rsh: propagate spawn failures instead of recording them in
    #: the report (the RM-driven job-launch contract); rm-bulk always
    #: raises, tree-rsh always records
    raise_on_error: bool = False
    args_for: Optional[Callable[[int, Node], tuple]] = None
    image_mb_for: Optional[Callable[[int, Node], float]] = None
    post_spawn: Optional[Callable[[int, Node, SimProcess], Any]] = None

    @property
    def key(self) -> str:
        return self.image_key or self.executable

    def resolved_image_mb(self, i: int = 0, node: Optional[Node] = None,
                          ) -> float:
        if self.image_mb_for is not None:
            return self.image_mb_for(i, node)
        if self.image_mb < 0:
            return self.cluster.costs.daemon_image_mb
        return self.image_mb

    def resolved_args(self, i: int, node: Node) -> tuple:
        if self.args_for is not None:
            return self.args_for(i, node)
        return self.args


@dataclass
class LaunchResult:
    """Spawned daemon processes plus the per-phase timing report."""

    procs: list = field(default_factory=list)
    report: LaunchReport = None  # type: ignore[assignment]

    @property
    def n_spawned(self) -> int:
        return len(self.procs)


class LaunchStrategy:
    """Interface + shared machinery of one launch mechanism."""

    name = "abstract"

    def launch(self, req: LaunchRequest,
               ) -> Generator[Any, Any, LaunchResult]:
        raise NotImplementedError
        yield  # pragma: no cover

    # -- shared helpers ------------------------------------------------------
    def _begin(self, req: LaunchRequest) -> LaunchResult:
        report = LaunchReport(
            self.name, n_daemons=0, requested=len(req.nodes),
            staging_mode=req.cluster.fs.staging)
        return LaunchResult(procs=[], report=report)

    def _prestage(self, req: LaunchRequest,
                  report: LaunchReport) -> Generator[Any, Any, None]:
        """Broadcast-mode staging runs as one explicit up-front phase.

        In ``shared-fs``/``cache`` modes images load per-spawn instead (the
        serialized loads are attributed to ``t_image_stage`` afterwards via
        the filesystem's busy-time meter). Non-uniform image sets
        (``image_mb_for``) cannot ride one broadcast either -- they fall
        back to per-spawn loads, which the broadcast-mode cache still
        coalesces per distinct key.
        """
        fs = req.cluster.fs
        if (not req.stage_images or fs.staging != "broadcast"
                or req.image_mb_for is not None):
            return
        sim = req.cluster.sim
        t0 = sim.now
        yield from fs.stage_images(
            list(req.nodes), req.resolved_image_mb(), req.key)
        report.t_image_stage += sim.now - t0

    def _run_post_spawn(self, req: LaunchRequest, i: int, node: Node,
                        proc: SimProcess) -> Generator[Any, Any, None]:
        if req.post_spawn is None:
            return
        gen = req.post_spawn(i, node, proc)
        if gen is not None:
            yield from gen

    @staticmethod
    def _attribute_fs_time(report: LaunchReport, req: LaunchRequest,
                           busy0: float, window: float) -> float:
        """Attribute shared-FS service time inside the spawn window to the
        image-stage phase (approximate under concurrent foreign loads);
        returns the attributed seconds so callers can carve it out of the
        spawn phase."""
        fs = req.cluster.fs
        if not req.stage_images or fs.staging == "broadcast":
            return 0.0
        served = (fs.busy_time - busy0) / max(1, fs._servers.capacity)
        attributed = min(window, served)
        report.t_image_stage += attributed
        return attributed

    def _finish(self, result: LaunchResult, req: LaunchRequest,
                t0: float) -> LaunchResult:
        report = result.report
        report.n_daemons = len(result.procs)
        report.total = req.cluster.sim.now - t0
        src = req.source or req.cluster.front_end
        report.fe_procs_peak = src.max_uid_procs_seen
        return result


class SerialRshStrategy(LaunchStrategy):
    """The most common ad-hoc practice: one rsh per daemon, in a loop.

    With ``hold_clients`` (the MRNet behaviour) each rsh client stays alive
    on the source node, so the launch eventually exhausts its process table
    instead of merely being slow.
    """

    name = "serial-rsh"

    def launch(self, req: LaunchRequest,
               ) -> Generator[Any, Any, LaunchResult]:
        cluster = req.cluster
        sim = cluster.sim
        fs = cluster.fs
        src = req.source or cluster.front_end
        result = self._begin(req)
        report = result.report
        t0 = sim.now
        yield from self._prestage(req, report)
        t_spawn0 = sim.now
        busy0 = fs.busy_time
        for i, node in enumerate(req.nodes):
            image = req.resolved_image_mb(i, node)
            try:
                if req.stage_images:
                    yield from fs.load_image(image, node=node, key=req.key)
                _client, proc = yield from src.rsh_spawn(
                    node, req.executable, args=req.resolved_args(i, node),
                    uid=req.uid, image_mb=image,
                    hold_client=req.hold_clients)
            except (ForkError, RemoteExecError) as exc:
                if req.raise_on_error:
                    raise
                report.failed = True
                report.failure = str(exc)
                break
            result.procs.append(proc)
            yield from self._run_post_spawn(req, i, node, proc)
        window = sim.now - t_spawn0
        staged = self._attribute_fs_time(report, req, busy0, window)
        report.t_spawn = max(0.0, window - staged)
        return self._finish(result, req, t0)


class TreeRshStrategy(LaunchStrategy):
    """Tree-based ad-hoc protocol: spawned daemons spawn children daemons.

    Parallelizes the rsh cost across levels (depth x per-rsh instead of
    count x per-rsh) but keeps every other ad-hoc weakness: it still needs
    rshd on the compute nodes, manual placement, and a manual protocol for
    daemons to find their children.
    """

    name = "tree-rsh"

    def launch(self, req: LaunchRequest,
               ) -> Generator[Any, Any, LaunchResult]:
        cluster = req.cluster
        sim = cluster.sim
        fs = cluster.fs
        src = req.source or cluster.front_end
        fanout = max(2, req.fanout)
        result = self._begin(req)
        report = result.report
        t0 = sim.now
        yield from self._prestage(req, report)
        t_spawn0 = sim.now
        busy0 = fs.busy_time
        failure: list[str] = []

        def spawn_subtree(origin: Node, targets: list):
            """rsh the first target from origin; it spawns its slices.

            ``targets`` holds ``(index, node)`` pairs so the per-index
            request hooks (args_for / image_mb_for / post_spawn) see each
            daemon's position in ``req.nodes`` despite the tree order.
            """
            if not targets or failure:
                return
            (idx, head), rest = targets[0], targets[1:]
            image = req.resolved_image_mb(idx, head)
            try:
                if req.stage_images:
                    yield from fs.load_image(image, node=head, key=req.key)
                _client, proc = yield from origin.rsh_spawn(
                    head, req.executable, args=req.resolved_args(idx, head),
                    uid=req.uid, image_mb=image,
                    hold_client=req.hold_clients)
            except (ForkError, RemoteExecError) as exc:
                failure.append(str(exc))
                return
            result.procs.append(proc)
            yield from self._run_post_spawn(req, idx, head, proc)
            if not rest:
                return
            # split the remainder into fanout slices handled in parallel
            slices = [rest[i::fanout] for i in range(min(fanout, len(rest)))]
            procs = [sim.process(spawn_subtree(head, s), name="tree-rsh")
                     for s in slices if s]
            yield sim.all_of(procs)

        nodes = list(enumerate(req.nodes))
        roots = [nodes[i::fanout] for i in range(min(fanout, len(nodes)))]
        top = [sim.process(spawn_subtree(src, s), name="tree-rsh-root")
               for s in roots if s]
        yield sim.all_of(top)
        if failure:
            report.failed = True
            report.failure = failure[0]
        window = sim.now - t_spawn0
        staged = self._attribute_fs_time(report, req, busy0, window)
        report.t_spawn = max(0.0, window - staged)
        return self._finish(result, req, t0)


class RmBulkStrategy(LaunchStrategy):
    """The RM's efficient daemon launch: all nodes fork in parallel.

    Models the per-node half of ``spawn_daemons`` (Section 3.1): every node
    stages the daemon image through the storage layer and forks it locally,
    in parallel across nodes. The RM-protocol half (controller bookkeeping,
    launch-tree descent) stays with the resource manager, which adds it to
    the report's spawn phase.

    All-or-nothing: a failed spawn interrupts the in-flight workers, reaps
    the daemons already forked, and re-raises -- a failed set must not leave
    orphan processes squatting on the nodes.
    """

    name = "rm-bulk"

    def launch(self, req: LaunchRequest,
               ) -> Generator[Any, Any, LaunchResult]:
        cluster = req.cluster
        sim = cluster.sim
        fs = cluster.fs
        result = self._begin(req)
        report = result.report
        nodes = list(req.nodes)
        t0 = sim.now
        yield from self._prestage(req, report)
        t_spawn0 = sim.now
        busy0 = fs.busy_time
        procs: list = [None] * len(nodes)

        def _spawn_one(i: int, node: Node):
            image = req.resolved_image_mb(i, node)
            if req.stage_images:
                yield from fs.load_image(image, node=node, key=req.key)
            proc = yield from node.fork_exec(
                req.executable, args=req.resolved_args(i, node),
                uid=req.uid, image_mb=image)
            procs[i] = proc
            yield from self._run_post_spawn(req, i, node, proc)

        workers = [sim.process(_spawn_one(i, node), name=f"spawn:{node.name}")
                   for i, node in enumerate(nodes)]
        try:
            yield sim.all_of(workers)
        except BaseException:
            # abort the set: stop in-flight spawners and reap daemons
            # already forked -- a failed spawn must not leave orphans
            for w in workers:
                # defuse every worker: a sibling that failed at the same
                # instant is already dead but its failure event would
                # otherwise crash the whole simulator run
                w.defuse()
                if w.is_alive:
                    w.interrupt("daemon spawn aborted")
            for p in procs:
                if p is not None and p.alive:
                    p.exit(9)
            raise
        result.procs = list(procs)
        window = sim.now - t_spawn0
        staged = self._attribute_fs_time(report, req, busy0, window)
        report.t_spawn = max(0.0, window - staged)
        return self._finish(result, req, t0)


#: the strategy registry; every entry is stateless and shareable
_STRATEGIES = {
    cls.name: cls()
    for cls in (SerialRshStrategy, TreeRshStrategy, RmBulkStrategy)
}


def strategy_names() -> tuple:
    """Names of the registered launch strategies."""
    return tuple(sorted(_STRATEGIES))


def get_strategy(name: str) -> LaunchStrategy:
    """Look up a registered strategy by name."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown launch strategy {name!r}; "
            f"one of {strategy_names()}") from None
