"""LaunchStrategy: the single pluggable layer behind every daemon launch.

The repo used to carry three divergent copies of the hottest path in the
codebase -- the ad-hoc rsh loops in :mod:`repro.adhoc.launchers`, the RM
bulk spawn inside each resource manager, and the TBON startup spawn loop in
:mod:`repro.tbon.startup`. All of them now route through one of three
strategies:

* :class:`SerialRshStrategy` (``serial-rsh``) -- one rsh per daemon, in a
  loop; optionally holding every client open (the MRNet behaviour that
  exhausts the front end's process table at scale).
* :class:`TreeRshStrategy` (``tree-rsh``) -- spawned daemons spawn their
  children, parallelizing the rsh cost across tree levels.
* :class:`RmBulkStrategy` (``rm-bulk``) -- the paper's efficient path: the
  RM's scalable launch machinery forks every daemon in parallel; resource
  managers wrap it with their protocol costs (controller bookkeeping,
  fan-out tree descent).

Every strategy takes a :class:`LaunchRequest`, stages executable images
through the cluster's storage layer (:class:`~repro.cluster.SharedFilesystem`,
honouring its ``shared-fs``/``cache``/``broadcast`` staging mode) when
``stage_images`` is set, and returns a :class:`LaunchResult` carrying the
spawned processes plus a per-phase :class:`~repro.launch.report.LaunchReport`.

Failure contracts
-----------------
In the **legacy** (non-resilient) mode the contracts differ by design,
mirroring the mechanisms they model: the rsh strategies *record* the first
failure in the report and return the partial result (ad-hoc practice limps
along; callers inspect ``report.failed``), while ``rm-bulk`` is
all-or-nothing -- it reaps partial daemons and re-raises, like a real RM
aborting a job step.

A **resilient** request (any of ``per_daemon_timeout`` / ``max_retries`` /
``blacklist`` set -- usually via :class:`~repro.launch.policy.LaunchPolicy`)
switches all three strategies to the survive-and-attribute contract: each
daemon's spawn is bounded by the per-daemon timeout, retried with
exponential backoff, and its node blacklisted when retries are exhausted;
the launch then *continues* past the failure (tree-rsh re-roots the failed
head's remaining subtree at the live origin -- launch-time self-repair),
and the report carries a per-index outcome for every requested daemon
(``outcomes`` / ``retries`` / ``blacklisted``). Deciding whether a partial
set is acceptable is the caller's policy (``min_daemon_fraction`` in the
resource manager), not the strategy's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Sequence

from repro.cluster import (
    Cluster,
    ForkError,
    Node,
    NodeDown,
    NodeTaggedError,
    RemoteExecError,
    SimProcess,
)
from repro.launch.report import LaunchReport
from repro.simx import run_bounded

__all__ = [
    "LaunchRequest",
    "LaunchResult",
    "LaunchStrategy",
    "LaunchTimeout",
    "RmBulkStrategy",
    "SerialRshStrategy",
    "SPAWN_ERRORS",
    "TreeRshStrategy",
    "get_strategy",
    "strategy_names",
]


class LaunchTimeout(NodeTaggedError):
    """A single daemon's spawn attempt exceeded the per-daemon timeout.

    ``node`` names the unresponsive target (the node is held culpable --
    stragglers and dead-but-undiagnosed hosts look identical from the
    launcher's side)."""


#: the failures a resilient launch absorbs (records + retries) instead of
#: propagating; anything else is a programming error and raises through
SPAWN_ERRORS = (ForkError, RemoteExecError, NodeDown, LaunchTimeout)


@dataclass
class LaunchRequest:
    """One daemon-launch work order, mechanism-independent.

    ``image_mb < 0`` resolves to ``CostModel.daemon_image_mb``. The
    per-index hooks exist for callers whose daemons are not uniform:
    ``args_for(i, node)`` / ``image_mb_for(i, node)`` override ``args`` /
    ``image_mb`` per spawn, and ``post_spawn(i, node, proc)`` runs right
    after each successful spawn (it may return a generator to cost virtual
    time -- e.g. the ad-hoc topology-file read -- or do plain bookkeeping
    and return None).

    The resilience knobs (``per_daemon_timeout`` / ``max_retries`` /
    ``retry_backoff`` / ``blacklist``) default to off; setting any of them
    makes the request *resilient* (see the module docstring for the
    contract change). ``blacklist`` is a caller-owned mutable set of node
    names, shared so what one launch condemns a later launch skips.
    """

    cluster: Cluster
    nodes: Sequence[Node]
    executable: str
    image_mb: float = -1.0
    args: tuple = ()
    uid: str = "user"
    #: keep each rsh client alive to carry daemon stdio (MRNet behaviour)
    hold_clients: bool = False
    #: fan-out of the tree-rsh strategy
    fanout: int = 8
    #: route ``image_mb`` through the storage layer's staging mode
    stage_images: bool = False
    #: cache key for staged images (defaults to the executable name)
    image_key: Optional[str] = None
    #: node the launch originates from (defaults to the front end)
    source: Optional[Node] = None
    #: serial-rsh: propagate spawn failures instead of recording them in
    #: the report (the RM-driven job-launch contract); rm-bulk always
    #: raises, tree-rsh always records. Ignored by resilient requests
    #: (which never propagate SPAWN_ERRORS).
    raise_on_error: bool = False
    #: interrupt one daemon's spawn attempt after this long (0 = never)
    per_daemon_timeout: float = 0.0
    #: extra attempts per daemon after the first fails
    max_retries: int = 0
    #: backoff before the k-th retry: ``retry_backoff * 2**k`` seconds
    retry_backoff: float = 0.05
    #: shared set of condemned node names (None = no blacklisting)
    blacklist: Optional[set] = None
    #: explicit contract override: True forces the survive-and-attribute
    #: contract even with every per-daemon knob off (what a LaunchPolicy
    #: guarantees), False forces legacy; None = infer from the knobs
    resilient_mode: Optional[bool] = None
    args_for: Optional[Callable[[int, Node], tuple]] = None
    image_mb_for: Optional[Callable[[int, Node], float]] = None
    post_spawn: Optional[Callable[[int, Node, SimProcess], Any]] = None

    @property
    def key(self) -> str:
        return self.image_key or self.executable

    @property
    def resilient(self) -> bool:
        """Whether this request runs under the survive-and-attribute
        contract (``resilient_mode`` when set, else inferred from the
        per-daemon knobs)."""
        if self.resilient_mode is not None:
            return self.resilient_mode
        return (self.per_daemon_timeout > 0 or self.max_retries > 0
                or self.blacklist is not None)

    def apply_policy(self, policy, blacklist: Optional[set] = None) -> None:
        """Copy a :class:`~repro.launch.policy.LaunchPolicy`'s per-daemon
        knobs onto this request (the min-fraction verdict stays with the
        caller). A policy always selects the resilient contract -- even one
        with every per-daemon knob off still wants per-index outcome
        bookkeeping for its acceptance-fraction verdict."""
        self.per_daemon_timeout = policy.per_daemon_timeout
        self.max_retries = policy.max_retries
        self.retry_backoff = policy.retry_backoff
        self.resilient_mode = True
        if policy.blacklist_nodes:
            self.blacklist = blacklist if blacklist is not None else set()

    def resolved_image_mb(self, i: int = 0, node: Optional[Node] = None,
                          ) -> float:
        if self.image_mb_for is not None:
            return self.image_mb_for(i, node)
        if self.image_mb < 0:
            return self.cluster.costs.daemon_image_mb
        return self.image_mb

    def resolved_args(self, i: int, node: Node) -> tuple:
        if self.args_for is not None:
            return self.args_for(i, node)
        return self.args


@dataclass
class LaunchResult:
    """Spawned daemon processes plus the per-phase timing report.

    ``procs`` holds the successes in spawn-completion order (the legacy
    face); ``slots`` maps *request index* -> process so partial results
    keep the index <-> node association (resilient launches leave failed
    indices out -- pair ``slots`` with ``request.nodes`` to know exactly
    which daemon runs where).
    """

    procs: list = field(default_factory=list)
    report: LaunchReport = None  # type: ignore[assignment]
    #: request index -> spawned process (absent where the spawn failed)
    slots: dict = field(default_factory=dict)

    @property
    def n_spawned(self) -> int:
        return len(self.procs)


class LaunchStrategy:
    """Interface + shared machinery of one launch mechanism."""

    name = "abstract"

    def launch(self, req: LaunchRequest,
               ) -> Generator[Any, Any, LaunchResult]:
        raise NotImplementedError
        yield  # pragma: no cover

    # -- shared helpers ------------------------------------------------------
    def _begin(self, req: LaunchRequest) -> LaunchResult:
        report = LaunchReport(
            self.name, n_daemons=0, requested=len(req.nodes),
            staging_mode=req.cluster.fs.staging)
        return LaunchResult(procs=[], report=report)

    def _prestage(self, req: LaunchRequest,
                  report: LaunchReport) -> Generator[Any, Any, None]:
        """Broadcast-mode staging runs as one explicit up-front phase.

        In ``shared-fs``/``cache`` modes images load per-spawn instead (the
        serialized loads are attributed to ``t_image_stage`` afterwards via
        the filesystem's busy-time meter). Non-uniform image sets
        (``image_mb_for``) cannot ride one broadcast either -- they fall
        back to per-spawn loads, which the broadcast-mode cache still
        coalesces per distinct key.
        """
        fs = req.cluster.fs
        if (not req.stage_images or fs.staging != "broadcast"
                or req.image_mb_for is not None):
            return
        sim = req.cluster.sim
        t0 = sim.now
        yield from fs.stage_images(
            list(req.nodes), req.resolved_image_mb(), req.key)
        report.t_image_stage += sim.now - t0

    def _run_post_spawn(self, req: LaunchRequest, i: int, node: Node,
                        proc: SimProcess) -> Generator[Any, Any, None]:
        if req.post_spawn is None:
            return
        gen = req.post_spawn(i, node, proc)
        if gen is not None:
            yield from gen

    # -- resilient spawn machinery -------------------------------------------
    def _attempt(self, req: LaunchRequest, node: Node,
                 attempt_factory: Callable[[], Generator],
                 ) -> Generator[Any, Any, SimProcess]:
        """Run one spawn attempt, bounded by the per-daemon timeout.

        Without a timeout the attempt runs inline (identical event order to
        a legacy launch); with one, it runs through
        :func:`~repro.simx.run_bounded` -- on timeout the attempt is
        interrupted (image loads and forks release their resources; they
        are interrupt-safe by construction) and :class:`LaunchTimeout`
        raised.
        """
        sim = req.cluster.sim
        if req.per_daemon_timeout <= 0:
            proc = yield from attempt_factory()
            return proc
        worker = yield from run_bounded(
            sim, attempt_factory(), req.per_daemon_timeout,
            name=f"spawn-try:{node.name}")
        if worker is None:
            raise LaunchTimeout(
                f"{node.name}: spawn attempt exceeded "
                f"{req.per_daemon_timeout}s", node=node.name)
        return worker.value

    def _spawn_resilient(self, req: LaunchRequest, report: LaunchReport,
                         i: int, node: Node,
                         attempt_factory: Callable[[], Generator],
                         ) -> Generator[Any, Any, Optional[SimProcess]]:
        """Spawn daemon ``i`` under the resilient contract.

        Returns the process, or None after recording the index's outcome
        (``skipped`` for an already-blacklisted node, ``failed`` once the
        bounded retries -- exponential backoff between attempts -- are
        exhausted). Exhausted retries condemn the node on the shared
        blacklist **only when the failure is attributable to it** (the
        exception's ``node`` tag matches the target): a source-side
        failure -- the front end's own process table filling, the origin
        dying -- must not condemn a healthy target.
        """
        sim = req.cluster.sim
        blacklist = req.blacklist
        if blacklist is not None and node.name in blacklist:
            report.outcomes[i] = "skipped"
            return None
        delay = max(0.0, req.retry_backoff)
        attempts = req.max_retries + 1
        for attempt in range(attempts):
            try:
                proc = yield from self._attempt(req, node, attempt_factory)
            except SPAWN_ERRORS as exc:
                if attempt + 1 < attempts:
                    report.retries[i] = report.retries.get(i, 0) + 1
                    if delay > 0:
                        yield sim.timeout(delay)
                    delay *= 2.0
                    continue
                report.outcomes[i] = "failed"
                if not report.failure:
                    report.failure = str(exc)
                culprit = getattr(exc, "node", "") or node.name
                if (blacklist is not None and culprit == node.name
                        and node.name not in blacklist):
                    blacklist.add(node.name)
                    report.blacklisted.append(node.name)
                return None
            report.outcomes[i] = "ok"
            return proc
        return None  # pragma: no cover - loop always returns

    @staticmethod
    def _attribute_fs_time(report: LaunchReport, req: LaunchRequest,
                           busy0: float, window: float) -> float:
        """Attribute shared-FS service time inside the spawn window to the
        image-stage phase (approximate under concurrent foreign loads);
        returns the attributed seconds so callers can carve it out of the
        spawn phase."""
        fs = req.cluster.fs
        if not req.stage_images or fs.staging == "broadcast":
            return 0.0
        served = (fs.busy_time - busy0) / max(1, fs._servers.capacity)
        attributed = min(window, served)
        report.t_image_stage += attributed
        return attributed

    def _finish(self, result: LaunchResult, req: LaunchRequest,
                t0: float) -> LaunchResult:
        report = result.report
        report.n_daemons = len(result.procs)
        report.total = req.cluster.sim.now - t0
        src = req.source or req.cluster.front_end
        report.fe_procs_peak = src.max_uid_procs_seen
        return result


class SerialRshStrategy(LaunchStrategy):
    """The most common ad-hoc practice: one rsh per daemon, in a loop.

    With ``hold_clients`` (the MRNet behaviour) each rsh client stays alive
    on the source node, so the launch eventually exhausts its process table
    instead of merely being slow. Legacy contract: stop at the first
    failure (or raise with ``raise_on_error``); resilient contract: retry,
    blacklist and keep walking the node list.
    """

    name = "serial-rsh"

    def launch(self, req: LaunchRequest,
               ) -> Generator[Any, Any, LaunchResult]:
        cluster = req.cluster
        sim = cluster.sim
        fs = cluster.fs
        src = req.source or cluster.front_end
        result = self._begin(req)
        report = result.report
        t0 = sim.now
        yield from self._prestage(req, report)
        t_spawn0 = sim.now
        busy0 = fs.busy_time
        resilient = req.resilient
        for i, node in enumerate(req.nodes):
            def attempt(i=i, node=node):
                image = req.resolved_image_mb(i, node)
                if req.stage_images:
                    yield from fs.load_image(image, node=node, key=req.key)
                _client, proc = yield from src.rsh_spawn(
                    node, req.executable, args=req.resolved_args(i, node),
                    uid=req.uid, image_mb=image,
                    hold_client=req.hold_clients)
                return proc

            if resilient:
                proc = yield from self._spawn_resilient(
                    req, report, i, node, attempt)
                if proc is None:
                    continue
            else:
                try:
                    proc = yield from attempt()
                except SPAWN_ERRORS as exc:
                    if req.raise_on_error:
                        raise
                    report.failed = True
                    report.failure = str(exc)
                    break
            result.procs.append(proc)
            result.slots[i] = proc
            yield from self._run_post_spawn(req, i, node, proc)
        window = sim.now - t_spawn0
        staged = self._attribute_fs_time(report, req, busy0, window)
        report.t_spawn = max(0.0, window - staged)
        return self._finish(result, req, t0)


class TreeRshStrategy(LaunchStrategy):
    """Tree-based ad-hoc protocol: spawned daemons spawn children daemons.

    Parallelizes the rsh cost across levels (depth x per-rsh instead of
    count x per-rsh) but keeps every other ad-hoc weakness: it still needs
    rshd on the compute nodes, manual placement, and a manual protocol for
    daemons to find their children.

    Resilient contract adds launch-time self-repair: when a subtree head
    cannot be spawned (its node crashed, flapped past its retries, or
    timed out), the head's remaining targets are *re-rooted at the live
    origin* instead of being orphaned -- the tree grows around the hole.
    """

    name = "tree-rsh"

    def launch(self, req: LaunchRequest,
               ) -> Generator[Any, Any, LaunchResult]:
        cluster = req.cluster
        sim = cluster.sim
        fs = cluster.fs
        src = req.source or cluster.front_end
        fanout = max(2, req.fanout)
        result = self._begin(req)
        report = result.report
        t0 = sim.now
        yield from self._prestage(req, report)
        t_spawn0 = sim.now
        busy0 = fs.busy_time
        failure: list[str] = []
        resilient = req.resilient

        def spawn_subtree(origin: Node, targets: list):
            """rsh the first target from origin; it spawns its slices.

            ``targets`` holds ``(index, node)`` pairs so the per-index
            request hooks (args_for / image_mb_for / post_spawn) see each
            daemon's position in ``req.nodes`` despite the tree order.
            In resilient mode a failed head's remaining targets re-root
            here at ``origin`` (the nearest live ancestor).
            """
            while targets:
                if failure and not resilient:
                    return
                (idx, head), rest = targets[0], targets[1:]

                def attempt(idx=idx, head=head, origin=origin):
                    image = req.resolved_image_mb(idx, head)
                    if req.stage_images:
                        yield from fs.load_image(image, node=head,
                                                 key=req.key)
                    _client, proc = yield from origin.rsh_spawn(
                        head, req.executable,
                        args=req.resolved_args(idx, head),
                        uid=req.uid, image_mb=image,
                        hold_client=req.hold_clients)
                    return proc

                if resilient:
                    proc = yield from self._spawn_resilient(
                        req, report, idx, head, attempt)
                    if proc is None:
                        # self-repair: origin adopts the failed head's
                        # remaining subtree
                        targets = rest
                        continue
                else:
                    try:
                        proc = yield from attempt()
                    except SPAWN_ERRORS as exc:
                        failure.append(str(exc))
                        return
                result.procs.append(proc)
                result.slots[idx] = proc
                yield from self._run_post_spawn(req, idx, head, proc)
                if not rest:
                    return
                # split the remainder into fanout slices handled in parallel
                slices = [rest[i::fanout]
                          for i in range(min(fanout, len(rest)))]
                procs = [sim.process(spawn_subtree(head, s), name="tree-rsh")
                         for s in slices if s]
                yield sim.all_of(procs)
                return

        nodes = list(enumerate(req.nodes))
        roots = [nodes[i::fanout] for i in range(min(fanout, len(nodes)))]
        top = [sim.process(spawn_subtree(src, s), name="tree-rsh-root")
               for s in roots if s]
        yield sim.all_of(top)
        if failure:
            report.failed = True
            report.failure = failure[0]
        window = sim.now - t_spawn0
        staged = self._attribute_fs_time(report, req, busy0, window)
        report.t_spawn = max(0.0, window - staged)
        return self._finish(result, req, t0)


class RmBulkStrategy(LaunchStrategy):
    """The RM's efficient daemon launch: all nodes fork in parallel.

    Models the per-node half of ``spawn_daemons`` (Section 3.1): every node
    stages the daemon image through the storage layer and forks it locally,
    in parallel across nodes. The RM-protocol half (controller bookkeeping,
    launch-tree descent) stays with the resource manager, which adds it to
    the report's spawn phase.

    Legacy contract is all-or-nothing: a failed spawn interrupts the
    in-flight workers, reaps the daemons already forked, and re-raises -- a
    failed set must not leave orphan processes squatting on the nodes.
    Resilient contract: each node's worker absorbs its own failures
    (timeout / retry / blacklist) and the set completes with whatever
    survived, attributed per index.
    """

    name = "rm-bulk"

    def launch(self, req: LaunchRequest,
               ) -> Generator[Any, Any, LaunchResult]:
        cluster = req.cluster
        sim = cluster.sim
        fs = cluster.fs
        result = self._begin(req)
        report = result.report
        nodes = list(req.nodes)
        t0 = sim.now
        yield from self._prestage(req, report)
        t_spawn0 = sim.now
        busy0 = fs.busy_time
        procs: list = [None] * len(nodes)
        resilient = req.resilient

        def _attempt_one(i: int, node: Node):
            image = req.resolved_image_mb(i, node)
            if req.stage_images:
                yield from fs.load_image(image, node=node, key=req.key)
            proc = yield from node.fork_exec(
                req.executable, args=req.resolved_args(i, node),
                uid=req.uid, image_mb=image)
            return proc

        def _spawn_one(i: int, node: Node):
            if resilient:
                proc = yield from self._spawn_resilient(
                    req, report, i, node, lambda: _attempt_one(i, node))
                if proc is None:
                    return
            else:
                proc = yield from _attempt_one(i, node)
            procs[i] = proc
            yield from self._run_post_spawn(req, i, node, proc)

        workers = [sim.process(_spawn_one(i, node), name=f"spawn:{node.name}")
                   for i, node in enumerate(nodes)]
        barrier = sim.all_of(workers)
        try:
            yield barrier
        except BaseException:
            # abort the set: stop in-flight spawners and reap daemons
            # already forked -- a failed spawn must not leave orphans.
            # The barrier must be defused too: this frame may be unwinding
            # because *we* were interrupted (not because a worker failed),
            # in which case the interrupt detached us from the barrier --
            # when the aborted workers' failures then complete it, the
            # composite failure would have no observer left and would
            # detonate the whole simulator run
            barrier.defuse()
            for w in workers:
                # defuse every worker: a sibling that failed at the same
                # instant is already dead but its failure event would
                # otherwise crash the whole simulator run
                w.defuse()
                if w.is_alive:
                    w.interrupt("daemon spawn aborted")
            for p in procs:
                if p is not None and p.alive:
                    p.exit(9)
            raise
        result.procs = [p for p in procs if p is not None]
        result.slots = {i: p for i, p in enumerate(procs) if p is not None}
        window = sim.now - t_spawn0
        staged = self._attribute_fs_time(report, req, busy0, window)
        report.t_spawn = max(0.0, window - staged)
        return self._finish(result, req, t0)


#: the strategy registry; every entry is stateless and shareable
_STRATEGIES = {
    cls.name: cls()
    for cls in (SerialRshStrategy, TreeRshStrategy, RmBulkStrategy)
}


def strategy_names() -> tuple:
    """Names of the registered launch strategies."""
    return tuple(sorted(_STRATEGIES))


def get_strategy(name: str) -> LaunchStrategy:
    """Look up a registered strategy by name."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown launch strategy {name!r}; "
            f"one of {strategy_names()}") from None
