"""The common launch report: one per-phase timing breakdown for every path.

Every launch mechanism in the repo -- ad-hoc rsh loops, tree fan-out rsh,
the RM's native bulk daemon launch, and the TBON startup paths built on all
three -- reports its cost through the same :class:`LaunchReport`, so
experiments can attribute scaling loss to a specific phase (ScalAna-style)
instead of comparing opaque totals:

``t_spawn``
    process creation: rsh connections / RM protocol / fork+exec.
``t_image_stage``
    moving executable images to the nodes (shared-FS reads, cache hits,
    cooperative broadcast) -- the paper's dominant term for heavyweight
    daemons.
``t_topo_dist``
    distributing topology/placement information to the daemons.
``t_connect``
    daemons connecting to their tree parents.
``t_handshake``
    per-daemon stream/port handshakes at the front end.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LaunchReport", "PHASES"]

#: the per-phase fields of a report, in critical-path order
PHASES = ("t_spawn", "t_image_stage", "t_topo_dist", "t_connect",
          "t_handshake")


@dataclass
class LaunchReport:
    """Timing decomposition of one daemon launch (any mechanism).

    ``total`` is the caller-observed wall time; the phases need not sum to
    it exactly (phases can overlap -- e.g. serialized shared-FS image loads
    interleaved with a sequential spawn loop are *attributed* to
    ``t_image_stage`` out of the spawn window).
    """

    mechanism: str
    n_daemons: int
    requested: int = 0
    t_spawn: float = 0.0
    t_image_stage: float = 0.0
    t_topo_dist: float = 0.0
    t_connect: float = 0.0
    t_handshake: float = 0.0
    total: float = 0.0
    fe_procs_peak: int = 0
    staging_mode: str = "shared-fs"
    failed: bool = False
    failure: str = ""

    def phases(self) -> dict:
        """The per-phase breakdown as an ordered name -> seconds dict."""
        return {name: getattr(self, name) for name in PHASES}

    def dominant_phase(self) -> str:
        """Name of the costliest phase (scaling-loss attribution)."""
        return max(PHASES, key=lambda name: getattr(self, name))

    def as_dict(self) -> dict:
        return {
            "mechanism": self.mechanism, "n_daemons": self.n_daemons,
            "t_spawn": self.t_spawn, "t_image_stage": self.t_image_stage,
            "t_topo_dist": self.t_topo_dist, "t_connect": self.t_connect,
            "t_handshake": self.t_handshake, "total": self.total,
            "fe_procs_peak": self.fe_procs_peak,
            "staging_mode": self.staging_mode,
        }
