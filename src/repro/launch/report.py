"""The common launch report: one per-phase timing breakdown for every path.

Every launch mechanism in the repo -- ad-hoc rsh loops, tree fan-out rsh,
the RM's native bulk daemon launch, and the TBON startup paths built on all
three -- reports its cost through the same :class:`LaunchReport`, so
experiments can attribute scaling loss to a specific phase (ScalAna-style)
instead of comparing opaque totals:

``t_spawn``
    process creation: rsh connections / RM protocol / fork+exec.
``t_image_stage``
    moving executable images to the nodes (shared-FS reads, cache hits,
    cooperative broadcast) -- the paper's dominant term for heavyweight
    daemons.
``t_topo_dist``
    distributing topology/placement information to the daemons.
``t_connect``
    daemons connecting to their tree parents.
``t_handshake``
    per-daemon stream/port handshakes at the front end.
``t_repair``
    recovering from failures: TBON subtree reparenting after an internal
    node death (see :meth:`repro.tbon.Overlay.repair`).

Failure attribution
-------------------
A resilient launch (per-daemon timeout / bounded retry / blacklisting --
see :class:`~repro.launch.policy.LaunchPolicy`) additionally records a
**per-index outcome** for every requested daemon, so a partial launch is
attributed, not guessed: ``outcomes[i]`` is ``"ok"``, ``"failed"``
(spawn attempts exhausted), ``"skipped"`` (the node was already
blacklisted) or ``"lost"`` (spawned, but the daemon died before the set
assembled -- a node crash between fork and fabric wireup);
``retries[i]`` counts the extra attempts index ``i`` needed;
``blacklisted`` lists nodes this launch condemned. Legacy (non-resilient)
launches keep the historical ``failed``/``failure`` first-error fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LaunchReport", "PHASES"]

#: the per-phase fields of a report, in critical-path order
PHASES = ("t_spawn", "t_image_stage", "t_topo_dist", "t_connect",
          "t_handshake", "t_repair")


@dataclass
class LaunchReport:
    """Timing decomposition of one daemon launch (any mechanism).

    ``total`` is the caller-observed wall time; the phases need not sum to
    it exactly (phases can overlap -- e.g. serialized shared-FS image loads
    interleaved with a sequential spawn loop are *attributed* to
    ``t_image_stage`` out of the spawn window). ``requested`` vs
    ``n_daemons`` tells whether the launch was partial; the per-index
    ``outcomes``/``retries``/``blacklisted`` fields (resilient launches
    only) say exactly which daemons failed, how hard they were retried,
    and which nodes were condemned.
    """

    mechanism: str
    n_daemons: int
    requested: int = 0
    t_spawn: float = 0.0
    t_image_stage: float = 0.0
    t_topo_dist: float = 0.0
    t_connect: float = 0.0
    t_handshake: float = 0.0
    t_repair: float = 0.0
    total: float = 0.0
    fe_procs_peak: int = 0
    staging_mode: str = "shared-fs"
    failed: bool = False
    failure: str = ""
    #: per-index outcome: "ok" / "failed" / "skipped" / "lost"
    #: (resilient launches; see the module docstring for the vocabulary)
    outcomes: dict = field(default_factory=dict)
    #: per-index count of extra spawn attempts beyond the first
    retries: dict = field(default_factory=dict)
    #: node names this launch blacklisted (retries exhausted)
    blacklisted: list = field(default_factory=list)
    #: daemons this launch *models*: simulated daemons plus every leaf
    #: covered by an aggregate subtree (== n_daemons on non-hybrid runs
    #: once set; 0 means "not a hybrid-aware path")
    n_virtual_daemons: int = 0
    #: one ``(label, phases_dict)`` per aggregate subtree folded into the
    #: phase fields (hybrid launches; see :meth:`fold_aggregate`)
    aggregate_accounts: list = field(default_factory=list)

    # -- failure accounting ---------------------------------------------------
    @property
    def n_failed(self) -> int:
        """Daemon indices with no live daemon in the final set: spawn
        failed, skipped (blacklisted node), or lost after spawning."""
        return sum(1 for v in self.outcomes.values() if v != "ok")

    @property
    def n_retried(self) -> int:
        """Total extra spawn attempts across all indices."""
        return sum(self.retries.values())

    @property
    def n_blacklisted(self) -> int:
        return len(self.blacklisted)

    def failed_indices(self) -> list:
        """Indices (into the request's node list) with no live daemon in
        the final set -- including ``"lost"`` indices whose daemon *did*
        fork but died before the set assembled; check ``outcomes[i]`` to
        distinguish never-spawned from spawned-then-lost."""
        return sorted(i for i, v in self.outcomes.items() if v != "ok")

    def phases(self) -> dict:
        """The per-phase breakdown as an ordered name -> seconds dict."""
        return {name: getattr(self, name) for name in PHASES}

    def fold_aggregate(self, label: str, phases: dict) -> None:
        """Fold one aggregate subtree's analytic phase charges into this
        report (hybrid tier): each named phase and the total grow by the
        modeled seconds, and the charge is kept in
        ``aggregate_accounts`` so virtual and simulated time stay
        separable."""
        for name, seconds in phases.items():
            if name not in PHASES:
                raise ValueError(f"unknown launch phase {name!r}")
            setattr(self, name, getattr(self, name) + seconds)
            self.total += seconds
        self.aggregate_accounts.append((label, dict(phases)))

    def dominant_phase(self) -> str:
        """Name of the costliest phase (scaling-loss attribution)."""
        return max(PHASES, key=lambda name: getattr(self, name))

    def as_dict(self) -> dict:
        return {
            "mechanism": self.mechanism, "n_daemons": self.n_daemons,
            "t_spawn": self.t_spawn, "t_image_stage": self.t_image_stage,
            "t_topo_dist": self.t_topo_dist, "t_connect": self.t_connect,
            "t_handshake": self.t_handshake, "t_repair": self.t_repair,
            "total": self.total,
            "fe_procs_peak": self.fe_procs_peak,
            "staging_mode": self.staging_mode,
            "requested": self.requested,
            "n_failed": self.n_failed, "n_retried": self.n_retried,
            "blacklisted": list(self.blacklisted),
            "n_virtual_daemons": self.n_virtual_daemons or self.n_daemons,
        }
