"""The tool front-end runtime: sessions, launch/attach/spawn, data transfer.

All operations are generators to be driven inside a simulation process
(see :mod:`repro.runner` for the convenience harness). The FE runtime marks
the client-visible critical-path events (e0, e7, e10, e11) and merges in the
engine-side marks, producing the complete Figure 2 timeline plus the
component decomposition used by Figure 3.

Blocking and non-blocking use
-----------------------------
The methods here are the *blocking* face of the API: ``yield from
fe.launch_and_spawn(...)`` suspends the calling simulation process until the
daemon set is ready (e11), exactly like the original C API. The same
coroutines are also what :class:`~repro.fe.service.ToolService` multiplexes:
it wraps each operation in a :class:`~repro.fe.service.SessionHandle` -- a
future-like object with ``.done`` / ``.result()`` / ``.wait()`` -- and runs
it as an independent simulation process, so N tenants' launches interleave
on one cluster. Both faces drive the identical code path; a handle is just
this generator running in its own process.

Lifecycle notifications mirror ``LMON_fe_regStatusCB``: register a callback
with :meth:`ToolFrontEnd.register_status_cb` (or directly on the session /
handle) and it fires synchronously on every
:class:`~repro.fe.session.SessionState` transition -- see
:mod:`repro.fe.session` for the transition diagram. Launches enter the
``QUEUED`` state while waiting in the resource manager's FIFO allocation
queue (:meth:`~repro.rm.base.ResourceManager.allocate_async`), so node
contention between concurrent sessions is observable rather than silent.
Allocations a session obtains return to the free pool on ``kill``, or on
``detach(reclaim_job=True)`` -- which also retires a tool-launched job so
freed nodes are genuinely empty; a classic ``detach()`` leaves the job
running and therefore leaves its nodes allocated.

With ``reuse_engine=True`` (what :class:`~repro.fe.service.ToolService`
uses for its tenants) one FE keeps a single LaunchMON engine process alive
across its sessions, so the per-session engine fork cost (e1) is paid once
per front end, not once per launch; the classic default retires the engine
process on every detach, exactly like the seed behaviour.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Generator, Optional

from repro.apps import AppSpec
from repro.be.context import BEContext
from repro.cluster import Cluster, SimProcess
from repro.engine import LaunchMONEngine
from repro.engine.driver import ENGINE_EXECUTABLE
from repro.fe.session import LMONSession, SessionState
from repro.lmonp import (
    FeToBe,
    FeToEngine,
    FeToMw,
    LmonpMessage,
    LmonpStream,
    MsgClass,
    security_token,
)
from repro.mpir import RPDTAB
from repro.mw.context import MWContext
from repro.rm.base import DaemonSpec, JobState, ResourceManager, RMJob
from repro.simx import Store, run_bounded

__all__ = ["FrontEndError", "ToolFrontEnd"]


class FrontEndError(RuntimeError):
    """FE API misuse or failed operations."""


class ToolFrontEnd:
    """The per-tool front-end runtime (``LMON_fe_*`` equivalent)."""

    def __init__(self, cluster: Cluster, rm: ResourceManager,
                 tool_name: str = "tool", reuse_engine: bool = False):
        self.cluster = cluster
        self.rm = rm
        self.sim = cluster.sim
        self.tool_name = tool_name
        self.proc: Optional[SimProcess] = None
        #: the session resource descriptor table
        self.sessions: dict[int, LMONSession] = {}
        #: share one engine process across this FE's sessions (pay e1 once).
        #: Off by default to preserve classic semantics (each detach retires
        #: its engine process); ToolService turns it on for its tenants and
        #: retires the shared process via shutdown()/keep_warm eviction.
        self.reuse_engine = reuse_engine
        self._engine_proc: Optional[SimProcess] = None
        #: pending event while one session is forking the shared engine,
        #: so concurrent sessions on this FE wait instead of double-forking
        self._engine_starting = None

    # -- init / sessions ------------------------------------------------------
    def init(self) -> Generator[Any, Any, None]:
        """``LMON_fe_init``: start the front-end runtime process."""
        self.proc = yield from self.cluster.front_end.fork_exec(
            f"{self.tool_name}-fe", image_mb=self.cluster.costs.fe_image_mb)

    def create_session(self) -> LMONSession:
        """``LMON_fe_createSession``: allocate a session descriptor."""
        session = LMONSession(self.tool_name)
        self.sessions[session.id] = session
        return session

    def register_status_cb(self, session: LMONSession,
                           cb: Callable[..., None]) -> None:
        """``LMON_fe_regStatusCB``: fire ``cb(session, old, new)`` on every
        session state transition (see :mod:`repro.fe.session`)."""
        session.register_status_cb(cb)

    # -- data-transfer registration ----------------------------------------------
    def register_pack(self, session: LMONSession,
                      fe_to_be: Optional[Callable[[Any], Any]] = None,
                      be_to_fe: Optional[Callable[[Any], Any]] = None,
                      fe_to_mw: Optional[Callable[[Any], Any]] = None,
                      mw_to_fe: Optional[Callable[[Any], Any]] = None) -> None:
        """Register pack/unpack transforms for piggybacked tool data.

        Transforms map tool objects to/from JSON-able structures that ride
        in the usr-payload section of LaunchMON's own handshake messages.
        """
        if fe_to_be is not None:
            session.pack_fe_to_be = fe_to_be
        if be_to_fe is not None:
            session.unpack_be_to_fe = be_to_fe
        if fe_to_mw is not None:
            session.pack_fe_to_mw = fe_to_mw
        if mw_to_fe is not None:
            session.unpack_mw_to_fe = mw_to_fe

    # -- launch / attach ------------------------------------------------------------
    def launch_and_spawn(self, session: LMONSession, app: AppSpec,
                         daemon_spec: DaemonSpec, usr_data: Any = None,
                         ) -> Generator[Any, Any, LMONSession]:
        """``launchAndSpawn``: start a job under tool control + daemons.

        Returns when the daemon set is ready (e11). The complete critical
        path of Figure 2 is recorded in ``session.timeline`` and decomposed
        in ``session.times``. Under node contention the session sits in the
        ``QUEUED`` state until the RM's FIFO allocation queue grants it
        nodes; the wait shows up between e0 and e1.
        """
        session.require_state(SessionState.CREATED)
        sim = self.sim
        session.timeline.mark("e0_client_call", sim.now)
        session.state = SessionState.QUEUED
        engine = None
        try:
            alloc = yield from self.rm.allocate_async(app.nodes_needed())
            session.owned_allocs.append(alloc)
            session.state = SessionState.SPAWNING

            engine, engine_stream, rendezvous = \
                yield from self._start_engine(session)
            factory = self._be_context_factory(session, rendezvous)

            job, daemons, fabric, rpdtab = yield from engine.launch_and_spawn(
                app, alloc, daemon_spec, factory)
            self._bind(session, engine, job, daemons, fabric)

            # the engine forwarded the RPDTAB over LMONP; consume it
            msg = yield from engine_stream.expect(FeToEngine.PROCTAB)
            session.rpdtab = RPDTAB.from_bytes(msg.lmon_payload)

            yield from self._be_handshake_guarded(session, rendezvous,
                                                  usr_data)
        except BaseException:
            # a failed launch must not strand its nodes: queued sessions
            # behind this one would deadlock on the allocation queue.
            # reclaim() also retires any partially launched job so the
            # released nodes are genuinely empty; before _bind() ran, that
            # job exists only on the engine.
            if session.job is None and engine is not None:
                session.job = engine.job
            self._fail_session(session, engine)
            raise
        self._finish_timings(session)
        session.state = self._spawned_state(session)
        return session

    def attach_and_spawn(self, session: LMONSession, job: RMJob,
                         daemon_spec: DaemonSpec, usr_data: Any = None,
                         ) -> Generator[Any, Any, LMONSession]:
        """``attachAndSpawn``: acquire an existing job + spawn daemons."""
        session.require_state(SessionState.CREATED)
        sim = self.sim
        session.timeline.mark("e0_client_call", sim.now)
        session.state = SessionState.SPAWNING

        engine = None
        try:
            engine, engine_stream, rendezvous = \
                yield from self._start_engine(session)
            factory = self._be_context_factory(session, rendezvous)

            job, daemons, fabric, rpdtab = yield from engine.attach_and_spawn(
                job, daemon_spec, factory)
            self._bind(session, engine, job, daemons, fabric)

            msg = yield from engine_stream.expect(FeToEngine.PROCTAB)
            session.rpdtab = RPDTAB.from_bytes(msg.lmon_payload)

            yield from self._be_handshake_guarded(session, rendezvous,
                                                  usr_data)
        except BaseException:
            self._fail_session(session, engine)
            raise
        self._finish_timings(session)
        session.state = self._spawned_state(session)
        return session

    def launch_mw_daemons(self, session: LMONSession, mw_spec: DaemonSpec,
                          n_nodes: int, usr_data: Any = None,
                          topology: Optional[str] = None,
                          ) -> Generator[Any, Any, LMONSession]:
        """``launchMwDaemons``: middleware daemons on a fresh allocation.

        Allowed from a ``DEGRADED`` session too -- the middleware set
        serves whatever back ends survived.
        """
        session.require_state(SessionState.READY, SessionState.DEGRADED,
                              SessionState.MW_READY)
        if session.engine is None:
            raise FrontEndError("session has no engine")
        sim = self.sim
        # pass through QUEUED while waiting for middleware nodes, so MW
        # contention is observable via status callbacks like launch is
        entry_state = session.state
        session.state = SessionState.QUEUED
        try:
            alloc = yield from self.rm.allocate_async(n_nodes)
        finally:
            session.state = entry_state
        session.owned_allocs.append(alloc)
        new_daemons: list = []
        try:
            rendezvous = Store(sim)
            factory = self._mw_context_factory(session, rendezvous)
            new_daemons, fabric = yield from session.engine.launch_mw(
                alloc, mw_spec, factory, topology=topology)

            # handshake with the master MW daemon
            end = yield rendezvous.get()
            token = security_token(session.key)
            mw_stream = LmonpStream(end, token, name="fe-mw")
            hs = yield from mw_stream.expect(FeToMw.HANDSHAKE)
            yield sim.timeout(
                self.cluster.costs.fe_handshake_per_daemon
                * max(0, hs.num_tasks))
            packed = self._pack(session.pack_fe_to_mw, usr_data)
            reply = LmonpMessage(
                MsgClass.FE_MW, FeToMw.PROCTAB, num_tasks=len(session.rpdtab),
                lmon_payload=session.rpdtab.to_bytes(),
                usr_payload=packed)
            yield mw_stream.send(reply)
            yield from mw_stream.expect(FeToMw.READY)
        except BaseException:
            # return only this operation's allocation and exit only the
            # daemons *it* spawned -- an earlier MW set (repeat calls are
            # legal from MW_READY) and the BE daemon set keep their nodes.
            for daemon in new_daemons:
                if daemon.proc is not None and daemon.proc.alive:
                    daemon.proc.exit(0)
            session.owned_allocs.remove(alloc)
            self.rm.release(alloc)
            raise
        # commit only on success: mw_daemons/stream/fabric track the
        # *current* set (what positional consumers iterate); the
        # accumulating all_mw_daemons list lets reclaim() end every set
        session.mw_daemons = new_daemons
        session.all_mw_daemons.extend(new_daemons)
        session.mw_fabric = fabric
        session.mw_stream = mw_stream
        session.state = SessionState.MW_READY
        return session

    # -- user data transfer ------------------------------------------------------------
    def send_usrdata_be(self, session: LMONSession, obj: Any,
                        ) -> Generator[Any, Any, None]:
        """Ship tool data to the master back-end daemon."""
        self._require_stream(session, "be_stream")
        packed = self._pack(session.pack_fe_to_be, obj)
        msg = LmonpMessage(MsgClass.FE_BE, FeToBe.USRDATA, usr_payload=packed)
        yield session.be_stream.send(msg)

    def recv_usrdata_be(self, session: LMONSession) -> Generator[Any, Any, Any]:
        """Wait for tool data from the master back-end daemon."""
        self._require_stream(session, "be_stream")
        msg = yield from session.be_stream.expect(FeToBe.USRDATA)
        data = json.loads(msg.usr_payload.decode()) if msg.usr_payload else None
        if session.unpack_be_to_fe is not None:
            data = session.unpack_be_to_fe(data)
        return data

    def send_usrdata_mw(self, session: LMONSession, obj: Any,
                        ) -> Generator[Any, Any, None]:
        self._require_stream(session, "mw_stream")
        packed = self._pack(session.pack_fe_to_mw, obj)
        msg = LmonpMessage(MsgClass.FE_MW, FeToMw.USRDATA, usr_payload=packed)
        yield session.mw_stream.send(msg)

    def recv_usrdata_mw(self, session: LMONSession) -> Generator[Any, Any, Any]:
        self._require_stream(session, "mw_stream")
        msg = yield from session.mw_stream.expect(FeToMw.USRDATA)
        data = json.loads(msg.usr_payload.decode()) if msg.usr_payload else None
        if session.unpack_mw_to_fe is not None:
            data = session.unpack_mw_to_fe(data)
        return data

    # -- control ------------------------------------------------------------------------
    def detach(self, session: LMONSession, reclaim_job: bool = False,
               ) -> Generator[Any, Any, None]:
        """Release the job (daemons have finalized or keep running free).

        Classic semantics (default): the job keeps running after the tool
        detaches, so nodes the session allocated for it stay allocated --
        they are genuinely still occupied. With ``reclaim_job`` (what
        :class:`~repro.fe.service.ToolService` tenants use) a
        *tool-launched* job is retired together with the session and its
        nodes return to the RM free pool, un-blocking queued sessions.
        Jobs acquired via ``attach_and_spawn`` are never touched.
        """
        session.require_state(SessionState.READY, SessionState.DEGRADED,
                              SessionState.MW_READY)
        if session.engine is not None:
            yield from session.engine.detach()
        session.state = SessionState.DETACHED
        if reclaim_job:
            self.reclaim(session)

    def kill(self, session: LMONSession) -> Generator[Any, Any, None]:
        """Terminate the bound job and detach.

        The session's daemons are exited and its allocations returned to
        the free pool -- killed sessions leave their nodes genuinely empty.
        Needs an engine (so a session still QUEUED for nodes cannot be
        killed -- cancel its :class:`~repro.fe.service.SessionHandle`
        instead, which withdraws the queued request).
        """
        if session.engine is None:
            raise FrontEndError(
                "session has no engine/job to kill (a launch still queued "
                "for nodes is cancelled via its SessionHandle)")
        session.require_state(SessionState.SPAWNING, SessionState.READY,
                              SessionState.DEGRADED, SessionState.MW_READY)
        yield from session.engine.kill_job()
        session.state = SessionState.KILLED
        self.reclaim(session)

    def reclaim(self, session: LMONSession) -> None:
        """Retire the session's tool-launched job (if it owns one), end its
        daemon processes, and return every allocation it holds to the RM
        free pool (idempotent).

        Releasing nodes with processes still on them would double-book
        them, so a job backed by a session-owned allocation has its
        processes ended first, and surviving BE/MW daemons are exited;
        attached (foreign) jobs are left untouched.
        """
        self._retire_owned_job(session)
        for daemon in (*session.daemons, *session.all_mw_daemons):
            if daemon.proc is not None and daemon.proc.alive:
                daemon.proc.exit(0)
        self.release_allocations(session)

    def shutdown(self) -> None:
        """Retire the FE runtime: the shared engine process and FE process.

        Sessions are unaffected (detach/kill them first); this only returns
        the long-lived front-end processes to the node's process table.
        """
        if self._engine_proc is not None and self._engine_proc.alive:
            self._engine_proc.exit(0)
        self._engine_proc = None
        if self.proc is not None and self.proc.alive:
            self.proc.exit(0)

    # -- internals -------------------------------------------------------------------------
    def _start_engine(self, session: LMONSession,
                      ) -> Generator[Any, Any, tuple]:
        """Fork (or reuse) the engine and build the FE<->engine connection."""
        token = security_token(session.key)
        pipe = self.cluster.network.pipe(
            self.cluster.front_end.name, self.cluster.front_end.name)
        engine_stream = LmonpStream(pipe.a, token, name="fe-engine")
        engine = LaunchMONEngine(
            self.cluster, self.rm,
            fe_stream=LmonpStream(pipe.b, token, name="engine-fe"))
        # share measurement objects so marks land in one place
        engine.timeline = session.timeline
        engine.times = session.times
        if self.reuse_engine:
            proc = yield from self._obtain_engine_proc()
            yield from engine.start(proc=proc)
            # the FE owns the engine process; detach() must not retire it
            engine.owns_proc = False
        else:
            yield from engine.start()
        rendezvous = Store(self.sim)
        return engine, engine_stream, rendezvous

    def _obtain_engine_proc(self) -> Generator[Any, Any, SimProcess]:
        """The FE's shared engine process, forking it exactly once.

        Concurrent sessions that arrive while the fork is in flight wait
        for it instead of forking their own; if the fork fails, the next
        waiter retries (and surfaces its own failure).
        """
        while True:
            if self._engine_proc is not None and self._engine_proc.alive:
                return self._engine_proc
            if self._engine_starting is None:
                break
            yield self._engine_starting  # someone is forking; re-check after
        ev = self._engine_starting = self.sim.event()
        try:
            self._engine_proc = yield from self.cluster.front_end.fork_exec(
                ENGINE_EXECUTABLE, image_mb=self.cluster.costs.engine_image_mb)
        finally:
            self._engine_starting = None
            ev.succeed()
        return self._engine_proc

    def release_allocations(self, session: LMONSession) -> None:
        """Return every allocation the session still owns (idempotent)."""
        while session.owned_allocs:
            self.rm.release(session.owned_allocs.pop())

    def _fail_session(self, session: LMONSession, engine=None) -> None:
        """Failure epilogue for spawn operations: reclaim resources, retire
        a non-shared engine process, and land the session in the terminal
        FAILED state so status-callback listeners observe the death."""
        self.reclaim(session)
        if (engine is not None and engine.owns_proc
                and engine.proc is not None and engine.proc.alive):
            engine.proc.exit(1)
        session.state = SessionState.FAILED

    def _retire_owned_job(self, session: LMONSession) -> None:
        """End the processes of a job backed by a session-owned allocation."""
        job = session.job
        if job is None:
            return
        if not any(a is job.allocation for a in session.owned_allocs):
            return  # attach mode: the job belongs to someone else
        for task in job.tasks:
            if task.alive:
                task.exit(0)
        # daemons spawned but not yet bound to the session (a failure
        # between e6 and _bind) are reachable only through the job
        for daemon in job.daemons:
            if daemon.proc is not None and daemon.proc.alive:
                daemon.proc.exit(0)
        if job.launcher.alive:
            job.launcher.exit(0)
        if job.state not in (JobState.COMPLETED, JobState.FAILED):
            job.state = JobState.COMPLETED

    def _be_context_factory(self, session: LMONSession, rendezvous: Store):
        cluster = self.cluster

        def factory(daemon, daemons, fabric) -> BEContext:
            return BEContext(
                sim=cluster.sim, node=daemon.node, proc=daemon.proc,
                rank=daemon.rank, size=len(daemons), fabric=fabric,
                session_key=session.key, fe_node=cluster.front_end,
                fe_rendezvous=rendezvous)

        return factory

    def _mw_context_factory(self, session: LMONSession, rendezvous: Store):
        cluster = self.cluster

        def factory(daemon, daemons, fabric) -> MWContext:
            return MWContext(
                sim=cluster.sim, node=daemon.node, proc=daemon.proc,
                rank=daemon.rank, size=len(daemons), fabric=fabric,
                session_key=session.key, fe_node=cluster.front_end,
                fe_rendezvous=rendezvous)

        return factory

    def _spawned_state(self, session: LMONSession) -> SessionState:
        """READY for a complete daemon set; DEGRADED for a partial one the
        resource manager's ``min_daemon_fraction`` policy accepted (the
        shortfall is attributed per index in ``session.launch_report``)."""
        report = session.launch_report
        if (report is not None and report.requested
                and report.n_daemons < report.requested):
            return SessionState.DEGRADED
        return SessionState.READY

    def _be_handshake_guarded(self, session: LMONSession, rendezvous: Store,
                              usr_data: Any) -> Generator[Any, Any, None]:
        """Run the BE handshake, bounded by the RM policy's
        ``handshake_timeout`` (if set).

        A daemon killed *mid-handshake* leaves the master's collectives
        waiting forever; without a bound the session would hang instead of
        failing. On timeout the handshake process is interrupted and
        :class:`FrontEndError` raises -- the caller's failure path reclaims
        the session (nodes released, daemons exited, state FAILED).
        """
        policy = getattr(self.rm, "policy", None)
        timeout = policy.handshake_timeout if policy is not None else 0.0
        if timeout <= 0:
            yield from self._be_handshake(session, rendezvous, usr_data)
            return
        worker = yield from run_bounded(
            self.sim, self._be_handshake(session, rendezvous, usr_data),
            timeout, name=f"fe-handshake:s{session.id}")
        if worker is None:
            raise FrontEndError(
                f"session {session.id}: BE handshake did not complete "
                f"within {timeout}s (daemon lost mid-handshake?)")
        worker.value  # re-raise the handshake's own failure, if any

    def _be_handshake(self, session: LMONSession, rendezvous: Store,
                      usr_data: Any) -> Generator[Any, Any, None]:
        """FE side of the master-BE handshake (e7 -> e10)."""
        sim = self.sim
        session.timeline.mark("e7_handshake_begin", sim.now)
        end = yield rendezvous.get()
        token = security_token(session.key)
        session.be_stream = LmonpStream(end, token, name="fe-be")
        hs = yield from session.be_stream.expect(FeToBe.HANDSHAKE)
        # per-daemon processing of the daemon table
        yield sim.timeout(
            self.cluster.costs.fe_handshake_per_daemon * max(0, hs.num_tasks))
        packed = self._pack(session.pack_fe_to_be, usr_data)
        reply = LmonpMessage(
            MsgClass.FE_BE, FeToBe.PROCTAB, num_tasks=len(session.rpdtab),
            lmon_payload=session.rpdtab.to_bytes(), usr_payload=packed)
        yield session.be_stream.send(reply)
        ready = yield from session.be_stream.expect(FeToBe.READY)
        session.timeline.mark("e10_ready", sim.now)
        report = ready.lmon_json() or {}
        session.times.t_setup = float(report.get("t_setup", 0.0))
        session.times.t_collective = float(report.get("t_collective", 0.0))
        # Region C: the handshake window minus the master-reported phases
        window = session.timeline.span("e7_handshake_begin", "e10_ready")
        session.times.t_handshake = max(
            0.0, window - session.times.t_setup - session.times.t_collective)

    def _finish_timings(self, session: LMONSession) -> None:
        session.timeline.mark("e11_returned", self.sim.now)
        session.times.total = session.timeline.total()
        session.times.close_books()

    @staticmethod
    def _pack(pack_fn: Optional[Callable[[Any], Any]], obj: Any) -> bytes:
        if obj is None:
            return b""
        structure = pack_fn(obj) if pack_fn is not None else obj
        return LmonpMessage.json_payload(structure)

    def _require_stream(self, session: LMONSession, attr: str) -> None:
        if getattr(session, attr) is None:
            raise FrontEndError(f"session {session.id}: no {attr} "
                                f"(daemons not ready)")

    def _bind(self, session: LMONSession, engine, job, daemons, fabric) -> None:
        session.engine = engine
        session.job = job
        session.daemons = daemons
        session.fabric = fabric
        # the RM just spawned this session's daemon set; keep its per-phase
        # launch breakdown with the session (spawn / image-stage / ...).
        # Prefer the job-scoped report: the RM-wide last_launch_report can
        # be overwritten by a concurrent session's spawn before this bind
        # runs, and the report now decides READY vs DEGRADED.
        report = getattr(job, "daemon_spawn_report", None)
        session.launch_report = (report if report is not None
                                 else self.rm.last_launch_report)
