"""The tool front-end runtime: sessions, launch/attach/spawn, data transfer.

All operations are generators to be driven inside a simulation process
(see :mod:`repro.runner` for the convenience harness). The FE runtime marks
the client-visible critical-path events (e0, e7, e10, e11) and merges in the
engine-side marks, producing the complete Figure 2 timeline plus the
component decomposition used by Figure 3.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Generator, Optional

from repro.apps import AppSpec
from repro.be.context import BEContext
from repro.cluster import Cluster, SimProcess
from repro.engine import LaunchMONEngine
from repro.fe.session import LMONSession, SessionState
from repro.lmonp import (
    FeToBe,
    FeToEngine,
    FeToMw,
    LmonpMessage,
    LmonpStream,
    MsgClass,
    security_token,
)
from repro.mpir import RPDTAB
from repro.mw.context import MWContext
from repro.rm.base import DaemonSpec, ResourceManager, RMJob
from repro.simx import Store

__all__ = ["FrontEndError", "ToolFrontEnd"]


class FrontEndError(RuntimeError):
    """FE API misuse or failed operations."""


class ToolFrontEnd:
    """The per-tool front-end runtime (``LMON_fe_*`` equivalent)."""

    def __init__(self, cluster: Cluster, rm: ResourceManager,
                 tool_name: str = "tool"):
        self.cluster = cluster
        self.rm = rm
        self.sim = cluster.sim
        self.tool_name = tool_name
        self.proc: Optional[SimProcess] = None
        #: the session resource descriptor table
        self.sessions: dict[int, LMONSession] = {}

    # -- init / sessions ------------------------------------------------------
    def init(self) -> Generator[Any, Any, None]:
        """``LMON_fe_init``: start the front-end runtime process."""
        self.proc = yield from self.cluster.front_end.fork_exec(
            f"{self.tool_name}-fe", image_mb=4.0)

    def create_session(self) -> LMONSession:
        """``LMON_fe_createSession``: allocate a session descriptor."""
        session = LMONSession(self.tool_name)
        self.sessions[session.id] = session
        return session

    # -- data-transfer registration ----------------------------------------------
    def register_pack(self, session: LMONSession,
                      fe_to_be: Optional[Callable[[Any], Any]] = None,
                      be_to_fe: Optional[Callable[[Any], Any]] = None,
                      fe_to_mw: Optional[Callable[[Any], Any]] = None,
                      mw_to_fe: Optional[Callable[[Any], Any]] = None) -> None:
        """Register pack/unpack transforms for piggybacked tool data.

        Transforms map tool objects to/from JSON-able structures that ride
        in the usr-payload section of LaunchMON's own handshake messages.
        """
        if fe_to_be is not None:
            session.pack_fe_to_be = fe_to_be
        if be_to_fe is not None:
            session.unpack_be_to_fe = be_to_fe
        if fe_to_mw is not None:
            session.pack_fe_to_mw = fe_to_mw
        if mw_to_fe is not None:
            session.unpack_mw_to_fe = mw_to_fe

    # -- launch / attach ------------------------------------------------------------
    def launch_and_spawn(self, session: LMONSession, app: AppSpec,
                         daemon_spec: DaemonSpec, usr_data: Any = None,
                         ) -> Generator[Any, Any, LMONSession]:
        """``launchAndSpawn``: start a job under tool control + daemons.

        Returns when the daemon set is ready (e11). The complete critical
        path of Figure 2 is recorded in ``session.timeline`` and decomposed
        in ``session.times``.
        """
        session.require_state(SessionState.CREATED)
        sim = self.sim
        session.timeline.mark("e0_client_call", sim.now)
        session.state = SessionState.SPAWNING

        engine, engine_stream, rendezvous = yield from self._start_engine(session)
        alloc = self.rm.allocate(app.nodes_needed())
        factory = self._be_context_factory(session, rendezvous)

        job, daemons, fabric, rpdtab = yield from engine.launch_and_spawn(
            app, alloc, daemon_spec, factory)
        self._bind(session, engine, job, daemons, fabric)

        # the engine forwarded the RPDTAB over LMONP; consume it
        msg = yield from engine_stream.expect(FeToEngine.PROCTAB)
        session.rpdtab = RPDTAB.from_bytes(msg.lmon_payload)

        yield from self._be_handshake(session, rendezvous, usr_data)
        self._finish_timings(session)
        session.state = SessionState.READY
        return session

    def attach_and_spawn(self, session: LMONSession, job: RMJob,
                         daemon_spec: DaemonSpec, usr_data: Any = None,
                         ) -> Generator[Any, Any, LMONSession]:
        """``attachAndSpawn``: acquire an existing job + spawn daemons."""
        session.require_state(SessionState.CREATED)
        sim = self.sim
        session.timeline.mark("e0_client_call", sim.now)
        session.state = SessionState.SPAWNING

        engine, engine_stream, rendezvous = yield from self._start_engine(session)
        factory = self._be_context_factory(session, rendezvous)

        job, daemons, fabric, rpdtab = yield from engine.attach_and_spawn(
            job, daemon_spec, factory)
        self._bind(session, engine, job, daemons, fabric)

        msg = yield from engine_stream.expect(FeToEngine.PROCTAB)
        session.rpdtab = RPDTAB.from_bytes(msg.lmon_payload)

        yield from self._be_handshake(session, rendezvous, usr_data)
        self._finish_timings(session)
        session.state = SessionState.READY
        return session

    def launch_mw_daemons(self, session: LMONSession, mw_spec: DaemonSpec,
                          n_nodes: int, usr_data: Any = None,
                          topology: Optional[str] = None,
                          ) -> Generator[Any, Any, LMONSession]:
        """``launchMwDaemons``: middleware daemons on a fresh allocation."""
        session.require_state(SessionState.READY, SessionState.MW_READY)
        if session.engine is None:
            raise FrontEndError("session has no engine")
        sim = self.sim
        alloc = self.rm.allocate(n_nodes)
        rendezvous = Store(sim)
        factory = self._mw_context_factory(session, rendezvous)
        daemons, fabric = yield from session.engine.launch_mw(
            alloc, mw_spec, factory, topology=topology)
        session.mw_daemons = daemons
        session.mw_fabric = fabric

        # handshake with the master MW daemon
        end = yield rendezvous.get()
        token = security_token(session.key)
        session.mw_stream = LmonpStream(end, token, name="fe-mw")
        hs = yield from session.mw_stream.expect(FeToMw.HANDSHAKE)
        yield sim.timeout(
            self.cluster.costs.fe_handshake_per_daemon * max(0, hs.num_tasks))
        packed = self._pack(session.pack_fe_to_mw, usr_data)
        reply = LmonpMessage(
            MsgClass.FE_MW, FeToMw.PROCTAB, num_tasks=len(session.rpdtab),
            lmon_payload=session.rpdtab.to_bytes(),
            usr_payload=packed)
        yield session.mw_stream.send(reply)
        yield from session.mw_stream.expect(FeToMw.READY)
        session.state = SessionState.MW_READY
        return session

    # -- user data transfer ------------------------------------------------------------
    def send_usrdata_be(self, session: LMONSession, obj: Any,
                        ) -> Generator[Any, Any, None]:
        """Ship tool data to the master back-end daemon."""
        self._require_stream(session, "be_stream")
        packed = self._pack(session.pack_fe_to_be, obj)
        msg = LmonpMessage(MsgClass.FE_BE, FeToBe.USRDATA, usr_payload=packed)
        yield session.be_stream.send(msg)

    def recv_usrdata_be(self, session: LMONSession) -> Generator[Any, Any, Any]:
        """Wait for tool data from the master back-end daemon."""
        self._require_stream(session, "be_stream")
        msg = yield from session.be_stream.expect(FeToBe.USRDATA)
        data = json.loads(msg.usr_payload.decode()) if msg.usr_payload else None
        if session.unpack_be_to_fe is not None:
            data = session.unpack_be_to_fe(data)
        return data

    def send_usrdata_mw(self, session: LMONSession, obj: Any,
                        ) -> Generator[Any, Any, None]:
        self._require_stream(session, "mw_stream")
        packed = self._pack(session.pack_fe_to_mw, obj)
        msg = LmonpMessage(MsgClass.FE_MW, FeToMw.USRDATA, usr_payload=packed)
        yield session.mw_stream.send(msg)

    def recv_usrdata_mw(self, session: LMONSession) -> Generator[Any, Any, Any]:
        self._require_stream(session, "mw_stream")
        msg = yield from session.mw_stream.expect(FeToMw.USRDATA)
        data = json.loads(msg.usr_payload.decode()) if msg.usr_payload else None
        if session.unpack_mw_to_fe is not None:
            data = session.unpack_mw_to_fe(data)
        return data

    # -- control ------------------------------------------------------------------------
    def detach(self, session: LMONSession) -> Generator[Any, Any, None]:
        """Release the job (daemons have finalized or keep running free)."""
        if session.engine is not None:
            yield from session.engine.detach()
        session.state = SessionState.DETACHED

    def kill(self, session: LMONSession) -> Generator[Any, Any, None]:
        """Terminate the bound job and detach."""
        if session.engine is None:
            raise FrontEndError("session has no engine/job to kill")
        yield from session.engine.kill_job()
        session.state = SessionState.KILLED

    # -- internals -------------------------------------------------------------------------
    def _start_engine(self, session: LMONSession,
                      ) -> Generator[Any, Any, tuple]:
        """Fork the engine and build the FE<->engine LMONP connection."""
        token = security_token(session.key)
        pipe = self.cluster.network.pipe(
            self.cluster.front_end.name, self.cluster.front_end.name)
        engine_stream = LmonpStream(pipe.a, token, name="fe-engine")
        engine = LaunchMONEngine(
            self.cluster, self.rm,
            fe_stream=LmonpStream(pipe.b, token, name="engine-fe"))
        # share measurement objects so marks land in one place
        engine.timeline = session.timeline
        engine.times = session.times
        yield from engine.start()
        rendezvous = Store(self.sim)
        return engine, engine_stream, rendezvous

    def _be_context_factory(self, session: LMONSession, rendezvous: Store):
        cluster = self.cluster

        def factory(daemon, daemons, fabric) -> BEContext:
            return BEContext(
                sim=cluster.sim, node=daemon.node, proc=daemon.proc,
                rank=daemon.rank, size=len(daemons), fabric=fabric,
                session_key=session.key, fe_node=cluster.front_end,
                fe_rendezvous=rendezvous)

        return factory

    def _mw_context_factory(self, session: LMONSession, rendezvous: Store):
        cluster = self.cluster

        def factory(daemon, daemons, fabric) -> MWContext:
            return MWContext(
                sim=cluster.sim, node=daemon.node, proc=daemon.proc,
                rank=daemon.rank, size=len(daemons), fabric=fabric,
                session_key=session.key, fe_node=cluster.front_end,
                fe_rendezvous=rendezvous)

        return factory

    def _be_handshake(self, session: LMONSession, rendezvous: Store,
                      usr_data: Any) -> Generator[Any, Any, None]:
        """FE side of the master-BE handshake (e7 -> e10)."""
        sim = self.sim
        session.timeline.mark("e7_handshake_begin", sim.now)
        end = yield rendezvous.get()
        token = security_token(session.key)
        session.be_stream = LmonpStream(end, token, name="fe-be")
        hs = yield from session.be_stream.expect(FeToBe.HANDSHAKE)
        # per-daemon processing of the daemon table
        yield sim.timeout(
            self.cluster.costs.fe_handshake_per_daemon * max(0, hs.num_tasks))
        packed = self._pack(session.pack_fe_to_be, usr_data)
        reply = LmonpMessage(
            MsgClass.FE_BE, FeToBe.PROCTAB, num_tasks=len(session.rpdtab),
            lmon_payload=session.rpdtab.to_bytes(), usr_payload=packed)
        yield session.be_stream.send(reply)
        ready = yield from session.be_stream.expect(FeToBe.READY)
        session.timeline.mark("e10_ready", sim.now)
        report = ready.lmon_json() or {}
        session.times.t_setup = float(report.get("t_setup", 0.0))
        session.times.t_collective = float(report.get("t_collective", 0.0))
        # Region C: the handshake window minus the master-reported phases
        window = session.timeline.span("e7_handshake_begin", "e10_ready")
        session.times.t_handshake = max(
            0.0, window - session.times.t_setup - session.times.t_collective)

    def _finish_timings(self, session: LMONSession) -> None:
        session.timeline.mark("e11_returned", self.sim.now)
        session.times.total = session.timeline.total()
        session.times.close_books()

    @staticmethod
    def _pack(pack_fn: Optional[Callable[[Any], Any]], obj: Any) -> bytes:
        if obj is None:
            return b""
        structure = pack_fn(obj) if pack_fn is not None else obj
        return LmonpMessage.json_payload(structure)

    def _require_stream(self, session: LMONSession, attr: str) -> None:
        if getattr(session, attr) is None:
            raise FrontEndError(f"session {session.id}: no {attr} "
                                f"(daemons not ready)")

    def _bind(self, session: LMONSession, engine, job, daemons, fabric) -> None:
        session.engine = engine
        session.job = job
        session.daemons = daemons
        session.fabric = fabric
