"""Session descriptors: the FE API's binding abstraction.

A session groups one set of daemons with one job (Section 3.2): most FE
procedures take a session handle, and the front-end runtime keeps a session
resource descriptor table mapping handles to state.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.engine.timeline import ComponentTimes, LaunchTimeline

__all__ = ["LMONSession", "SessionState"]


class SessionState(enum.Enum):
    CREATED = "created"
    SPAWNING = "spawning"
    READY = "ready"
    MW_READY = "mw-ready"
    DETACHED = "detached"
    KILLED = "killed"


class LMONSession:
    """One tool session: a job, its daemon set(s), streams and timings."""

    _ids = itertools.count(1)

    def __init__(self, tool_name: str = "tool"):
        self.id = next(LMONSession._ids)
        self.tool_name = tool_name
        #: shared secret from which LMONP security tokens derive
        self.key = f"{tool_name}-session-{self.id}"
        self.state = SessionState.CREATED
        # bound objects (populated by launch/attach/spawn)
        self.job = None
        self.daemons: list = []
        self.fabric = None
        self.mw_daemons: list = []
        self.mw_fabric = None
        self.rpdtab = None
        self.engine = None
        self.be_stream = None
        self.mw_stream = None
        # data-transfer registration (jsonable-structure transforms)
        self.pack_fe_to_be: Optional[Callable[[Any], Any]] = None
        self.unpack_be_to_fe: Optional[Callable[[Any], Any]] = None
        self.pack_fe_to_mw: Optional[Callable[[Any], Any]] = None
        self.unpack_mw_to_fe: Optional[Callable[[Any], Any]] = None
        # measurements
        self.timeline = LaunchTimeline()
        self.times = ComponentTimes()

    @property
    def n_daemons(self) -> int:
        return len(self.daemons)

    def require_state(self, *allowed: SessionState) -> None:
        if self.state not in allowed:
            raise RuntimeError(
                f"session {self.id} in state {self.state}, needs one of "
                f"{[s.value for s in allowed]}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<LMONSession {self.id} [{self.tool_name}] {self.state.value} "
                f"daemons={self.n_daemons}>")
