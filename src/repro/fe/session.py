"""Session descriptors: the FE API's binding abstraction.

A session groups one set of daemons with one job (Section 3.2): most FE
procedures take a session handle, and the front-end runtime keeps a session
resource descriptor table mapping handles to state.

The session state machine
-------------------------
Every session moves through :class:`SessionState` along these edges::

                 launch/attach submitted        nodes granted
      CREATED ------------------------> QUEUED ---------------+
         |                                                     |
         |  attach_and_spawn (no allocation wait)              v
         +--------------------------------------------------> SPAWNING
                                                               |
                            daemons ready (e11)   +------------+
                                                  v            v
                                               READY        DEGRADED
                                                  |            |
                                  +---------------+     +------+
                 launch_mw_daemons|               |     |      |
                                  v               |     |      |
                              MW_READY <----------|-----+      |
                                  |               |            |
                                  +---------------+------------+
                                                  |
                                      detach()    |    kill()
                                                  v
                                        DETACHED  /  KILLED  (terminal)

A launch or attach that raises moves the session to ``FAILED`` (terminal)
after its resources are reclaimed, so status-callback listeners always see
a terminal transition -- dead sessions do not linger as ``SPAWNING``.

``DEGRADED`` is READY's partial-success sibling, reachable only when the
resource manager runs under a :class:`~repro.launch.LaunchPolicy`: the
daemon set came up incomplete but met the policy's ``min_daemon_fraction``,
so the session is usable -- ``session.launch_report`` attributes exactly
which daemon indices failed, were retried, or had their nodes blacklisted.
Below the fraction the launch raises instead and the session lands in
``FAILED`` with its nodes reclaimed. A DEGRADED session supports the same
operations as a READY one (detach, kill, MW launch, data transfer over the
surviving daemons).

``QUEUED`` is entered while a launch waits on the resource manager's FIFO
allocation queue (:meth:`~repro.rm.base.ResourceManager.allocate_async`);
on an idle cluster the QUEUED -> SPAWNING transition happens at the same
virtual instant, but under multi-tenant contention (see
:mod:`repro.fe.service`) a session can spend most of its latency here.
``launch_mw_daemons`` also passes through ``QUEUED`` while waiting for
middleware nodes, returning to its entry state (READY / MW_READY) once
they are granted.

Status callbacks
----------------
Mirroring ``LMON_fe_regStatusCB``, any number of callbacks can be attached
with :meth:`LMONSession.register_status_cb`; each is invoked synchronously
as ``cb(session, old_state, new_state)`` on *every* state transition, in
registration order, at the virtual time the transition happens. Callbacks
must not block (they are plain functions, not generators) -- use them to
record timestamps, wake waiters, or drive external bookkeeping, exactly as
LaunchMON tools use the status-callback hook for responsiveness instead of
polling.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Optional

from repro.engine.timeline import ComponentTimes, LaunchTimeline

__all__ = ["LMONSession", "SessionState", "StatusCallback"]


class SessionState(enum.Enum):
    CREATED = "created"
    QUEUED = "queued"
    SPAWNING = "spawning"
    READY = "ready"
    #: partial daemon set accepted under a min_daemon_fraction policy
    DEGRADED = "degraded"
    MW_READY = "mw-ready"
    DETACHED = "detached"
    KILLED = "killed"
    FAILED = "failed"


#: signature of a status callback: ``cb(session, old_state, new_state)``
StatusCallback = Callable[["LMONSession", SessionState, SessionState], None]


class LMONSession:
    """One tool session: a job, its daemon set(s), streams and timings."""

    _ids = itertools.count(1)

    def __init__(self, tool_name: str = "tool"):
        self.id = next(LMONSession._ids)
        self.tool_name = tool_name
        #: shared secret from which LMONP security tokens derive
        self.key = f"{tool_name}-session-{self.id}"
        self._state = SessionState.CREATED
        #: ``LMON_fe_regStatusCB`` equivalents, fired on every transition
        self._status_cbs: list[StatusCallback] = []
        # bound objects (populated by launch/attach/spawn)
        self.job = None
        self.daemons: list = []
        self.fabric = None
        self.mw_daemons: list = []
        #: every MW daemon ever spawned for this session (repeat
        #: ``launch_mw_daemons`` calls replace ``mw_daemons`` -- the
        #: *current* set -- but reclaim must be able to end them all)
        self.all_mw_daemons: list = []
        self.mw_fabric = None
        self.rpdtab = None
        self.engine = None
        self.be_stream = None
        self.mw_stream = None
        #: the session's TBON overlay, attached by a startup path
        #: (e.g. :func:`~repro.tbon.launchmon_startup`); enables
        #: :meth:`open_stream`
        self.overlay = None
        #: the comm daemons' :class:`~repro.mw.Middleware` runtimes,
        #: overlay-attached by the startup path (MW stream face:
        #: ``stream_subscribe`` taps / ``stream_state``)
        self.mw_runtimes: list = []
        #: allocations this session obtained itself (returned on detach/kill)
        self.owned_allocs: list = []
        #: True for a session rebound to a live daemon tree by a restarted
        #: control plane (see :mod:`repro.ctl.restore`). Adopted sessions
        #: have no engine and no LMONP streams -- the processes behind
        #: those died with the previous control-plane generation -- so
        #: they support overlay streaming and engine-free teardown, not
        #: ``send_usrdata_be``/``kill``
        self.adopted: bool = False
        # data-transfer registration (jsonable-structure transforms)
        self.pack_fe_to_be: Optional[Callable[[Any], Any]] = None
        self.unpack_be_to_fe: Optional[Callable[[Any], Any]] = None
        self.pack_fe_to_mw: Optional[Callable[[Any], Any]] = None
        self.unpack_mw_to_fe: Optional[Callable[[Any], Any]] = None
        # measurements
        self.timeline = LaunchTimeline()
        self.times = ComponentTimes()
        #: the RM's daemon-spawn breakdown for this session's launch
        #: (a :class:`repro.launch.LaunchReport`), set at bind time: the
        #: per-phase attribution (t_spawn / t_image_stage / t_topo_dist /
        #: t_connect / t_handshake / t_repair) plus, under a resilient
        #: LaunchPolicy, the per-index failure attribution (outcomes,
        #: retries, blacklisted nodes) behind a DEGRADED state
        self.launch_report = None

    # -- state machine -------------------------------------------------------
    @property
    def state(self) -> SessionState:
        return self._state

    @state.setter
    def state(self, new: SessionState) -> None:
        old = self._state
        if new is old:
            return
        self._state = new
        for cb in list(self._status_cbs):
            cb(self, old, new)

    def register_status_cb(self, cb: StatusCallback) -> None:
        """``LMON_fe_regStatusCB``: call ``cb(session, old, new)`` on every
        state transition, synchronously, in registration order."""
        self._status_cbs.append(cb)

    # -- streaming data plane ----------------------------------------------
    def open_stream(self, stream_id: Optional[int] = None,
                    filter_name: str = "concat", credit_limit: int = 0,
                    window: int = 0, **filter_params: Any):
        """Open a persistent, flow-controlled stream over the session's
        TBON (front-end handle of the data plane).

        Requires a usable daemon set (READY / DEGRADED / MW_READY) and an
        attached overlay (:func:`~repro.tbon.launchmon_startup` attaches
        one). Returns the shared :class:`~repro.tbon.Stream` -- idempotent
        per id, so daemons that already opened the same spec hand back the
        same object. ``stream_id=None`` allocates the next free id.
        Streams keep delivering from a DEGRADED session: the surviving
        leaves are the publishers.
        """
        from repro.tbon.overlay import StreamSpec

        self.require_state(SessionState.READY, SessionState.DEGRADED,
                           SessionState.MW_READY)
        if self.overlay is None:
            raise RuntimeError(
                f"session {self.id} has no TBON overlay attached "
                f"(start one with launchmon_startup)")
        if stream_id is None:
            stream_id = self.overlay.next_stream_id()
        spec = StreamSpec(
            stream_id, filter_name, credit_limit=credit_limit,
            window=window,
            filter_params=tuple(sorted(filter_params.items())))
        return self.overlay.open_stream(spec)

    def unregister_status_cb(self, cb: StatusCallback) -> None:
        """Remove a previously registered status callback."""
        self._status_cbs.remove(cb)

    @property
    def n_daemons(self) -> int:
        return len(self.daemons)

    def require_state(self, *allowed: SessionState) -> None:
        if self._state not in allowed:
            raise RuntimeError(
                f"session {self.id} in state {self._state.value}, needs one "
                f"of {[s.value for s in allowed]}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<LMONSession {self.id} [{self.tool_name}] {self._state.value} "
                f"daemons={self.n_daemons}>")
