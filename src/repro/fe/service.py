"""Multi-tenant tool service: non-blocking session handles over many FEs.

The classic FE API (:mod:`repro.fe.api`) is blocking: ``yield from
fe.launch_and_spawn(...)`` occupies its simulation process until e11. That
models one user. Real tool infrastructure serves *many* users at once --
debuggers, profilers and snapshot tools all contending for the same
front-end node, RM controller and compute nodes. :class:`ToolService` is
that layer:

* each submitted operation (``submit_launch`` / ``submit_attach`` /
  ``submit_mw``) runs as its own simulation process and immediately returns
  a :class:`SessionHandle` -- a future-like object with ``.done``,
  ``.result()`` and ``.wait()``;
* one :class:`~repro.fe.api.ToolFrontEnd` is kept per tool name, with its
  engine process reused across that tenant's sessions;
* admission is FIFO, optionally capped by ``max_in_flight`` so the service
  models an operator-imposed concurrency limit on top of the RM's own node
  queue;
* every handle records per-state timestamps via the session's status
  callbacks, so launch latency can be decomposed into admission wait,
  allocation (``QUEUED``) wait and spawn time.

Typical use (this is what ``examples/multitenant_demo.py`` does)::

    env = make_service_env(n_compute=64, max_in_flight=8)
    handles = [env.service.submit_launch(app, spec, tool_name=f"u{i}")
               for i in range(16)]
    drive(env, env.service.drain())
    p99 = max(h.launch_latency for h in handles)
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Optional

from repro.apps import AppSpec
from repro.cluster import Cluster
from repro.fe.api import FrontEndError, ToolFrontEnd
from repro.fe.session import LMONSession, SessionState
from repro.rm.base import DaemonSpec, ResourceManager, RMJob
from repro.simx import Event, Interrupt, Resource, Simulator

__all__ = ["SessionHandle", "ToolService"]


class SessionHandle:
    """A non-blocking handle for one in-flight FE operation.

    Future-like: ``.done`` tells whether the operation finished, ``.result()``
    returns the session (or re-raises the operation's failure), and
    ``.wait()`` is a generator that suspends the calling simulation process
    until completion. ``register_status_cb`` mirrors ``LMON_fe_regStatusCB``
    on the underlying session.

    Timing fields (virtual seconds): ``submitted_at`` (handle creation),
    ``started_at`` (admission granted, operation begins), ``finished_at``;
    ``state_times`` maps each :class:`SessionState` reached to the time of
    its *first* entry. ``launch_latency`` is submit -> READY, the
    client-visible metric the multitenant study reports.
    """

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, fe: ToolFrontEnd,
                 session: LMONSession, op: str):
        self.id = next(SessionHandle._ids)
        self.sim = sim
        self.fe = fe
        self.session = session
        self.op = op
        self.submitted_at = sim.now
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: first-entry time of every state reached, via status callbacks
        self.state_times: dict[SessionState, float] = {}
        #: every transition observed, in order: (time, old, new)
        self.transitions: list[tuple[float, SessionState, SessionState]] = []
        #: return value of the ``body`` generator, if one was submitted
        self.body_result: Any = None
        self._proc = None  # simx.Process running the operation
        session.register_status_cb(self._on_transition)

    # -- future protocol -----------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the operation finished (successfully or not)."""
        return self._proc is not None and self._proc.triggered

    @property
    def exception(self) -> Optional[BaseException]:
        """The operation's failure, or None (also None while running)."""
        if self.done:
            return self._proc.exception
        return None

    def result(self) -> LMONSession:
        """The completed operation's session; raises its failure if it
        failed, or :class:`FrontEndError` if it has not finished yet."""
        if not self.done:
            raise FrontEndError(
                f"handle {self.id} ({self.op}): operation still in flight")
        exc = self.exception
        if exc is not None:
            raise exc
        return self.session

    def cancel(self, reason: Any = "cancelled by client") -> bool:
        """Abort the in-flight operation (False if it already finished).

        This is the escape hatch for a launch stuck in the allocation
        queue (where ``kill()`` cannot reach: no engine exists yet): the
        operation process is interrupted, the queued node request is
        withdrawn, anything partially launched is reclaimed, and a
        launch/attach session lands in the terminal FAILED state (a
        cancelled MW operation leaves its live parent session in the
        state it entered with). The interrupt surfaces as this handle's
        ``exception``.
        """
        if self.done:
            return False
        self._proc.interrupt(reason)
        return True

    def wait(self) -> Generator[Any, Any, LMONSession]:
        """Suspend the calling sim process until done; returns the session
        (re-raising the operation's failure, like ``result()``)."""
        if self._proc is None:  # pragma: no cover - defensive
            raise FrontEndError(f"handle {self.id}: never started")
        if not self.done:
            yield self._wait_event()
        return self.result()

    def _wait_event(self) -> Event:
        """A fresh event triggering on completion (failures stay in the
        handle; waiters observe them via ``result()``)."""
        ev = Event(self.sim)
        self._proc.callbacks.append(lambda _: ev.succeed(self))
        return ev

    # -- status callbacks ----------------------------------------------------
    def register_status_cb(self, cb: Callable[..., None]) -> None:
        """``LMON_fe_regStatusCB`` on the handle's session."""
        self.session.register_status_cb(cb)

    def _on_transition(self, session: LMONSession, old: SessionState,
                       new: SessionState) -> None:
        self.state_times.setdefault(new, self.sim.now)
        self.transitions.append((self.sim.now, old, new))

    def _stop_recording(self) -> None:
        """Detach the transition recorder once the operation completes, so
        a later operation on the same session (e.g. a chained MW launch)
        cannot pollute this handle's metrics."""
        try:
            self.session.unregister_status_cb(self._on_transition)
        except ValueError:
            pass  # already stopped

    # -- derived metrics -----------------------------------------------------
    @property
    def queue_wait(self) -> Optional[float]:
        """Admission wait: submit -> operation start."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def alloc_wait(self) -> Optional[float]:
        """Node-contention wait: time spent in the QUEUED state (covers
        both launch queuing and an MW launch's node wait).

        Only transitions from this operation's own start are considered --
        a chained MW handle shares its session (and thus sees the parent
        launch's transitions) but must report its *own* node wait.
        """
        own = [tr for tr in self.transitions
               if self.started_at is not None and tr[0] >= self.started_at]
        for i, (t_in, _old, new) in enumerate(own):
            if new is SessionState.QUEUED:
                for t_out, old, _new in own[i + 1:]:
                    if old is SessionState.QUEUED:
                        return t_out - t_in
                return None  # still queued
        return None

    @property
    def launch_latency(self) -> Optional[float]:
        """Client-visible latency: submit -> session READY (or DEGRADED,
        the partial-success sibling under a resilient launch policy).

        Defined only for launch/attach handles; a chained MW handle shares
        its session's READY mark with the parent launch, so the metric
        would duplicate the parent's -- it returns None there (use
        ``finished_at - submitted_at`` for an MW op's end-to-end time).
        """
        if self.op not in ("launch", "attach"):
            return None
        t_ready = self.state_times.get(SessionState.READY)
        if t_ready is None:
            t_ready = self.state_times.get(SessionState.DEGRADED)
        if t_ready is None:
            return None
        return t_ready - self.submitted_at

    @property
    def launch_report(self):
        """The RM's daemon-spawn breakdown for this session (a
        :class:`repro.launch.LaunchReport`), or None before daemons
        spawned: per-phase timing attribution (``t_spawn`` /
        ``t_image_stage`` / ``t_topo_dist`` / ``t_connect`` /
        ``t_handshake`` / ``t_repair``, with ``dominant_phase()`` naming
        the scaling bottleneck) plus -- under a resilient
        :class:`~repro.launch.LaunchPolicy` -- the per-index failure
        attribution (``outcomes`` / ``retries`` / ``blacklisted``) behind
        a DEGRADED session."""
        return self.session.launch_report

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "done" if self.done else "in-flight"
        return (f"<SessionHandle {self.id} {self.op} "
                f"session={self.session.id} {status}>")


class ToolService:
    """Serve many concurrent tool sessions on one simulated cluster.

    ``max_in_flight=None`` admits every submission immediately (the RM's
    allocation queue is then the only throttle); an integer cap makes the
    service itself a FIFO admission gate, which is how real shared launch
    services protect the front-end node and RM controller from stampedes.
    """

    def __init__(self, cluster: Cluster, rm: ResourceManager,
                 max_in_flight: Optional[int] = None,
                 keep_warm: Optional[int] = 64, name: str = "toolsvc"):
        self.cluster = cluster
        self.rm = rm
        self.sim: Simulator = cluster.sim
        self.name = name
        self.max_in_flight = max_in_flight
        #: at most this many *idle* tenant front ends keep their FE+engine
        #: processes warm; beyond it, a front end is retired when its last
        #: operation completes (None = never retire). Busy tenants are
        #: never retired, so the front-end node's process-table usage is
        #: bounded at roughly 2 x (keep_warm + concurrent operations).
        self.keep_warm = keep_warm
        self._gate = (Resource(self.sim, max_in_flight, name=f"{name}-gate")
                      if max_in_flight is not None else None)
        #: one front end per tool name (tenant); engines are reused per FE
        self.frontends: dict[str, ToolFrontEnd] = {}
        # per-FE-*object* tracking (a retired tenant's old FE can come back
        # through a chained submit_mw; it must be trackable independently
        # of whatever FE currently serves its tool name)
        self._fe_init_done: dict[ToolFrontEnd, Event] = {}
        self._fe_inflight: dict[ToolFrontEnd, int] = {}
        self._fe_idle_since: dict[ToolFrontEnd, float] = {}
        #: last submitted handle per session id: ops sharing one session
        #: are serialized FIFO (concurrent ops would race its state machine)
        self._session_tail: dict[int, SessionHandle] = {}
        #: live (non-terminal) service-created sessions per FE, maintained
        #: via status callbacks so retirement checks stay O(1) instead of
        #: rescanning every session the tenant ever ran
        self._fe_live_sessions: dict[ToolFrontEnd, int] = {}
        #: every handle ever submitted, in submission order
        self.handles: list[SessionHandle] = []
        #: concurrency diagnostics
        self.in_flight = 0
        self.peak_in_flight = 0

    # -- tenants -------------------------------------------------------------
    def frontend(self, tool_name: str = "tool") -> ToolFrontEnd:
        """The (lazily created) front end serving ``tool_name``."""
        fe = self.frontends.get(tool_name)
        if fe is None:
            fe = ToolFrontEnd(self.cluster, self.rm, tool_name,
                              reuse_engine=True)
            self.frontends[tool_name] = fe
        return fe

    # -- submission ----------------------------------------------------------
    def submit_launch(self, app: AppSpec, daemon_spec: DaemonSpec,
                      usr_data: Any = None, tool_name: str = "tool",
                      body: Optional[Callable[..., Generator]] = None,
                      ) -> SessionHandle:
        """Non-blocking ``launchAndSpawn``: returns a handle immediately.

        ``body(fe, session)``, if given, is a generator run in the same
        operation process once the session is READY -- the tenant's own tool
        logic (data exchange, detach, ...); its return value lands in
        ``handle.body_result``.
        """
        fe = self.frontend(tool_name)
        session = fe.create_session()
        self._track_session(fe, session)

        def op() -> Generator[Any, Any, LMONSession]:
            yield from fe.launch_and_spawn(session, app, daemon_spec,
                                           usr_data=usr_data)
            return session

        return self._submit(fe, session, op, "launch", body)

    def submit_attach(self, job: RMJob, daemon_spec: DaemonSpec,
                      usr_data: Any = None, tool_name: str = "tool",
                      body: Optional[Callable[..., Generator]] = None,
                      ) -> SessionHandle:
        """Non-blocking ``attachAndSpawn`` on an already-running job."""
        fe = self.frontend(tool_name)
        session = fe.create_session()
        self._track_session(fe, session)

        def op() -> Generator[Any, Any, LMONSession]:
            yield from fe.attach_and_spawn(session, job, daemon_spec,
                                           usr_data=usr_data)
            return session

        return self._submit(fe, session, op, "attach", body)

    def submit_op(self, op_factory: Callable[..., Generator],
                  tool_name: str = "tool", op_name: str = "op",
                  body: Optional[Callable[..., Generator]] = None,
                  ) -> SessionHandle:
        """Non-blocking *generic* FE operation on a fresh session.

        ``op_factory(fe, session)`` is a generator that drives the new
        session from CREATED to a usable state using any mix of FE
        coroutines -- this is how the control-plane daemon
        (:mod:`repro.ctl`) runs registry-defined tool recipes (e.g. an
        overlay-bearing launch) through the same admission gate,
        per-session serialization and handle semantics as
        :meth:`submit_launch`. Like the FE's own operations, the factory
        must reclaim what it acquired on failure before re-raising.
        """
        fe = self.frontend(tool_name)
        session = fe.create_session()
        self._track_session(fe, session)

        def op() -> Generator[Any, Any, LMONSession]:
            yield from op_factory(fe, session)
            return session

        return self._submit(fe, session, op, op_name, body)

    def submit_chained(self, handle: SessionHandle,
                       op_factory: Callable[..., Generator],
                       op_name: str = "op",
                       body: Optional[Callable[..., Generator]] = None,
                       ) -> SessionHandle:
        """Non-blocking operation chained onto an existing handle's
        session (FIFO per session, like :meth:`submit_mw`): waits for the
        parent to finish -- without adopting its failure; the op's own
        ``require_state`` reports the truth about a broken session --
        then runs ``op_factory(fe, session)``. This is how a
        control-plane client issues follow-up work (teardown, streams)
        against a session it launched earlier.
        """
        fe = handle.fe
        session = handle.session

        def pre() -> Generator[Any, Any, None]:
            if not handle.done:
                yield handle._wait_event()

        def op() -> Generator[Any, Any, LMONSession]:
            yield from op_factory(fe, session)
            return session

        return self._submit(fe, session, op, op_name, body, pre=pre)

    def submit_mw(self, handle: SessionHandle, mw_spec: DaemonSpec,
                  n_nodes: int, usr_data: Any = None,
                  topology: Optional[str] = None,
                  body: Optional[Callable[..., Generator]] = None,
                  ) -> SessionHandle:
        """Non-blocking ``launchMwDaemons`` chained after ``handle``.

        Waits for the parent operation to finish (so the session is READY),
        then launches the middleware set; returns its own handle bound to
        the same session.
        """
        fe = handle.fe
        session = handle.session

        def pre() -> Generator[Any, Any, None]:
            # wait for the parent *before* taking an admission slot, so a
            # chained op does not hold capacity while idle
            yield from handle.wait()

        def op() -> Generator[Any, Any, LMONSession]:
            yield from fe.launch_mw_daemons(session, mw_spec, n_nodes,
                                            usr_data=usr_data,
                                            topology=topology)
            return session

        return self._submit(fe, session, op, "mw", body, pre=pre)

    # -- completion ----------------------------------------------------------
    def drain(self) -> Generator[Any, Any, list[LMONSession]]:
        """Wait for every submitted handle; returns their sessions.

        Re-raises the first failure (in submission order) -- failures do
        not pass silently, matching :func:`repro.runner.drive` -- except
        deliberate cancellations: a handle that ended with an
        :class:`~repro.simx.Interrupt` (``handle.cancel()``) is skipped,
        so cancelling a stuck launch does not poison every later drain.
        Handles submitted *while* draining are waited on too.
        """
        sessions = []
        i = 0
        while i < len(self.handles):
            handle = self.handles[i]
            i += 1
            if handle.done and isinstance(handle.exception, Interrupt):
                continue  # deliberately cancelled, already acknowledged
            try:
                sessions.append((yield from handle.wait()))
            except Interrupt:
                if handle.done and isinstance(handle.exception, Interrupt):
                    continue  # cancelled while we were waiting on it
                raise  # the drain driver itself was interrupted
        return sessions

    def set_max_in_flight(self, n: Optional[int]) -> None:
        """Reconfigure the admission cap in place (daemon ``reload``).

        Raising the cap admits queued operations immediately (FIFO);
        lowering it never revokes slots already held -- in-flight
        operations finish and the lower cap binds as they release.
        Switching between unbounded (None) and a bounded cap requires a
        quiet service (no admitted or gate-queued operations): the gate
        cannot be created or destroyed under load without losing slot
        accounting.
        """
        if n == self.max_in_flight:
            return
        if self._gate is not None and n is not None:
            self._gate.set_capacity(n)
        else:
            if self.in_flight > 0 or self.pending_admissions > 0:
                raise FrontEndError(
                    f"cannot switch admission between unbounded and "
                    f"max_in_flight={n} with {self.in_flight} operation(s) "
                    f"in flight and {self.pending_admissions} queued")
            self._gate = (Resource(self.sim, n, name=f"{self.name}-gate")
                          if n is not None else None)
        self.max_in_flight = n

    @property
    def pending_admissions(self) -> int:
        """Operations still queued at the admission gate (0 if unbounded)."""
        return self._gate.pending if self._gate is not None else 0

    @property
    def live_sessions(self) -> int:
        """Live (non-terminal) service-created sessions across all
        tenants, O(1) -- the load signal a fleet health report gossips."""
        return sum(self._fe_live_sessions.values())

    def summary(self) -> dict:
        """Aggregate service metrics over all completed handles.

        Deliberate cancellations (``handle.cancel()`` -> Interrupt) are
        counted separately from failures, mirroring :meth:`drain`.
        """
        done = [h for h in self.handles if h.done and h.exception is None]
        lat = sorted(h.launch_latency for h in done
                     if h.launch_latency is not None)
        cancelled = sum(1 for h in self.handles
                        if h.done and isinstance(h.exception, Interrupt))
        failed = sum(1 for h in self.handles
                     if h.done and h.exception is not None
                     and not isinstance(h.exception, Interrupt))
        return {
            "submitted": len(self.handles),
            "completed": len(done),
            "failed": failed,
            "cancelled": cancelled,
            "peak_in_flight": self.peak_in_flight,
            "launch_latencies": lat,
        }

    def prune_handles(self) -> list[SessionHandle]:
        """Drop (and return) completed handles, bounding memory in a
        long-lived service; outstanding handles stay tracked.

        Call between :meth:`drain` passes, not while one is in flight
        (drain walks ``handles`` by index).
        """
        done = [h for h in self.handles if h.done]
        self.handles = [h for h in self.handles if not h.done]
        return done

    # -- internals -----------------------------------------------------------
    def _submit(self, fe: ToolFrontEnd, session: LMONSession,
                op: Callable[[], Generator], op_name: str,
                body: Optional[Callable[..., Generator]],
                pre: Optional[Callable[[], Generator]] = None,
                ) -> SessionHandle:
        handle = SessionHandle(self.sim, fe, session, op_name)
        # count per-FE work from *submission* (not gate admission), so a
        # tenant with an op still queued at the gate is never retired
        self._fe_inflight[fe] = self._fe_inflight.get(fe, 0) + 1
        self._fe_idle_since.pop(fe, None)
        # serialize ops on one session: wait for the predecessor (without
        # adopting its failure -- the op's own require_state reports the
        # truth about a broken session), then run any op-specific pre step
        prev = self._session_tail.get(session.id)
        self._session_tail[session.id] = handle

        def chained_pre() -> Generator[Any, Any, None]:
            if prev is not None and not prev.done:
                yield prev._wait_event()
            if pre is not None:
                yield from pre()

        proc = self.sim.process(
            self._run(handle, fe, op, body, chained_pre),
            name=f"{self.name}:{op_name}:s{session.id}")
        handle._proc = proc
        proc.callbacks.append(lambda ev: self._observe(handle, ev))
        self.handles.append(handle)
        return handle

    def _run(self, handle: SessionHandle, fe: ToolFrontEnd,
             op: Callable[[], Generator],
             body: Optional[Callable[..., Generator]],
             pre: Optional[Callable[[], Generator]] = None,
             ) -> Generator[Any, Any, LMONSession]:
        gate_req = None
        try:
            if pre is not None:
                yield from pre()  # e.g. wait for a chained op's parent
            if self._gate is not None:
                gate_req = self._gate.request()
                yield gate_req
        except BaseException:
            # failed (or interrupted) before admission: withdraw any
            # pending gate request so the slot cannot leak to a dead waiter
            if gate_req is not None:
                self._gate.cancel(gate_req)
            handle.finished_at = self.sim.now
            if handle.session.state is SessionState.CREATED:
                # a fresh session whose op died before starting: terminal,
                # so callback listeners see the death (a chained MW op's
                # parent session is live and is left untouched)
                handle.session.state = SessionState.FAILED
            if self._session_tail.get(handle.session.id) is handle:
                del self._session_tail[handle.session.id]
            handle._stop_recording()
            self._op_done(fe)
            raise
        handle.started_at = self.sim.now
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        try:
            try:
                yield from self._ensure_init(fe)
            except BaseException:
                # init died before the op could even start: a fresh
                # session must still end terminally (FAILED) so callback
                # listeners see the death and the live-session count drops
                if handle.session.state is SessionState.CREATED:
                    handle.session.state = SessionState.FAILED
                raise
            # FE-op failures need no cleanup here: launch_and_spawn /
            # launch_mw_daemons release exactly the allocations they
            # acquired before re-raising (a chained MW failure keeps the
            # live session's BE daemon nodes held).
            session = yield from op()
            if body is not None:
                try:
                    handle.body_result = yield from body(fe, session)
                except BaseException:
                    # a crashed tenant body abandons its session; nobody
                    # will detach it, so reclaim its job + nodes or every
                    # tenant queued behind it deadlocks -- and land it in
                    # the terminal FAILED state so callback listeners see
                    # the death and no further ops are admitted on it. A
                    # body that already ended its session (detach/kill)
                    # before raising left it in a deliberate terminal
                    # state: respect that, including a classic detach's
                    # still-running job.
                    if session.state not in (SessionState.DETACHED,
                                             SessionState.KILLED,
                                             SessionState.FAILED):
                        fe.reclaim(session)
                        session.state = SessionState.FAILED
                    raise
            return session
        finally:
            handle.finished_at = self.sim.now
            self.in_flight -= 1
            if self._session_tail.get(handle.session.id) is handle:
                del self._session_tail[handle.session.id]
            handle._stop_recording()
            self._op_done(fe)
            if self._gate is not None:
                self._gate.release()  # admitted: the slot is always held here

    def _ensure_init(self, fe: ToolFrontEnd) -> Generator[Any, Any, None]:
        """Run ``fe.init()`` exactly once per front end; concurrent
        operations on the same tenant wait for the first to finish it.

        If the initializer fails, its slot is cleared and waiters retry the
        init themselves (each failing operation surfaces the real error
        instead of hanging on a never-completed event)."""
        while True:
            ev = self._fe_init_done.get(fe)
            if ev is None:
                ev = Event(self.sim)
                self._fe_init_done[fe] = ev
                try:
                    yield from fe.init()
                except BaseException:
                    if self._fe_init_done.get(fe) is ev:
                        del self._fe_init_done[fe]
                    ev.succeed()  # wake waiters; they will retry
                    raise
                ev.succeed()
                return
            if ev.callbacks is None:
                return  # init already completed successfully
            yield ev  # init in progress; re-check its outcome after

    def _op_done(self, fe: ToolFrontEnd) -> None:
        """Account one finished operation; stamp idleness, maybe retire."""
        self._fe_inflight[fe] -= 1
        if self._fe_inflight[fe] == 0:
            self._fe_idle_since[fe] = self.sim.now
        self._maybe_retire()

    #: states in which a session needs nothing further from its front end
    _TERMINAL = (SessionState.DETACHED, SessionState.KILLED,
                 SessionState.FAILED)

    def _track_session(self, fe: ToolFrontEnd, session: LMONSession) -> None:
        """Count the new session as live until it first enters a terminal
        state (O(1) via status callback, vs rescanning fe.sessions)."""
        self._fe_live_sessions[fe] = self._fe_live_sessions.get(fe, 0) + 1

        def on_transition(s: LMONSession, old: SessionState,
                          new: SessionState) -> None:
            if new in self._TERMINAL and old not in self._TERMINAL:
                self._fe_live_sessions[fe] -= 1

        session.register_status_cb(on_transition)

    def _retirable(self, fe: ToolFrontEnd) -> bool:
        """True when the FE has no in-flight ops and no live sessions --
        retiring it would otherwise kill the engine process out from under
        a session that is still READY/attached."""
        if self._fe_inflight.get(fe, 0) > 0:
            return False
        return self._fe_live_sessions.get(fe, 0) == 0

    def _maybe_retire(self) -> None:
        """Retire longest-idle front ends while more than ``keep_warm``
        idle front ends hold warm processes (LRU eviction).

        Busy front ends -- in-flight ops or live sessions -- never count
        against the budget (and are never retired), so hot tenants keep
        their engine-reuse amortization and live sessions keep their
        engine. Without retirement, every distinct ``tool_name`` ever
        served would pin two processes forever and eventually exhaust the
        FE node's process-table quota. A retired tenant that returns
        simply pays the init/fork cost again.
        """
        if self.keep_warm is None:
            return
        while True:
            idle = [warm for warm in self._fe_init_done
                    if self._retirable(warm)]
            if len(idle) <= self.keep_warm:
                return
            oldest = min(idle, key=lambda warm: (
                self._fe_idle_since.get(warm, 0.0), warm.tool_name))
            self._retire(oldest)

    def _retire(self, fe: ToolFrontEnd) -> None:
        """Shut down one front end's FE + engine processes and forget it."""
        fe.shutdown()
        self._fe_init_done.pop(fe, None)
        self._fe_inflight.pop(fe, None)
        self._fe_idle_since.pop(fe, None)
        self._fe_live_sessions.pop(fe, None)
        if self.frontends.get(fe.tool_name) is fe:
            del self.frontends[fe.tool_name]

    def shutdown_idle(self) -> int:
        """Retire every retirable front end's processes now (no in-flight
        ops, no live sessions); returns how many were retired."""
        retired = 0
        for fe in list(self._fe_init_done):
            if not self._retirable(fe):
                continue
            self._retire(fe)
            retired += 1
        return retired

    def _observe(self, handle: SessionHandle, ev) -> None:
        """Defuse a failed operation so it surfaces through
        ``handle.result()`` instead of crashing the simulator run."""
        if ev.exception is not None:
            ev.defuse()
