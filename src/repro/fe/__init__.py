"""repro.fe -- the LaunchMON front-end API (Section 3.2).

The FE API serves the tool client: it launches or attaches to an RM
process, co-locates back-end daemons with application tasks, launches
middleware daemons, fetches the RPDTAB, transfers tool data, controls the
job, and binds all of it through a *session* abstraction -- the seven
requirements enumerated in the paper.

Following the paper's design refinement, control/interaction and daemon
co-location are fused into single operations: :meth:`ToolFrontEnd.launch_and_spawn`
(``launchAndSpawn``) and :meth:`ToolFrontEnd.attach_and_spawn`
(``attachAndSpawn``); there are deliberately no separated variants.
Pack/unpack registration enables piggybacking tool data on LaunchMON's own
handshake exchanges.

Two faces of the same API:

* blocking -- drive a :class:`ToolFrontEnd` generator yourself (one session
  at a time, the original C API's shape);
* non-blocking -- submit operations to a :class:`ToolService` and get back
  :class:`SessionHandle` futures, with ``LMON_fe_regStatusCB``-style status
  callbacks on every :class:`SessionState` transition. This is the
  multi-tenant face: N sessions interleave on one cluster, queueing FIFO
  for nodes and (optionally) for service admission.

Sessions carry their spawn cost breakdown (``session.launch_report`` /
``SessionHandle.launch_report``, a :class:`~repro.launch.LaunchReport`
with per-phase and -- under a resilient launch policy -- per-daemon-index
attribution). When the resource manager runs under a
:class:`~repro.launch.LaunchPolicy` and nodes crash mid-launch, a partial
daemon set that meets ``min_daemon_fraction`` lands the session in the
``DEGRADED`` state instead of failing it; see :mod:`repro.fe.session` for
the full state machine and ``docs/failure-modes.md`` for the fault model.
"""

from repro.fe.session import LMONSession, SessionState, StatusCallback
from repro.fe.api import FrontEndError, ToolFrontEnd
from repro.fe.service import SessionHandle, ToolService

__all__ = [
    "FrontEndError",
    "LMONSession",
    "SessionHandle",
    "SessionState",
    "StatusCallback",
    "ToolFrontEnd",
    "ToolService",
]
