"""repro.fe -- the LaunchMON front-end API (Section 3.2).

The FE API serves the tool client: it launches or attaches to an RM
process, co-locates back-end daemons with application tasks, launches
middleware daemons, fetches the RPDTAB, transfers tool data, controls the
job, and binds all of it through a *session* abstraction -- the seven
requirements enumerated in the paper.

Following the paper's design refinement, control/interaction and daemon
co-location are fused into single operations: :meth:`ToolFrontEnd.launch_and_spawn`
(``launchAndSpawn``) and :meth:`ToolFrontEnd.attach_and_spawn`
(``attachAndSpawn``); there are deliberately no separated variants.
Pack/unpack registration enables piggybacking tool data on LaunchMON's own
handshake exchanges.
"""

from repro.fe.session import LMONSession, SessionState
from repro.fe.api import FrontEndError, ToolFrontEnd

__all__ = ["FrontEndError", "LMONSession", "SessionState", "ToolFrontEnd"]
