"""The LaunchMON middleware runtime (``LMON_mw_*`` equivalent).

MW init mirrors BE init with two differences called out in Section 3.4:
every TBON daemon receives the *full* RPDTAB (so it can locate the target
program and the back-end daemons), and the personality-handle table is
distributed so daemons can address each other to bootstrap their own
network fabric.
"""

from __future__ import annotations

import json
from typing import Any, Generator, Optional

from repro.be.iccl import ICCLEndpoint
from repro.lmonp import FeToMw, LmonpMessage, LmonpStream, MsgClass, security_token
from repro.mpir import RPDTAB
from repro.mw.context import MWContext

__all__ = ["Middleware"]


class Middleware:
    """Per-daemon API object wrapping an :class:`MWContext`."""

    def __init__(self, ctx: MWContext):
        self.ctx = ctx
        self.ep: ICCLEndpoint = ctx.fabric.endpoint(ctx.rank)
        self._stream: Optional[LmonpStream] = None
        self._initialized = False
        self.timings: dict[str, float] = {}

    # -- identity ----------------------------------------------------------
    def am_i_master(self) -> bool:
        return self.ctx.is_master

    def get_personality(self) -> int:
        """This daemon's personality handle (unique, rank-like)."""
        return self.ctx.rank

    def get_size(self) -> int:
        return self.ctx.size

    # -- initialization ------------------------------------------------------
    def init(self) -> Generator[Any, Any, None]:
        """Wire the fabric, handshake, and receive RPDTAB + tool data."""
        ctx = self.ctx
        sim = ctx.sim

        t0 = sim.now
        yield from self.ep.wireup()
        self.timings["t_setup"] = sim.now - t0

        t1 = sim.now
        table = yield from self.ep.gather((ctx.node.name, ctx.proc.pid))

        if ctx.is_master:
            pipe = yield from ctx.fabric.network.connect(ctx.node, ctx.fe_node)
            token = security_token(ctx.session_key)
            self._stream = LmonpStream(pipe.a, token, name="master-mw")
            yield ctx.fe_rendezvous.put(pipe.b)
            hs = LmonpMessage(
                MsgClass.FE_MW, FeToMw.HANDSHAKE, num_tasks=ctx.size,
                lmon_payload=LmonpMessage.json_payload(table))
            yield self._stream.send(hs)
            msg = yield from self._stream.expect(FeToMw.PROCTAB)
            rpdtab_bytes = msg.lmon_payload
            usr_raw = msg.usr_payload
            # every TBON daemon gets the full RPDTAB + piggybacked data
            t2 = sim.now
            payload = (list(table), rpdtab_bytes, usr_raw)
            payload = yield from self.ep.broadcast(payload)
            self.timings["t_collective"] = (t2 - t1) + (sim.now - t2)
        else:
            payload = yield from self.ep.broadcast()
            self.timings["t_collective"] = sim.now - t1

        table_all, rpdtab_bytes, usr_raw = payload
        ctx.daemon_table = [tuple(t) for t in table_all]
        ctx.rpdtab = RPDTAB.from_bytes(rpdtab_bytes)
        ctx.usr_data_init = json.loads(usr_raw.decode()) if usr_raw else None
        self._initialized = True

    def ready(self) -> Generator[Any, Any, None]:
        """Master: report readiness (and measured phases) to the front end."""
        yield from self.ep.barrier()
        if self.ctx.is_master:
            report = {
                "t_setup": self.timings.get("t_setup", 0.0),
                "t_collective": self.timings.get("t_collective", 0.0),
            }
            msg = LmonpMessage(
                MsgClass.FE_MW, FeToMw.READY, num_tasks=self.ctx.size,
                lmon_payload=LmonpMessage.json_payload(report))
            yield self._stream.send(msg)

    # -- TBON streaming (the data plane) ------------------------------------------
    def attach_overlay(self, endpoint) -> None:
        """Bind this comm daemon to its internal TBON overlay position."""
        self._overlay_endpoint = endpoint

    def stream_open(self, spec):
        """Open (or join) a persistent stream on the attached overlay."""
        ep = self._require_overlay("stream_open")
        return ep.overlay.open_stream(spec)

    def stream_subscribe(self, stream):
        """Tap the merged waves flowing through this daemon's position.

        Returns a :class:`~repro.simx.Store` receiving every
        ``(wave, merged_payload)`` this position's stream router reduces
        -- a middleware daemon's live view of its subtree, without
        joining the reduction itself.
        """
        ep = self._require_overlay("stream_subscribe")
        return stream.subscribe(ep.position)

    def stream_state(self, stream) -> Any:
        """This position's running filter state (windowed aggregates)."""
        ep = self._require_overlay("stream_state")
        return stream.state_at(ep.position)

    def _require_overlay(self, what: str):
        ep = getattr(self, "_overlay_endpoint", None)
        if ep is None:
            raise RuntimeError(
                f"{what} requires attach_overlay(endpoint) first")
        return ep

    # -- collectives / data ------------------------------------------------------
    def barrier(self) -> Generator[Any, Any, None]:
        yield from self.ep.barrier()

    def broadcast(self, obj: Any = None) -> Generator[Any, Any, Any]:
        result = yield from self.ep.broadcast(obj)
        return result

    def gather(self, obj: Any) -> Generator[Any, Any, Optional[list]]:
        result = yield from self.ep.gather(obj)
        return result

    def send_usrdata(self, obj: Any) -> Generator[Any, Any, None]:
        if not self.ctx.is_master or self._stream is None:
            raise RuntimeError("send_usrdata is a master-daemon operation")
        msg = LmonpMessage(
            MsgClass.FE_MW, FeToMw.USRDATA,
            usr_payload=LmonpMessage.json_payload(obj))
        yield self._stream.send(msg)

    def recv_usrdata(self) -> Generator[Any, Any, Any]:
        if not self.ctx.is_master or self._stream is None:
            raise RuntimeError("recv_usrdata is a master-daemon operation")
        msg = yield from self._stream.expect(FeToMw.USRDATA)
        return json.loads(msg.usr_payload.decode()) if msg.usr_payload else None

    def finalize(self) -> Generator[Any, Any, None]:
        yield from self.ep.barrier()
        if self.ctx.is_master and self._stream is not None:
            yield self._stream.send(
                LmonpMessage(MsgClass.FE_MW, FeToMw.SHUTDOWN))
        self.ctx.proc.exit(0)
