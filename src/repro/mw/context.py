"""Execution context for launched middleware daemons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.simx import Simulator, Store
from repro.be.iccl import ICCLFabric
from repro.cluster import Node, SimProcess
from repro.mpir import RPDTAB

__all__ = ["MWContext"]


@dataclass
class MWContext:
    """Per-middleware-daemon launch context.

    ``rank`` is the daemon's *personality handle* -- the unique id the MW
    API assigns to each simultaneously launched TBON daemon (Section 3.4).
    """

    sim: Simulator
    node: Node
    proc: SimProcess
    rank: int
    size: int
    fabric: ICCLFabric
    session_key: str
    fe_node: Node
    fe_rendezvous: Store
    #: filled by the handshake: the target job's full RPDTAB
    rpdtab: RPDTAB | None = None
    #: filled by the handshake: (hostname, pid) per personality handle
    daemon_table: list[tuple[str, int]] = field(default_factory=list)
    #: tool data piggybacked by the front end (e.g. TBON topology)
    usr_data_init: Any = None
    tool_state: dict = field(default_factory=dict)

    @property
    def is_master(self) -> bool:
        """Personality handle 0 acts as the TBON master daemon."""
        return self.rank == 0
