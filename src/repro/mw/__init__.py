"""repro.mw -- the LaunchMON middleware API (Section 3.4).

Middleware daemons (TBON communication processes) launch onto dedicated
allocations. Each simultaneously launched daemon receives a unique
*personality handle* (an MPI-rank-like id), a simple pre-wired fabric for
collective/point-to-point exchange, and the RPDTAB -- enough for a TBON
implementation (e.g. MRNet) to bootstrap its own network, with tool data
piggybacked on the front end's handshake exchanges.
"""

from repro.mw.context import MWContext
from repro.mw.runtime import Middleware

__all__ = ["MWContext", "Middleware"]
