"""Convenience harness: build a simulated environment and drive tool code.

Typical use (this is what the examples do)::

    from repro.runner import make_env, drive

    env = make_env(n_compute=64)

    def tool(env):
        fe = ToolFrontEnd(env.cluster, env.rm, "mytool")
        yield from fe.init()
        ...

    drive(env, tool(env))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Type

from repro.cluster import Cluster, ClusterSpec, CostModel
from repro.rm import ResourceManager, SlurmRM
from repro.simx import Simulator

__all__ = ["SimEnv", "drive", "make_env"]


@dataclass
class SimEnv:
    """One simulated machine plus its resource manager."""

    sim: Simulator
    cluster: Cluster
    rm: ResourceManager


def make_env(n_compute: int = 16,
             rm_cls: Type[ResourceManager] = SlurmRM,
             spec: Optional[ClusterSpec] = None,
             costs: Optional[CostModel] = None,
             seed: int = 1,
             **rm_kwargs: Any) -> SimEnv:
    """Build a simulator, cluster and RM ready for tool runs."""
    sim = Simulator()
    cluster_spec = spec or ClusterSpec(n_compute=n_compute, seed=seed)
    cluster = Cluster(sim, cluster_spec, costs=costs)
    rm = rm_cls(cluster, **rm_kwargs)
    return SimEnv(sim=sim, cluster=cluster, rm=rm)


def drive(env: SimEnv, gen: Generator, until: Optional[float] = None) -> Any:
    """Run a tool-driver generator to completion; return its value.

    Raises whatever the generator raised (failures do not pass silently).
    """
    proc = env.sim.process(gen, name="tool-driver")
    env.sim.run(until=until)
    if not proc.triggered:
        raise RuntimeError(
            f"tool driver did not finish by t={env.sim.now}")
    return proc.value
