"""Convenience harness: build a simulated environment and drive tool code.

Typical use (this is what the examples do)::

    from repro.runner import make_env, drive

    env = make_env(n_compute=64)

    def tool(env):
        fe = ToolFrontEnd(env.cluster, env.rm, "mytool")
        yield from fe.init()
        ...

    drive(env, tool(env))

Multi-tenant use builds a :class:`ServiceEnv` instead, submits operations
to its :class:`~repro.fe.service.ToolService`, and drives the service's
``drain()`` (or any mix of driver generators via :func:`drive_many`)::

    env = make_service_env(n_compute=64, max_in_flight=8)
    handles = [env.service.submit_launch(app, spec, tool_name=f"u{i}")
               for i in range(16)]
    drive(env, env.service.drain())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Sequence, Type

from repro.cluster import Cluster, ClusterSpec, CostModel
from repro.fe.service import ToolService
from repro.rm import ResourceManager, SlurmRM
from repro.simx import Simulator

__all__ = ["ServiceEnv", "SimEnv", "drive", "drive_many", "make_env",
           "make_service_env"]


@dataclass
class SimEnv:
    """One simulated machine plus its resource manager."""

    sim: Simulator
    cluster: Cluster
    rm: ResourceManager


@dataclass
class ServiceEnv(SimEnv):
    """A :class:`SimEnv` plus a multi-tenant tool service on top of it."""

    service: ToolService


def make_env(n_compute: int = 16,
             rm_cls: Type[ResourceManager] = SlurmRM,
             spec: Optional[ClusterSpec] = None,
             costs: Optional[CostModel] = None,
             seed: int = 1,
             **rm_kwargs: Any) -> SimEnv:
    """Build a simulator, cluster and RM ready for tool runs."""
    sim = Simulator()
    cluster_spec = spec or ClusterSpec(n_compute=n_compute, seed=seed)
    cluster = Cluster(sim, cluster_spec, costs=costs)
    rm = rm_cls(cluster, **rm_kwargs)
    return SimEnv(sim=sim, cluster=cluster, rm=rm)


def make_service_env(n_compute: int = 16,
                     max_in_flight: Optional[int] = None,
                     rm_cls: Type[ResourceManager] = SlurmRM,
                     spec: Optional[ClusterSpec] = None,
                     costs: Optional[CostModel] = None,
                     seed: int = 1,
                     **rm_kwargs: Any) -> ServiceEnv:
    """Build a simulated machine with a :class:`ToolService` front door.

    ``max_in_flight`` is the service's admission cap (None = admit all;
    the RM's FIFO node queue still applies either way).
    """
    env = make_env(n_compute=n_compute, rm_cls=rm_cls, spec=spec,
                   costs=costs, seed=seed, **rm_kwargs)
    service = ToolService(env.cluster, env.rm, max_in_flight=max_in_flight)
    return ServiceEnv(sim=env.sim, cluster=env.cluster, rm=env.rm,
                      service=service)


def _stall_hint(env: SimEnv) -> str:
    """Diagnose why a driver may not have finished (starvation)."""
    hints = []
    queued = getattr(env.rm, "queued_requests", 0)
    if queued:
        hints.append(
            f"{queued} allocation request(s) still queued on "
            f"{env.rm.name} -- node starvation: a session is waiting for "
            f"nodes that no running session will release (cancel its "
            f"handle, detach with reclaim_job=True, kill a live session, "
            f"or request fewer nodes)")
    service = getattr(env, "service", None)
    pending = getattr(service, "pending_admissions", 0)
    if pending:
        hints.append(
            f"{pending} operation(s) still queued at the "
            f"ToolService admission gate "
            f"(max_in_flight={service.max_in_flight})")
    return "".join("; " + h for h in hints)


def drive(env: SimEnv, gen: Generator, until: Optional[float] = None) -> Any:
    """Run a tool-driver generator to completion; return its value.

    Raises whatever the generator raised (failures do not pass silently).
    """
    proc = env.sim.process(gen, name="tool-driver")
    env.sim.run(until=until)
    if not proc.triggered:
        # the driver is being abandoned: defuse it so that if a later
        # recovery action (e.g. cancelling a stuck handle) completes it
        # with a failure, that stale failure cannot detonate inside an
        # unrelated sim.run()
        proc.defuse()
        raise RuntimeError(
            f"tool driver did not finish by t={env.sim.now}"
            + _stall_hint(env))
    return proc.value


def drive_many(env: SimEnv, gens: Sequence[Generator],
               until: Optional[float] = None) -> list[Any]:
    """Run several tool-driver generators concurrently; return their values
    in submission order.

    Each generator becomes an independent simulation process, so their
    operations interleave on the shared cluster -- this is the blocking
    API's route to multi-tenancy (the non-blocking route is
    :class:`~repro.fe.service.ToolService`). A failing driver raises out of
    the run (failures do not pass silently); an unfinished driver
    (deadlock, ``until`` too small) raises ``RuntimeError``.
    """
    procs = [env.sim.process(gen, name=f"tool-driver-{i}")
             for i, gen in enumerate(gens)]
    env.sim.run(until=until)
    stuck = [i for i, proc in enumerate(procs) if not proc.triggered]
    if stuck:
        for i in stuck:
            procs[i].defuse()  # abandoned; see drive()
        raise RuntimeError(
            f"tool driver(s) {stuck} did not finish by t={env.sim.now}"
            + _stall_hint(env))
    return [proc.value for proc in procs]
