"""Empirical T(op) fitting (the paper's measure-small, predict-large method)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["FittedLine", "fit_component_scaling"]


@dataclass(frozen=True)
class FittedLine:
    """A least-squares affine fit t = intercept + slope * n."""

    intercept: float
    slope: float
    r2: float

    def predict(self, n: float) -> float:
        return self.intercept + self.slope * n

    @property
    def is_scale_independent(self) -> bool:
        """True when the slope is negligible relative to the intercept."""
        if self.intercept <= 0:
            return abs(self.slope) < 1e-9
        return abs(self.slope) * 1000 < self.intercept


def fit_component_scaling(ns: Sequence[float], ts: Sequence[float],
                          ) -> FittedLine:
    """Fit t(n) = a + b*n by least squares; returns the line with R^2."""
    if len(ns) != len(ts) or len(ns) < 2:
        raise ValueError("need >= 2 (n, t) pairs of equal length")
    x = np.asarray(ns, dtype=float)
    y = np.asarray(ts, dtype=float)
    design = np.vstack([np.ones_like(x), x]).T
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    pred = design @ coef
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FittedLine(intercept=float(coef[0]), slope=float(coef[1]), r2=r2)
