"""Closed-form prediction of launchAndSpawn/attachAndSpawn components
and of the streaming data plane's per-wave behaviour."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cluster.cluster import STAGING_MODES, StagingError
from repro.cluster.costs import CostModel
from repro.engine.timeline import ComponentTimes
from repro.rm.slurm import SlurmConfig
from repro.tbon.packets import Packet

__all__ = ["LaunchModel", "ModelInputs", "StreamModel"]


@dataclass(frozen=True)
class ModelInputs:
    """Workload parameters for one prediction."""

    n_daemons: int
    tasks_per_daemon: int = 8
    mode: str = "launch"  # "launch" | "attach"
    daemon_image_mb: float = 1.0
    app_image_mb: float = 4.0

    @property
    def n_tasks(self) -> int:
        return self.n_daemons * self.tasks_per_daemon


class LaunchModel:
    """The Section 4 analytic model, parameterized by the same constants
    that drive the simulation (so disagreement indicates a modeling error,
    not a calibration gap)."""

    def __init__(self, costs: CostModel | None = None,
                 slurm: SlurmConfig | None = None, fs_servers: int = 1,
                 staging: str = "shared-fs"):
        self.costs = costs or CostModel()
        self.slurm = slurm or SlurmConfig()
        self.fs_servers = max(1, fs_servers)
        if staging not in STAGING_MODES:
            raise StagingError(
                f"unknown staging mode {staging!r}; one of {STAGING_MODES}")
        #: the storage layer's staging mode the prediction assumes
        self.staging = staging

    # -- helpers ------------------------------------------------------------
    def _tree_depth(self, n: int) -> float:
        return max(1, math.ceil(math.log(max(2, n), self.slurm.fanout)))

    def _image_serial(self, image_mb: float, n_loads: int) -> float:
        """Shared-FS serialized image distribution across n_loads nodes."""
        per = self.costs.fs_open + image_mb * 1024 * 1024 / self.costs.fs_bandwidth
        return per * n_loads / self.fs_servers

    def _image_broadcast(self, image_mb: float, n_loads: int) -> float:
        """Cooperative broadcast: one FS read + O(log N) copy rounds."""
        c = self.costs
        nbytes = image_mb * 1024 * 1024
        one_read = c.fs_open + nbytes / c.fs_bandwidth
        if n_loads <= 1:
            return one_read
        fanout = max(2, c.bcast_fanout)
        rounds = math.ceil(math.log(n_loads, fanout))
        per_round = (c.tcp_connect + c.bcast_hop_overhead
                     + (fanout - 1) * (c.net_latency + c.msg_overhead
                                       + nbytes / c.net_bandwidth))
        return one_read + rounds * per_round

    def image_stage_time(self, image_mb: float, n_loads: int,
                         warm_nodes: int = 0,
                         staging: str | None = None) -> float:
        """T(image-stage) for one image onto ``n_loads`` nodes.

        ``shared-fs`` serializes every load through the FS servers (the
        classic linear term); ``cache`` pays the serial term only for the
        cold nodes (warm nodes hit their local caches in parallel, one
        page-cache window); ``broadcast`` pays one FS read plus a
        logarithmic distribution tree regardless of warmth.
        """
        mode = staging or self.staging
        if mode not in STAGING_MODES:
            raise StagingError(
                f"unknown staging mode {mode!r}; one of {STAGING_MODES}")
        if image_mb <= 0 or n_loads <= 0:
            return 0.0
        warm = min(max(0, warm_nodes), n_loads)
        cold = n_loads - warm
        if mode == "broadcast":
            if cold == 0:
                return self.costs.cache_hit
            return self._image_broadcast(image_mb, cold)
        if mode == "cache":
            return (self._image_serial(image_mb, cold)
                    + (self.costs.cache_hit if warm else 0.0))
        return self._image_serial(image_mb, n_loads)

    def _hop_msg(self) -> float:
        return (self.costs.net_latency + self.costs.msg_overhead
                + self.costs.tcp_connect * 0)

    # -- per-component terms -------------------------------------------------
    def n_debug_events(self) -> int:
        """Events the engine handles during one traced launch."""
        # EXEC + (count-3) helper forks + MPIR_Breakpoint
        return self.slurm.debug_event_count - 1

    def t_trace(self, inp: ModelInputs) -> float:
        if inp.mode != "launch":
            return 0.0
        n_events = self.n_debug_events()
        if self.slurm.legacy_events:
            n_events += inp.n_tasks
        return n_events * self.costs.event_handle

    def t_job(self, inp: ModelInputs) -> float:
        if inp.mode != "launch":
            return 0.0
        c, s = self.costs, self.slurm
        n = inp.n_daemons
        n_events = self.n_debug_events()
        if s.legacy_events:
            n_events += inp.n_tasks
        per_event_os = c.ptrace_trap + c.ptrace_continue
        return (s.ctl_job_setup
                + s.ctl_per_node_job * n
                + self._tree_depth(n) * s.hop_cost
                + self.image_stage_time(inp.app_image_mb, n)
                + inp.tasks_per_daemon * c.fork_exec
                + s.pmi_per_task * inp.n_tasks
                + n_events * per_event_os
                + c.ptrace_continue)

    def t_rpdtab(self, inp: ModelInputs) -> float:
        # one size read + three word-granular reads per task
        return (1 + 3 * inp.n_tasks) * self.costs.ptrace_word_read

    def t_daemon(self, inp: ModelInputs) -> float:
        c, s = self.costs, self.slurm
        n = inp.n_daemons
        congestion = s.ctl_congestion_per_node * max(
            0, n - s.ctl_congestion_threshold)
        return (c.fork_exec  # the transient daemon launcher
                + s.ctl_daemon_setup
                + s.ctl_per_node_daemon * n
                + congestion
                + self._tree_depth(n) * s.hop_cost
                + self.image_stage_time(inp.daemon_image_mb, n)
                + c.fork_exec)

    def t_setup(self, inp: ModelInputs) -> float:
        """Fabric wireup: connects in parallel + synchronizing barrier."""
        c = self.costs
        n = inp.n_daemons
        if n <= 1:
            return c.tcp_connect
        depth = max(1, math.ceil(math.log2(n)))
        accept = 0.00005
        barrier_msgs = 4 * depth * (c.net_latency + c.msg_overhead + 0.0001)
        return c.tcp_connect + accept * depth + barrier_msgs

    def t_collective(self, inp: ModelInputs) -> float:
        """Handshake gather + scatter through the RM fabric."""
        s, c = self.slurm, self.costs
        n = inp.n_daemons
        per_rec = 2 * s.fabric_per_rec * max(0, n - 1)
        # gathered daemon records + scattered proctable slices
        gather_bytes = 40 * n
        scatter_bytes = 24 * inp.n_tasks
        transfer = (gather_bytes + scatter_bytes) / c.net_bandwidth
        depth = max(1, math.ceil(math.log2(max(2, n))))
        hops = 3 * depth * (c.net_latency + c.msg_overhead + 0.0001)
        return per_rec + transfer + hops

    #: one MPIR_PROCDESC entry on the ICCL scatter wire (rank + pid ints,
    #: host and executable names, tuple framing), matching ``message_size``
    SCATTER_ENTRY_BYTES = 260

    @staticmethod
    def piggyback_bytes(n_daemons: int) -> int:
        """Compact-JSON bytes of the one-deep topology piggyback
        (``{"topology": {"parent": [-1,0,...], "kind": ["fe","be",...]}}``)
        the TBON launchmon path ships to every daemon."""
        return 7 * n_daemons + 42

    def t_usrdata_scatter(self, inp: ModelInputs,
                          usr_payload_bytes: Optional[int] = None) -> float:
        """Critical path of the ICCL scatter that hands every daemon its
        proctable slice *plus a full copy of the piggybacked usr data*.

        The scatter batches per-rank items down the binomial tree and each
        item carries the whole O(n)-byte topology piggyback, so the root's
        serialized sends move ``n * O(n)`` bytes -- the quadratic term that
        dominates T(spawn) at 10k+ daemons. Children are served smallest
        subtree first, so the largest child's batch leaves the root last
        and the chain repeats at every level: ~``2n`` items end to end.
        """
        n = inp.n_daemons
        if n <= 1:
            return 0.0
        c = self.costs
        if usr_payload_bytes is None:
            usr_payload_bytes = self.piggyback_bytes(n)
        slice_bytes = 16 + inp.tasks_per_daemon * self.SCATTER_ENTRY_BYTES
        # (rank, (slice, usr)) inside the batch list: two tuple frames
        # of 16 bytes plus the opaque-int rank (64)
        item = 16 + 64 + 16 + slice_bytes + usr_payload_bytes
        depth = max(1, math.ceil(math.log2(n)))
        items_serial = 2 * n - depth - 2
        msgs_serial = depth * (depth + 1) // 2
        return (items_serial * item / c.net_bandwidth
                + msgs_serial * (c.net_latency + c.msg_overhead))

    def t_handshake(self, inp: ModelInputs) -> float:
        """Region C: FE-side processing + proctable/ready transfers."""
        c = self.costs
        rpdtab_bytes = 22 * inp.n_tasks + 24 * inp.n_daemons
        return (c.fe_handshake_per_daemon * inp.n_daemons
                + c.tcp_connect
                + rpdtab_bytes / c.net_bandwidth
                + 4 * (c.net_latency + c.msg_overhead))

    def t_other(self, inp: ModelInputs) -> float:
        """Scale-independent LaunchMON costs (the paper's ~12 ms)."""
        c = self.costs
        return (2 * c.fork_exec          # FE runtime + engine processes
                + c.ptrace_attach
                + 2 * c.ptrace_word_read
                + 2 * c.ptrace_continue
                + 0.004)                 # session bookkeeping + engine msg

    # -- the full prediction -----------------------------------------------------
    def predict(self, inp: ModelInputs) -> ComponentTimes:
        times = ComponentTimes(
            t_job=self.t_job(inp),
            t_daemon=self.t_daemon(inp),
            t_setup=self.t_setup(inp),
            t_collective=self.t_collective(inp),
            t_trace=self.t_trace(inp),
            t_rpdtab=self.t_rpdtab(inp),
            t_handshake=self.t_handshake(inp),
            t_other=self.t_other(inp),
        )
        times.total = (times.rm_time() + times.t_trace + times.t_rpdtab
                       + times.t_handshake + times.t_other)
        return times

    # -- the inverse: model terms per LaunchReport phase -----------------------
    def launch_report_phases(self, n_daemons: int, tasks_per_daemon: int = 8,
                             daemon_image_mb: float = 1.0,
                             per_be_handshake: float = 0.0,
                             mode: str = "attach") -> dict:
        """Model prediction keyed by :data:`repro.launch.report.PHASES`.

        The simulated launchmon path attributes its wall clock to six
        report phases; this is the analytic view of the same carve-up
        (validated against simulation within a few percent):

        * ``t_spawn`` -- the RM attach/spawn window *minus* the image
          staging the simulator carves out of it, plus every fabric/
          engine term that lands inside the window;
        * ``t_image_stage`` -- exactly :meth:`image_stage_time`;
        * ``t_connect`` -- the FE's collective bring-up (one TCP connect
          plus the per-record fabric cost);
        * ``t_handshake`` -- the MRNet-style per-BE handshake, linear
          with the caller's per-daemon constant;
        * ``t_topo_dist``/``t_repair`` -- zero on a fault-free launch.

        ``per_be_handshake`` is passed in as a plain float (the startup
        layer owns the constant) so this module never imports it.
        """
        inp = ModelInputs(n_daemons=n_daemons,
                          tasks_per_daemon=tasks_per_daemon, mode=mode,
                          daemon_image_mb=daemon_image_mb)
        image = self.image_stage_time(daemon_image_mb, n_daemons)
        spawn = (self.t_daemon(inp) - image + self.t_setup(inp)
                 + self.t_collective(inp) + self.t_usrdata_scatter(inp)
                 + self.t_trace(inp) + self.t_rpdtab(inp)
                 + self.t_handshake(inp) + self.t_other(inp))
        connect = (self.costs.tcp_connect
                   + self.slurm.fabric_per_rec * max(0, n_daemons - 1))
        return {
            "t_spawn": max(0.0, spawn),
            "t_image_stage": image,
            "t_topo_dist": 0.0,
            "t_connect": connect,
            "t_handshake": per_be_handshake * n_daemons,
            "t_repair": 0.0,
        }

    def subtree_launch_phases(self, base_daemons: int, n_leaves: int,
                              tasks_per_daemon: int = 8,
                              daemon_image_mb: float = 1.0,
                              per_be_handshake: float = 0.0,
                              mode: str = "attach") -> dict:
        """Marginal per-phase cost of ``n_leaves`` more daemons on top of
        a launch that already has ``base_daemons``.

        This is the hybrid tier's analytic charge for one
        :class:`~repro.simx.aggregate.AggregateSubtree`: the phase deltas
        telescope, so folding every subtree with a cumulative base
        reproduces ``launch_report_phases(n_total) -
        launch_report_phases(n_exact)`` exactly regardless of how the
        aggregated span is partitioned.
        """
        hi = self.launch_report_phases(
            base_daemons + n_leaves, tasks_per_daemon, daemon_image_mb,
            per_be_handshake, mode)
        lo = self.launch_report_phases(
            base_daemons, tasks_per_daemon, daemon_image_mb,
            per_be_handshake, mode)
        return {k: max(0.0, hi[k] - lo[k]) for k in hi}


class StreamModel:
    """Analytic per-wave terms for the persistent TBON data plane.

    Parameterized by the same :class:`CostModel` constants the simulated
    stream plane pays, so disagreement indicates a modeling error, not a
    calibration gap. Two regimes matter for a sustained stream:

    * **unloaded wave latency** -- one wave rippling up an idle tree:
      along the deepest leaf-to-root path, each level pays one hop
      (latency + per-message overhead + packet serialization) plus the
      level's filter-merge processing (``msg_overhead`` per merged child,
      matching the router's charge);
    * **sustained throughput** -- under continuous publishing the
      pipeline bottlenecks on its busiest router: a position merging
      ``c`` children spends ``msg_overhead * c`` per wave, so waves
      cannot drain faster than the widest position can merge them
      (credit-based flow control holds publishers to exactly that rate
      instead of letting inboxes grow).
    """

    #: packet framing bytes (the wire format's own constant)
    PACKET_HEADER = Packet.HEADER_BYTES
    #: ``message_size`` fallback for opaque (dict) payloads
    OPAQUE_PAYLOAD = 64

    def __init__(self, costs: CostModel | None = None):
        self.costs = costs or CostModel()

    def hop_time(self, payload_bytes: int = OPAQUE_PAYLOAD) -> float:
        """One child -> parent packet transfer (unjittered mean)."""
        c = self.costs
        nbytes = self.PACKET_HEADER + payload_bytes
        return c.net_latency + c.msg_overhead + nbytes / c.net_bandwidth

    def merge_time(self, n_children: int) -> float:
        """One position's filter processing for one wave."""
        return self.costs.msg_overhead * max(1, n_children)

    # -- per-topology terms ---------------------------------------------------
    def _level_children(self, topology) -> list[list[int]]:
        """Child counts of the internal positions along each leaf's
        root path (one list per leaf, leaf-side first).

        Aggregate-aware: leaf iteration covers ``"agg"`` positions too and
        counts are *virtual* (an aggregate child counts as the physical
        fan-in it collapsed), so the model predicts the full underlying
        tree whether or not the topology is hybrid."""
        paths = []
        for leaf in topology.leaves():
            counts = []
            pos = topology.parent[leaf]
            while pos is not None:
                counts.append(topology.virtual_child_count(pos))
                pos = topology.parent[pos]
            paths.append(counts)
        return paths

    def wave_latency(self, topology,
                     payload_bytes: int = OPAQUE_PAYLOAD) -> float:
        """T(wave): one unloaded wave, first publish to root delivery.

        The slowest leaf-to-root path dominates: per level one hop plus
        that level's merge processing.
        """
        worst = 0.0
        for counts in self._level_children(topology):
            t = sum(self.hop_time(payload_bytes) + self.merge_time(c)
                    for c in counts)
            worst = max(worst, t)
        return worst

    def service_time(self, topology, credit_limit: Optional[int] = None,
                     payload_bytes: int = OPAQUE_PAYLOAD) -> float:
        """Per-wave occupancy of the pipeline's busiest router.

        A position merging ``c`` children spends, per wave:

        * ``merge_time(c)`` of filter processing (its inbox cannot drain
          meanwhile, so at most ``credit_limit`` contributions of the
          next wave land during it);
        * the *feeding* serialization the credit gate imposes:
          contributions arrive in batches of ``credit_limit`` parallel
          transfers, so ``c`` of them need ``ceil(c/limit) - 1``
          additional hop times beyond the batch that overlapped the
          merge (unbounded credits overlap all of it);
        * one forward hop to its parent's inbox (the root banks locally
          instead).
        """
        hop = self.hop_time(payload_bytes)
        worst = 0.0
        for pos in range(topology.size):
            if not topology.children(pos):
                continue
            # virtual count: an aggregate child models its whole collapsed
            # fan-in, so the busiest-router bound is over the *underlying*
            # tree (identical to the physical count on non-hybrid trees)
            c = topology.virtual_child_count(pos)
            t = self.merge_time(c)
            if credit_limit:
                t += max(0, math.ceil(c / credit_limit) - 1) * hop
            if pos != 0:
                t += hop
            worst = max(worst, t)
        return worst

    def aggregate_contribution_delay(self, n_leaves: int, n_contrib: int,
                                     credit_limit: Optional[int] = None,
                                     payload_bytes: int = OPAQUE_PAYLOAD,
                                     ) -> float:
        """Per-wave delay an :class:`~repro.simx.aggregate.AggregateSubtree`
        emitter waits before publishing, modeling the collapsed subtree's
        *internal* pipeline occupancy.

        A flat span (``n_contrib == n_leaves``: leaves that would publish
        straight to the parent) has no internal levels -- the parent-side
        merge and feeding are already charged by the weighted router --
        so the delay is zero. A collapsed comm level (balanced hybrid)
        pays one comm's service time: merging its ``ceil(n_leaves /
        n_contrib)`` leaves, the credit-gated feeding of those leaves,
        and the forward hop (the collapsed comms run in parallel, so one
        comm's occupancy is the per-wave delay).
        """
        if n_contrib >= n_leaves:
            return 0.0
        g = math.ceil(n_leaves / max(1, n_contrib))
        hop = self.hop_time(payload_bytes)
        t = self.merge_time(g)
        if credit_limit:
            t += max(0, math.ceil(g / credit_limit) - 1) * hop
        return t + hop

    def sustained_throughput(self, topology,
                             credit_limit: Optional[int] = None,
                             payload_bytes: int = OPAQUE_PAYLOAD) -> float:
        """Waves per second under saturating publishers (pipelined)."""
        return 1.0 / self.service_time(topology, credit_limit,
                                       payload_bytes)

    def wave_interval_throughput(self, topology, publish_interval: float,
                                 credit_limit: Optional[int] = None,
                                 payload_bytes: int = OPAQUE_PAYLOAD,
                                 ) -> float:
        """Waves per second when leaves publish every
        ``publish_interval`` seconds: the slower of the publishing
        cadence and the pipeline's sustained rate."""
        sustained = self.sustained_throughput(topology, credit_limit,
                                              payload_bytes)
        if publish_interval <= 0:
            return sustained
        return min(1.0 / publish_interval, sustained)
