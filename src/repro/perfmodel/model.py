"""Closed-form prediction of launchAndSpawn/attachAndSpawn components."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.cluster import STAGING_MODES, StagingError
from repro.cluster.costs import CostModel
from repro.engine.timeline import ComponentTimes
from repro.rm.slurm import SlurmConfig

__all__ = ["LaunchModel", "ModelInputs"]


@dataclass(frozen=True)
class ModelInputs:
    """Workload parameters for one prediction."""

    n_daemons: int
    tasks_per_daemon: int = 8
    mode: str = "launch"  # "launch" | "attach"
    daemon_image_mb: float = 1.0
    app_image_mb: float = 4.0

    @property
    def n_tasks(self) -> int:
        return self.n_daemons * self.tasks_per_daemon


class LaunchModel:
    """The Section 4 analytic model, parameterized by the same constants
    that drive the simulation (so disagreement indicates a modeling error,
    not a calibration gap)."""

    def __init__(self, costs: CostModel | None = None,
                 slurm: SlurmConfig | None = None, fs_servers: int = 1,
                 staging: str = "shared-fs"):
        self.costs = costs or CostModel()
        self.slurm = slurm or SlurmConfig()
        self.fs_servers = max(1, fs_servers)
        if staging not in STAGING_MODES:
            raise StagingError(
                f"unknown staging mode {staging!r}; one of {STAGING_MODES}")
        #: the storage layer's staging mode the prediction assumes
        self.staging = staging

    # -- helpers ------------------------------------------------------------
    def _tree_depth(self, n: int) -> float:
        return max(1, math.ceil(math.log(max(2, n), self.slurm.fanout)))

    def _image_serial(self, image_mb: float, n_loads: int) -> float:
        """Shared-FS serialized image distribution across n_loads nodes."""
        per = self.costs.fs_open + image_mb * 1024 * 1024 / self.costs.fs_bandwidth
        return per * n_loads / self.fs_servers

    def _image_broadcast(self, image_mb: float, n_loads: int) -> float:
        """Cooperative broadcast: one FS read + O(log N) copy rounds."""
        c = self.costs
        nbytes = image_mb * 1024 * 1024
        one_read = c.fs_open + nbytes / c.fs_bandwidth
        if n_loads <= 1:
            return one_read
        fanout = max(2, c.bcast_fanout)
        rounds = math.ceil(math.log(n_loads, fanout))
        per_round = (c.tcp_connect + c.bcast_hop_overhead
                     + (fanout - 1) * (c.net_latency + c.msg_overhead
                                       + nbytes / c.net_bandwidth))
        return one_read + rounds * per_round

    def image_stage_time(self, image_mb: float, n_loads: int,
                         warm_nodes: int = 0,
                         staging: str | None = None) -> float:
        """T(image-stage) for one image onto ``n_loads`` nodes.

        ``shared-fs`` serializes every load through the FS servers (the
        classic linear term); ``cache`` pays the serial term only for the
        cold nodes (warm nodes hit their local caches in parallel, one
        page-cache window); ``broadcast`` pays one FS read plus a
        logarithmic distribution tree regardless of warmth.
        """
        mode = staging or self.staging
        if mode not in STAGING_MODES:
            raise StagingError(
                f"unknown staging mode {mode!r}; one of {STAGING_MODES}")
        if image_mb <= 0 or n_loads <= 0:
            return 0.0
        warm = min(max(0, warm_nodes), n_loads)
        cold = n_loads - warm
        if mode == "broadcast":
            if cold == 0:
                return self.costs.cache_hit
            return self._image_broadcast(image_mb, cold)
        if mode == "cache":
            return (self._image_serial(image_mb, cold)
                    + (self.costs.cache_hit if warm else 0.0))
        return self._image_serial(image_mb, n_loads)

    def _hop_msg(self) -> float:
        return (self.costs.net_latency + self.costs.msg_overhead
                + self.costs.tcp_connect * 0)

    # -- per-component terms -------------------------------------------------
    def n_debug_events(self) -> int:
        """Events the engine handles during one traced launch."""
        # EXEC + (count-3) helper forks + MPIR_Breakpoint
        return self.slurm.debug_event_count - 1

    def t_trace(self, inp: ModelInputs) -> float:
        if inp.mode != "launch":
            return 0.0
        n_events = self.n_debug_events()
        if self.slurm.legacy_events:
            n_events += inp.n_tasks
        return n_events * self.costs.event_handle

    def t_job(self, inp: ModelInputs) -> float:
        if inp.mode != "launch":
            return 0.0
        c, s = self.costs, self.slurm
        n = inp.n_daemons
        n_events = self.n_debug_events()
        if s.legacy_events:
            n_events += inp.n_tasks
        per_event_os = c.ptrace_trap + c.ptrace_continue
        return (s.ctl_job_setup
                + s.ctl_per_node_job * n
                + self._tree_depth(n) * s.hop_cost
                + self.image_stage_time(inp.app_image_mb, n)
                + inp.tasks_per_daemon * c.fork_exec
                + s.pmi_per_task * inp.n_tasks
                + n_events * per_event_os
                + c.ptrace_continue)

    def t_rpdtab(self, inp: ModelInputs) -> float:
        # one size read + three word-granular reads per task
        return (1 + 3 * inp.n_tasks) * self.costs.ptrace_word_read

    def t_daemon(self, inp: ModelInputs) -> float:
        c, s = self.costs, self.slurm
        n = inp.n_daemons
        congestion = s.ctl_congestion_per_node * max(
            0, n - s.ctl_congestion_threshold)
        return (c.fork_exec  # the transient daemon launcher
                + s.ctl_daemon_setup
                + s.ctl_per_node_daemon * n
                + congestion
                + self._tree_depth(n) * s.hop_cost
                + self.image_stage_time(inp.daemon_image_mb, n)
                + c.fork_exec)

    def t_setup(self, inp: ModelInputs) -> float:
        """Fabric wireup: connects in parallel + synchronizing barrier."""
        c = self.costs
        n = inp.n_daemons
        if n <= 1:
            return c.tcp_connect
        depth = max(1, math.ceil(math.log2(n)))
        accept = 0.00005
        barrier_msgs = 4 * depth * (c.net_latency + c.msg_overhead + 0.0001)
        return c.tcp_connect + accept * depth + barrier_msgs

    def t_collective(self, inp: ModelInputs) -> float:
        """Handshake gather + scatter through the RM fabric."""
        s, c = self.slurm, self.costs
        n = inp.n_daemons
        per_rec = 2 * s.fabric_per_rec * max(0, n - 1)
        # gathered daemon records + scattered proctable slices
        gather_bytes = 40 * n
        scatter_bytes = 24 * inp.n_tasks
        transfer = (gather_bytes + scatter_bytes) / c.net_bandwidth
        depth = max(1, math.ceil(math.log2(max(2, n))))
        hops = 3 * depth * (c.net_latency + c.msg_overhead + 0.0001)
        return per_rec + transfer + hops

    def t_handshake(self, inp: ModelInputs) -> float:
        """Region C: FE-side processing + proctable/ready transfers."""
        c = self.costs
        rpdtab_bytes = 22 * inp.n_tasks + 24 * inp.n_daemons
        return (c.fe_handshake_per_daemon * inp.n_daemons
                + c.tcp_connect
                + rpdtab_bytes / c.net_bandwidth
                + 4 * (c.net_latency + c.msg_overhead))

    def t_other(self, inp: ModelInputs) -> float:
        """Scale-independent LaunchMON costs (the paper's ~12 ms)."""
        c = self.costs
        return (2 * c.fork_exec          # FE runtime + engine processes
                + c.ptrace_attach
                + 2 * c.ptrace_word_read
                + 2 * c.ptrace_continue
                + 0.004)                 # session bookkeeping + engine msg

    # -- the full prediction ------------------------------------------------------
    def predict(self, inp: ModelInputs) -> ComponentTimes:
        times = ComponentTimes(
            t_job=self.t_job(inp),
            t_daemon=self.t_daemon(inp),
            t_setup=self.t_setup(inp),
            t_collective=self.t_collective(inp),
            t_trace=self.t_trace(inp),
            t_rpdtab=self.t_rpdtab(inp),
            t_handshake=self.t_handshake(inp),
            t_other=self.t_other(inp),
        )
        times.total = (times.rm_time() + times.t_trace + times.t_rpdtab
                       + times.t_handshake + times.t_other)
        return times
