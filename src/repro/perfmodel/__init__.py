"""repro.perfmodel -- the analytic launchAndSpawn model (Section 4).

The paper models launchAndSpawn's critical path as eleven events e0..e11
grouped into an RM-dominant Region A (T(job), T(daemon), T(setup),
T(collective), plus LaunchMON's tracing cost), Region B (RPDTAB fetching,
linear in task count) and Region C (handshake processing, linear in daemon
count), plus scale-independent costs. :class:`LaunchModel` computes each
term in closed form from the same cost constants the simulation uses, so
experiments can overlay *modeled* and *measured* breakdowns exactly as
Figure 3 does. :mod:`repro.perfmodel.fit` fits empirical T(op) functions
from measurement sweeps (the paper's methodology: measure at small scale,
fit, predict upward).
"""

from repro.perfmodel.model import LaunchModel, ModelInputs, StreamModel
from repro.perfmodel.fit import FittedLine, fit_component_scaling

__all__ = ["FittedLine", "LaunchModel", "ModelInputs", "StreamModel",
           "fit_component_scaling"]
