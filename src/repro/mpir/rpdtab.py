"""The Remote Process Descriptor Table (RPDTAB).

The RPDTAB is an array of MPIR_PROCDESC entries -- ``{host_name,
executable_name, pid}`` -- one per MPI task (Section 2). LaunchMON fetches
it from the RM launcher's address space, ships it to the front end inside
an LMONP message, and distributes it to back-end and middleware daemons.

Serialization here is a real binary codec (length-prefixed UTF-8 strings +
fixed-width integers) so payload sizes, and therefore simulated transfer
times, scale linearly with task count exactly as the paper models Region B.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["ProcDesc", "RPDTAB"]

_U32 = struct.Struct(">I")
_ENTRY_FIXED = struct.Struct(">Iii")  # pid, host_idx, exe_idx


@dataclass(frozen=True, order=True)
class ProcDesc:
    """One MPIR_PROCDESC entry: where one MPI task lives."""

    rank: int
    host_name: str
    executable_name: str
    pid: int


class RPDTAB:
    """An ordered table of :class:`ProcDesc`, indexable by rank and host.

    The binary wire format deduplicates host and executable names through a
    string table (real MPIR consumers do the same to keep the table compact
    at scale).
    """

    def __init__(self, entries: Iterable[ProcDesc] = ()):
        self._entries: list[ProcDesc] = sorted(entries, key=lambda e: e.rank)
        self._by_host: dict[str, list[ProcDesc]] = {}
        for e in self._entries:
            self._by_host.setdefault(e.host_name, []).append(e)

    # -- container protocol -----------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ProcDesc]:
        return iter(self._entries)

    def __getitem__(self, rank: int) -> ProcDesc:
        entry = self._entries[rank]
        if entry.rank != rank:  # non-contiguous ranks: fall back to search
            for e in self._entries:
                if e.rank == rank:
                    return e
            raise KeyError(f"no rank {rank} in RPDTAB")
        return entry

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RPDTAB) and self._entries == other._entries

    # -- queries --------------------------------------------------------------
    @property
    def hosts(self) -> list[str]:
        """Distinct hostnames in first-rank order (daemon placement order)."""
        seen: dict[str, None] = {}
        for e in self._entries:
            seen.setdefault(e.host_name)
        return list(seen)

    def entries_on(self, host_name: str) -> list[ProcDesc]:
        """All task descriptors on one host (a back-end daemon's local set)."""
        return list(self._by_host.get(host_name, ()))

    def task_counts(self) -> dict[str, int]:
        return {h: len(v) for h, v in self._by_host.items()}

    # -- binary codec ------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize: string table + per-entry fixed records."""
        strings: list[str] = []
        index: dict[str, int] = {}

        def intern(s: str) -> int:
            if s not in index:
                index[s] = len(strings)
                strings.append(s)
            return index[s]

        body = bytearray()
        body += _U32.pack(len(self._entries))
        records = bytearray()
        for e in self._entries:
            hi = intern(e.host_name)
            xi = intern(e.executable_name)
            records += _U32.pack(e.rank)
            records += _ENTRY_FIXED.pack(e.pid, hi, xi)
        body += _U32.pack(len(strings))
        for s in strings:
            raw = s.encode()
            body += _U32.pack(len(raw)) + raw
        body += records
        return bytes(body)

    @classmethod
    def from_bytes(cls, data: bytes) -> "RPDTAB":
        off = 0
        (n_entries,) = _U32.unpack_from(data, off)
        off += 4
        (n_strings,) = _U32.unpack_from(data, off)
        off += 4
        strings: list[str] = []
        for _ in range(n_strings):
            (slen,) = _U32.unpack_from(data, off)
            off += 4
            strings.append(data[off:off + slen].decode())
            off += slen
        entries = []
        for _ in range(n_entries):
            (rank,) = _U32.unpack_from(data, off)
            off += 4
            pid, hi, xi = _ENTRY_FIXED.unpack_from(data, off)
            off += _ENTRY_FIXED.size
            entries.append(ProcDesc(rank=rank, host_name=strings[hi],
                                    executable_name=strings[xi], pid=pid))
        return cls(entries)

    def wire_size(self) -> int:
        """Size of the serialized table (used for transfer timing)."""
        return len(self.to_bytes())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RPDTAB {len(self)} tasks on {len(self.hosts)} hosts>"
