"""repro.mpir -- the MPIR / Automatic Process Acquisition Interface (APAI).

Resource managers expose parallel-job information to debuggers through the
de-facto MPIR interface: the launcher process publishes ``MPIR_proctable``
(the Remote Process Descriptor Table, RPDTAB in the paper), sets
``MPIR_debug_state`` and calls ``MPIR_Breakpoint`` when the job is stable.
A tool attaches to the launcher like a debugger, waits for the breakpoint,
and reads the table out of the launcher's address space word by word.

This package provides:

* :class:`ProcDesc` / :class:`RPDTAB` -- the proctable with real binary
  serialization (the same bytes travel inside LMONP messages);
* :class:`TracedProcess` -- ptrace-style attach/continue/read-memory over
  simulated processes, with per-operation virtual-time costs;
* MPIR symbol-name constants.
"""

from repro.mpir.rpdtab import ProcDesc, RPDTAB
from repro.mpir.trace import TraceError, TracedProcess
from repro.mpir.symbols import (
    MPIR_BEING_DEBUGGED,
    MPIR_BREAKPOINT,
    MPIR_DEBUG_STATE,
    MPIR_PROCTABLE,
    MPIR_PROCTABLE_SIZE,
    MPIR_DEBUG_SPAWNED,
    MPIR_NULL,
)

__all__ = [
    "MPIR_BEING_DEBUGGED",
    "MPIR_BREAKPOINT",
    "MPIR_DEBUG_STATE",
    "MPIR_DEBUG_SPAWNED",
    "MPIR_NULL",
    "MPIR_PROCTABLE",
    "MPIR_PROCTABLE_SIZE",
    "ProcDesc",
    "RPDTAB",
    "TraceError",
    "TracedProcess",
]
