"""Ptrace-style process tracing over simulated processes.

The LaunchMON Engine must act as a debugger on the RM launcher process:
attach, set ``MPIR_being_debugged``, run it to ``MPIR_Breakpoint``, then
read the proctable out of its address space. :class:`TracedProcess` provides
exactly those verbs with per-operation costs from the cluster cost model.

Reading the RPDTAB is deliberately word-granular: each proctable entry
requires several remote reads (pointers, then each string), which is why
Region B of the paper's model is linear in task count.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.cluster.process import DebugEvent, SimProcess
from repro.mpir.rpdtab import RPDTAB, ProcDesc
from repro.mpir import symbols as S

__all__ = ["TraceError", "TracedProcess"]


class TraceError(RuntimeError):
    """Tracing misuse or target-state violations."""


class TracedProcess:
    """A debugger's handle on one simulated process.

    All operations are generators advancing virtual time; costs come from
    the target node's :class:`~repro.cluster.costs.CostModel`. Only one
    tracer may hold a process at a time (matching ptrace semantics).
    """

    def __init__(self, target: SimProcess, tracer_name: str = "tracer"):
        self.target = target
        self.tracer_name = tracer_name
        self.attached = False
        #: count of word-granular remote reads performed (model validation)
        self.words_read = 0
        #: count of debug events consumed
        self.events_seen = 0

    # -- lifecycle ----------------------------------------------------------
    def attach(self) -> Generator[Any, Any, None]:
        """Attach to the target (ptrace ATTACH + wait for stop)."""
        if self.target.traced_by is not None:
            raise TraceError(
                f"{self.target!r} already traced by {self.target.traced_by!r}")
        if not self.target.alive:
            raise TraceError(f"cannot attach to dead process {self.target!r}")
        costs = self.target.node.costs
        yield self.target.sim.timeout(costs.ptrace_attach)
        self.target.traced_by = self
        self.attached = True
        self.target.stop()

    def detach(self) -> Generator[Any, Any, None]:
        """Detach and let the target run freely again."""
        self._check()
        costs = self.target.node.costs
        yield self.target.sim.timeout(costs.ptrace_continue)
        self.target.traced_by = None
        self.attached = False
        self.target.resume()

    # -- execution control -------------------------------------------------------
    def cont(self) -> Generator[Any, Any, None]:
        """Resume the stopped target."""
        self._check()
        costs = self.target.node.costs
        yield self.target.sim.timeout(costs.ptrace_continue)
        self.target.resume()

    def wait_event(self) -> Generator[Any, Any, DebugEvent]:
        """Block until the target delivers its next native debug event."""
        self._check()
        event = yield self.target.debug_events.get()
        costs = self.target.node.costs
        yield self.target.sim.timeout(costs.ptrace_trap)
        self.events_seen += 1
        self.target.stop()
        return event

    # -- memory access ---------------------------------------------------------------
    def read_symbol(self, name: str) -> Generator[Any, Any, Any]:
        """Read one scalar symbol from the target's address space."""
        self._check()
        costs = self.target.node.costs
        yield self.target.sim.timeout(costs.ptrace_word_read)
        self.words_read += 1
        if name not in self.target.memory:
            raise TraceError(f"symbol {name!r} not found in "
                             f"{self.target.executable}")
        return self.target.memory[name]

    def write_symbol(self, name: str, value: Any) -> Generator[Any, Any, None]:
        """Write one scalar symbol into the target's address space."""
        self._check()
        costs = self.target.node.costs
        yield self.target.sim.timeout(costs.ptrace_word_read)
        self.words_read += 1
        self.target.memory[name] = value

    def read_proctable(self) -> Generator[Any, Any, RPDTAB]:
        """Fetch the full RPDTAB, word-granular (Region B of the model).

        Each entry costs: one pointer-struct read plus one read per string
        (host and executable names) -- three word-read units per task.
        """
        self._check()
        costs = self.target.node.costs
        sim = self.target.sim
        size = yield from self.read_symbol(S.MPIR_PROCTABLE_SIZE)
        raw = self.target.memory.get(S.MPIR_PROCTABLE)
        if raw is None:
            raise TraceError("MPIR_proctable not published by launcher")
        if len(raw) != size:
            raise TraceError(
                f"MPIR_proctable_size={size} but table has {len(raw)} entries")
        entries: list[ProcDesc] = []
        # 3 remote reads per entry: the fixed struct, then the two strings.
        per_entry = 3 * costs.ptrace_word_read
        # batch the timeout per 64 entries to keep the event count sane at
        # 10^4 tasks while preserving the exact linear cost
        batch = 64
        for start in range(0, size, batch):
            chunk = raw[start:start + batch]
            yield sim.timeout(per_entry * len(chunk))
            self.words_read += 3 * len(chunk)
            entries.extend(chunk)
        return RPDTAB(entries)

    # -- helpers --------------------------------------------------------------------
    def _check(self) -> None:
        if not self.attached or self.target.traced_by is not self:
            raise TraceError("operation on non-attached tracer")
