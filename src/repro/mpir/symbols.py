"""MPIR interface symbol names and debug-state values.

These mirror the symbols the MPIR Process Acquisition Interface defines;
RM launcher processes publish them in their (simulated) address space.
"""

from __future__ import annotations

__all__ = [
    "MPIR_BEING_DEBUGGED",
    "MPIR_BREAKPOINT",
    "MPIR_DEBUG_STATE",
    "MPIR_DEBUG_SPAWNED",
    "MPIR_NULL",
    "MPIR_PROCTABLE",
    "MPIR_PROCTABLE_SIZE",
]

#: int flag the tool sets before the launcher runs so it stops at the breakpoint
MPIR_BEING_DEBUGGED = "MPIR_being_debugged"
#: function symbol the launcher calls when job state changes
MPIR_BREAKPOINT = "MPIR_Breakpoint"
#: the RPDTAB: array of MPIR_PROCDESC {host_name, executable_name, pid}
MPIR_PROCTABLE = "MPIR_proctable"
#: number of entries in MPIR_proctable
MPIR_PROCTABLE_SIZE = "MPIR_proctable_size"
#: why the launcher stopped (one of the MPIR_DEBUG_* values below)
MPIR_DEBUG_STATE = "MPIR_debug_state"

#: MPIR_debug_state values
MPIR_NULL = 0
MPIR_DEBUG_SPAWNED = 1
MPIR_DEBUG_ABORTING = 2
