"""Power-law complexity fitting: t(n) = c * n^k by log-log regression.

The scalability-fault literature's core move (ScalAna; *Understanding and
Detecting Scalability Faults*): measure a metric at a geometric ladder of
scales, fit the growth *exponent* rather than absolute values, and compare
exponents across versions. Exponents are what survive a machine change --
a 2x slower CI runner shifts every point by the same factor and leaves
``k`` untouched, while an O(N) -> O(N^2) regression shifts ``k`` by ~1.

This module is deliberately dumb: least squares on ``(log n, log t)``
pairs, non-positive values dropped (a phase that costs exactly zero at
some scale carries no growth information), at least two positive points
required. :func:`~repro.perfmodel.fit.fit_component_scaling` stays the
*affine* fitter for the paper's measure-small/predict-large figures; this
one answers the different question "what is the complexity class".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import math

__all__ = ["PowerFit", "fit_metric_exponents", "fit_power"]


@dataclass(frozen=True)
class PowerFit:
    """A least-squares power-law fit ``t = coeff * n**exponent``.

    ``r2`` is the coefficient of determination *in log space* (the space
    the fit ran in); ``n_points`` is how many positive samples survived
    filtering. A low ``r2`` means the metric does not follow a power law
    over the fitted ladder (e.g. a constant floor dominating the small
    scales) -- consumers should weigh the exponent accordingly.
    """

    coeff: float
    exponent: float
    r2: float
    n_points: int

    def predict(self, n: float) -> float:
        return self.coeff * n ** self.exponent

    def as_dict(self) -> dict:
        return {"coeff": self.coeff, "exponent": self.exponent,
                "r2": self.r2, "n_points": self.n_points}


def fit_power(ns: Sequence[float], ts: Sequence[float]) -> PowerFit:
    """Fit ``t(n) = c * n^k`` over the positive ``(n, t)`` pairs.

    Raises ``ValueError`` if fewer than two pairs have ``n > 0`` and
    ``t > 0`` -- one point determines no slope.
    """
    if len(ns) != len(ts):
        raise ValueError("need (n, t) sequences of equal length")
    pairs = [(n, t) for n, t in zip(ns, ts) if n > 0 and t > 0]
    if len(pairs) < 2:
        raise ValueError(
            f"need >= 2 positive (n, t) pairs to fit an exponent, "
            f"got {len(pairs)}")
    xs = [math.log(n) for n, _ in pairs]
    ys = [math.log(t) for _, t in pairs]
    k = len(pairs)
    mean_x = sum(xs) / k
    mean_y = sum(ys) / k
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("all scales identical; exponent is undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (intercept + slope * x)) ** 2
                 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerFit(coeff=math.exp(intercept), exponent=slope, r2=r2,
                    n_points=k)


def fit_metric_exponents(
        samples: Sequence[tuple[int, Mapping[str, float]]],
) -> dict[str, PowerFit]:
    """Fit one :class:`PowerFit` per metric across ladder samples.

    ``samples`` is ``[(scale, {metric: value, ...}), ...]`` as collected
    by :func:`repro.analysis.ladders.collect_samples`. Metrics without at
    least two positive points (phases that never ran, e.g. ``t_repair``
    on a fault-free ladder) are silently omitted -- absence from the
    returned dict is the "no growth information" signal.
    """
    names: list[str] = []
    for _, metrics in samples:
        for name in metrics:
            if name not in names:
                names.append(name)
    fits: dict[str, PowerFit] = {}
    for name in names:
        ns = [n for n, m in samples if name in m]
        ts = [m[name] for _, m in samples if name in m]
        try:
            fits[name] = fit_power(ns, ts)
        except ValueError:
            continue
    return fits
