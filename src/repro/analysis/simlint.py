"""simlint: AST lint rules for the project's simulation invariants.

Generic linters know nothing about a discrete-event simulator's contract,
so the invariants the whole stack depends on regress silently: one
``time.time()`` in a daemon body and runs stop being reproducible; one
``list.remove`` back in a kernel hot path and the O(N^2) class PR 5
purged is back at 64k daemons. This pass encodes those project rules over
the AST:

``wall-clock``
    No wall-clock reads (``time.time``/``perf_counter``/``monotonic``/...)
    anywhere in simulator-driven code. Virtual time comes from
    ``sim.now``; the only sanctioned wall-clock uses are *observational*
    (kernel stats, harness measurement around a whole run) and carry an
    inline suppression.

``unseeded-random``
    No global-RNG ``random.*`` calls and no seedless ``random.Random()``.
    Randomness must flow from the seeded per-subsystem streams
    (:mod:`repro.simx.rng`), or two runs with one seed diverge.

``linear-scan``
    No ``.remove(x)`` / ``.pop(0)`` / ``.insert(0, ...)`` in the
    registered hot-path modules (:data:`HOT_PATH_MODULES`) -- each is an
    O(N) scan or shift that a launch storm multiplies into O(N^2)
    (``Process.interrupt``'s old ``list.remove`` was exactly this).
    ``set.remove(...)`` via the explicit class is exempt (O(1)).

``sweep-pickle``
    Point functions handed to :func:`repro.experiments.sweep.map_grid`
    must be module-level: a lambda or nested def pickles with ``--jobs N``
    only until someone runs it, i.e. it fails exactly when the sweep
    engine is used as designed.

``blocking-io``
    No blocking I/O (``open``/``input``/``time.sleep``/``subprocess``/
    ``socket``/...) inside generator functions -- generators in this
    codebase are simx :class:`~repro.simx.Process` bodies, and a real
    block inside one stalls the virtual clock for every simulated node
    at once.

``agg-leaves``
    No direct ``.backends()`` / ``.live_backends()`` iteration in the
    registered hybrid hot-path modules (:data:`AGG_AWARE_MODULES`):
    those accessors see only *simulated* back ends, so code that means
    "every leaf" silently drops the aggregate spans of a hybrid run.
    Use the aggregate-aware ``leaves()`` / ``live_leaves()``; sites
    that genuinely want only the simulated positions (placement,
    per-daemon spawning) carry an inline allow.

Suppression: append ``# simlint: allow[rule]`` (or ``allow[r1,r2]``, or
bare ``# simlint: allow`` for all rules) to the flagged line, ideally
with a short justification after it. Suppressions are per-line and per
physical line of the call's ``lineno``.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = ["AGG_AWARE_MODULES", "Finding", "HOT_PATH_MODULES", "RULES",
           "lint_file", "lint_paths", "lint_source", "main"]

RULES = {
    "wall-clock": "wall-clock read in simulator-driven code (use sim.now; "
                  "observational uses need an inline allow)",
    "unseeded-random": "global/unseeded random (use the seeded "
                       "repro.simx.rng streams)",
    "linear-scan": "O(N) list scan/shift in a registered hot-path module",
    "sweep-pickle": "map_grid point function is not module-level picklable",
    "blocking-io": "blocking I/O inside a simx process (generator) body",
    "agg-leaves": "simulated-only leaf iteration (backends()/"
                  "live_backends()) in a hybrid hot-path module; use the "
                  "aggregate-aware leaves()/live_leaves()",
}

#: modules the kernel/launch hot path runs through: the places where an
#: O(N) scan per event/packet/allocation compounds to O(N^2) at scale
#: (the PR-5 fix sites). Paths are suffix-matched posix-style.
HOT_PATH_MODULES = (
    "repro/simx/core.py",
    "repro/simx/channels.py",
    "repro/tbon/overlay.py",
    "repro/tbon/flow.py",
    "repro/cluster/node.py",
    "repro/rm/base.py",
    # the control plane checkpoints on *every* session transition, and
    # restore sweeps the whole RM allocation ledger: per-session scans
    # here compound across the soak's hundreds of restart points
    "repro/ctl/daemon.py",
    "repro/ctl/checkpoint.py",
    "repro/ctl/restore.py",
    # the fleet routing tier sits in front of every session launch: a
    # per-request scan over all members (or per-round scan over all
    # records) compounds across the arrival stream at fleet scale
    "repro/fleet/health.py",
    "repro/fleet/placement.py",
    "repro/fleet/gossip.py",
    "repro/fleet/frontdoor.py",
    # the netfault injector is consulted per gossip pull edge and the
    # chaos harness runs hundreds of seeded storms per soak: per-edge
    # or per-storm scans here compound across every chaos iteration
    "repro/cluster/faults.py",
    "repro/fleet/chaos.py",
)

#: modules the hybrid tier runs through: anywhere here that iterates the
#: *simulated* back ends when it means "every leaf" silently drops the
#: aggregate spans of a hybrid run (the ``agg-leaves`` rule's scope)
AGG_AWARE_MODULES = (
    "repro/tbon/overlay.py",
    "repro/tbon/startup.py",
    "repro/launch/report.py",
    "repro/tools/stat_tool/tool.py",
    "repro/experiments/fig6.py",
    "repro/experiments/streaming.py",
)

_WALL_CLOCK_CALLS = frozenset(
    f"time.{fn}" for fn in (
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
        "clock"))

_GLOBAL_RNG_CALLS = frozenset(
    f"random.{fn}" for fn in (
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "expovariate",
        "betavariate", "triangular", "getrandbits", "seed", "vonmisesvariate",
        "paretovariate", "weibullvariate", "lognormvariate"))

_BLOCKING_CALLS = frozenset({
    "time.sleep", "os.system", "os.popen", "os.wait", "os.waitpid",
    "socket.socket", "socket.create_connection", "open", "input",
    "select.select",
})
_BLOCKING_PREFIXES = ("subprocess.", "requests.", "urllib.request.",
                      "http.client.")

_SUPPRESS = re.compile(
    r"#\s*simlint:\s*allow(?:\[(?P<rules>[a-z\-, ]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] " \
               f"{self.message}"

    def as_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}


def _suppressed(source_lines: Sequence[str], lineno: int,
                rule: str) -> bool:
    if not 1 <= lineno <= len(source_lines):
        return False
    match = _SUPPRESS.search(source_lines[lineno - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    return rule in {r.strip() for r in rules.split(",")}


def _scan_yields(fn: ast.AST) -> bool:
    """True if the function's own body yields (nested scopes excluded)."""
    class _Scan(ast.NodeVisitor):
        found = False

        def visit_FunctionDef(self, node):
            if node is not fn:
                return  # new scope: stop
            self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef

        def visit_Lambda(self, node):
            return

        def visit_Yield(self, node):
            self.found = True

        def visit_YieldFrom(self, node):
            self.found = True

    scan = _Scan()
    scan.visit(fn)
    return scan.found


class _ModuleLint(ast.NodeVisitor):
    """One module's lint pass (see the rule catalog in the module doc)."""

    def __init__(self, path: str, source_lines: Sequence[str],
                 hot: bool, agg_aware: bool = False):
        self.path = path
        self.source_lines = source_lines
        self.hot = hot
        self.agg_aware = agg_aware
        self.findings: list[Finding] = []
        #: name -> fully dotted origin ("t" -> "time",
        #: "sleep" -> "time.sleep")
        self.aliases: dict[str, str] = {}
        self.module_defs: set[str] = set()
        self.nested_defs: set[str] = set()
        self._func_depth = 0
        self._generator_depth = 0

    # -- bookkeeping -----------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = \
                alias.name if alias.asname else alias.name.split(".")[0]
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def _visit_funcdef(self, node) -> None:
        if self._func_depth == 0:
            self.module_defs.add(node.name)
        else:
            self.nested_defs.add(node.name)
        is_gen = _scan_yields(node)
        self._func_depth += 1
        if is_gen:
            self._generator_depth += 1
        self.generic_visit(node)
        if is_gen:
            self._generator_depth -= 1
        self._func_depth -= 1

    def visit_FunctionDef(self, node):  # noqa: N802
        self._visit_funcdef(node)

    def visit_AsyncFunctionDef(self, node):  # noqa: N802
        self._visit_funcdef(node)

    # -- resolution ------------------------------------------------------
    def _dotted(self, node: ast.AST) -> Optional[str]:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            root = self.aliases.get(node.id, node.id)
            return ".".join([root, *reversed(parts)])
        return None

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if _suppressed(self.source_lines, node.lineno, rule):
            return
        self.findings.append(Finding(
            path=self.path, line=node.lineno, col=node.col_offset,
            rule=rule, message=message))

    # -- the rules -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)

        if dotted in _WALL_CLOCK_CALLS:
            self._report(node, "wall-clock",
                         f"{dotted}() reads the wall clock; simulated "
                         f"code must use sim.now")

        if dotted in _GLOBAL_RNG_CALLS:
            self._report(node, "unseeded-random",
                         f"{dotted}() draws from the global RNG; use a "
                         f"seeded repro.simx.rng stream")
        elif dotted == "random.Random" and not node.args:
            self._report(node, "unseeded-random",
                         "random.Random() without a seed is "
                         "OS-entropy-seeded; pass an explicit seed")

        if self._generator_depth > 0 and dotted is not None:
            if dotted in _BLOCKING_CALLS or \
                    dotted.startswith(_BLOCKING_PREFIXES):
                self._report(node, "blocking-io",
                             f"{dotted}() blocks the worker thread inside "
                             f"a simx process body; model the delay with "
                             f"sim.timeout() instead")

        if self.hot and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            attr = node.func.attr
            recv_is_set_class = (isinstance(receiver, ast.Name)
                                 and receiver.id == "set")
            if attr == "remove" and not recv_is_set_class:
                self._report(node, "linear-scan",
                             ".remove() scans its sequence; hot-path "
                             "modules need an O(1) structure (tombstone, "
                             "set, index)")
            elif attr == "pop" and node.args and \
                    isinstance(node.args[0], ast.Constant) and \
                    node.args[0].value == 0:
                self._report(node, "linear-scan",
                             ".pop(0) shifts the whole list; use "
                             "collections.deque")
            elif attr == "insert" and node.args and \
                    isinstance(node.args[0], ast.Constant) and \
                    node.args[0].value == 0:
                self._report(node, "linear-scan",
                             ".insert(0, ...) shifts the whole list; use "
                             "collections.deque")

        if self.agg_aware and isinstance(node.func, ast.Attribute) and \
                node.func.attr in ("backends", "live_backends"):
            self._report(node, "agg-leaves",
                         f".{node.func.attr}() sees only simulated back "
                         f"ends and drops a hybrid run's aggregate spans; "
                         f"use the aggregate-aware leaves()/live_leaves() "
                         f"(or allow, if simulated-only is the point)")

        if dotted is not None and \
                (dotted == "map_grid" or dotted.endswith(".map_grid")):
            self._check_sweep_point(node)

        self.generic_visit(node)

    def _check_sweep_point(self, node: ast.Call) -> None:
        if not node.args:
            return
        point = node.args[0]
        if isinstance(point, ast.Lambda):
            self._report(node, "sweep-pickle",
                         "map_grid point function is a lambda; lambdas "
                         "don't pickle, so --jobs N breaks")
        elif isinstance(point, ast.Name):
            name = point.id
            if name in self.nested_defs and name not in self.module_defs:
                self._report(node, "sweep-pickle",
                             f"map_grid point function {name!r} is a "
                             f"nested def; workers can't import it by "
                             f"qualified name, so --jobs N breaks")


def _is_hot(path: Path, hot_paths: Iterable[str]) -> bool:
    posix = path.resolve().as_posix()
    return any(posix.endswith(suffix) for suffix in hot_paths)


def lint_source(source: str, path: str = "<string>",
                hot: Optional[bool] = None,
                hot_paths: Iterable[str] = HOT_PATH_MODULES,
                agg_aware: Optional[bool] = None,
                agg_paths: Iterable[str] = AGG_AWARE_MODULES,
                ) -> list[Finding]:
    """Lint one module's source text; returns its findings in file order.

    ``hot=None`` decides hot-path membership from ``path`` against
    ``hot_paths``; pass ``hot=True``/``False`` to force (fixture tests).
    ``agg_aware`` gates the ``agg-leaves`` rule the same way against
    ``agg_paths``.
    """
    if hot is None:
        hot = _is_hot(Path(path), hot_paths)
    if agg_aware is None:
        agg_aware = _is_hot(Path(path), agg_paths)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=exc.offset or 0, rule="syntax",
                        message=f"cannot parse: {exc.msg}")]
    linter = _ModuleLint(path, source.splitlines(), hot,
                         agg_aware=agg_aware)
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.line, f.col, f.rule))


def lint_file(path: Path, hot: Optional[bool] = None,
              hot_paths: Iterable[str] = HOT_PATH_MODULES,
              agg_aware: Optional[bool] = None,
              agg_paths: Iterable[str] = AGG_AWARE_MODULES,
              ) -> list[Finding]:
    return lint_source(path.read_text(encoding="utf-8"), str(path),
                       hot=hot, hot_paths=hot_paths,
                       agg_aware=agg_aware, agg_paths=agg_paths)


def lint_paths(paths: Iterable[Path],
               hot_paths: Iterable[str] = HOT_PATH_MODULES,
               agg_paths: Iterable[str] = AGG_AWARE_MODULES,
               ) -> list[Finding]:
    """Lint every ``*.py`` under the given files/directories."""
    findings: list[Finding] = []
    for root in paths:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings.extend(lint_file(file, hot_paths=hot_paths,
                                      agg_paths=agg_paths))
    return findings


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

_REPO_ROOT = Path(__file__).resolve().parents[3]


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="Lint simulator-driven code for determinism and "
                    "scalability hazards (rule catalog: docs/analysis.md).")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files/directories to lint (default: src/)")
    parser.add_argument("--hot", action="append", default=[],
                        metavar="SUFFIX",
                        help="treat modules matching this path suffix as "
                             "hot-path (adds to the built-in registry)")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write findings as JSON")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:<16} {desc}")
        return 0

    paths = args.paths or [_REPO_ROOT / "src"]
    hot_paths = tuple(HOT_PATH_MODULES) + tuple(args.hot)
    findings = lint_paths(paths, hot_paths=hot_paths)
    for finding in findings:
        print(finding, file=sys.stderr)
    if args.json:
        args.json.write_text(json.dumps(
            {"ok": not findings,
             "findings": [f.as_dict() for f in findings]},
            indent=2) + "\n", encoding="utf-8")
    n_files = sum(len(sorted(p.rglob('*.py'))) if Path(p).is_dir() else 1
                  for p in paths)
    print(f"simlint: {n_files} file(s) checked, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0
