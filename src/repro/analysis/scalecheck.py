"""The scalability-fault detector: fitted exponents vs committed baselines.

Method (ScalAna / *Understanding and Detecting Scalability Faults*,
PAPERS.md): scalability bugs are invisible at test scale -- a quadratic
term under a big constant looks flat until the machine is large enough to
expose it, and then it is a production incident. The detector makes CI see
them anyway, by extrapolation:

1. run an experiment's ladder (:mod:`repro.analysis.ladders`) at a
   geometric sequence of scales;
2. fit every attributed metric's growth exponent
   (:func:`repro.analysis.fitting.fit_power` -- log-log regression over
   ``LaunchReport`` phases, ``WaveTiming`` phase totals, kernel event
   counts and point wall time);
3. compare against the committed known-good baseline
   (``analysis/baselines/<experiment>.json``): a metric whose exponent
   exceeds its baseline by more than the per-kind tolerance is a
   **regression finding**, and the check fails.

Wall-clock metrics additionally get a *machine-normalized tail ratio*
check: ``r(n) = fresh(n) / baseline(n)`` cancels a uniformly faster or
slower host, so ``r(top) / r(bottom)`` isolates scale-dependent slowdown;
a ratio above :data:`TAIL_RATIO_LIMIT` means the top of the ladder got
disproportionately slower than the bottom -- the signature of a new
super-linear term even when the fitted exponent shift stays inside
tolerance.

Tolerances are per metric *kind*: virtual and count metrics are
deterministic functions of the seed, so their tolerance is tight; wall
metrics see host noise, so theirs is loose -- but an O(N) -> O(N^2) fault
shifts the exponent by ~1, far beyond either.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.fitting import PowerFit, fit_metric_exponents
from repro.analysis.ladders import (LADDERS, Ladder, collect_samples,
                                    dropped_metric_points)

__all__ = ["CheckResult", "DEFAULT_TOLERANCES", "MIN_SIGNAL", "Regression",
           "TAIL_RATIO_LIMIT", "compare_to_baseline", "load_baseline",
           "main", "metric_kind", "run_check", "write_baseline"]

#: exponent slack per metric kind before a shift counts as a regression
DEFAULT_TOLERANCES = {"virtual": 0.1, "count": 0.1, "wall": 0.35}

#: wall metrics only: fresh/baseline ratio at the ladder top may exceed
#: the same ratio at the bottom by at most this factor
TAIL_RATIO_LIMIT = 2.0

#: a metric is only judged when its top-of-ladder value clears this floor
#: (constant-dominated noise fits garbage exponents)
MIN_SIGNAL = {"virtual": 1e-9, "count": 1.0, "wall": 0.05}

_REPO_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_BASELINE_DIR = _REPO_ROOT / "analysis" / "baselines"


def metric_kind(name: str) -> str:
    """Classify a ladder metric: ``wall`` / ``count`` / ``virtual``."""
    if name == "wall_s":
        return "wall"
    if name == "sim_events":
        return "count"
    return "virtual"


@dataclass(frozen=True)
class Regression:
    """One super-linear regression finding."""

    experiment: str
    metric: str
    kind: str
    check: str  # "exponent" or "tail-ratio"
    fitted: float
    baseline: float
    limit: float
    detail: str

    def __str__(self) -> str:
        return (f"{self.experiment}/{self.metric} [{self.kind}] "
                f"{self.check}: {self.fitted:.3f} vs baseline "
                f"{self.baseline:.3f} (limit {self.limit:.3f}) -- "
                f"{self.detail}")

    def as_dict(self) -> dict:
        return {"experiment": self.experiment, "metric": self.metric,
                "kind": self.kind, "check": self.check,
                "fitted": self.fitted, "baseline": self.baseline,
                "limit": self.limit, "detail": self.detail}


@dataclass
class CheckResult:
    """Outcome of one experiment's scalecheck run."""

    experiment: str
    scales: tuple
    samples: list
    fits: dict
    baseline: dict
    regressions: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "scales": list(self.scales),
            "ok": self.ok,
            "samples": [{"scale": n, "metrics": m}
                        for n, m in self.samples],
            "fits": {name: fit.as_dict()
                     for name, fit in self.fits.items()},
            "baseline_exponents": {
                name: spec["exponent"]
                for name, spec in self.baseline.get("metrics", {}).items()},
            "regressions": [r.as_dict() for r in self.regressions],
            "notes": list(self.notes),
        }


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------

def baseline_path(experiment: str,
                  baseline_dir: Optional[Path] = None) -> Path:
    return Path(baseline_dir or DEFAULT_BASELINE_DIR) / f"{experiment}.json"


def load_baseline(experiment: str,
                  baseline_dir: Optional[Path] = None) -> dict:
    """Load a committed baseline; FileNotFoundError names the fix."""
    path = baseline_path(experiment, baseline_dir)
    if not path.exists():
        raise FileNotFoundError(
            f"no committed baseline for {experiment!r} at {path}; "
            f"generate one with: scripts/scalecheck.py {experiment} "
            f"--write-baselines")
    return json.loads(path.read_text(encoding="utf-8"))


def _baseline_payload(ladder: Ladder, scales: Sequence[int],
                      samples: list, fits: dict,
                      tolerances: dict) -> dict:
    return {
        "experiment": ladder.experiment,
        "description": ladder.description,
        "scales": list(scales),
        "tolerances": dict(tolerances),
        "tail_ratio_limit": TAIL_RATIO_LIMIT,
        "metrics": {
            name: {
                "kind": metric_kind(name),
                **fit.as_dict(),
                "values": {str(n): m[name] for n, m in samples
                           if name in m},
            }
            for name, fit in fits.items()
        },
    }


def write_baseline(experiment: str,
                   scales: Optional[Sequence[int]] = None,
                   jobs: int = 1, repeats: int = 1,
                   baseline_dir: Optional[Path] = None,
                   tolerances: Optional[dict] = None) -> Path:
    """Collect a fresh ladder and commit it as the known-good baseline."""
    ladder = LADDERS[experiment]
    scales = tuple(scales if scales is not None else ladder.quick_scales)
    samples = collect_samples(ladder, scales, jobs=jobs, repeats=repeats)
    fits = fit_metric_exponents(samples)
    payload = _baseline_payload(ladder, scales, samples, fits,
                                tolerances or DEFAULT_TOLERANCES)
    path = baseline_path(experiment, baseline_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# the check
# ---------------------------------------------------------------------------

def compare_to_baseline(experiment: str, samples: list,
                        fits: dict, baseline: dict,
                        tolerances: Optional[dict] = None,
                        ) -> tuple[list, list]:
    """Judge fresh fits against a baseline; returns (regressions, notes).

    Pure function of its inputs (no I/O, no simulation) so the decision
    logic is unit-testable with synthetic fits.
    """
    tol = dict(baseline.get("tolerances", DEFAULT_TOLERANCES))
    if tolerances:
        tol.update(tolerances)
    tail_limit = baseline.get("tail_ratio_limit", TAIL_RATIO_LIMIT)
    base_metrics = baseline.get("metrics", {})
    values_at = {name: {n: m[name] for n, m in samples if name in m}
                 for name in fits}

    regressions: list[Regression] = []
    notes: list[str] = []

    for name, spec in base_metrics.items():
        if name not in fits:
            notes.append(
                f"baseline metric {name!r} has no fit in this run "
                f"(phase inactive or ladder too short) -- not judged")
            continue
        kind = spec.get("kind", metric_kind(name))
        fit: PowerFit = fits[name]
        fresh = values_at[name]
        top_value = max(fresh.values(), default=0.0)
        if top_value < MIN_SIGNAL.get(kind, 0.0):
            notes.append(
                f"{name!r} below the {kind} signal floor "
                f"({top_value:.4g} < {MIN_SIGNAL.get(kind)}) -- not judged")
            continue

        limit = spec["exponent"] + tol.get(kind, 0.0)
        if fit.exponent > limit:
            regressions.append(Regression(
                experiment=experiment, metric=name, kind=kind,
                check="exponent", fitted=fit.exponent,
                baseline=spec["exponent"], limit=limit,
                detail=f"growth exponent rose by "
                       f"{fit.exponent - spec['exponent']:+.3f} "
                       f"(tolerance {tol.get(kind)})"))

        if kind == "wall":
            base_values = {int(n): v for n, v in
                           spec.get("values", {}).items()}
            # anchor the ratio only on scales whose *baseline* wall time
            # clears the signal floor: a 0.03s bottom-of-ladder point is
            # scheduler noise, and dividing by it manufactures failures
            floor = MIN_SIGNAL.get("wall", 0.0)
            common = sorted(n for n in set(fresh) & set(base_values)
                            if base_values[n] >= floor)
            if len(common) < 2:
                notes.append(
                    f"{name!r}: fewer than two baseline scales above the "
                    f"signal floor in common with this ladder -- "
                    f"tail-ratio check skipped")
            else:
                lo, hi = common[0], common[-1]
                if base_values[lo] > 0 and base_values[hi] > 0 \
                        and fresh[lo] > 0:
                    r_lo = fresh[lo] / base_values[lo]
                    r_hi = fresh[hi] / base_values[hi]
                    ratio = r_hi / r_lo
                    if ratio > tail_limit:
                        regressions.append(Regression(
                            experiment=experiment, metric=name,
                            kind=kind, check="tail-ratio",
                            fitted=ratio, baseline=1.0,
                            limit=tail_limit,
                            detail=f"top-of-ladder ({hi}) slowed "
                                   f"{r_hi:.2f}x vs baseline while the "
                                   f"bottom ({lo}) slowed {r_lo:.2f}x -- "
                                   f"scale-dependent slowdown"))

    for name in fits:
        if name not in base_metrics:
            notes.append(
                f"new metric {name!r} (exponent "
                f"{fits[name].exponent:.3f}) absent from the baseline -- "
                f"re-write baselines to start judging it")
    return regressions, notes


def run_check(experiment: str,
              scales: Optional[Sequence[int]] = None,
              jobs: int = 1, repeats: int = 1,
              baseline_dir: Optional[Path] = None,
              tolerances: Optional[dict] = None) -> CheckResult:
    """Collect, fit and judge one experiment ladder against its baseline.

    ``scales=None`` replays the baseline's own ladder (the configuration
    the committed exponents were fitted on, and the one that keeps the
    tail-ratio check armed).
    """
    ladder = LADDERS[experiment]
    baseline = load_baseline(experiment, baseline_dir)
    if scales is None:
        scales = tuple(baseline.get("scales", ladder.quick_scales))
    scales = tuple(scales)
    samples = collect_samples(ladder, scales, jobs=jobs, repeats=repeats)
    fits = fit_metric_exponents(samples)
    regressions, notes = compare_to_baseline(
        experiment, samples, fits, baseline, tolerances)
    # surface what fit_power silently dropped: a zeroed metric must not
    # fake a flat exponent without a trace in the report
    for name, at in sorted(dropped_metric_points(samples).items()):
        scales_s = ", ".join(str(n) for n in at)
        notes.append(
            f"{name!r} non-positive at scale(s) {scales_s} -- dropped "
            f"from the power fit" + ("" if name in fits else
                                     "; no exponent fitted at all"))
    return CheckResult(experiment=experiment, scales=scales,
                       samples=samples, fits=fits, baseline=baseline,
                       regressions=regressions, notes=notes)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _format_result(result: CheckResult) -> str:
    lines = [f"== scalecheck {result.experiment} "
             f"(ladder {'/'.join(str(n) for n in result.scales)}): "
             f"{'ok' if result.ok else 'REGRESSION'}"]
    base = result.baseline.get("metrics", {})
    for name, fit in sorted(result.fits.items()):
        ref = base.get(name, {}).get("exponent")
        ref_s = f"{ref:7.3f}" if ref is not None else "    new"
        lines.append(
            f"   {name:<16} exponent {fit.exponent:7.3f}  baseline "
            f"{ref_s}  r2 {fit.r2:5.3f} [{metric_kind(name)}]")
    for note in result.notes:
        lines.append(f"   note: {note}")
    for reg in result.regressions:
        lines.append(f"   FAIL: {reg}")
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="scalecheck",
        description="Fit per-phase complexity exponents over a geometric "
                    "scale ladder and fail on super-linear regression "
                    "versus the committed baselines.")
    parser.add_argument("experiments", nargs="*",
                        help=f"ladders to run (default: all of "
                             f"{', '.join(sorted(LADDERS))})")
    parser.add_argument("--quick", action="store_true",
                        help="use the quick (CI) ladder tiers")
    parser.add_argument("--full", action="store_true",
                        help="use the full ladder tiers")
    parser.add_argument("--scales", type=str, default=None,
                        help="comma-separated explicit ladder, e.g. "
                             "256,1024,4096")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallelize ladder points over N workers")
    parser.add_argument("--repeats", type=int, default=1, metavar="R",
                        help="re-run each point R times, keep min wall")
    parser.add_argument("--baseline-dir", type=Path, default=None,
                        help=f"baseline directory (default "
                             f"{DEFAULT_BASELINE_DIR})")
    parser.add_argument("--write-baselines", action="store_true",
                        help="record fresh fits as the new known-good "
                             "baselines instead of checking")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="write the fitted-exponent report as JSON")
    parser.add_argument("--tolerance-wall", type=float, default=None)
    parser.add_argument("--tolerance-virtual", type=float, default=None)
    parser.add_argument("--tolerance-count", type=float, default=None)
    args = parser.parse_args(argv)

    if args.quick and args.full:
        parser.error("--quick conflicts with --full")
    names = args.experiments or sorted(LADDERS)
    unknown = [n for n in names if n not in LADDERS]
    if unknown:
        parser.error(f"unknown experiment(s) {', '.join(unknown)} "
                     f"(have: {', '.join(sorted(LADDERS))})")
    tolerances = {kind: value for kind, value in (
        ("wall", args.tolerance_wall),
        ("virtual", args.tolerance_virtual),
        ("count", args.tolerance_count)) if value is not None}

    def scales_for(ladder: Ladder):
        if args.scales:
            return tuple(int(s) for s in args.scales.split(","))
        if args.quick:
            return ladder.quick_scales
        if args.full:
            return ladder.full_scales
        return None  # run_check: follow the baseline's ladder

    if args.write_baselines:
        for name in names:
            scales = scales_for(LADDERS[name]) or LADDERS[name].quick_scales
            path = write_baseline(
                name, scales, jobs=args.jobs, repeats=args.repeats,
                baseline_dir=args.baseline_dir,
                tolerances={**DEFAULT_TOLERANCES, **tolerances})
            print(f"wrote baseline {path}")
        return 0

    results = []
    for name in names:
        try:
            result = run_check(
                name, scales_for(LADDERS[name]), jobs=args.jobs,
                repeats=args.repeats, baseline_dir=args.baseline_dir,
                tolerances=tolerances or None)
        except FileNotFoundError as exc:
            print(exc, file=sys.stderr)
            return 2
        results.append(result)
        print(_format_result(result))

    if args.json:
        payload = {"ok": all(r.ok for r in results),
                   "experiments": {r.experiment: r.as_dict()
                                   for r in results}}
        args.json.write_text(json.dumps(payload, indent=2) + "\n",
                             encoding="utf-8")
    failed = [r.experiment for r in results if not r.ok]
    if failed:
        print(f"scalecheck: super-linear regression in "
              f"{', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"scalecheck: {len(results)} ladder(s) ok")
    return 0
