"""Geometric scale ladders over the experiment runners.

A :class:`Ladder` names an experiment, a module-level point function (the
same picklable-contract as :func:`repro.experiments.sweep.map_grid` point
functions, so ladders parallelize with ``--jobs``) and the geometric
scale tiers scalecheck runs it at. Each point returns a flat ``{metric:
value}`` dict mixing three metric kinds:

* **virtual** -- per-phase simulated seconds (``LaunchReport`` phases for
  launch ladders, ``WaveTiming`` phase totals for stream ladders) plus
  the virtual total. Deterministic per seed: exponents reproduce to
  machine epsilon across runs and machines.
* **count** -- kernel event counts (:attr:`SimStats.events`): how much
  *work* the simulation itself did, also deterministic.
* **wall** -- real seconds for the whole point (``wall_s``). The only
  kind that sees the host machine, and the one that catches wall-clock
  O(N^2) regressions invisible in virtual time -- the exact class PR 5
  purged (per-daemon topology re-parses, cacheless ``children_of``).

The quick tiers are sized so an O(N^2)-class fault dominates the top of
the ladder (detectable by extrapolation) while the whole ladder stays a
few seconds of CI time.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional, Sequence

from repro.experiments.sweep import map_grid

__all__ = ["LADDERS", "Ladder", "collect_samples", "fig6_ladder_point",
           "str_ladder_point"]


def fig6_ladder_point(n: int) -> dict:
    """Launch-path point: one fig6 LaunchMON startup at ``n`` daemons."""
    from repro.experiments.fig6 import measure_stat_startup

    # harness measurement bracketing a whole simulator run, never read
    # inside one
    t0 = perf_counter()  # simlint: allow[wall-clock]
    box = measure_stat_startup(n, "launchmon", tasks_per_daemon=1)
    wall = perf_counter() - t0  # simlint: allow[wall-clock]
    report = box["startup"]
    metrics = dict(report.phases())
    metrics["virtual_total"] = report.total
    metrics["sim_events"] = float(box["sim_events"])
    metrics["wall_s"] = wall
    return metrics


def str_ladder_point(n: int) -> dict:
    """Data-plane point: a sustained stream over ``n`` leaves."""
    from repro.experiments.streaming import measure_stream

    t0 = perf_counter()  # simlint: allow[wall-clock]
    cell = measure_stream(n, filter_name="histogram", window=4,
                          credit_limit=4, n_waves=10)
    wall = perf_counter() - t0  # simlint: allow[wall-clock]
    metrics = dict(cell["phase_totals"])
    metrics["virtual_total"] = cell["total_latency"]
    metrics["sim_events"] = float(cell["sim_events"])
    metrics["wall_s"] = wall
    return metrics


@dataclass(frozen=True)
class Ladder:
    """One experiment's scale ladder for scalecheck."""

    experiment: str
    #: module-level point function ``(n) -> {metric: value}`` (picklable)
    point: Callable[[int], dict]
    #: CI tier -- small enough for minutes, big enough to extrapolate
    quick_scales: tuple
    #: local/deep tier
    full_scales: tuple
    description: str

    def scales_for(self, quick: bool) -> tuple:
        return self.quick_scales if quick else self.full_scales


LADDERS: dict[str, Ladder] = {
    "fig6": Ladder(
        experiment="fig6",
        point=fig6_ladder_point,
        quick_scales=(256, 1024, 4096),
        full_scales=(256, 1024, 4096, 16384),
        description="STAT startup via LaunchMON (launch-path phases: "
                    "spawn / image-stage / connect / handshake)",
    ),
    "str": Ladder(
        experiment="str",
        point=str_ladder_point,
        quick_scales=(64, 256, 1024),
        full_scales=(64, 256, 1024, 4096),
        description="sustained stream waves under credit flow control "
                    "(data-plane phases: fanin / filter / deliver)",
    ),
}


def collect_samples(ladder: Ladder,
                    scales: Optional[Sequence[int]] = None,
                    jobs: int = 1,
                    repeats: int = 1) -> list[tuple[int, dict]]:
    """Run the ladder; return ``[(scale, {metric: value}), ...]``.

    ``repeats > 1`` re-runs every point and keeps the *minimum* wall
    metric per scale (the standard noise filter for timing) -- virtual
    and count metrics are deterministic, so the first run's values stand
    for all repeats (asserted, as a cheap determinism probe).
    """
    scales = tuple(scales if scales is not None else ladder.quick_scales)
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    grid = [dict(n=n) for n in scales]
    rounds = [map_grid(ladder.point, grid, jobs=jobs)
              for _ in range(repeats)]
    samples: list[tuple[int, dict]] = []
    for i, n in enumerate(scales):
        merged = dict(rounds[0][i])
        for later in rounds[1:]:
            for name, value in later[i].items():
                if name == "wall_s":
                    merged[name] = min(merged[name], value)
                elif merged.get(name) != value:
                    raise AssertionError(
                        f"{ladder.experiment}@{n}: metric {name!r} is not "
                        f"deterministic across repeats "
                        f"({merged.get(name)!r} != {value!r})")
        samples.append((n, merged))
    return samples
