"""Geometric scale ladders over the experiment runners.

A :class:`Ladder` names an experiment, a module-level point function (the
same picklable-contract as :func:`repro.experiments.sweep.map_grid` point
functions, so ladders parallelize with ``--jobs``) and the geometric
scale tiers scalecheck runs it at. Each point returns a flat ``{metric:
value}`` dict mixing three metric kinds:

* **virtual** -- per-phase simulated seconds (``LaunchReport`` phases for
  launch ladders, ``WaveTiming`` phase totals for stream ladders) plus
  the virtual total. Deterministic per seed: exponents reproduce to
  machine epsilon across runs and machines.
* **count** -- kernel event counts (:attr:`SimStats.events`): how much
  *work* the simulation itself did, also deterministic.
* **wall** -- real seconds for the whole point (``wall_s``). The only
  kind that sees the host machine, and the one that catches wall-clock
  O(N^2) regressions invisible in virtual time -- the exact class PR 5
  purged (per-daemon topology re-parses, cacheless ``children_of``).

The quick tiers are sized so an O(N^2)-class fault dominates the top of
the ladder (detectable by extrapolation) while the whole ladder stays a
few seconds of CI time.
"""

from __future__ import annotations

import gc
import warnings
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional, Sequence

from repro.experiments.sweep import map_grid

__all__ = ["LADDERS", "Ladder", "collect_samples", "dropped_metric_points",
           "fig6_ladder_point", "fig6_hybrid_ladder_point",
           "fleet_ladder_point", "str_ladder_point",
           "str_hybrid_ladder_point"]


def _timed(measure: Callable[[], dict]) -> tuple[dict, float]:
    """Run one point under a quiesced collector; return (result, wall).

    The wall metric is the only thing here that sees the host process,
    and the host is often a long test session with a large live heap:
    a generational collection triggered mid-measurement scans that whole
    heap, a near-constant cost that inflates *small* ladder points
    disproportionately and flattens the fitted exponent below the
    detection limit. Pay the collection before the clock starts and
    freeze survivors out of the collector's reach for the duration.
    """
    gc.collect()
    gc.freeze()
    try:
        # harness measurement bracketing a whole simulator run, never
        # read inside one
        t0 = perf_counter()  # simlint: allow[wall-clock]
        result = measure()
        wall = perf_counter() - t0  # simlint: allow[wall-clock]
    finally:
        gc.unfreeze()
    return result, wall


def fig6_ladder_point(n: int) -> dict:
    """Launch-path point: one fig6 LaunchMON startup at ``n`` daemons."""
    from repro.experiments.fig6 import measure_stat_startup

    box, wall = _timed(lambda: measure_stat_startup(
        n, "launchmon", tasks_per_daemon=1))
    report = box["startup"]
    metrics = dict(report.phases())
    metrics["virtual_total"] = report.total
    metrics["sim_events"] = float(box["sim_events"])
    metrics["wall_s"] = wall
    return metrics


def fig6_hybrid_ladder_point(n: int) -> dict:
    """fig6 launch point on the hybrid analytic/discrete tier: only the
    exact head is simulated; aggregate spans contribute model terms."""
    from repro.experiments.fig6 import measure_stat_startup

    box, wall = _timed(lambda: measure_stat_startup(
        n, "launchmon", tasks_per_daemon=1, hybrid=True))
    report = box["startup"]
    metrics = dict(report.phases())
    metrics["virtual_total"] = report.total
    metrics["sim_events"] = float(box["sim_events"])
    metrics["wall_s"] = wall
    return metrics


def str_ladder_point(n: int) -> dict:
    """Data-plane point: a sustained stream over ``n`` leaves."""
    from repro.experiments.streaming import measure_stream

    cell, wall = _timed(lambda: measure_stream(
        n, filter_name="histogram", window=4, credit_limit=4, n_waves=10))
    metrics = dict(cell["phase_totals"])
    metrics["virtual_total"] = cell["total_latency"]
    metrics["sim_events"] = float(cell["sim_events"])
    metrics["wall_s"] = wall
    return metrics


def str_hybrid_ladder_point(n: int) -> dict:
    """Stream point on the hybrid tier: collapsed spans publish their
    closed-form merged payloads with model-derived delays."""
    from repro.experiments.streaming import measure_stream

    cell, wall = _timed(lambda: measure_stream(
        n, filter_name="histogram", window=4, credit_limit=4, n_waves=10,
        hybrid=True))
    metrics = dict(cell["phase_totals"])
    metrics["virtual_total"] = cell["total_latency"]
    metrics["sim_events"] = float(cell["sim_events"])
    metrics["wall_s"] = wall
    return metrics


def fleet_ladder_point(n: int) -> dict:
    """Routing-tier point: an ``n``-cluster fleet absorbing an open-loop
    stream of ``4 * n`` arrivals (offered load grows with the fleet, so
    per-cluster pressure is constant and any super-linear term belongs
    to the front door / gossip / placement tier itself). Fault-free: the
    failover detour is a constant the scaling fit should not see."""
    from repro.experiments.common import percentile
    from repro.experiments.fleet import run_fleet_once

    def measure():
        env, handles, info = run_fleet_once(
            n, arrival_rate=8.0, n_arrivals=4 * n, nodes_per_cluster=8,
            fault=False)
        assert info["audit"]["ok"], info["audit"]
        lat = env.fleet.door.summary()["launch_latencies"]
        return {
            "virtual_total": max(h.finished_at for h in handles),
            "p99_latency": percentile(lat, 99),
            "sim_events": float(env.sim.stats.events),
        }

    metrics, wall = _timed(measure)
    metrics["wall_s"] = wall
    return metrics


@dataclass(frozen=True)
class Ladder:
    """One experiment's scale ladder for scalecheck."""

    experiment: str
    #: module-level point function ``(n) -> {metric: value}`` (picklable)
    point: Callable[[int], dict]
    #: CI tier -- small enough for minutes, big enough to extrapolate
    quick_scales: tuple
    #: local/deep tier
    full_scales: tuple
    description: str

    def scales_for(self, quick: bool) -> tuple:
        return self.quick_scales if quick else self.full_scales


LADDERS: dict[str, Ladder] = {
    "fig6": Ladder(
        experiment="fig6",
        point=fig6_ladder_point,
        quick_scales=(256, 1024, 4096),
        full_scales=(256, 1024, 4096, 16384),
        description="STAT startup via LaunchMON (launch-path phases: "
                    "spawn / image-stage / connect / handshake)",
    ),
    "str": Ladder(
        experiment="str",
        point=str_ladder_point,
        quick_scales=(64, 256, 1024),
        full_scales=(64, 256, 1024, 4096),
        description="sustained stream waves under credit flow control "
                    "(data-plane phases: fanin / filter / deliver)",
    ),
    "fig6-hybrid": Ladder(
        experiment="fig6-hybrid",
        point=fig6_hybrid_ladder_point,
        quick_scales=(4096, 16384, 65536),
        full_scales=(4096, 16384, 65536, 262144),
        description="STAT startup via LaunchMON on the hybrid "
                    "analytic/discrete tier (exact head + aggregated "
                    "spans); extends the launch ladder past 64k",
    ),
    "fleet": Ladder(
        experiment="fleet",
        point=fleet_ladder_point,
        quick_scales=(4, 8, 16),
        full_scales=(4, 8, 16, 32),
        description="federated front door absorbing 4 arrivals/cluster "
                    "(routing tier: placement + gossip + failover "
                    "supervision; load scales with the fleet)",
    ),
    "str-hybrid": Ladder(
        experiment="str-hybrid",
        point=str_hybrid_ladder_point,
        quick_scales=(4096, 16384, 65536),
        full_scales=(4096, 16384, 65536, 262144),
        description="sustained stream waves on the hybrid tier "
                    "(closed-form span merges, model-derived delays); "
                    "extends the data-plane ladder past 64k",
    ),
}


def dropped_metric_points(samples: Sequence[tuple[int, dict]],
                          ) -> dict[str, list[int]]:
    """Map each metric to the scales whose value is non-positive.

    These are exactly the pairs :func:`repro.analysis.fitting.fit_power`
    silently drops before its log-log regression; surfacing them keeps a
    zeroed metric from faking a flat (or steep) exponent unremarked."""
    dropped: dict[str, list[int]] = {}
    for n, metrics in samples:
        for name, value in metrics.items():
            if not value > 0:
                dropped.setdefault(name, []).append(n)
    return dropped


def collect_samples(ladder: Ladder,
                    scales: Optional[Sequence[int]] = None,
                    jobs: int = 1,
                    repeats: int = 1) -> list[tuple[int, dict]]:
    """Run the ladder; return ``[(scale, {metric: value}), ...]``.

    ``repeats > 1`` re-runs every point and keeps the *minimum* wall
    metric per scale (the standard noise filter for timing) -- virtual
    and count metrics are deterministic, so the first run's values stand
    for all repeats (asserted, as a cheap determinism probe).

    Any non-positive metric value is reported via ``warnings.warn``:
    ``fit_power`` drops such pairs silently, and an unremarked drop lets
    a zeroed metric fake a flat exponent (scalecheck folds the same
    information into its report notes).
    """
    scales = tuple(scales if scales is not None else ladder.quick_scales)
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    grid = [dict(n=n) for n in scales]
    rounds = [map_grid(ladder.point, grid, jobs=jobs)
              for _ in range(repeats)]
    samples: list[tuple[int, dict]] = []
    for i, n in enumerate(scales):
        merged = dict(rounds[0][i])
        for later in rounds[1:]:
            for name, value in later[i].items():
                if name == "wall_s":
                    merged[name] = min(merged[name], value)
                elif merged.get(name) != value:
                    raise AssertionError(
                        f"{ladder.experiment}@{n}: metric {name!r} is not "
                        f"deterministic across repeats "
                        f"({merged.get(name)!r} != {value!r})")
        samples.append((n, merged))
    for name, at in sorted(dropped_metric_points(samples).items()):
        warnings.warn(
            f"{ladder.experiment}: metric {name!r} is non-positive at "
            f"scale(s) {', '.join(str(n) for n in at)} -- these points "
            f"drop out of the power fit", stacklevel=2)
    return samples
