"""Correctness tooling: scalability-fault detection and hazard linting.

This package is the repo's *meta* layer -- it never runs inside the
simulator; it runs the simulator (or reads its source) and judges the
result. Two subsystems:

``scalecheck`` (:mod:`repro.analysis.scalecheck`)
    The continuous scalability-fault detector the ROADMAP calls for, per
    ScalAna and *Understanding and Detecting Scalability Faults*
    (PAPERS.md): run an experiment at a geometric ladder of scales
    (:mod:`repro.analysis.ladders`), fit a per-phase complexity exponent
    to every attributed metric (log-log regression,
    :mod:`repro.analysis.fitting`), and compare the fitted exponents --
    plus a machine-normalized tail ratio for wall-clock metrics --
    against a committed known-good baseline (``analysis/baselines/``).
    A phase whose growth exponent regresses beyond tolerance fails the
    check, so the O(N^2) class of bug PR 5 purged is caught in CI at
    small scale by extrapolation instead of in production at 64k
    daemons.

``simlint`` (:mod:`repro.analysis.simlint`)
    A custom AST lint pass encoding the invariants the simulation stack
    depends on but no generic linter knows about: no wall-clock reads or
    unseeded ``random`` in simulator-driven code (virtual-time
    determinism), no linear list scans in registered hot-path modules,
    sweep point functions must stay module-level picklable, and no
    blocking I/O inside simx process bodies. Violations carry an
    inline-comment suppression syntax (``# simlint: allow[rule]``) for
    the rare justified exception.

Both ship as thin CLIs (``scripts/scalecheck.py``, ``scripts/simlint.py``)
and run in CI; see ``docs/analysis.md`` for the methodology and rule
catalog.
"""

from repro.analysis.fitting import PowerFit, fit_metric_exponents, fit_power
from repro.analysis.ladders import LADDERS, Ladder, collect_samples
from repro.analysis.scalecheck import (
    CheckResult,
    Regression,
    load_baseline,
    run_check,
    write_baseline,
)
from repro.analysis.simlint import Finding, RULES, lint_paths, lint_source

__all__ = [
    "CheckResult",
    "Finding",
    "LADDERS",
    "Ladder",
    "PowerFit",
    "RULES",
    "Regression",
    "collect_samples",
    "fit_metric_exponents",
    "fit_power",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "run_check",
    "write_baseline",
]
