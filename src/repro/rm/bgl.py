"""BlueGene/L-style resource manager (mpirun).

Section 4 reports that LaunchMON's own overheads were similar on BG/L but
the RM's T(job) and T(daemon) were *significantly higher* -- mpirun's
spawning services were slower, prompting work with IBM. We model that as
the same protocol with scaled cost constants (and no rshd on compute nodes,
the defining MPP restriction from Section 2). Allocation -- immediate or
queued via :meth:`~repro.rm.base.ResourceManager.allocate_async` -- follows
the base RM's FIFO discipline, and daemon spawning inherits SLURM's route
through the unified ``rm-bulk`` :class:`~repro.launch.LaunchStrategy`
(reports show up as ``rm-bulk(bgl-mpirun)``), so the scaled spawn costs land
in the same per-phase breakdown as every other platform's.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

from repro.cluster import Cluster
from repro.rm.slurm import SlurmConfig, SlurmRM

__all__ = ["BglMpirunRM"]


#: How much slower BG/L's control system is at spawn-type operations.
BGL_SPAWN_FACTOR = 4.0


class BglMpirunRM(SlurmRM):
    """mpirun on BG/L: the same services, markedly costlier spawning."""

    name = "bgl-mpirun"

    def __init__(self, cluster: Cluster, config: Optional[SlurmConfig] = None,
                 seed: int = 7, spawn_factor: float = BGL_SPAWN_FACTOR,
                 **rm_kwargs: Any):
        base = config or SlurmConfig()
        scaled = replace(
            base,
            ctl_job_setup=base.ctl_job_setup * spawn_factor,
            ctl_per_node_job=base.ctl_per_node_job * spawn_factor,
            ctl_daemon_setup=base.ctl_daemon_setup * spawn_factor,
            ctl_per_node_daemon=base.ctl_per_node_daemon * spawn_factor,
            hop_cost=base.hop_cost * 2.0,
        )
        super().__init__(cluster, config=scaled, seed=seed, **rm_kwargs)
        self.spawn_factor = spawn_factor

    def launcher_executable(self) -> str:
        return "mpirun"
