"""repro.rm -- resource managers: job launch, daemon launch, APAI, fabric.

The paper's central observation is that modern RMs already own the scalable
machinery tools need: native tree-based launchers, an MPIR/APAI debug
interface, and a wired-up communication fabric. This package models that
machinery for three platform archetypes:

* :class:`SlurmRM` -- Atlas's SLURM: fan-out tree launch, per-node
  controller bookkeeping, a PMI-style fabric, and a *well-designed* debug
  event stream whose event count does not grow with scale (the paper credits
  interactions with SLURM developers for this property). A ``legacy_events``
  switch restores per-task events for the ablation study.
* :class:`BglMpirunRM` -- BlueGene/L's mpirun: same protocol shape but with
  significantly costlier T(job)/T(daemon), as Section 4 reports.
* :class:`RshRM` -- a bare cluster with no native daemon-launch service:
  ``spawn_daemons`` raises :class:`UnsupportedOperation`, which is exactly
  why ad-hoc rsh launching persists (Section 2) and what LaunchMON abstracts
  away.

Every capable RM spawns daemon sets through the unified launch layer
(:meth:`ResourceManager._launch_daemon_procs`; ``launch_strategy`` selects
``rm-bulk`` -- the default, Section 3.1's efficient path -- or an rsh
strategy for ad-hoc platforms and the resilience sweep) and records the
per-phase :class:`~repro.launch.LaunchReport` in ``last_launch_report``.
With a :class:`~repro.launch.LaunchPolicy` set, spawns run under the
resilient contract (timeout / bounded retry / blacklisting, a
``min_daemon_fraction`` acceptance threshold), ``node_blacklist`` holds the
condemned nodes, and ``free_nodes()`` refuses to re-allocate them -- or
any crashed node -- for the rest of the session.
"""

from repro.rm.base import (
    Allocation,
    AllocationError,
    DaemonSpec,
    JobState,
    LaunchedDaemon,
    ResourceManager,
    RMError,
    RMJob,
    UnsupportedOperation,
)
from repro.rm.slurm import SlurmConfig, SlurmRM
from repro.rm.bgl import BglMpirunRM
from repro.rm.rsh import RshRM

__all__ = [
    "Allocation",
    "AllocationError",
    "BglMpirunRM",
    "DaemonSpec",
    "JobState",
    "LaunchedDaemon",
    "RMError",
    "RMJob",
    "ResourceManager",
    "RshRM",
    "SlurmConfig",
    "SlurmRM",
    "UnsupportedOperation",
]
