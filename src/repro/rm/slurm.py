"""SLURM-style resource manager: tree launcher, APAI, fabric, debug events.

The launch protocol follows srun's architecture: the launcher process asks
the controller to set up per-node credentials (a small per-node serial
cost), fans the launch request down a fan-out tree of node daemons, and the
node daemons fork tasks locally (in parallel across nodes, serially within
one). Executable images load through the storage layer
(:class:`~repro.cluster.SharedFilesystem`), which is where most real launch
time goes; daemon co-location runs through the unified ``rm-bulk``
:class:`~repro.launch.LaunchStrategy` (the SLURM protocol costs are added
to its spawn phase), so the RM's :attr:`last_launch_report` carries the
per-phase breakdown of every spawn.

Debug-event behaviour matches the paper's account exactly: a *well-designed*
SLURM delivers a scale-independent number of events to a tracer (the paper
notes this property arose from the authors' interactions with SLURM
developers), so LaunchMON's tracing cost is the constant ~18 ms of Figure 3.
``SlurmConfig(legacy_events=True)`` restores the older one-event-per-task
behaviour for the ablation experiment.

Node allocation (both the immediate :meth:`~repro.rm.base.ResourceManager.allocate`
and the queued :meth:`~repro.rm.base.ResourceManager.allocate_async` used by
multi-tenant tool services) is inherited unchanged from the base RM: SLURM's
controller hands out nodes FIFO under contention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Callable, Generator, Optional, Sequence

from repro.apps import AppSpec
from repro.be.iccl import ICCLFabric, TreeTopology
from repro.cluster import Cluster, Node
from repro.cluster.process import DebugEvent, DebugEventType, ProcState
from repro.mpir import MPIR_BEING_DEBUGGED
from repro.rm.base import (
    Allocation,
    DaemonSpec,
    JobState,
    LaunchedDaemon,
    ResourceManager,
    RMError,
    RMJob,
)

__all__ = ["SlurmConfig", "SlurmRM"]


@dataclass(frozen=True)
class SlurmConfig:
    """Tunable protocol costs for the SLURM model (seconds)."""

    #: fan-out of the launch message tree
    fanout: int = 16
    #: per-tree-level message + processing cost
    hop_cost: float = 0.0015
    #: fixed controller + srun work to start a job launch
    ctl_job_setup: float = 0.055
    #: controller per-node credential/bookkeeping cost (job launch)
    ctl_per_node_job: float = 0.0005
    #: fixed controller work to co-locate a daemon set
    ctl_daemon_setup: float = 0.028
    #: controller per-node cost for daemon launch
    ctl_per_node_daemon: float = 0.0004
    #: node count beyond which the controller saturates (Fig 5's last doubling)
    ctl_congestion_threshold: int = 512
    #: extra per-node cost beyond the congestion threshold
    ctl_congestion_per_node: float = 0.0008
    #: per-task PMI wireup contribution during job launch
    pmi_per_task: float = 0.00002
    #: RM fabric's per-record service cost inside ICCL collectives
    fabric_per_rec: float = 0.0003
    #: ICCL topology the fabric is wired with
    iccl_topology: str = "binomial"
    #: debug events a tracer sees for one launch (scale-independent)
    debug_event_count: int = 13
    #: legacy mode: additionally one FORK event per task
    legacy_events: bool = False


class SlurmRM(ResourceManager):
    """The Simple Linux Utility for Resource Management, as on Atlas."""

    name = "slurm"
    supports_daemon_launch = True
    provides_fabric = True

    def __init__(self, cluster: Cluster, config: Optional[SlurmConfig] = None,
                 seed: int = 7, **rm_kwargs: Any):
        super().__init__(cluster, seed=seed, **rm_kwargs)
        self.config = config or SlurmConfig()

    def launcher_executable(self) -> str:
        return "srun"

    # -- job launch ---------------------------------------------------------
    def create_launcher(self, app: AppSpec, alloc: Allocation,
                        ) -> Generator[Any, Any, RMJob]:
        """Fork the launcher process, stopped at entry (debugger-style).

        The caller either attaches a tracer and resumes it (launchAndSpawn)
        or resumes it directly (plain job launch).
        """
        fe = self.cluster.front_end
        launcher = yield from fe.fork_exec(
            self.launcher_executable(),
            args=(app.executable, f"-n{app.n_tasks}"),
            image_mb=self.cluster.costs.launcher_image_mb)
        launcher.stop()
        job = RMJob(app, alloc, launcher)
        job.state = JobState.PENDING
        self.jobs.append(job)
        return job

    def run_launcher(self, job: RMJob) -> Generator[Any, Any, RMJob]:
        """The launcher's main body: the full job-launch protocol.

        Run this as a sim process. If a tracer is attached, the launcher
        stops at each debug event and at MPIR_Breakpoint, resuming when the
        tracer continues it -- which is precisely how tracing cost becomes
        additive to T(job) in the paper's Region A.
        """
        cfg = self.config
        sim = self.sim
        launcher = job.launcher
        app = job.app
        nodes = [n for n, _ in self._group_placement(app, job.allocation)]

        if launcher.state is ProcState.STOPPED:
            yield launcher.wait_resumed()
        job.state = JobState.LAUNCHING
        yield from self._emit_and_wait(launcher, DebugEventType.EXEC)

        # controller: allocation validation + per-node credentials
        n = len(nodes)
        yield sim.timeout(self.rng.jitter(
            cfg.ctl_job_setup + cfg.ctl_per_node_job * n))

        # a handful of internal helper forks, visible to a tracer
        for _ in range(max(0, cfg.debug_event_count - 3)):
            yield from self._emit_and_wait(launcher, DebugEventType.FORK)

        # fan-out tree descent to the node daemons
        yield sim.timeout(self._tree_descent_time(n))

        # parallel per-node: image load + local task forks
        spawners = [
            sim.process(self._spawn_tasks_on(node, ranks, app, job),
                        name=f"slurmd:{node.name}")
            for node, ranks in self._group_placement(app, job.allocation)
        ]
        barrier = sim.all_of(spawners)
        try:
            yield barrier
        except BaseException:
            # the launch was aborted under us (e.g. the driving tool
            # operation was torn down mid-launch): stop the per-node
            # spawners so no straggler keeps forking tasks onto nodes
            # that are about to be released -- and defuse both the
            # workers and the barrier, which otherwise detonate when
            # the interrupted workers' failures complete a composite
            # nobody observes any more
            barrier.defuse()
            for s in spawners:
                s.defuse()
                if s.is_alive:
                    s.interrupt("job launch aborted")
            job.state = JobState.FAILED
            # srun dies on a failed launch: the exit emits an EXITED
            # debug event, so an attached tracer (the engine's poll
            # loop) observes the abort as RM_EXITED instead of hanging
            if launcher.alive:
                launcher.exit(1)
            raise
        job.tasks.sort(key=lambda t: t.memory.get("_rank", 0))

        if cfg.legacy_events:
            # pre-fix SLURM: the launcher reports one event per task
            for _ in range(app.n_tasks):
                yield from self._emit_and_wait(launcher, DebugEventType.FORK)

        # PMI wireup of the application's own fabric
        yield sim.timeout(self.rng.jitter(cfg.pmi_per_task * app.n_tasks))

        traced = launcher.memory.get(MPIR_BEING_DEBUGGED, 0)
        job.publish_mpir(stopped=bool(traced))
        if traced:
            job.state = JobState.STOPPED_AT_BREAKPOINT
            yield from self._emit_and_wait(
                launcher, DebugEventType.BREAKPOINT, detail="MPIR_Breakpoint")
        job.state = JobState.RUNNING
        return job

    def launch_job(self, app: AppSpec, alloc: Allocation,
                   being_debugged: bool = False,
                   ) -> Generator[Any, Any, RMJob]:
        """Convenience: create + run the launcher in one step (no tracer)."""
        if being_debugged:
            raise RMError("use create_launcher/run_launcher with a tracer")
        job = yield from self.create_launcher(app, alloc)
        job.launcher.resume()
        yield from self.run_launcher(job)
        return job

    # -- daemon launch ---------------------------------------------------------
    def spawn_daemons(self, job: RMJob, spec: DaemonSpec,
                      context_factory: Callable[..., Any],
                      topology: Optional[str] = None,
                      ) -> Generator[Any, Any, tuple[list[LaunchedDaemon], ICCLFabric]]:
        """Co-locate one tool daemon per node of a running job (e5 -> e6)."""
        if job.state not in (JobState.RUNNING, JobState.STOPPED_AT_BREAKPOINT):
            raise RMError(f"job {job.jobid} not launchable-into: {job.state}")
        hosts: dict[str, None] = {}
        for t in job.tasks:
            hosts.setdefault(t.host)
        nodes = [self.cluster.node(h) for h in hosts]
        daemons, fabric = yield from self._spawn_set(
            nodes, spec, context_factory, topology)
        job.daemons.extend(daemons)
        job.daemon_spawn_report = self.last_launch_report
        return daemons, fabric

    def spawn_on_allocation(self, alloc: Allocation, spec: DaemonSpec,
                            context_factory: Callable[..., Any],
                            topology: Optional[str] = None,
                            ) -> Generator[Any, Any, tuple[list[LaunchedDaemon], ICCLFabric]]:
        """Launch middleware daemons onto a dedicated allocation."""
        daemons, fabric = yield from self._spawn_set(
            alloc.nodes, spec, context_factory, topology)
        return daemons, fabric

    # -- internals ---------------------------------------------------------------
    def _spawn_set(self, nodes: Sequence[Node], spec: DaemonSpec,
                   context_factory: Callable[..., Any],
                   topology: Optional[str],
                   ) -> Generator[Any, Any, tuple[list[LaunchedDaemon], ICCLFabric]]:
        cfg = self.config
        sim = self.sim
        n = len(nodes)
        if n == 0:
            raise RMError("empty daemon node set")
        t0 = sim.now

        # transient launcher for the daemon set
        launcher = yield from self.cluster.front_end.fork_exec(
            self.launcher_executable(), args=(spec.executable,),
            image_mb=self.cluster.costs.launcher_image_mb)

        # controller bookkeeping, with saturation beyond the threshold
        extra = max(0, n - cfg.ctl_congestion_threshold)
        yield sim.timeout(self.rng.jitter(
            cfg.ctl_daemon_setup + cfg.ctl_per_node_daemon * n
            + cfg.ctl_congestion_per_node * extra))

        yield sim.timeout(self._tree_descent_time(n))
        protocol_overhead = sim.now - t0

        # per-node image staging + parallel fork via the unified launch
        # layer; a failed set is reaped by the strategy, the transient
        # launcher is this RM's to retire
        try:
            result = yield from self._launch_daemon_procs(nodes, spec)
        except BaseException:
            if launcher.alive:
                launcher.exit(9)
            raise
        result.report.t_spawn += protocol_overhead
        result.report.total += protocol_overhead

        # pair surviving daemons with their nodes by request index: a
        # resilient launch may return a partial set (failed indices are
        # attributed in the report), and a daemon whose node crashed
        # between spawn and now must not get a body started on it
        pairs = [(node, result.slots[i]) for i, node in enumerate(nodes)
                 if result.slots.get(i) is not None
                 and result.slots[i].alive]
        for i in result.slots:
            if not result.slots[i].alive:
                # spawned but died before the set assembled (node crash
                # between fork and fabric wireup): attribute the loss
                result.report.outcomes[i] = "lost"
        result.report.n_daemons = len(pairs)
        live_nodes = [node for node, _ in pairs]
        topo = TreeTopology.make(len(pairs), topology or cfg.iccl_topology)
        fabric = ICCLFabric(
            sim, self.cluster.network, live_nodes, topo,
            costs=self.cluster.costs, rng=self.rng,
            per_rec_cost=cfg.fabric_per_rec)
        daemons = [LaunchedDaemon(rank=rank, node=node, proc=proc)
                   for rank, (node, proc) in enumerate(pairs)]
        for d in daemons:
            ctx = context_factory(d, daemons, fabric)
            d.sim_proc = sim.process(
                spec.main(ctx), name=f"{spec.executable}[{d.rank}]")
            d.node.register_body(d.sim_proc)
        launcher.exit(0)
        return daemons, fabric

    def _tree_descent_time(self, n: int) -> float:
        depth = max(1, math.ceil(math.log(max(2, n), self.config.fanout)))
        return self.rng.jitter(depth * self.config.hop_cost)

    def _group_placement(self, app: AppSpec, alloc: Allocation,
                         ) -> list[tuple[Node, list[int]]]:
        groups: dict[str, tuple[Node, list[int]]] = {}
        for node, rank in self._place_tasks(app, alloc):
            groups.setdefault(node.name, (node, []))[1].append(rank)
        return list(groups.values())

    def _spawn_tasks_on(self, node: Node, ranks: list[int], app: AppSpec,
                        job: RMJob):
        """slurmd body: load the app image once, then fork each local task."""
        yield from self.cluster.fs.load_image(app.image_mb, node=node,
                                              key=app.executable)
        for rank in ranks:
            proc = yield from node.fork_exec(
                app.executable, args=(f"rank={rank}",), image_mb=0.0)
            proc.memory["_rank"] = rank
            app.apply_behavior(proc, rank)
            job.tasks.append(proc)

    def _emit_and_wait(self, launcher, etype: DebugEventType,
                       detail: Any = None):
        """Deliver a debug event and stop until the tracer continues us."""
        if launcher.traced_by is not None:
            launcher.stop()
            launcher.emit_debug_event(
                DebugEvent(etype, launcher.pid, detail))
            yield launcher.wait_resumed()
        return
        yield  # pragma: no cover
