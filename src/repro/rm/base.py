"""Abstract resource-manager model: allocations, jobs, daemon colocations.

A :class:`ResourceManager` owns node allocation and the two launch services
LaunchMON builds on:

* ``launch_job`` -- start a parallel application through the RM's native
  launcher process (which publishes the MPIR symbols for the APAI);
* ``spawn_daemons`` -- the *efficient daemon launch command* (Section 3.1):
  start one tool daemon per application node, reusing the RM's scalable
  launch machinery and its pre-wired communication fabric.

Daemon processes are real :class:`~repro.simx.Process` instances running the
tool's back-end body, so tool code executes concurrently with the rest of
the simulation just as real daemons would.

Allocation has two faces. :meth:`ResourceManager.allocate` is the classic
immediate grant, raising a typed :class:`AllocationError` when the cluster
lacks free nodes. :meth:`ResourceManager.allocate_async` queues the request
FIFO and suspends the caller until enough nodes are released -- this is what
lets many concurrent tool sessions (see :mod:`repro.fe.service`) block on
node contention instead of silently over-allocating the machine.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Sequence

from repro.simx import Event, SeededRNG, Simulator
from repro.apps import AppSpec
from repro.cluster import Cluster, Node, SimProcess
from repro.launch import (
    LaunchPolicy,
    LaunchReport,
    LaunchRequest,
    LaunchResult,
    RmBulkStrategy,
    get_strategy,
)
from repro.mpir import (
    MPIR_BEING_DEBUGGED,
    MPIR_DEBUG_SPAWNED,
    MPIR_DEBUG_STATE,
    MPIR_NULL,
    MPIR_PROCTABLE,
    MPIR_PROCTABLE_SIZE,
    ProcDesc,
    RPDTAB,
)

__all__ = [
    "Allocation",
    "AllocationError",
    "DaemonSpec",
    "JobState",
    "LaunchedDaemon",
    "RMError",
    "RMJob",
    "ResourceManager",
    "UnsupportedOperation",
]


class RMError(RuntimeError):
    """Resource-manager failures (no nodes, bad job state, ...)."""


class AllocationError(RMError):
    """The cluster cannot satisfy a node request.

    Raised by :meth:`ResourceManager.allocate` when too few nodes are
    currently free, and by :meth:`ResourceManager.allocate_async` when the
    request exceeds the cluster's total size (so it could never be granted).
    """


class UnsupportedOperation(RMError):
    """The platform's RM does not offer this service (e.g. daemon launch)."""


class JobState(enum.Enum):
    PENDING = "pending"
    LAUNCHING = "launching"
    STOPPED_AT_BREAKPOINT = "stopped-at-breakpoint"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class Allocation:
    """A set of compute nodes granted to one request."""

    alloc_id: int
    nodes: list[Node]

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass
class DaemonSpec:
    """What to launch on each node: executable identity plus the daemon body.

    ``main`` is the tool's daemon entry point -- a generator function taking
    the context object the launching service provides (a
    :class:`~repro.be.context.BEContext` for back ends, an
    :class:`~repro.mw.context.MWContext` for middleware). ``image_mb`` feeds
    the shared-filesystem load model: heavyweight tool stacks (MRNet + STAT)
    pay real image-distribution costs that lightweight ones (Jobsnap) avoid.
    """

    executable: str
    main: Callable[[Any], Generator]
    image_mb: float = 4.0
    args: tuple = ()
    uid: str = "user"


@dataclass
class LaunchedDaemon:
    """One spawned daemon: its process, placement and daemon rank."""

    rank: int
    node: Node
    proc: SimProcess
    sim_proc: Optional[object] = None  # the simx.Process running its body


class RMJob:
    """A launched parallel job under RM control."""

    _ids = itertools.count(1)

    def __init__(self, app: AppSpec, allocation: Allocation,
                 launcher: SimProcess):
        self.jobid = next(RMJob._ids)
        self.app = app
        self.allocation = allocation
        self.launcher = launcher
        self.tasks: list[SimProcess] = []
        self.state = JobState.PENDING
        self.daemons: list[LaunchedDaemon] = []
        #: per-phase report of the most recent daemon set spawned into this
        #: job -- unlike the RM-wide ``last_launch_report`` it cannot be
        #: overwritten by a concurrent session's spawn
        self.daemon_spawn_report: Optional[LaunchReport] = None
        #: the TBON overlay built over this job's daemon set, recorded by
        #: the startup path (:func:`repro.tbon.launchmon_startup`). The
        #: overlay is data plane -- node-resident routers and streams that
        #: survive a control-plane crash -- so a restarting daemon
        #: re-adopting this job finds it here rather than on the dead
        #: session object.
        self.overlay = None
        #: comm daemons' Middleware runtimes, recorded alongside
        #: ``overlay`` for the same re-adoption purpose
        self.mw_runtimes: list = []

    def build_proctable(self) -> RPDTAB:
        """Assemble the RPDTAB from the live task set."""
        return RPDTAB(
            ProcDesc(rank=i, host_name=t.host,
                     executable_name=t.executable, pid=t.pid)
            for i, t in enumerate(self.tasks))

    def publish_mpir(self, stopped: bool = True) -> None:
        """Write the MPIR symbols into the launcher's address space.

        ``MPIR_debug_state`` is SPAWNED once all tasks exist -- this is what
        makes later *attach* acquisition possible without stopping the job.
        """
        table = [ProcDesc(rank=i, host_name=t.host,
                          executable_name=t.executable, pid=t.pid)
                 for i, t in enumerate(self.tasks)]
        mem = self.launcher.memory
        mem[MPIR_PROCTABLE] = table
        mem[MPIR_PROCTABLE_SIZE] = len(table)
        mem[MPIR_DEBUG_STATE] = MPIR_DEBUG_SPAWNED


class _ObservedBlacklist(set):
    """The RM's node blacklist, instrumented to keep the free-node index
    exact: the launch layer adds condemned node names directly to this
    (shared) set, so membership changes must reach the index without the
    RM being called. Plain-``set`` semantics otherwise."""

    def __init__(self, rm: "ResourceManager"):
        super().__init__()
        self._rm = rm

    def add(self, name: str) -> None:
        if name not in self:
            set.add(self, name)
            self._rm._index_ban(name)

    def update(self, *others) -> None:
        for other in others:
            for name in other:
                self.add(name)

    def discard(self, name: str) -> None:
        if name in self:
            set.discard(self, name)
            self._rm._index_unban(name)

    def remove(self, name: str) -> None:
        # set subclass: O(1) hash removal, not a list scan
        set.remove(self, name)  # raises KeyError if absent
        self._rm._index_unban(name)

    def clear(self) -> None:
        names = list(self)
        set.clear(self)
        for name in names:
            self._rm._index_unban(name)

    def pop(self) -> str:
        if not self:
            raise KeyError("pop from an empty blacklist")
        name = next(iter(self))
        self.remove(name)  # simlint: allow[linear-scan] -- set subclass, O(1)
        return name

    def difference_update(self, *others) -> None:
        for other in others:
            for name in list(other):
                self.discard(name)

    def intersection_update(self, *others) -> None:
        keep = set(self).intersection(*others)
        for name in list(self):
            if name not in keep:
                self.discard(name)

    def symmetric_difference_update(self, other) -> None:
        for name in list(other):
            if name in self:
                self.discard(name)
            else:
                self.add(name)

    # the C-level in-place operators bypass the methods above; route them
    # through the observed mutators so no mutation path can skip the index
    def __ior__(self, other):
        self.update(other)
        return self

    def __isub__(self, other):
        self.difference_update(other)
        return self

    def __iand__(self, other):
        self.intersection_update(other)
        return self

    def __ixor__(self, other):
        self.symmetric_difference_update(other)
        return self


class ResourceManager:
    """Base RM: allocation bookkeeping plus the service interface."""

    name = "abstract-rm"
    #: whether the native launcher can co-locate tool daemons scalably
    supports_daemon_launch = True
    #: whether the RM wires a fabric the ICCL can bootstrap from
    provides_fabric = True
    #: the shared per-node spawn machinery every capable RM launches through
    bulk_strategy = RmBulkStrategy()

    def __init__(self, cluster: Cluster, seed: int = 7,
                 policy: Optional[LaunchPolicy] = None,
                 launch_strategy: Optional[str] = None):
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.rng = SeededRNG(seed, f"rm:{self.name}")
        #: resilience policy applied to every daemon spawn (None = legacy:
        #: spawns are unguarded and a partial set is a hard failure)
        self.policy = policy
        #: which LaunchStrategy spawns daemon sets ("rm-bulk" default; the
        #: rsh strategies model ad-hoc platforms and the resilience sweep)
        self.launch_strategy = launch_strategy
        #: nodes condemned by exhausted launch retries; free_nodes() skips
        #: them, so a blacklisted node is never re-allocated (shared with
        #: every LaunchRequest this RM issues, which mutates it directly --
        #: hence the observed-set type keeping the free index in sync)
        self.node_blacklist: set[str] = _ObservedBlacklist(self)
        self._alloc_ids = itertools.count(1)
        self._allocated: set[str] = set()
        # -- free-node index: grantability is tracked incrementally so an
        # allocation costs O(k log n) instead of rescanning all N nodes
        # (the scan made every allocate/queue-pump O(N), i.e. launch
        # sweeps O(N^2)). ``_free`` holds the *positions* (in
        # cluster.compute order) of grantable nodes -- not allocated, not
        # crashed, not blacklisted; ``_free_heap`` is a lazy min-heap over
        # the same positions (stale entries are skipped at pop time), so
        # grants keep the classic deterministic lowest-position-first
        # order.
        self._node_pos: dict[str, int] = {
            n.name: i for i, n in enumerate(cluster.compute)}
        self._free: set[int] = {
            i for i, n in enumerate(cluster.compute) if not n.failed}
        self._free_heap: list[int] = sorted(self._free)
        cluster.add_failure_listener(self._on_node_failed)
        self.jobs: list[RMJob] = []
        #: every allocation currently granted, by id -- the RM-side ledger.
        #: The RM outlives any tool front end (SLURM does not die with a
        #: crashed tool), so this is what a restarting control plane
        #: reconciles its checkpoint against: allocations here that no
        #: restored session claims are orphans to be reaped.
        self.live_allocations: dict[int, Allocation] = {}
        #: FIFO queue of pending async requests: (n_nodes, grant event, t_req)
        self._alloc_waiters: deque[tuple[int, Event, float]] = deque()
        #: diagnostics: per-grant queue-wait durations (async requests only)
        self.alloc_waits: list[float] = []
        #: diagnostics: high-water mark of simultaneously queued requests
        self.alloc_queue_peak = 0
        #: per-phase breakdown of the most recent daemon spawn (any session)
        self.last_launch_report: Optional[LaunchReport] = None

    # -- allocation ---------------------------------------------------------
    @property
    def queued_requests(self) -> int:
        """Number of async allocation requests still waiting for nodes."""
        return len(self._alloc_waiters)

    @property
    def n_free(self) -> int:
        """Grantable compute nodes right now, O(1) (health snapshots --
        :meth:`free_nodes` sorts and materializes Node objects)."""
        return len(self._free)

    @property
    def n_total(self) -> int:
        """Total compute nodes behind this RM, including failed or
        blacklisted ones (capacity, not availability)."""
        return len(self.cluster.compute)

    @property
    def allocated_node_names(self) -> frozenset:
        """Names of nodes currently granted to some allocation (audits)."""
        return frozenset(self._allocated)

    def queued_request_sizes(self) -> tuple:
        """Snapshot of the async queue as ``(n_nodes, t_req)`` pairs, in
        FIFO order -- what a control-plane checkpoint records about
        pending contention (the grant events themselves are process
        state and die with their requesters)."""
        return tuple((n, t) for n, _ev, t in self._alloc_waiters)

    def free_nodes(self) -> list[Node]:
        """Compute nodes grantable to a new allocation: not currently
        allocated, not crashed, and not on the launch blacklist (a node
        condemned by exhausted spawn retries is never re-allocated within
        this RM's lifetime -- sessions must not keep rediscovering it).

        Served from the incremental free-node index (same contents and
        order as the historical full scan, without the O(N) walk on the
        allocation fast path)."""
        compute = self.cluster.compute
        return [compute[i] for i in sorted(self._free)]

    # -- free-node index maintenance -----------------------------------------
    def _index_ban(self, name: str) -> None:
        """A node became ungrantable (blacklisted): drop it from the index
        (its heap entry, if any, goes stale and is skipped at pop)."""
        pos = self._node_pos.get(name)
        if pos is not None:
            self._free.discard(pos)

    def _index_unban(self, name: str) -> None:
        """A node left the blacklist: re-index it if otherwise grantable."""
        pos = self._node_pos.get(name)
        if (pos is not None and pos not in self._free
                and name not in self._allocated
                and not self.cluster.compute[pos].failed):
            self._free.add(pos)
            heapq.heappush(self._free_heap, pos)

    def _on_node_failed(self, node: Node) -> None:
        """Cluster failure listener: a crashed node is never grantable."""
        pos = self._node_pos.get(node.name)
        if pos is not None:
            self._free.discard(pos)

    def _take_free(self, n_nodes: int) -> list[Node]:
        """Remove and return the ``n_nodes`` lowest-position free nodes.

        Callers must have checked ``len(self._free) >= n_nodes``; pops skip
        stale heap entries (positions that were allocated, crashed or
        blacklisted since being pushed)."""
        free, heap = self._free, self._free_heap
        compute = self.cluster.compute
        taken: list[Node] = []
        while len(taken) < n_nodes:
            pos = heapq.heappop(heap)
            if pos in free:
                free.discard(pos)
                taken.append(compute[pos])
        return taken

    def allocate(self, n_nodes: int) -> Allocation:
        """Grant ``n_nodes`` free compute nodes immediately (deterministic
        order), or raise :class:`AllocationError` if too few are free.

        This is the synchronous path. It refuses to overtake requests
        already waiting in the async queue -- otherwise a steady stream of
        sync callers could starve a queued session forever. Callers that
        want to *block on* contention instead of failing use
        :meth:`allocate_async`.
        """
        if self._alloc_waiters:
            raise AllocationError(
                f"{self.name}: {len(self._alloc_waiters)} request(s) already "
                f"queued ahead; use allocate_async to wait in line")
        if len(self._free) < n_nodes:
            raise AllocationError(
                f"{self.name}: requested {n_nodes} nodes, only "
                f"{len(self._free)} free of {len(self.cluster.compute)}")
        return self._grant(self._take_free(n_nodes))

    def allocate_async(self, n_nodes: int) -> Generator[Any, Any, Allocation]:
        """Queue for ``n_nodes`` nodes; a generator that waits under contention.

        Requests are granted strictly FIFO (head-of-line blocking, so a
        large request cannot starve behind a stream of small ones). When the
        nodes are free the grant happens without any virtual time passing;
        otherwise the caller suspends until enough :meth:`release` calls
        arrive. Requests larger than the whole cluster raise
        :class:`AllocationError` up front -- they could never be satisfied.
        """
        if n_nodes > len(self.cluster.compute):
            raise AllocationError(
                f"{self.name}: requested {n_nodes} nodes, cluster has only "
                f"{len(self.cluster.compute)}")
        grant = Event(self.sim)
        entry = (n_nodes, grant, self.sim.now)
        self._alloc_waiters.append(entry)
        self.alloc_queue_peak = max(self.alloc_queue_peak,
                                    len(self._alloc_waiters))
        self._pump_alloc_queue()
        try:
            alloc = yield grant
        except BaseException:
            # requester aborted while queued (or right as the grant fired):
            # withdraw the request / return the nodes so the queue cannot
            # hold entries nobody will ever consume
            try:
                # rare abort path; the waiter queue stays short
                # (bounded by concurrent allocators)
                self._alloc_waiters.remove(entry)  # simlint: allow[linear-scan]
            except ValueError:
                if grant.triggered:
                    self.release(grant.value)
            else:
                # the withdrawn entry may have been blocking the head of
                # the FIFO; requests behind it might now fit
                self._pump_alloc_queue()
            raise
        return alloc

    def withdraw_all_queued(self) -> int:
        """Drop every queued async allocation request; returns the count.

        Crash-recovery primitive: after a control-plane crash the queue
        may hold entries whose requester processes are gone -- a grant to
        one would strand its nodes forever. The restoring daemon purges
        the queue first, then resubmits the requests its checkpoint says
        are real. Only the control plane that owns this RM's allocation
        traffic may call this (it withdraws *everyone's* pending entries).
        """
        dropped = len(self._alloc_waiters)
        self._alloc_waiters.clear()
        return dropped

    def release(self, alloc: Allocation) -> None:
        self.live_allocations.pop(alloc.alloc_id, None)
        for n in alloc.nodes:
            if n.name in self._allocated:
                self._allocated.discard(n.name)
                pos = self._node_pos[n.name]
                if (pos not in self._free and not n.failed
                        and n.name not in self.node_blacklist):
                    self._free.add(pos)
                    heapq.heappush(self._free_heap, pos)
        self._pump_alloc_queue()

    def _grant(self, nodes: list[Node]) -> Allocation:
        """Record ``nodes`` (already removed from the free index by
        :meth:`_take_free`) as allocated."""
        for n in nodes:
            self._allocated.add(n.name)
        alloc = Allocation(alloc_id=next(self._alloc_ids), nodes=nodes)
        self.live_allocations[alloc.alloc_id] = alloc
        return alloc

    def _pump_alloc_queue(self) -> None:
        """Grant queued async requests while the head request fits."""
        while self._alloc_waiters:
            n_nodes, grant, t_req = self._alloc_waiters[0]
            if len(self._free) < n_nodes:
                return
            self._alloc_waiters.popleft()
            self.alloc_waits.append(self.sim.now - t_req)
            grant.succeed(self._grant(self._take_free(n_nodes)))

    # -- service interface (platform-specific) -------------------------------
    def launcher_executable(self) -> str:
        raise NotImplementedError

    def launch_job(self, app: AppSpec, alloc: Allocation,
                   being_debugged: bool = False,
                   ) -> Generator[Any, Any, RMJob]:
        """Launch ``app`` on ``alloc``; returns the job with MPIR published.

        With ``being_debugged`` the launcher behaves as if
        ``MPIR_being_debugged`` were set: it delivers debug events to its
        tracer and stops at ``MPIR_Breakpoint`` once all tasks exist.
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def spawn_daemons(self, job: RMJob, spec: DaemonSpec,
                      context_factory: Callable[[LaunchedDaemon, Sequence[LaunchedDaemon]], Any],
                      ) -> Generator[Any, Any, list[LaunchedDaemon]]:
        """Co-locate one daemon per job node via the native launcher.

        ``context_factory(daemon, all_daemons)`` builds the context object
        handed to ``spec.main``; the RM starts each body as a sim process.
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def spawn_on_allocation(self, alloc: Allocation, spec: DaemonSpec,
                            context_factory: Callable[[LaunchedDaemon, Sequence[LaunchedDaemon]], Any],
                            ) -> Generator[Any, Any, list[LaunchedDaemon]]:
        """Launch daemons onto a fresh allocation (middleware/TBON nodes)."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- shared helpers ------------------------------------------------------
    def _launch_daemon_procs(self, nodes: Sequence[Node], spec: DaemonSpec,
                             ) -> Generator[Any, Any, LaunchResult]:
        """Fork one daemon per node through the configured launch strategy.

        Stages ``spec.image_mb`` through the cluster's storage layer (so the
        active staging mode -- shared-fs, per-node cache, or cooperative
        broadcast -- governs the image-distribution cost), spawns through
        :attr:`launch_strategy` (``rm-bulk`` by default: all nodes fork in
        parallel), and records the per-phase :class:`LaunchReport` in
        :attr:`last_launch_report`. Protocol costs the RM pays *before*
        calling this (controller bookkeeping, tree descent) should be added
        to the report's spawn phase by the caller.

        With a :class:`~repro.launch.LaunchPolicy` set, each daemon's spawn
        runs under the resilient contract (timeout / bounded retry /
        blacklisting) and a partial set is accepted down to the policy's
        ``min_daemon_fraction`` -- the report attributes every missing
        index. Below the fraction (or on *any* shortfall without a policy)
        the survivors are reaped and :class:`RMError` raises, so a failed
        set cannot leave orphans squatting on nodes.
        """
        strat_name = self.launch_strategy or "rm-bulk"
        strat = (self.bulk_strategy if strat_name == "rm-bulk"
                 else get_strategy(strat_name))
        req = LaunchRequest(
            cluster=self.cluster, nodes=nodes, executable=spec.executable,
            image_mb=spec.image_mb, args=spec.args, uid=spec.uid,
            stage_images=True, image_key=spec.executable,
            hold_clients=False)
        if self.policy is not None:
            req.apply_policy(self.policy, self.node_blacklist)
        result = yield from strat.launch(req)
        report = result.report
        report.mechanism = f"{strat.name}({self.name})"
        self.last_launch_report = report
        requested = len(nodes)
        survivors = [p for p in result.procs if p.alive]
        need = (self.policy.min_daemons(requested)
                if self.policy is not None else requested)
        short = len(survivors) < need or (self.policy is None
                                          and report.failed)
        if short:
            for p in result.procs:
                if p.alive:
                    p.exit(9)
            raise RMError(
                f"{self.name}: daemon set incomplete -- "
                f"{len(survivors)}/{requested} up (minimum {need}); "
                f"first failure: {report.failure or 'n/a'}")
        return result

    def _place_tasks(self, app: AppSpec, alloc: Allocation) -> list[tuple[Node, int]]:
        """Block placement: (node, rank) pairs, tasks_per_node per node."""
        placement: list[tuple[Node, int]] = []
        rank = 0
        for node in alloc.nodes:
            for _ in range(app.tasks_per_node):
                if rank >= app.n_tasks:
                    return placement
                placement.append((node, rank))
                rank += 1
        if rank < app.n_tasks:
            raise RMError(
                f"allocation of {len(alloc)} nodes too small for "
                f"{app.n_tasks} tasks at {app.tasks_per_node}/node")
        return placement
