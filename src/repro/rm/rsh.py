"""A bare cluster 'RM': allocation only, no native launch services.

This models the environment that forces tools into ad-hoc practices
(Section 2): the scheduler hands out nodes, but there is no scalable
daemon-launch command and no tool fabric. ``spawn_daemons`` raises
:class:`~repro.rm.base.UnsupportedOperation`; job launch itself falls back
to a sequential rsh loop. LaunchMON cannot run its efficient path here,
which is the portability gap the paper's abstraction closes on real RMs.

Even a bare scheduler still arbitrates nodes: the FIFO allocation queue
(:meth:`~repro.rm.base.ResourceManager.allocate_async`) is inherited from
the base RM, so concurrent tool sessions queue for nodes here exactly as
they do under SLURM or BG/L mpirun.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.apps import AppSpec
from repro.launch import LaunchRequest, SerialRshStrategy
from repro.mpir import MPIR_BEING_DEBUGGED
from repro.rm.base import (
    Allocation,
    DaemonSpec,
    JobState,
    ResourceManager,
    RMJob,
    UnsupportedOperation,
)

__all__ = ["RshRM"]


class RshRM(ResourceManager):
    """No native launcher: jobs start via a sequential rsh loop."""

    name = "rsh-only"
    supports_daemon_launch = False
    provides_fabric = False
    #: the fallback job-launch mechanism (daemon launch stays unsupported)
    task_strategy = SerialRshStrategy()

    def launcher_executable(self) -> str:
        return "mpirun-rsh"

    def create_launcher(self, app: AppSpec, alloc: Allocation,
                        ) -> Generator[Any, Any, RMJob]:
        fe = self.cluster.front_end
        launcher = yield from fe.fork_exec(
            self.launcher_executable(), args=(app.executable,),
            image_mb=self.cluster.costs.rsh_launcher_image_mb)
        launcher.stop()
        job = RMJob(app, alloc, launcher)
        self.jobs.append(job)
        return job

    def run_launcher(self, job: RMJob) -> Generator[Any, Any, RMJob]:
        """Sequential rsh start of every task -- the slow, fragile path.

        Routed through the unified ``serial-rsh``
        :class:`~repro.launch.LaunchStrategy` with per-rank argument/image
        hooks; spawn failures propagate (``raise_on_error``), matching the
        historical contract.
        """
        launcher = job.launcher
        if launcher.state.value == "T":
            yield launcher.wait_resumed()
        job.state = JobState.LAUNCHING
        app = job.app
        placement = self._place_tasks(app, job.allocation)
        ranks = [rank for _, rank in placement]

        def imprint(i, node, proc):
            proc.memory["_rank"] = ranks[i]
            app.apply_behavior(proc, ranks[i])
            job.tasks.append(proc)

        result = yield from self.task_strategy.launch(LaunchRequest(
            cluster=self.cluster,
            nodes=[node for node, _ in placement],
            executable=app.executable,
            args_for=lambda i, node: (f"rank={ranks[i]}",),
            image_mb_for=lambda i, node: (
                app.image_mb if ranks[i] % app.tasks_per_node == 0 else 0.0),
            post_spawn=imprint,
            raise_on_error=True))
        self.last_launch_report = result.report
        traced = launcher.memory.get(MPIR_BEING_DEBUGGED, 0)
        job.publish_mpir(stopped=bool(traced))
        job.state = JobState.RUNNING
        return job

    def launch_job(self, app: AppSpec, alloc: Allocation,
                   being_debugged: bool = False,
                   ) -> Generator[Any, Any, RMJob]:
        job = yield from self.create_launcher(app, alloc)
        job.launcher.resume()
        yield from self.run_launcher(job)
        return job

    def spawn_daemons(self, job: RMJob, spec: DaemonSpec,
                      context_factory: Callable[..., Any],
                      topology=None) -> Generator[Any, Any, Any]:
        raise UnsupportedOperation(
            f"{self.name}: no native tool-daemon launch service; "
            f"use an ad-hoc launcher (repro.adhoc) or a capable RM")
        yield  # pragma: no cover

    def spawn_on_allocation(self, alloc: Allocation, spec: DaemonSpec,
                            context_factory: Callable[..., Any],
                            topology=None) -> Generator[Any, Any, Any]:
        raise UnsupportedOperation(
            f"{self.name}: no native middleware launch service")
        yield  # pragma: no cover
