"""TBON startup paths: ad-hoc rsh vs LaunchMON (the Figure 6 comparison).

``native_startup`` is MRNet's classic mechanism: the front end forks one
rsh client per daemon *sequentially* and keeps each client alive to carry
the daemon's stdio; daemons learn the topology from a single shared file.
Cost is linear in daemon count with the rsh-connection slope, and the whole
scheme dies with :class:`StartupFailure` once the front end's process table
fills -- the paper observed consistent fork failure at 512 daemons.

``launchmon_startup`` brings the back ends up through LaunchMON
(``attachAndSpawn``), piggybacks the topology on the LMONP handshake, and
distributes placement with one LMONP broadcast; only the tree-edge connects
and the TBON's own per-backend stream handshake remain.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Generator, Optional

from repro.be import BackEnd
from repro.cluster import Cluster, Node
from repro.launch import LaunchReport, LaunchRequest, SerialRshStrategy
from repro.rm.base import DaemonSpec, RMJob
from repro.tbon.overlay import Overlay, StreamSpec
from repro.tbon.topology import TBONTopology

__all__ = ["StartupFailure", "StartupReport", "launchmon_startup",
           "native_startup", "MRNET_PER_BE_HANDSHAKE"]

#: per-backend stream/port setup cost at the front end (calibrated against
#: the paper's 0.77 s MRNet handshake at 256 back ends)
MRNET_PER_BE_HANDSHAKE = 0.003

#: TBON startups report through the unified launch layer's per-phase report
StartupReport = LaunchReport

#: **Test-only hazard switch.** True reverts ``launchmon_startup`` to the
#: pre-PR-5 behaviour where every daemon re-parses the piggybacked
#: topology wire form and the placement broadcast instead of sharing one
#: parsed copy per session -- an O(N^2) wall-clock term (N daemons x O(N)
#: parse) that is invisible in virtual time. Planted by
#: tests/analysis/test_scalecheck.py to prove scalecheck catches the
#: class. Never set in production.
REVERT_SHARED_PARSE = False


class StartupFailure(RuntimeError):
    """The startup mechanism collapsed (e.g. fork failure at scale)."""

    def __init__(self, message: str, spawned: int = 0):
        super().__init__(message)
        self.spawned = spawned


def _build_overlay(cluster: Cluster, topology: TBONTopology,
                   placement: dict[int, Node],
                   stream_filter: str) -> Overlay:
    overlay = Overlay(cluster.sim, cluster.network, topology, placement,
                      streams={1: StreamSpec(1, stream_filter)})
    overlay.start_routers()
    return overlay


# ---------------------------------------------------------------------------
# Ad-hoc (MRNet-native) startup
# ---------------------------------------------------------------------------

def native_startup(cluster: Cluster, backend_nodes: list[Node],
                   daemon_executable: str = "mrnet_commnode",
                   image_mb: float = 18.0,
                   topology: Optional[TBONTopology] = None,
                   comm_nodes: Optional[list[Node]] = None,
                   stream_filter: str = "concat",
                   per_be_handshake: float = MRNET_PER_BE_HANDSHAKE,
                   ) -> Generator[Any, Any, tuple[Overlay, StartupReport]]:
    """Launch and connect a TBON the ad-hoc way (sequential rsh).

    Raises :class:`StartupFailure` if the front end can no longer fork rsh
    clients -- the paper's observed failure mode at 512 daemons.
    """
    sim = cluster.sim
    fe = cluster.front_end
    topo = topology or TBONTopology.one_deep(len(backend_nodes))
    t0 = sim.now

    # placement: comm positions from the comm pool, BEs in node order
    placement: dict[int, Node] = {0: fe}
    comm_pool = list(comm_nodes or [])
    be_iter = iter(backend_nodes)
    for pos in range(1, topo.size):
        if topo.kind[pos] == "comm":
            if not comm_pool:
                raise StartupFailure("no nodes available for comm daemons")
            placement[pos] = comm_pool.pop(0)
        else:
            placement[pos] = next(be_iter)

    # topology distributed through one shared file: write once...
    topo_bytes = json.dumps(topo.to_jsonable()).encode()
    topo_file_mb = len(topo_bytes) / (1024 * 1024)
    yield from cluster.fs.load_image(topo_file_mb)
    t_topo_dist = sim.now - t0

    # ...then sequential rsh spawn of every daemon (clients held open);
    # every daemon re-reads the topology file right after it starts
    # (shared-file contention), which the post-spawn hook charges inside
    # the spawn window exactly as the historical loop did
    def read_topo_file(i, node, proc):
        yield from cluster.fs.load_image(topo_file_mb)

    launch = yield from SerialRshStrategy().launch(LaunchRequest(
        cluster=cluster,
        nodes=[placement[pos] for pos in range(1, topo.size)],
        executable=daemon_executable,
        args_for=lambda i, node: (f"pos={i + 1}",),
        image_mb=image_mb,
        hold_clients=True,
        post_spawn=read_topo_file,
        source=fe))
    report = launch.report
    report.mechanism = "mrnet-rsh"
    if report.failed:
        raise StartupFailure(
            f"ad-hoc startup failed after {launch.n_spawned} daemons: "
            f"{report.failure}", spawned=launch.n_spawned)
    report.n_daemons = topo.size - 1
    report.t_topo_dist = t_topo_dist
    report.fe_procs_peak = fe.max_uid_procs_seen

    # daemons connect to their parents (parallel) and FE handshakes streams
    t_conn0 = sim.now

    def connect_one(pos: int):
        parent = topo.parent[pos]
        yield from cluster.network.connect(placement[pos],
                                           placement[parent])

    procs = [sim.process(connect_one(pos), name=f"tbon-conn:{pos}")
             for pos in range(1, topo.size)]
    yield sim.all_of(procs)
    report.t_connect = sim.now - t_conn0

    t_hs0 = sim.now
    n_be = len(topo.backends())  # simlint: allow[agg-leaves] -- mrnet path, never hybrid
    yield sim.timeout(per_be_handshake * n_be)
    report.t_handshake = sim.now - t_hs0

    overlay = _build_overlay(cluster, topo, placement, stream_filter)
    report.total = sim.now - t0
    return overlay, report


# ---------------------------------------------------------------------------
# LaunchMON startup
# ---------------------------------------------------------------------------

def launchmon_startup(fe_api, session, job: RMJob,
                      topology: Optional[TBONTopology] = None,
                      daemon_executable: str = "stat_be",
                      image_mb: float = 18.0,
                      stream_filter: str = "concat",
                      per_be_handshake: float = MRNET_PER_BE_HANDSHAKE,
                      daemon_body: Optional[Callable] = None,
                      aggregate_body: Optional[Callable] = None,
                      ) -> Generator[Any, Any, tuple[Overlay, StartupReport]]:
    """Launch and connect a TBON through LaunchMON (attachAndSpawn path).

    ``fe_api`` is a :class:`repro.fe.ToolFrontEnd`; ``session`` a fresh
    session. The topology rides the LMONP handshake as piggybacked user
    data; daemon placement is distributed with one LMONP message + ICCL
    broadcast. ``daemon_body(be, ctx, endpoint)`` runs in every daemon after
    the overlay is connected (this is where a tool like STAT does its work).

    Hybrid topologies (ones carrying ``"agg"`` positions -- see
    :meth:`TBONTopology.hybrid_one_deep`) additionally run
    ``aggregate_body(pos, lo, hi, n_contrib, endpoint)`` as one emitter
    process per aggregate subtree, started at the same barrier the daemon
    bodies pass (tree connected): this is where the tool contributes the
    collapsed span's analytic wave payload. Aggregate positions are never
    placed on nodes and never spawn daemons; their launch-phase charges
    are folded in by the caller (see ``LaunchReport.fold_aggregate``).
    """
    cluster = fe_api.cluster
    sim = cluster.sim
    report = StartupReport("launchmon", n_daemons=0)
    t0 = sim.now

    hosts: dict[str, None] = {}
    for t in job.tasks:
        hosts.setdefault(t.host)
    n_be = len(hosts)
    topo = topology or TBONTopology.one_deep(n_be)
    # the RPDTAB hosts place only the *simulated* back ends, so aggregate
    # positions are deliberately absent from this count
    n_be_slots = len(topo.backends())  # simlint: allow[agg-leaves]
    if n_be_slots != n_be:
        raise StartupFailure(
            f"topology has {n_be_slots} BE slots for {n_be} nodes")
    report.n_daemons = topo.size - 1 - len(topo.agg_positions())
    report.n_virtual_daemons = topo.virtual_daemon_count()

    shared: dict[str, Any] = {}

    def overlay_daemon(ctx):
        be = BackEnd(ctx)
        yield from be.init()
        yield from be.ready()
        # master receives placement over LMONP, ICCL-broadcasts it
        if be.am_i_master():
            info = yield from be.recv_usrdata()
        else:
            info = None
        info = yield from be.broadcast(info)
        # every daemon decodes the piggybacked topology and the broadcast
        # placement; the decode costs no virtual time, so daemons of one
        # session share one parsed form instead of each re-parsing the
        # same wire object -- at 64k daemons the per-daemon parses were
        # an O(N^2) wall-clock term that dwarfed the simulation itself
        wire = ctx.usr_data_init["topology"]
        if REVERT_SHARED_PARSE or shared.get("topo_wire") is not wire:
            shared["topo_wire"] = wire
            shared["topo_parsed"] = TBONTopology.from_jsonable(wire)
            shared["be_positions"] = shared["topo_parsed"].backends()  # simlint: allow[agg-leaves] -- daemon-side parse: only simulated daemons exist
        topo_l = shared["topo_parsed"]
        if REVERT_SHARED_PARSE or shared.get("placement_wire") is not info:
            shared["placement_wire"] = info
            shared["placement_names"] = {
                int(k): v for k, v in info["placement"].items()}
        placement_names = shared["placement_names"]
        my_pos = shared["be_positions"][ctx.rank]
        parent_pos = topo_l.parent[my_pos]
        parent_node = cluster.node(placement_names[parent_pos])
        yield from cluster.network.connect(ctx.node, parent_node)
        done = yield from be.gather("connected")
        if be.am_i_master():
            yield from be.send_usrdata({"connected": len(done)})
        if daemon_body is not None:
            endpoint = shared["overlay"].endpoint(my_pos)
            yield from daemon_body(be, ctx, endpoint)
        yield from be.finalize()

    spec = DaemonSpec(daemon_executable, main=overlay_daemon,
                      image_mb=image_mb)
    t_spawn0 = sim.now
    yield from fe_api.attach_and_spawn(
        session, job, spec,
        usr_data={"topology": topo.to_jsonable()})
    report.t_spawn = sim.now - t_spawn0
    # the RM's bulk launch recorded how much of that window was image
    # staging; carve it out so the phases attribute like every other path
    rm_report = getattr(fe_api.rm, "last_launch_report", None)
    if rm_report is not None:
        report.t_image_stage = rm_report.t_image_stage
        report.t_spawn = max(0.0, report.t_spawn - rm_report.t_image_stage)
        report.staging_mode = rm_report.staging_mode

    # build placement: BE position i <-> i-th host in RPDTAB order; comm
    # positions come from MW daemons (launch_mw_daemons) -- the
    # experiments use the paper's 1-deep topology (no comm daemons).
    placement: dict[int, Node] = {0: cluster.front_end}
    comm_positions = topo.comm_positions()
    mw_runtimes: list = []
    if comm_positions:
        def comm_daemon(ctx):
            yield from _comm_mw_daemon(ctx, mw_runtimes)

        mw_spec = DaemonSpec("mrnet_commnode", main=comm_daemon,
                             image_mb=image_mb)
        yield from fe_api.launch_mw_daemons(
            session, mw_spec, n_nodes=len(comm_positions))
        for pos, d in zip(comm_positions, session.mw_daemons):
            placement[pos] = d.node
    for pos, host in zip(topo.backends(), session.rpdtab.hosts):  # simlint: allow[agg-leaves] -- placement: aggregates occupy no node
        placement[pos] = cluster.node(host)

    overlay = _build_overlay(cluster, topo, placement, stream_filter)
    shared["overlay"] = overlay
    # the session owns the overlay from here on: Session.open_stream()
    # hands out persistent data-plane streams over it. It is also
    # recorded on the *job*: routers and streams are data plane and
    # outlive the session object, so a restarted control plane
    # re-adopting the job (see repro.ctl.restore) can re-reference the
    # live overlay instead of rebuilding -- or worse, respawning -- it.
    session.overlay = overlay
    job.overlay = overlay
    # bind each comm daemon to its overlay position, enabling the MW
    # stream face (stream_open / stream_subscribe taps / stream_state)
    mw_runtimes.sort(key=lambda mw: mw.get_personality())
    for pos, mw in zip(comm_positions, mw_runtimes):
        mw.attach_overlay(overlay.endpoint(pos))
    session.mw_runtimes = mw_runtimes
    job.mw_runtimes = mw_runtimes

    # distribute placement over LMONP; daemons connect; master confirms
    t_conn0 = sim.now
    yield from fe_api.send_usrdata_be(session, {
        "placement": {str(p): n.name for p, n in placement.items()}})
    ack = yield from fe_api.recv_usrdata_be(session)
    if ack.get("connected") != n_be:
        raise StartupFailure(
            f"only {ack.get('connected')} of {n_be} daemons connected")
    report.t_connect = sim.now - t_conn0

    # aggregate emitters join the plane at the same barrier the daemon
    # bodies pass (tree connected); they are pure simulation processes --
    # no node, no placement, no daemon -- contributing the collapsed
    # spans' analytic payloads
    if aggregate_body is not None:
        for pos in topo.agg_positions():
            lo, hi = topo.agg_span(pos)
            sim.process(
                aggregate_body(pos, lo, hi, topo.contrib_weight(pos),
                               overlay.endpoint(pos)),
                name=f"tbon-agg:{pos}")

    t_hs0 = sim.now
    yield sim.timeout(per_be_handshake * n_be)
    report.t_handshake = sim.now - t_hs0

    report.fe_procs_peak = cluster.front_end.max_uid_procs_seen
    report.total = sim.now - t0
    return overlay, report


def _comm_mw_daemon(ctx, registry: list):
    """Comm-node daemon body: init, ready, serve (routing is overlay-level).

    The runtime object is parked in ``registry`` so the startup path can
    bind it to its overlay position once the overlay exists -- that is
    what turns on the MW stream face (``session.mw_runtimes``).
    """
    from repro.mw import Middleware

    mw = Middleware(ctx)
    yield from mw.init()
    yield from mw.ready()
    registry.append(mw)
