"""TBON tree topologies over *positions* (root=FE, internals, leaves=BEs).

A topology is pure structure; placement onto cluster nodes happens at
startup. Position 0 is always the front end. The paper's Figure 6 uses the
``1-deep`` (flat) shape: every back end is a direct child of the front end,
with no communication daemons.

Hybrid topologies additionally carry ``"agg"`` leaves: aggregate positions
standing in for a contiguous run of homogeneous back-end leaves (for flat
trees) or whole comm subtrees (for balanced trees).  An aggregate position
is never placed on a cluster node and never spawns a daemon process; its
launch/handshake/stream contributions are charged analytically from the
perfmodel.  ``aggregates`` records ``(position, leaf_lo, leaf_hi,
n_contrib)`` for each such node, where ``leaf_lo..leaf_hi`` is the span of
*virtual* leaf indices covered and ``n_contrib`` is the number of physical
child messages the node stands in for at its parent (leaves for flat trees,
comm daemons for balanced trees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TBONTopology", "TopologyError"]


class TopologyError(ValueError):
    """Malformed topology request or structure."""


@dataclass(frozen=True)
class TBONTopology:
    """A rooted tree: ``parent[p]`` is None only for the root (position 0).

    ``kind[p]`` is one of ``"fe"``, ``"comm"``, ``"be"``, ``"agg"``. Leaves
    must be back ends or aggregates and internal positions must be fe/comm.
    """

    parent: tuple[Optional[int], ...]
    kind: tuple[str, ...]
    aggregates: tuple = ()

    def __post_init__(self):
        if not self.parent or self.parent[0] is not None:
            raise TopologyError("position 0 must be the parentless root")
        if self.kind[0] != "fe":
            raise TopologyError("position 0 must be the front end")
        n = len(self.parent)
        if len(self.kind) != n:
            raise TopologyError("parent/kind length mismatch")
        # one O(n) pass builds the child lists the queries (and the leaf
        # validation below) read; per-call recomputation made topology
        # construction O(n^2) and dominated large-scale launch profiles
        kids: list[list[int]] = [[] for _ in range(n)]
        for p in range(1, n):
            par = self.parent[p]
            if par is None or not 0 <= par < n or par == p:
                raise TopologyError(f"bad parent for position {p}: {par}")
            kids[par].append(p)
        for p in range(n):
            is_leaf = not kids[p]
            if is_leaf and p != 0 and self.kind[p] not in ("be", "agg"):
                raise TopologyError(f"leaf position {p} is {self.kind[p]}")
            if not is_leaf and self.kind[p] in ("be", "agg"):
                raise TopologyError(f"internal position {p} is a leaf kind")
        agg_index: dict[int, tuple[int, int, int]] = {}
        for entry in self.aggregates:
            pos, lo, hi, n_contrib = entry
            if not 0 <= pos < n or self.kind[pos] != "agg":
                raise TopologyError(f"aggregate entry at non-agg position {pos}")
            if lo >= hi or n_contrib < 1:
                raise TopologyError(f"degenerate aggregate span at position {pos}")
            agg_index[pos] = (lo, hi, n_contrib)
        declared = {p for p in range(n) if self.kind[p] == "agg"}
        if declared != set(agg_index):
            raise TopologyError("agg positions and aggregates metadata disagree")
        # frozen dataclass: stash the derived indexes via object.__setattr__
        # (instance state only -- field-based __eq__/__hash__ are unaffected)
        object.__setattr__(self, "_kids", tuple(tuple(k) for k in kids))
        object.__setattr__(
            self, "_backends",
            tuple(p for p in range(n) if self.kind[p] == "be"))
        object.__setattr__(
            self, "_comms",
            tuple(p for p in range(n) if self.kind[p] == "comm"))
        object.__setattr__(self, "_agg_index", agg_index)
        object.__setattr__(
            self, "_leaves",
            tuple(p for p in range(n) if self.kind[p] in ("be", "agg")))
        object.__setattr__(
            self, "_virtual_leaves",
            len(self._backends) + sum(hi - lo for lo, hi, _ in agg_index.values()))

    # -- queries ------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.parent)

    def children(self, p: int) -> list[int]:
        return list(self._kids[p])

    def backends(self) -> list[int]:
        """Positions of *simulated* back ends (excludes aggregates)."""
        return list(self._backends)

    def comm_positions(self) -> list[int]:
        return list(self._comms)

    def leaves(self) -> list[int]:
        """All leaf positions -- simulated back ends AND aggregate nodes.

        This is the aggregate-aware accessor hot paths should use instead
        of iterating ``backends()`` directly (see the ``agg-leaves``
        simlint rule)."""
        return list(self._leaves)

    def agg_positions(self) -> list[int]:
        return sorted(self._agg_index)

    def agg_span(self, p: int) -> tuple[int, int]:
        """Virtual leaf-index span ``(lo, hi)`` covered by aggregate ``p``."""
        lo, hi, _ = self._agg_index[p]
        return lo, hi

    def leaf_weight(self, p: int) -> int:
        """Number of virtual leaves position ``p`` stands in for."""
        if p in self._agg_index:
            lo, hi, _ = self._agg_index[p]
            return hi - lo
        return 1 if self.kind[p] == "be" else 0

    def contrib_weight(self, p: int) -> int:
        """Number of physical child messages position ``p`` stands in for
        at its parent (1 for every simulated position)."""
        if p in self._agg_index:
            return self._agg_index[p][2]
        return 1

    def virtual_child_count(self, p: int) -> int:
        """Child count of ``p`` with aggregates expanded to the physical
        fan-in they model."""
        return sum(self.contrib_weight(c) for c in self._kids[p])

    def virtual_leaf_count(self) -> int:
        """Total leaves with aggregates expanded (== n_daemons modeled)."""
        return self._virtual_leaves

    def virtual_daemon_count(self) -> int:
        """All modeled daemons: simulated positions (minus the FE and the
        aggregate placeholders) plus each aggregate's collapsed leaves and,
        for grouped aggregates, its collapsed comm daemons."""
        n = self.size - 1 - len(self._agg_index)
        for lo, hi, n_contrib in self._agg_index.values():
            span = hi - lo
            n += span + (n_contrib if n_contrib < span else 0)
        return n

    def depth(self) -> int:
        best = 0
        for p in range(self.size):
            d, q = 0, self.parent[p]
            while q is not None:
                d += 1
                q = self.parent[q]
            best = max(best, d)
        return best

    def to_jsonable(self) -> dict:
        """Wire form for LMONP piggybacking / topology files."""
        obj = {"parent": [(-1 if p is None else p) for p in self.parent],
               "kind": list(self.kind)}
        if self.aggregates:
            obj["aggregates"] = [list(entry) for entry in self.aggregates]
        return obj

    @classmethod
    def from_jsonable(cls, obj: dict) -> "TBONTopology":
        parent = tuple(None if p == -1 else p for p in obj["parent"])
        aggregates = tuple(tuple(e) for e in obj.get("aggregates", ()))
        return cls(parent, tuple(obj["kind"]), aggregates)

    # -- constructors ----------------------------------------------------------
    @classmethod
    def one_deep(cls, n_backends: int) -> "TBONTopology":
        """The paper's 1-deep shape: FE -> all back ends directly."""
        if n_backends < 1:
            raise TopologyError("need at least one back end")
        parent = (None,) + (0,) * n_backends
        kind = ("fe",) + ("be",) * n_backends
        return cls(parent, kind)

    @classmethod
    def balanced(cls, n_backends: int, fanout: int) -> "TBONTopology":
        """FE -> one layer of comm daemons -> back ends, fanout-limited."""
        if n_backends < 1 or fanout < 2:
            raise TopologyError("invalid balanced topology parameters")
        n_comm = -(-n_backends // fanout)
        if n_comm <= 1:
            return cls.one_deep(n_backends)
        parent: list[Optional[int]] = [None]
        kind = ["fe"]
        for _ in range(n_comm):
            parent.append(0)
            kind.append("comm")
        for b in range(n_backends):
            parent.append(1 + b % n_comm)
            kind.append("be")
        return cls(tuple(parent), tuple(kind))

    @classmethod
    def hybrid_one_deep(cls, plan) -> "TBONTopology":
        """Flat hybrid tree from an :class:`~repro.simx.aggregate.AggregationPlan`.

        Exact leaves become real BE children of the FE in leaf order (so
        ``backends()`` still zips against the RPDTAB host list); each
        aggregate subtree becomes one ``"agg"`` child inserted at its
        place in leaf order."""
        parent: list[Optional[int]] = [None]
        kind = ["fe"]
        aggregates = []
        starts = {sub.leaf_lo: sub for sub in plan.subtrees}
        leaf = 0
        while leaf < plan.n_total:
            sub = starts.get(leaf)
            if sub is not None:
                aggregates.append((len(parent), sub.leaf_lo, sub.leaf_hi, sub.n_contrib))
                parent.append(0)
                kind.append("agg")
                leaf = sub.leaf_hi
            else:
                parent.append(0)
                kind.append("be")
                leaf += 1
        return cls(tuple(parent), tuple(kind), tuple(aggregates))

    @classmethod
    def hybrid_balanced(cls, plan, fanout: int) -> "TBONTopology":
        """Balanced hybrid tree: exact groups keep their comm + contiguous
        BEs; each aggregate subtree (a run of whole groups) becomes one
        ``"agg"`` child of the FE standing in for ``n_contrib`` comms.

        Requires ``plan.group == fanout`` so the aggregation boundary is
        comm-subtree aligned."""
        if plan.group != fanout:
            raise TopologyError(
                f"balanced hybrid needs group-aligned plan (group {plan.group} != fanout {fanout})"
            )
        parent: list[Optional[int]] = [None]
        kind = ["fe"]
        aggregates = []
        starts = {sub.leaf_lo: sub for sub in plan.subtrees}
        leaf = 0
        while leaf < plan.n_total:
            sub = starts.get(leaf)
            if sub is not None:
                aggregates.append((len(parent), sub.leaf_lo, sub.leaf_hi, sub.n_contrib))
                parent.append(0)
                kind.append("agg")
                leaf = sub.leaf_hi
            else:
                comm_pos = len(parent)
                parent.append(0)
                kind.append("comm")
                group = min(fanout, plan.n_total - leaf)
                for _ in range(group):
                    parent.append(comm_pos)
                    kind.append("be")
                leaf += group
        return cls(tuple(parent), tuple(kind), tuple(aggregates))
