"""TBON tree topologies over *positions* (root=FE, internals, leaves=BEs).

A topology is pure structure; placement onto cluster nodes happens at
startup. Position 0 is always the front end. The paper's Figure 6 uses the
``1-deep`` (flat) shape: every back end is a direct child of the front end,
with no communication daemons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TBONTopology", "TopologyError"]


class TopologyError(ValueError):
    """Malformed topology request or structure."""


@dataclass(frozen=True)
class TBONTopology:
    """A rooted tree: ``parent[p]`` is None only for the root (position 0).

    ``kind[p]`` is one of ``"fe"``, ``"comm"``, ``"be"``. Leaves must all be
    back ends and internal positions must be fe/comm.
    """

    parent: tuple[Optional[int], ...]
    kind: tuple[str, ...]

    def __post_init__(self):
        if not self.parent or self.parent[0] is not None:
            raise TopologyError("position 0 must be the parentless root")
        if self.kind[0] != "fe":
            raise TopologyError("position 0 must be the front end")
        n = len(self.parent)
        if len(self.kind) != n:
            raise TopologyError("parent/kind length mismatch")
        # one O(n) pass builds the child lists the queries (and the leaf
        # validation below) read; per-call recomputation made topology
        # construction O(n^2) and dominated large-scale launch profiles
        kids: list[list[int]] = [[] for _ in range(n)]
        for p in range(1, n):
            par = self.parent[p]
            if par is None or not 0 <= par < n or par == p:
                raise TopologyError(f"bad parent for position {p}: {par}")
            kids[par].append(p)
        for p in range(n):
            is_leaf = not kids[p]
            if is_leaf and p != 0 and self.kind[p] != "be":
                raise TopologyError(f"leaf position {p} is {self.kind[p]}")
            if not is_leaf and self.kind[p] == "be":
                raise TopologyError(f"internal position {p} is a back end")
        # frozen dataclass: stash the derived indexes via object.__setattr__
        # (instance state only -- field-based __eq__/__hash__ are unaffected)
        object.__setattr__(self, "_kids", tuple(tuple(k) for k in kids))
        object.__setattr__(
            self, "_backends",
            tuple(p for p in range(n) if self.kind[p] == "be"))
        object.__setattr__(
            self, "_comms",
            tuple(p for p in range(n) if self.kind[p] == "comm"))

    # -- queries ------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.parent)

    def children(self, p: int) -> list[int]:
        return list(self._kids[p])

    def backends(self) -> list[int]:
        return list(self._backends)

    def comm_positions(self) -> list[int]:
        return list(self._comms)

    def depth(self) -> int:
        best = 0
        for p in range(self.size):
            d, q = 0, self.parent[p]
            while q is not None:
                d += 1
                q = self.parent[q]
            best = max(best, d)
        return best

    def to_jsonable(self) -> dict:
        """Wire form for LMONP piggybacking / topology files."""
        return {"parent": [(-1 if p is None else p) for p in self.parent],
                "kind": list(self.kind)}

    @classmethod
    def from_jsonable(cls, obj: dict) -> "TBONTopology":
        parent = tuple(None if p == -1 else p for p in obj["parent"])
        return cls(parent, tuple(obj["kind"]))

    # -- constructors ----------------------------------------------------------
    @classmethod
    def one_deep(cls, n_backends: int) -> "TBONTopology":
        """The paper's 1-deep shape: FE -> all back ends directly."""
        if n_backends < 1:
            raise TopologyError("need at least one back end")
        parent = (None,) + (0,) * n_backends
        kind = ("fe",) + ("be",) * n_backends
        return cls(parent, kind)

    @classmethod
    def balanced(cls, n_backends: int, fanout: int) -> "TBONTopology":
        """FE -> one layer of comm daemons -> back ends, fanout-limited."""
        if n_backends < 1 or fanout < 2:
            raise TopologyError("invalid balanced topology parameters")
        n_comm = -(-n_backends // fanout)
        if n_comm <= 1:
            return cls.one_deep(n_backends)
        parent: list[Optional[int]] = [None]
        kind = ["fe"]
        for _ in range(n_comm):
            parent.append(0)
            kind.append("comm")
        for b in range(n_backends):
            parent.append(1 + b % n_comm)
            kind.append("be")
        return cls(tuple(parent), tuple(kind))
