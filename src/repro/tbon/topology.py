"""TBON tree topologies over *positions* (root=FE, internals, leaves=BEs).

A topology is pure structure; placement onto cluster nodes happens at
startup. Position 0 is always the front end. The paper's Figure 6 uses the
``1-deep`` (flat) shape: every back end is a direct child of the front end,
with no communication daemons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TBONTopology", "TopologyError"]


class TopologyError(ValueError):
    """Malformed topology request or structure."""


@dataclass(frozen=True)
class TBONTopology:
    """A rooted tree: ``parent[p]`` is None only for the root (position 0).

    ``kind[p]`` is one of ``"fe"``, ``"comm"``, ``"be"``. Leaves must all be
    back ends and internal positions must be fe/comm.
    """

    parent: tuple[Optional[int], ...]
    kind: tuple[str, ...]

    def __post_init__(self):
        if not self.parent or self.parent[0] is not None:
            raise TopologyError("position 0 must be the parentless root")
        if self.kind[0] != "fe":
            raise TopologyError("position 0 must be the front end")
        n = len(self.parent)
        if len(self.kind) != n:
            raise TopologyError("parent/kind length mismatch")
        for p in range(1, n):
            par = self.parent[p]
            if par is None or not 0 <= par < n or par == p:
                raise TopologyError(f"bad parent for position {p}: {par}")
        for p in range(n):
            is_leaf = not self.children(p)
            if is_leaf and p != 0 and self.kind[p] != "be":
                raise TopologyError(f"leaf position {p} is {self.kind[p]}")
            if not is_leaf and self.kind[p] == "be":
                raise TopologyError(f"internal position {p} is a back end")

    # -- queries ------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.parent)

    def children(self, p: int) -> list[int]:
        return [q for q in range(self.size) if self.parent[q] == p]

    def backends(self) -> list[int]:
        return [p for p in range(self.size) if self.kind[p] == "be"]

    def comm_positions(self) -> list[int]:
        return [p for p in range(self.size) if self.kind[p] == "comm"]

    def depth(self) -> int:
        best = 0
        for p in range(self.size):
            d, q = 0, self.parent[p]
            while q is not None:
                d += 1
                q = self.parent[q]
            best = max(best, d)
        return best

    def to_jsonable(self) -> dict:
        """Wire form for LMONP piggybacking / topology files."""
        return {"parent": [(-1 if p is None else p) for p in self.parent],
                "kind": list(self.kind)}

    @classmethod
    def from_jsonable(cls, obj: dict) -> "TBONTopology":
        parent = tuple(None if p == -1 else p for p in obj["parent"])
        return cls(parent, tuple(obj["kind"]))

    # -- constructors ----------------------------------------------------------
    @classmethod
    def one_deep(cls, n_backends: int) -> "TBONTopology":
        """The paper's 1-deep shape: FE -> all back ends directly."""
        if n_backends < 1:
            raise TopologyError("need at least one back end")
        parent = (None,) + (0,) * n_backends
        kind = ("fe",) + ("be",) * n_backends
        return cls(parent, kind)

    @classmethod
    def balanced(cls, n_backends: int, fanout: int) -> "TBONTopology":
        """FE -> one layer of comm daemons -> back ends, fanout-limited."""
        if n_backends < 1 or fanout < 2:
            raise TopologyError("invalid balanced topology parameters")
        n_comm = -(-n_backends // fanout)
        if n_comm <= 1:
            return cls.one_deep(n_backends)
        parent: list[Optional[int]] = [None]
        kind = ["fe"]
        for _ in range(n_comm):
            parent.append(0)
            kind.append("comm")
        for b in range(n_backends):
            parent.append(1 + b % n_comm)
            kind.append("be")
        return cls(tuple(parent), tuple(kind))
