"""Credit-based flow control and reporting for persistent TBON streams.

One-shot wave reductions (the seed's data path) buffer without bound: a
router's inbox grows as fast as its children can send. A *sustained* data
plane cannot afford that -- a slow subscriber or a congested router must
push back on its producers instead of queueing forever. This module
provides the flow-control primitives the streaming plane is built from:

:class:`BoundedInbox`
    A credit-gated FIFO feeding one position's stream router. Senders
    acquire one credit (from a FIFO token pool of ``credit_limit``) before
    committing a packet; the router returns the credit when it dequeues
    the packet. At most ``credit_limit`` packets can therefore be queued
    or in flight toward the position at once -- the inbox depth is
    structurally bounded, and a stalled consumer propagates backpressure
    upstream hop by hop (router blocked forwarding -> stops dequeueing ->
    credits stop recycling -> children stall on acquire -> ... down to
    the publishing leaves).

:class:`FlowStats`
    Per-position accounting: inbox high-water mark, number of sends that
    had to wait for a credit, and the total virtual time spent waiting.
    Stats objects survive overlay repairs (the rebuilt plane keeps
    accumulating into them).

:class:`WaveTiming` / :class:`StreamReport`
    Per-wave latency attribution in the style of
    :class:`~repro.launch.LaunchReport`: every delivered wave decomposes
    **exactly** into ``t_fanin`` (first leaf publish until the last
    contribution reaches the root), ``t_filter`` (the root's merge
    processing) and ``t_deliver`` (delivery-queue wait until the
    subscriber picks it up) -- the three segments sum to the measured
    end-to-end wave latency by construction, so scaling loss in a stream
    is attributed to a phase, never guessed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.simx import Simulator, Store

__all__ = ["BoundedInbox", "FlowStats", "StreamError", "StreamReport",
           "WaveTiming", "STREAM_PHASES"]

#: the per-wave phase fields of a stream report, in critical-path order
STREAM_PHASES = ("t_fanin", "t_filter", "t_deliver")


class StreamError(RuntimeError):
    """Stream protocol violation (duplicate contribution, misuse...)."""


@dataclass
class FlowStats:
    """Flow-control accounting for one position's stream inbox."""

    position: int
    credit_limit: int
    #: deepest the inbox queue ever got (never exceeds ``credit_limit``)
    high_water: int = 0
    #: sends that found no credit available and had to wait
    n_stalls: int = 0
    #: total virtual seconds senders spent waiting for a credit
    t_stalled: float = 0.0
    #: packets accepted into the inbox over the stream's lifetime
    n_packets: int = 0

    def as_dict(self) -> dict:
        return {"position": self.position,
                "credit_limit": self.credit_limit,
                "high_water": self.high_water,
                "n_stalls": self.n_stalls,
                "t_stalled": self.t_stalled,
                "n_packets": self.n_packets}


class BoundedInbox:
    """A credit-gated FIFO queue for one position of one stream.

    Protocol: a sender yields :meth:`acquire` (one credit; the
    backpressure point), optionally models its transfer delay, then calls
    :meth:`commit` (non-blocking -- the credit already reserved the
    slot). The consumer yields :meth:`get` and calls :meth:`release`
    for every dequeued packet, recycling the credit to the oldest waiting
    sender (FIFO-fair, so no child starves).
    """

    def __init__(self, sim: Simulator, position: int, credit_limit: int,
                 stats: Optional[FlowStats] = None):
        if credit_limit < 1:
            raise StreamError(
                f"credit_limit must be >= 1, got {credit_limit}")
        self.sim = sim
        self.position = position
        self.credit_limit = credit_limit
        self.stats = stats or FlowStats(position, credit_limit)
        self._queue: Store = Store(sim)
        #: credits handed out and not yet returned (== packets queued or
        #: in flight); the invariant ``rebuild_gate`` restores from
        self._outstanding = 0
        self._credits: Store = Store(sim)
        for _ in range(credit_limit):
            self._credits.put(None)

    # -- sender side -------------------------------------------------------
    def acquire(self) -> Generator[Any, Any, None]:
        """Obtain one send credit (blocks while the inbox is saturated)."""
        t0 = self.sim.now
        ev = self._credits.get()
        if not ev.triggered:
            self.stats.n_stalls += 1
        yield ev
        self._outstanding += 1
        self.stats.t_stalled += self.sim.now - t0

    def credit_event(self):
        """The raw credit-get event (for callers racing it against
        another event, e.g. a repair-epoch change); pair with
        :meth:`note_stall_started` / :meth:`note_stall_ended` and call
        :meth:`note_acquired` when the credit is actually used."""
        return self._credits.get()

    def note_stall_started(self) -> None:
        self.stats.n_stalls += 1

    def note_stall_ended(self, t0: float) -> None:
        self.stats.t_stalled += self.sim.now - t0

    def note_acquired(self) -> None:
        """Record that a raw :meth:`credit_event` credit went into use."""
        self._outstanding += 1

    def commit(self, sender: int, item: Any) -> None:
        """Enqueue after a successful :meth:`acquire` (never blocks)."""
        before = len(self._queue)
        self._queue.put((sender, item))
        # a packet handed straight to a waiting consumer still occupied
        # the queue for an instant: count it, so high_water reflects the
        # deepest momentary occupancy (bounded by the credit limit)
        depth = max(len(self._queue), before + 1)
        if depth > self.stats.high_water:
            self.stats.high_water = depth
        self.stats.n_packets += 1

    # -- consumer side ---------------------------------------------------------
    def get(self):
        """Event triggering with the oldest ``(sender, item)`` pair."""
        return self._queue.get()

    def release(self) -> None:
        """Return one credit (call once per dequeued packet)."""
        self._outstanding -= 1
        self._credits.put(None)

    def rebuild_gate(self) -> None:
        """Replace the credit gate, restoring the invariant after the
        consumer side was torn down mid-acquire.

        An interrupted consumer cannot un-register its pending credit
        getter, so a later released credit would be handed to the corpse
        and leak (deadlocking the queue once ``credit_limit`` repairs
        accumulate). Rebuilding abandons every stale getter with its
        store and refills exactly ``credit_limit - outstanding`` tokens
        -- outstanding credits stay attached to their queued/in-flight
        packets and return through :meth:`release` as usual.
        """
        self._credits = Store(self.sim)
        for _ in range(self.credit_limit - self._outstanding):
            self._credits.put(None)

    @property
    def depth(self) -> int:
        return len(self._queue)


@dataclass
class WaveTiming:
    """One wave's critical-path stamps (virtual seconds).

    The three phase spans partition the end-to-end latency exactly:
    ``t_fanin + t_filter + t_deliver == latency``.
    """

    wave: int
    #: first leaf publish for this wave
    t_published: float = 0.0
    #: last contribution of the wave arrived at the root router
    t_assembled: float = 0.0
    #: root filter finished merging the wave
    t_filtered: float = 0.0
    #: subscriber dequeued the merged wave
    t_delivered: float = 0.0
    #: contributions merged at the root (== live leaves... unless repaired)
    n_contributions: int = 0
    #: the wave crossed at least one overlay repair and was re-published
    republished: bool = False

    @property
    def delivered(self) -> bool:
        return self.t_delivered > 0.0

    @property
    def latency(self) -> float:
        return self.t_delivered - self.t_published

    def phases(self) -> dict:
        """Exact per-wave decomposition (sums to :attr:`latency`)."""
        return {"t_fanin": self.t_assembled - self.t_published,
                "t_filter": self.t_filtered - self.t_assembled,
                "t_deliver": self.t_delivered - self.t_filtered}

    def as_dict(self) -> dict:
        out = {"wave": self.wave, "latency": self.latency,
               "n_contributions": self.n_contributions,
               "republished": self.republished}
        out.update(self.phases())
        return out


@dataclass
class StreamReport:
    """One stream's lifetime accounting: waves, phases, flow control.

    The stream-plane sibling of :class:`~repro.launch.LaunchReport`:
    where a launch report attributes *startup* cost to phases, this
    attributes *sustained-traffic* cost -- per-wave latency decomposed
    into fanin/filter/deliver spans that sum exactly, plus the per-
    position flow-control counters (high-water, stalls) that say where
    backpressure bit.
    """

    stream_id: int
    filter_name: str
    n_leaves: int
    credit_limit: int
    window: int = 0
    t_open: float = 0.0
    t_close: float = 0.0
    #: leaf publish calls (re-publishes after a repair not included)
    n_published: int = 0
    #: merged waves handed to the subscriber
    n_delivered: int = 0
    #: overlay repairs the stream lived through
    n_repairs: int = 0
    #: unacked wave payloads re-injected by repairs
    n_republished: int = 0
    #: wave -> timing stamps
    waves: dict = field(default_factory=dict)
    #: position -> flow stats for its stream inbox (-1 = root delivery)
    flow: dict = field(default_factory=dict)

    # -- wave/latency queries ---------------------------------------------
    def delivered_waves(self) -> list:
        """Timings of every delivered wave, in wave order."""
        return [self.waves[w] for w in sorted(self.waves)
                if self.waves[w].delivered]

    def total_latency(self) -> float:
        """Sum of end-to-end latencies over all delivered waves."""
        return sum(wt.latency for wt in self.delivered_waves())

    def mean_latency(self) -> float:
        delivered = self.delivered_waves()
        return (sum(wt.latency for wt in delivered) / len(delivered)
                if delivered else 0.0)

    def phase_totals(self) -> dict:
        """Per-phase totals over delivered waves (sum == total_latency)."""
        totals = {name: 0.0 for name in STREAM_PHASES}
        for wt in self.delivered_waves():
            for name, span in wt.phases().items():
                totals[name] += span
        return totals

    def dominant_phase(self) -> str:
        """Costliest phase over the stream's life (loss attribution)."""
        totals = self.phase_totals()
        return max(STREAM_PHASES, key=lambda name: totals[name])

    def throughput(self) -> float:
        """Delivered waves per virtual second of active streaming."""
        delivered = self.delivered_waves()
        if len(delivered) < 2:
            return 0.0
        span = delivered[-1].t_delivered - delivered[0].t_published
        return len(delivered) / span if span > 0 else 0.0

    # -- flow-control queries ------------------------------------------------
    def max_inbox_depth(self) -> int:
        """Deepest any stream inbox got (credit limit is the ceiling)."""
        return max((s.high_water for s in self.flow.values()), default=0)

    def total_stalls(self) -> int:
        return sum(s.n_stalls for s in self.flow.values())

    def total_stall_time(self) -> float:
        return sum(s.t_stalled for s in self.flow.values())

    def as_dict(self) -> dict:
        return {
            "stream_id": self.stream_id,
            "filter": self.filter_name,
            "n_leaves": self.n_leaves,
            "credit_limit": self.credit_limit,
            "window": self.window,
            "n_published": self.n_published,
            "n_delivered": self.n_delivered,
            "n_repairs": self.n_repairs,
            "n_republished": self.n_republished,
            "throughput": self.throughput(),
            "mean_latency": self.mean_latency(),
            "total_latency": self.total_latency(),
            "phase_totals": self.phase_totals(),
            "dominant_phase": self.dominant_phase(),
            "max_inbox_depth": self.max_inbox_depth(),
            "n_stalls": self.total_stalls(),
            "t_stalled": self.total_stall_time(),
            "flow": {pos: s.as_dict()
                     for pos, s in sorted(self.flow.items())},
            "waves": [wt.as_dict() for wt in self.delivered_waves()],
        }
