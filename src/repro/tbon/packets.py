"""TBON packets and streams."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cluster.network import message_size

__all__ = ["Packet"]


@dataclass(frozen=True)
class Packet:
    """One TBON protocol unit.

    ``stream_id`` selects the stream (and thus the filter applied at
    internal positions); ``wave`` sequences upstream reductions so that an
    internal node knows which child contributions belong together;
    ``payload`` must be JSON-able (prefix trees ship as dicts).
    """

    stream_id: int
    wave: int
    payload: Any
    direction: str = "up"  # "up" | "down"

    #: the only legal routing directions: reductions flow up, broadcasts down
    DIRECTIONS = ("up", "down")

    #: framing bytes per packet (stream id + wave + direction + length);
    #: shared with the analytic model's hop-time term
    HEADER_BYTES = 24

    def __post_init__(self):
        if self.direction not in self.DIRECTIONS:
            raise ValueError(
                f"packet direction must be one of {self.DIRECTIONS}, "
                f"got {self.direction!r}")

    def wire_size(self) -> int:
        return self.HEADER_BYTES + message_size(self.payload)
