"""TBON packets and streams."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cluster.network import message_size

__all__ = ["Packet"]


@dataclass(frozen=True)
class Packet:
    """One TBON protocol unit.

    ``stream_id`` selects the stream (and thus the filter applied at
    internal positions); ``wave`` sequences upstream reductions so that an
    internal node knows which child contributions belong together;
    ``payload`` must be JSON-able (prefix trees ship as dicts).
    """

    stream_id: int
    wave: int
    payload: Any
    direction: str = "up"  # "up" | "down"

    def wire_size(self) -> int:
        return 24 + message_size(self.payload)
