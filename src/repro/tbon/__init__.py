"""repro.tbon -- a Tree-Based Overlay Network (MRNet-style).

Large-scale tools use TBONs for scalable multicast and data reduction
(Section 2): a front end, optional internal *communication daemons*, and
per-node back ends, connected in a tree. Packets broadcast down the tree
and gather up through *filters* that reduce child payloads at each internal
node (STAT's call-graph prefix-tree merge is the canonical filter).

Two startup paths are provided, matching Figure 6's comparison:

* :func:`~repro.tbon.startup.native_startup` -- the ad-hoc path: the front
  end rsh-es every daemon sequentially and distributes the topology through
  a shared file; it is linear in daemon count and collapses entirely when
  the front end can no longer fork rsh clients (512 daemons in the paper).
* :func:`~repro.tbon.startup.launchmon_startup` -- back ends come up through
  LaunchMON's RM-based spawn; topology rides the LMONP handshake as
  piggybacked user data; only the tree edges remain to connect.

The live :class:`Overlay` additionally *self-repairs*: when an internal
node dies, :meth:`Overlay.repair` reparents every orphaned subtree onto
its nearest live ancestor (parallel reconnects, paid in virtual time),
restarts the routing plane, and returns a :class:`RepairReport` whose cost
callers fold into a :class:`~repro.launch.LaunchReport`'s ``t_repair``
phase -- recovery structure designed into the platform, not bolted on.
"""

from repro.tbon.topology import TBONTopology, TopologyError
from repro.tbon.filters import (
    FILTER_REGISTRY,
    Filter,
    StatelessFilter,
    get_filter,
    make_filter,
    register_filter,
    register_stream_filter,
    stream_filter_names,
)
from repro.tbon.flow import (
    BoundedInbox,
    FlowStats,
    STREAM_PHASES,
    StreamError,
    StreamReport,
    WaveTiming,
)
from repro.tbon.packets import Packet
from repro.tbon.overlay import (
    DEFAULT_CREDIT_LIMIT,
    Overlay,
    OverlayEndpoint,
    RepairReport,
    Stream,
    StreamSpec,
)
from repro.tbon.startup import (
    MRNET_PER_BE_HANDSHAKE,
    StartupFailure,
    StartupReport,
    launchmon_startup,
    native_startup,
)

__all__ = [
    "BoundedInbox",
    "DEFAULT_CREDIT_LIMIT",
    "FILTER_REGISTRY",
    "Filter",
    "FlowStats",
    "MRNET_PER_BE_HANDSHAKE",
    "Overlay",
    "OverlayEndpoint",
    "Packet",
    "RepairReport",
    "STREAM_PHASES",
    "StartupFailure",
    "StartupReport",
    "StatelessFilter",
    "Stream",
    "StreamError",
    "StreamReport",
    "StreamSpec",
    "TBONTopology",
    "TopologyError",
    "WaveTiming",
    "get_filter",
    "launchmon_startup",
    "make_filter",
    "native_startup",
    "register_filter",
    "register_stream_filter",
    "stream_filter_names",
]
