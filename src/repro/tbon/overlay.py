"""The live overlay: per-position endpoints, routing, filtered reduction.

Structure: every position owns one upstream inbox (a Store its children
send into through latency-modelled channels) and one downstream channel per
child. Internal positions run a router process that

* collects one packet per child (+ its own contribution slot) for each
  ``(stream, wave)``, applies the stream's filter, and forwards the merged
  packet upward;
* fans every downstream packet out to all children.

The root's merged packets land in a delivery store the front-end endpoint
reads. All payloads are JSON-able; sizes drive simulated transfer times.

Persistent streams (the data plane)
-----------------------------------
One-shot wave reductions are how a tool takes a *snapshot*; continuous
tools (samplers, monitors -- the sustained workload the MW/TBON layer of
Section 3.4 exists to carry) need *streams*: :meth:`Overlay.open_stream`
turns a :class:`StreamSpec` with a ``credit_limit`` into a :class:`Stream`
-- a multi-wave pipeline with its own routing plane in which

* every internal position applies a **stateful**
  :class:`~repro.tbon.filters.Filter` (``reduce(payloads, state)``), so
  each level holds a live windowed view of its subtree;
* every hop is **credit-gated** (:class:`~repro.tbon.flow.BoundedInbox`):
  inbox depth never exceeds the credit limit and a slow consumer
  backpressures publishers instead of queueing unboundedly;
* every delivered wave is **attributed**
  (:class:`~repro.tbon.flow.StreamReport`): fanin/filter/deliver spans
  that sum exactly to the measured wave latency, plus per-position
  high-water/stall counters.

Self-repair
-----------
A TBON whose internal node dies loses the whole subtree below it -- unless
the tree repairs itself. :meth:`Overlay.repair` implements the recovery
structure: positions placed on failed nodes are marked dead, every orphaned
live position reconnects to its **nearest live ancestor** (walking the old
parent chain upward; the root -- the tool front end -- is live by
definition), the routing plane restarts over the repaired shape, and the
cost (parallel TCP reconnects) is returned in a :class:`RepairReport` so
callers can land it in a :class:`~repro.launch.LaunchReport`'s ``t_repair``
phase. Waves in flight during a repair are dropped for the *one-shot*
plane -- exactly like a real TBON, the tool re-issues its outstanding
snapshot wave after a repair. Persistent streams are stronger: every leaf
keeps its published-but-undelivered payloads until the root banks the
merged wave, so a repair re-credits and re-publishes the in-flight waves
of every surviving leaf -- delivered exactly once, with the filter window
state carried across the repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Generator, Optional

from repro.simx import Channel, Simulator, Store
from repro.cluster import Node
from repro.cluster.network import Network, message_size
from repro.tbon.filters import get_filter, make_filter
from repro.tbon.flow import (
    BoundedInbox,
    FlowStats,
    StreamError,
    StreamReport,
    WaveTiming,
)
from repro.tbon.packets import Packet
from repro.tbon.topology import TBONTopology

__all__ = ["DEFAULT_CREDIT_LIMIT", "Overlay", "OverlayEndpoint",
           "RepairReport", "Stream", "StreamSpec"]

#: credit limit used when a persistent stream is opened from a legacy spec
DEFAULT_CREDIT_LIMIT = 4

#: **Test-only hazard switch.** True reverts :meth:`Overlay.children_of`
#: to the pre-cache behaviour (a full O(size) rebuild on every call) --
#: the wall-clock O(N^2) class scalecheck exists to catch, planted by
#: tests/analysis/test_scalecheck.py to prove the detector fires.
#: Virtual timings are unaffected either way. Never set in production.
REVERT_CHILDREN_CACHE = False


@dataclass(frozen=True)
class StreamSpec:
    """One logical stream: id, filter, and (for persistent streams) flow.

    The seed's one-shot wave reductions use only ``stream_id`` +
    ``filter_name``. A spec handed to :meth:`Overlay.open_stream`
    additionally carries the data-plane knobs: ``credit_limit`` bounds
    every per-position inbox (and is the backpressure window),
    ``window`` is the stateful filter's wave window (0 = unbounded), and
    ``filter_params`` are extra filter-constructor arguments as a tuple
    of ``(key, value)`` pairs (kept hashable so specs stay frozen).
    """

    stream_id: int
    filter_name: str = "concat"
    credit_limit: int = 0
    window: int = 0
    filter_params: tuple = ()


@dataclass
class RepairReport:
    """What one :meth:`Overlay.repair` pass did, and what it cost."""

    #: positions newly found dead in this pass
    n_dead: int = 0
    #: live positions that had to reconnect to a new parent
    n_reparented: int = 0
    #: virtual seconds the repair took (parallel reconnects + restart)
    t_repair: float = 0.0
    #: position -> its new (nearest-live-ancestor) parent position
    reparented: dict = field(default_factory=dict)
    #: live internal positions retired because every descendant died --
    #: left in place, their parent's router would wait forever for a
    #: contribution that can never come
    pruned: list = field(default_factory=list)
    #: every position out of the tree after this pass (cumulative;
    #: includes pruned positions)
    dead: list = field(default_factory=list)
    #: persistent streams whose plane was rebuilt by this pass
    n_streams_repaired: int = 0
    #: in-flight wave payloads re-published (across all streams)
    n_waves_republished: int = 0


class OverlayEndpoint:
    """One position's handle on the overlay."""

    def __init__(self, overlay: "Overlay", position: int):
        self.overlay = overlay
        self.position = position

    # -- leaf/BE operations ------------------------------------------------
    def send_wave(self, stream_id: int, wave: int, payload: Any,
                  ) -> Generator[Any, Any, None]:
        """Contribute this leaf's payload for one reduction wave."""
        pkt = Packet(stream_id, wave, payload, "up")
        yield self.overlay._up_channel(self.position).send(
            (self.position, pkt))

    def recv_broadcast(self) -> Generator[Any, Any, Packet]:
        """Wait for the next downstream packet at this position."""
        pkt = yield self.overlay._down_store(self.position).get()
        return pkt

    # -- root/FE operations ---------------------------------------------------
    def broadcast(self, stream_id: int, wave: int, payload: Any,
                  ) -> Generator[Any, Any, None]:
        """Root: push a packet down the whole tree."""
        if self.position != 0:
            raise RuntimeError("broadcast only at the root position")
        pkt = Packet(stream_id, wave, payload, "down")
        yield from self.overlay._fan_down(0, pkt)

    def collect_wave(self) -> Generator[Any, Any, Packet]:
        """Root: wait for the next fully reduced upstream packet."""
        if self.position != 0:
            raise RuntimeError("collect_wave only at the root position")
        pkt = yield self.overlay.root_delivery.get()
        return pkt


class Overlay:
    """A placed, connected TBON instance (with self-repair)."""

    def __init__(self, sim: Simulator, network: Network,
                 topology: TBONTopology, placement: dict[int, Node],
                 streams: dict[int, StreamSpec]):
        self.sim = sim
        self.network = network
        self.topology = topology
        self.placement = dict(placement)
        self.streams = dict(streams)
        self.root_delivery: Store = Store(sim)
        self._up_channels: dict[int, Channel] = {}
        self._down_stores: dict[int, Store] = {}
        self._inboxes: dict[int, Store] = {}
        self._routers_started = False
        #: the *effective* tree: position -> parent, rewritten by repair()
        self._parent: dict[int, Optional[int]] = {
            p: topology.parent[p] for p in range(topology.size)}
        #: positions whose node has died (never contains the root)
        self._dead: set[int] = set()
        #: lazy position -> live children index (invalidated by repair)
        self._children_cache: Optional[list[list[int]]] = None
        #: live router/pump processes, interrupted on repair
        self._plane_procs: list = []
        #: every repair pass performed, in order
        self.repairs: list[RepairReport] = []
        #: persistent streams by id (see :meth:`open_stream`)
        self._streams: dict[int, Stream] = {}
        #: diagnostics
        self.packets_routed = 0

    # -- effective structure ---------------------------------------------------
    def parent_of(self, pos: int) -> Optional[int]:
        """Effective parent of ``pos`` (None for the root)."""
        return self._parent[pos]

    def children_of(self, pos: int) -> list[int]:
        """Live effective children of ``pos``."""
        cache = None if REVERT_CHILDREN_CACHE else self._children_cache
        if cache is None:
            # one O(size) pass instead of O(size) *per call*: router
            # startup alone asks for every position's children, which made
            # large overlays quadratic. Rebuilt after any repair mutation.
            cache = [[] for _ in range(self.topology.size)]
            dead = self._dead
            parent = self._parent
            for q in range(1, self.topology.size):
                if q not in dead:
                    par = parent[q]
                    if par is not None:
                        cache[par].append(q)
            if not REVERT_CHILDREN_CACHE:
                self._children_cache = cache
        return list(cache[pos])

    def live_positions(self) -> list[int]:
        """Positions whose node is still up (root included)."""
        return [p for p in range(self.topology.size) if p not in self._dead]

    def live_backends(self) -> list[int]:
        """BE positions still up -- the leaves repair must preserve.

        Excludes aggregate positions; hot paths that mean "every leaf"
        should use :meth:`live_leaves` instead."""
        return [p for p in self.topology.backends()  # simlint: allow[agg-leaves]
                if p not in self._dead]

    def live_leaves(self) -> list[int]:
        """All live leaf positions -- simulated BEs and aggregate nodes."""
        return [p for p in self.topology.leaves() if p not in self._dead]

    def live_virtual_leaf_count(self) -> int:
        """Live leaves with aggregates expanded to the daemons they model."""
        topo = self.topology
        return sum(topo.leaf_weight(p) for p in topo.leaves()
                   if p not in self._dead)

    def dead_positions(self) -> list[int]:
        return sorted(self._dead)

    # -- plumbing ------------------------------------------------------------
    def _up_channel(self, child_pos: int) -> Channel:
        """The latency channel from ``child_pos`` up to its parent's inbox."""
        parent = self._parent[child_pos]
        key = child_pos
        if key not in self._up_channels:
            self._up_channels[key] = Channel(
                self.sim, lambda m: self.network.transfer_time(m),
                name=f"up:{child_pos}->{parent}")
        return self._up_channels[key]

    def _down_store(self, pos: int) -> Store:
        if pos not in self._down_stores:
            self._down_stores[pos] = Store(self.sim)
        return self._down_stores[pos]

    def _fan_down(self, pos: int, pkt: Packet) -> Generator[Any, Any, None]:
        size = message_size(pkt)
        for child in self.children_of(pos):
            delay = self.network.transfer_time(pkt, size=size)
            yield self.sim.timeout(delay)
            yield self._down_store(child).put(pkt)
            self.packets_routed += 1

    def endpoint(self, position: int) -> OverlayEndpoint:
        return OverlayEndpoint(self, position)

    # -- persistent streams ----------------------------------------------------
    def open_stream(self, spec: StreamSpec) -> "Stream":
        """Open (or re-obtain) a persistent, flow-controlled stream.

        Idempotent per ``stream_id``: daemons and the front end can each
        call this for the same spec and share one stream -- a second open
        with a *different* spec raises. A spec without a ``credit_limit``
        gets :data:`DEFAULT_CREDIT_LIMIT`. Stream ids live in their own
        namespace and must not collide with the overlay's one-shot wave
        streams (``self.streams``).
        """
        if spec.credit_limit < 1:
            spec = replace(spec, credit_limit=DEFAULT_CREDIT_LIMIT)
        existing = self._streams.get(spec.stream_id)
        if existing is not None:
            if existing.spec != spec:
                raise StreamError(
                    f"stream {spec.stream_id} already open with "
                    f"{existing.spec}, cannot reopen as {spec}")
            return existing
        if spec.stream_id in self.streams:
            raise StreamError(
                f"stream id {spec.stream_id} is a one-shot wave stream "
                f"of this overlay; pick an unused id")
        stream = Stream(self, spec)
        self._streams[spec.stream_id] = stream
        return stream

    def stream(self, stream_id: int) -> "Stream":
        """The open persistent stream with this id (KeyError if none)."""
        return self._streams[stream_id]

    def open_streams(self) -> list["Stream"]:
        return [self._streams[s] for s in sorted(self._streams)]

    def next_stream_id(self) -> int:
        """The next id free in both stream namespaces (one-shot wave
        streams and persistent streams) -- the single allocation point
        for callers that do not care about the id itself."""
        used = set(self.streams) | set(self._streams)
        return max(used, default=0) + 1

    # -- routers ---------------------------------------------------------------
    def start_routers(self) -> None:
        """Start one router process per live internal position (root
        included); routers are registered as residents of their node, so a
        node crash kills its routing processes with it."""
        if self._routers_started:
            return
        self._routers_started = True
        for pos in range(self.topology.size):
            if pos in self._dead:
                continue
            if self.children_of(pos):
                self._start_plane_proc(
                    pos, self._route_up(pos), f"tbon-router:{pos}")
                if pos != 0:
                    self._start_plane_proc(
                        pos, self._route_down(pos), f"tbon-fwd:{pos}")

    def _start_plane_proc(self, pos: int, gen, name: str) -> None:
        proc = self.sim.process(gen, name=name)
        self._plane_procs.append(proc)
        node = self.placement.get(pos)
        if node is not None:
            node.register_body(proc)

    def _inbox(self, pos: int) -> Store:
        """The upstream inbox shared by all children of ``pos``.

        One child's channel delivers into its own store; unify by draining
        each child channel into a per-position store via pump processes.
        """
        if pos not in self._inboxes:
            inbox = Store(self.sim)
            self._inboxes[pos] = inbox
            for child in self.children_of(pos):
                chan = self._up_channel(child)

                def pump(chan=chan, inbox=inbox):
                    while True:
                        item = yield chan.recv()
                        yield inbox.put(item)

                self._start_plane_proc(pos, pump(), f"tbon-pump:{pos}")
        return self._inboxes[pos]

    def _route_up(self, pos: int):
        """Collect per-(stream, wave) child contributions; filter; forward."""
        children = self.children_of(pos)
        expected = len(children)
        contrib = self.topology.contrib_weight
        buffers: dict[tuple[int, int], list] = {}
        weights: dict[tuple[int, int], int] = {}
        inbox = self._inbox(pos)
        while True:
            sender, pkt = yield inbox.get()
            self.packets_routed += 1
            key = (pkt.stream_id, pkt.wave)
            buffers.setdefault(key, []).append(pkt.payload)
            weights[key] = weights.get(key, 0) + contrib(sender)
            if len(buffers[key]) < expected:
                continue
            payloads = buffers.pop(key)
            wsum = weights.pop(key)
            spec = self.streams.get(pkt.stream_id)
            fn = get_filter(spec.filter_name if spec else "concat")
            # per-payload merge processing at this position, weighted by
            # the physical messages each contribution stands in for (an
            # aggregate child counts as its whole collapsed fan-in; every
            # simulated child weighs 1, so non-hybrid trees charge the
            # bit-identical max(1, len(payloads)) they always did)
            yield self.sim.timeout(
                self.network.costs.msg_overhead * max(1, wsum))
            merged = fn(payloads)
            out = Packet(pkt.stream_id, pkt.wave, merged, "up")
            if pos == 0:
                yield self.root_delivery.put(out)
            else:
                yield self._up_channel(pos).send((pos, out))

    def _route_down(self, pos: int):
        """Forward downstream packets from the parent to all children."""
        while True:
            pkt = yield self._down_store(pos).get()
            yield from self._fan_down(pos, pkt)

    # -- self-repair ------------------------------------------------------------
    def repair(self) -> Generator[Any, Any, RepairReport]:
        """Reparent orphaned subtrees around dead nodes; returns the cost.

        Scans the placement for positions whose node has failed, marks them
        dead, and reconnects every orphaned *live* position to its nearest
        live ancestor (all reconnects in parallel -- each pays one TCP
        connect between the actual nodes). The routing plane is then
        restarted over the repaired tree. Wave state buffered in routers is
        dropped (re-issue outstanding waves after a repair). A pass that
        finds nothing newly dead costs nothing and changes nothing.

        Fold ``RepairReport.t_repair`` into the owning launch/startup
        report's ``t_repair`` phase to keep the attribution story whole.
        """
        sim = self.sim
        t0 = sim.now
        newly_dead = sorted(
            p for p in range(1, self.topology.size)
            if p not in self._dead
            and self.placement.get(p) is not None
            and self.placement[p].failed)
        if not newly_dead:
            return RepairReport(dead=self.dead_positions())
        self._dead.update(newly_dead)
        self._children_cache = None

        # tear down the old routing plane (dead routers are already gone --
        # their node's fail() interrupted them)
        for proc in self._plane_procs:
            if proc.is_alive:
                proc.defuse()
                proc.interrupt("tbon repair")
        self._plane_procs.clear()
        self._up_channels.clear()
        self._down_stores.clear()
        self._inboxes.clear()

        # orphans reparent to the nearest live ancestor along the old chain
        reparented: dict[int, int] = {}
        for pos in range(1, self.topology.size):
            if pos in self._dead:
                continue
            parent = self._parent[pos]
            if parent in self._dead:
                ancestor = parent
                while ancestor in self._dead:
                    ancestor = self._parent[ancestor]
                reparented[pos] = ancestor

        def reconnect(pos: int, ancestor: int):
            yield from self.network.connect(self.placement[pos],
                                            self.placement[ancestor])

        workers = [sim.process(reconnect(pos, anc), name=f"tbon-repair:{pos}")
                   for pos, anc in sorted(reparented.items())]
        if workers:
            yield sim.all_of(workers)
        for pos, anc in reparented.items():
            self._parent[pos] = anc
        self._children_cache = None

        # prune live internal positions stranded with no live children
        # (all their leaves died): they can never contribute to a wave,
        # so keeping them as silent children would hang their parent's
        # router. Iterate to a fixpoint -- pruning one comm can strand
        # the comm above it.
        pruned: list = []
        changed = True
        while changed:
            changed = False
            for pos in range(1, self.topology.size):
                if pos in self._dead:
                    continue
                if (self.topology.kind[pos] not in ("be", "agg")
                        and not self.children_of(pos)):
                    self._dead.add(pos)
                    self._children_cache = None
                    pruned.append(pos)
                    changed = True

        self._routers_started = False
        self.start_routers()

        # persistent streams survive the repair: rebuild each stream's
        # routing plane over the repaired tree, reset its credit pools,
        # and re-publish every surviving leaf's in-flight (published but
        # not root-banked) waves -- delivered exactly once, never lost
        n_republished = 0
        live_streams = self.open_streams()
        for stream in live_streams:
            n_republished += stream._on_repair()

        report = RepairReport(
            n_dead=len(newly_dead), n_reparented=len(reparented),
            t_repair=sim.now - t0, reparented=reparented,
            pruned=sorted(pruned), dead=self.dead_positions(),
            n_streams_repaired=len(live_streams),
            n_waves_republished=n_republished)
        self.repairs.append(report)
        return report


class Stream:
    """One persistent, credit-flow-controlled, stateful-filtered stream.

    Obtained from :meth:`Overlay.open_stream`. The stream owns its own
    routing plane (one router process per live internal position, each
    fed by a :class:`~repro.tbon.flow.BoundedInbox`), its per-position
    filter state (:attr:`states`), and its delivery queue at the root.

    Leaf side (tool daemons)::

        yield from stream.publish(my_position, wave, payload)

    Root side (the front end)::

        pkt = yield from stream.next_wave()   # merged wave, in order

    Exactly-once across repairs: a published payload is retained by the
    stream until the merged wave is *banked* into the root delivery queue
    (which survives repairs -- the root is the tool front end). A repair
    rebuilds the plane and re-publishes every surviving leaf's unbanked
    payloads; partial router buffers died with the old plane, so nothing
    is duplicated, and banked waves are never re-sent.
    """

    def __init__(self, overlay: Overlay, spec: StreamSpec):
        self.overlay = overlay
        self.spec = spec
        self.sim = overlay.sim
        self.filter = make_filter(spec.filter_name, window=spec.window,
                                  **dict(spec.filter_params))
        #: per-position filter state (survives repairs for live positions)
        self.states: dict[int, Any] = {}
        self.report = StreamReport(
            stream_id=spec.stream_id, filter_name=spec.filter_name,
            n_leaves=overlay.live_virtual_leaf_count(),
            credit_limit=spec.credit_limit, window=spec.window,
            t_open=self.sim.now)
        self.closed = False
        #: leaf position -> {wave: payload} published but not yet banked
        self._unacked: dict[int, dict[int, Any]] = {}
        #: position -> waves already folded into its filter state, so a
        #: wave re-delivered after a repair merges again but never
        #: double-counts the windowed aggregates (pruned on bank)
        self._folded: dict[int, set] = {}
        #: internal position -> its credit-gated stream inbox (per epoch)
        self._inboxes: dict[int, BoundedInbox] = {}
        #: local wave taps: position -> Store of merged wave payloads
        self._taps: dict[int, Store] = {}
        #: the root delivery queue -- persists across repairs
        self._delivery = BoundedInbox(
            self.sim, -1, spec.credit_limit,
            stats=self.report.flow.setdefault(
                -1, FlowStats(-1, spec.credit_limit)))
        self._procs: list = []
        #: bumped on every repair/close; invalidates in-flight sends
        self._epoch = 0
        self._epoch_ev = self.sim.event()
        self._start_plane()

    # -- plane ------------------------------------------------------------
    def _start_plane(self) -> None:
        sid = self.spec.stream_id
        for pos in self.overlay.live_positions():
            if not self.overlay.children_of(pos):
                continue
            stats = self.report.flow.setdefault(
                pos, FlowStats(pos, self.spec.credit_limit))
            self._inboxes[pos] = BoundedInbox(
                self.sim, pos, self.spec.credit_limit, stats=stats)
        for pos in sorted(self._inboxes):
            proc = self.sim.process(self._router(pos),
                                    name=f"stream{sid}-router:{pos}")
            self._procs.append(proc)
            node = self.overlay.placement.get(pos)
            if node is not None:
                node.register_body(proc)

    def _router(self, pos: int):
        """Per-position stream router: assemble, filter, forward/bank."""
        sim = self.sim
        inbox = self._inboxes[pos]
        expected = len(self.overlay.children_of(pos))
        contrib = self.overlay.topology.contrib_weight
        costs = self.overlay.network.costs
        buffers: dict[int, list] = {}
        weights: dict[int, int] = {}
        seen: dict[int, set] = {}
        if pos not in self.states:
            self.states[pos] = self.filter.initial_state()
        while True:
            sender, pkt = yield inbox.get()
            inbox.release()
            contributors = seen.setdefault(pkt.wave, set())
            if sender in contributors:
                raise StreamError(
                    f"stream {self.spec.stream_id}: duplicate wave "
                    f"{pkt.wave} contribution from position {sender} "
                    f"at position {pos}")
            contributors.add(sender)
            buffers.setdefault(pkt.wave, []).append(pkt.payload)
            weights[pkt.wave] = weights.get(pkt.wave, 0) + contrib(sender)
            if len(buffers[pkt.wave]) < expected:
                continue
            payloads = buffers.pop(pkt.wave)
            wsum = weights.pop(pkt.wave)
            seen.pop(pkt.wave)
            wt = self.report.waves.get(pkt.wave)
            if pos == 0 and wt is not None:
                wt.t_assembled = sim.now
                wt.n_contributions = wsum
            # per-payload merge processing at this position, weighted by
            # the physical fan-in each contribution models (1 for every
            # simulated child, so non-hybrid charges are bit-identical)
            yield sim.timeout(costs.msg_overhead * max(1, wsum))
            if wsum > len(payloads):
                # virtual feeding serialization: the collapsed children an
                # aggregate stands in for would each have committed through
                # this credit gate; charge the commits the hybrid tree
                # skipped. Unjittered and off the Network counters so the
                # simulated plane's RNG stream and message accounting are
                # untouched.
                k = max(1, self.spec.credit_limit)
                extra = (-(-wsum // k)) - (-(-len(payloads) // k))
                if extra > 0:
                    yield sim.timeout(
                        extra * costs.transfer_time(message_size(pkt)))
            folded = self._folded.setdefault(pos, set())
            if pkt.wave in folded:
                # a repair re-delivered a wave this position already
                # folded into its state: merge again (the payload must
                # still flow upward) but leave the windowed aggregates
                # alone -- history is never double-counted
                merged, _scratch = self.filter.reduce(
                    payloads, self.filter.initial_state())
            else:
                merged, self.states[pos] = self.filter.reduce(
                    payloads, self.states[pos])
                folded.add(pkt.wave)
            tap = self._taps.get(pos)
            if tap is not None:
                tap.put((pkt.wave, merged))
            out = Packet(self.spec.stream_id, pkt.wave, merged, "up")
            if pos == 0:
                if wt is not None:
                    wt.t_filtered = sim.now
                yield from self._bank(out)
            else:
                yield from self._forward_up(pos, out)

    def _forward_up(self, pos: int, pkt: Packet):
        """Send a merged wave one hop up (router side; credit-gated)."""
        parent = self.overlay._parent[pos]
        inbox = self._inboxes[parent]
        yield from inbox.acquire()
        yield self.sim.timeout(self.overlay.network.transfer_time(pkt))
        inbox.commit(pos, pkt)

    def _bank(self, pkt: Packet):
        """Root: commit a merged wave to the delivery queue + ack leaves.

        Once banked, the wave survives repairs (the delivery queue lives
        at the front end); the commit and the ack are a single atomic
        step (no yield between them), so a repair can never observe a
        banked-but-unacked wave and re-publish a duplicate.
        """
        yield from self._delivery.acquire()
        self._delivery.commit(0, pkt)
        self._ack_wave(pkt.wave)

    # -- leaf side ---------------------------------------------------------
    def publish(self, position: int, wave: int, payload: Any,
                ) -> Generator[Any, Any, None]:
        """Contribute ``payload`` as leaf ``position``'s wave ``wave``.

        Blocks (credit-based backpressure) while the parent's stream
        inbox is saturated. The payload is retained until the root banks
        the merged wave, so a repair mid-flight re-publishes it instead
        of losing it.
        """
        if self.closed:
            raise StreamError(
                f"stream {self.spec.stream_id} is closed")
        if self.overlay.topology.kind[position] not in ("be", "agg"):
            raise StreamError(
                f"publish only at BE leaves and aggregates, not position "
                f"{position} ({self.overlay.topology.kind[position]})")
        if position in self.overlay._dead:
            raise StreamError(
                f"leaf position {position} is dead")
        pending = self._unacked.setdefault(position, {})
        if wave in pending:
            raise StreamError(
                f"leaf {position} already published wave {wave}")
        pending[wave] = payload
        self.report.waves.setdefault(
            wave, WaveTiming(wave, t_published=self.sim.now))
        self.report.n_published += 1
        yield from self._send_from(position, wave, payload)

    def _send_from(self, position: int, wave: int, payload: Any,
                   epoch: Optional[int] = None):
        """One leaf contribution's hop into its parent's stream inbox.

        Epoch-guarded: the send belongs to ``epoch`` (the current one if
        None); if a repair lands before the commit -- or already did, for
        a re-publisher spawned by an older repair -- the send is
        abandoned, because the newest repair's re-publication pass owns
        every unbanked wave from then on.
        """
        if epoch is None:
            epoch = self._epoch
        if self._epoch != epoch:
            return
        parent = self.overlay._parent[position]
        inbox = self._inboxes.get(parent)
        if inbox is None:  # parent plane gone (all leaves dead / closed)
            return
        pkt = Packet(self.spec.stream_id, wave, payload, "up")
        t0 = self.sim.now
        ev = inbox.credit_event()
        if not ev.triggered:
            inbox.note_stall_started()
        yield self.sim.any_of([ev, self._epoch_ev])
        inbox.note_stall_ended(t0)
        if self._epoch != epoch:
            return
        inbox.note_acquired()
        yield self.sim.timeout(self.overlay.network.transfer_time(pkt))
        if self._epoch != epoch:
            return
        inbox.commit(position, pkt)

    # -- root side -----------------------------------------------------------
    def next_wave(self) -> Generator[Any, Any, Packet]:
        """Front end: wait for the next merged wave.

        Waves bank in assembly order: with well-behaved publishers that
        is wave order, but across an :meth:`Overlay.repair` a re-
        published older wave can assemble after a newer one -- consumers
        that need strict ordering should key on ``pkt.wave``, not on
        arrival order (``StreamReport.delivered_waves`` already does).
        """
        sender, pkt = yield self._delivery.get()
        self._delivery.release()
        wt = self.report.waves.get(pkt.wave)
        if wt is not None:
            wt.t_delivered = self.sim.now
        self.report.n_delivered += 1
        return pkt

    def subscribe(self, position: int = 0) -> Store:
        """A local tap on the merged waves passing ``position``.

        Every wave the position's router merges is copied (zero cost)
        into the returned store as ``(wave, merged_payload)`` -- how a
        middleware daemon observes its subtree's stream without joining
        the reduction. Taps survive repairs while the position lives.

        Aggregate positions cannot be tapped: they have no router to
        observe. De-aggregate the subtree first (rebuild the hybrid
        topology from a plan whose special set names the tapped leaf --
        see :func:`repro.simx.aggregate.auto_expand`).
        """
        if self.overlay.topology.kind[position] == "agg":
            raise StreamError(
                f"cannot tap aggregate position {position}: rebuild the "
                f"plan with this leaf marked special (auto_expand) so the "
                f"subtree is simulated exactly")
        if position not in self._taps:
            self._taps[position] = Store(self.sim)
        return self._taps[position]

    def state_at(self, position: int) -> Any:
        """Position's live filter state (running windowed aggregates)."""
        return self.states.get(position)

    # -- repair/teardown --------------------------------------------------------
    def _on_repair(self) -> int:
        """Rebuild the stream plane after an overlay repair.

        Returns the number of re-published wave payloads. Filter states
        of live positions are preserved (the window rides through the
        repair); credit pools are reset (in-flight credits died with the
        old plane); every surviving leaf's unbanked waves are re-sent.
        """
        if self.closed:
            return 0
        self.report.n_repairs += 1
        self._teardown_plane()
        dead = self.overlay._dead
        for registry in (self._unacked, self.states, self._taps,
                         self._folded):
            for pos in list(registry):
                if pos in dead:
                    del registry[pos]
        self._start_plane()
        sid = self.spec.stream_id
        epoch = self._epoch
        n = 0
        for pos in sorted(self._unacked):
            backlog = [(w, self._unacked[pos][w])
                       for w in sorted(self._unacked[pos])]
            for wave, _payload in backlog:
                wt = self.report.waves.get(wave)
                if wt is not None:
                    wt.republished = True
            # one sequential re-publisher per leaf, so a leaf's waves
            # re-enter its edge in order (parallel re-sends could let
            # transfer jitter reorder them); pinned to THIS epoch and
            # tracked with the plane, so a later repair both abandons
            # its sends and interrupts it -- its backlog then belongs
            # to that repair's own re-publication pass
            proc = self.sim.process(
                self._republish(backlog, pos, epoch),
                name=f"stream{sid}-repub:{pos}")
            self._procs.append(proc)
            node = self.overlay.placement.get(pos)
            if node is not None:
                node.register_body(proc)
            n += len(backlog)
        self.report.n_republished += n
        return n

    def _republish(self, backlog: list, position: int, epoch: int):
        for wave, payload in backlog:
            if self._epoch != epoch:
                return
            yield from self._send_from(position, wave, payload, epoch)

    def _teardown_plane(self) -> None:
        for proc in self._procs:
            if proc.is_alive:
                proc.defuse()
                proc.interrupt("stream repair")
        self._procs.clear()
        self._inboxes.clear()
        # the delivery queue itself persists (banked waves survive), but
        # its credit gate must be rebuilt: the dead root router may have
        # been waiting on it, and its stranded getter would silently eat
        # the next released credit -- one leak per repair would starve
        # the stream
        self._delivery.rebuild_gate()
        self._epoch += 1
        old_ev, self._epoch_ev = self._epoch_ev, self.sim.event()
        old_ev.succeed()

    def close(self) -> StreamReport:
        """Retire the stream's plane; returns the final report."""
        if not self.closed:
            self.closed = True
            self._teardown_plane()
            self.overlay._streams.pop(self.spec.stream_id, None)
            self.report.t_close = self.sim.now
        return self.report

    def _ack_wave(self, wave: int) -> None:
        for pending in self._unacked.values():
            pending.pop(wave, None)
        # a banked wave can never be re-delivered, so its fold markers
        # are no longer needed (keeps the sets bounded on long streams)
        for folded in self._folded.values():
            folded.discard(wave)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Stream {self.spec.stream_id} "
                f"filter={self.spec.filter_name} "
                f"credits={self.spec.credit_limit} "
                f"delivered={self.report.n_delivered}>")
