"""The live overlay: per-position endpoints, routing, filtered reduction.

Structure: every position owns one upstream inbox (a Store its children
send into through latency-modelled channels) and one downstream channel per
child. Internal positions run a router process that

* collects one packet per child (+ its own contribution slot) for each
  ``(stream, wave)``, applies the stream's filter, and forwards the merged
  packet upward;
* fans every downstream packet out to all children.

The root's merged packets land in a delivery store the front-end endpoint
reads. All payloads are JSON-able; sizes drive simulated transfer times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.simx import Channel, Simulator, Store
from repro.cluster import Node
from repro.cluster.network import Network
from repro.tbon.filters import get_filter
from repro.tbon.packets import Packet
from repro.tbon.topology import TBONTopology

__all__ = ["Overlay", "OverlayEndpoint", "StreamSpec"]


@dataclass(frozen=True)
class StreamSpec:
    """One logical stream: id + the filter applied at internal positions."""

    stream_id: int
    filter_name: str = "concat"


class OverlayEndpoint:
    """One position's handle on the overlay."""

    def __init__(self, overlay: "Overlay", position: int):
        self.overlay = overlay
        self.position = position

    # -- leaf/BE operations ------------------------------------------------
    def send_wave(self, stream_id: int, wave: int, payload: Any,
                  ) -> Generator[Any, Any, None]:
        """Contribute this leaf's payload for one reduction wave."""
        pkt = Packet(stream_id, wave, payload, "up")
        yield self.overlay._up_channel(self.position).send(
            (self.position, pkt))

    def recv_broadcast(self) -> Generator[Any, Any, Packet]:
        """Wait for the next downstream packet at this position."""
        pkt = yield self.overlay._down_store(self.position).get()
        return pkt

    # -- root/FE operations ---------------------------------------------------
    def broadcast(self, stream_id: int, wave: int, payload: Any,
                  ) -> Generator[Any, Any, None]:
        """Root: push a packet down the whole tree."""
        if self.position != 0:
            raise RuntimeError("broadcast only at the root position")
        pkt = Packet(stream_id, wave, payload, "down")
        yield from self.overlay._fan_down(0, pkt)

    def collect_wave(self) -> Generator[Any, Any, Packet]:
        """Root: wait for the next fully reduced upstream packet."""
        if self.position != 0:
            raise RuntimeError("collect_wave only at the root position")
        pkt = yield self.overlay.root_delivery.get()
        return pkt


class Overlay:
    """A placed, connected TBON instance."""

    def __init__(self, sim: Simulator, network: Network,
                 topology: TBONTopology, placement: dict[int, Node],
                 streams: dict[int, StreamSpec]):
        self.sim = sim
        self.network = network
        self.topology = topology
        self.placement = dict(placement)
        self.streams = dict(streams)
        self.root_delivery: Store = Store(sim)
        self._up_channels: dict[int, Channel] = {}
        self._down_stores: dict[int, Store] = {}
        self._routers_started = False
        #: diagnostics
        self.packets_routed = 0

    # -- plumbing ------------------------------------------------------------
    def _up_channel(self, child_pos: int) -> Channel:
        """The latency channel from ``child_pos`` up to its parent's inbox."""
        parent = self.topology.parent[child_pos]
        key = child_pos
        if key not in self._up_channels:
            self._up_channels[key] = Channel(
                self.sim, lambda m: self.network.transfer_time(m),
                name=f"up:{child_pos}->{parent}")
        return self._up_channels[key]

    def _down_store(self, pos: int) -> Store:
        if pos not in self._down_stores:
            self._down_stores[pos] = Store(self.sim)
        return self._down_stores[pos]

    def _fan_down(self, pos: int, pkt: Packet) -> Generator[Any, Any, None]:
        for child in self.topology.children(pos):
            delay = self.network.transfer_time(pkt)
            yield self.sim.timeout(delay)
            yield self._down_store(child).put(pkt)
            self.packets_routed += 1

    def endpoint(self, position: int) -> OverlayEndpoint:
        return OverlayEndpoint(self, position)

    # -- routers ---------------------------------------------------------------
    def start_routers(self) -> None:
        """Start one router process per internal position (root included)."""
        if self._routers_started:
            return
        self._routers_started = True
        for pos in range(self.topology.size):
            if self.topology.children(pos):
                self.sim.process(self._route_up(pos), name=f"tbon-router:{pos}")
                if pos != 0:
                    self.sim.process(self._route_down(pos),
                                     name=f"tbon-fwd:{pos}")

    def _inbox(self, pos: int) -> Store:
        """The upstream inbox shared by all children of ``pos``."""
        # one child's channel delivers into its own store; unify by draining
        # each child channel into a per-position store via pump processes.
        key = ("inbox", pos)
        if not hasattr(self, "_inboxes"):
            self._inboxes: dict[int, Store] = {}
        if pos not in self._inboxes:
            inbox = Store(self.sim)
            self._inboxes[pos] = inbox
            for child in self.topology.children(pos):
                chan = self._up_channel(child)

                def pump(chan=chan, inbox=inbox):
                    while True:
                        item = yield chan.recv()
                        yield inbox.put(item)

                self.sim.process(pump(), name=f"tbon-pump:{pos}")
        return self._inboxes[pos]

    def _route_up(self, pos: int):
        """Collect per-(stream, wave) child contributions; filter; forward."""
        children = self.topology.children(pos)
        expected = len(children)
        buffers: dict[tuple[int, int], list] = {}
        inbox = self._inbox(pos)
        while True:
            sender, pkt = yield inbox.get()
            self.packets_routed += 1
            key = (pkt.stream_id, pkt.wave)
            buffers.setdefault(key, []).append(pkt.payload)
            if len(buffers[key]) < expected:
                continue
            payloads = buffers.pop(key)
            spec = self.streams.get(pkt.stream_id)
            fn = get_filter(spec.filter_name if spec else "concat")
            # per-payload merge processing at this position
            yield self.sim.timeout(
                self.network.costs.msg_overhead * max(1, len(payloads)))
            merged = fn(payloads)
            out = Packet(pkt.stream_id, pkt.wave, merged, "up")
            if pos == 0:
                yield self.root_delivery.put(out)
            else:
                yield self._up_channel(pos).send((pos, out))

    def _route_down(self, pos: int):
        """Forward downstream packets from the parent to all children."""
        while True:
            pkt = yield self._down_store(pos).get()
            yield from self._fan_down(pos, pkt)
