"""The live overlay: per-position endpoints, routing, filtered reduction.

Structure: every position owns one upstream inbox (a Store its children
send into through latency-modelled channels) and one downstream channel per
child. Internal positions run a router process that

* collects one packet per child (+ its own contribution slot) for each
  ``(stream, wave)``, applies the stream's filter, and forwards the merged
  packet upward;
* fans every downstream packet out to all children.

The root's merged packets land in a delivery store the front-end endpoint
reads. All payloads are JSON-able; sizes drive simulated transfer times.

Self-repair
-----------
A TBON whose internal node dies loses the whole subtree below it -- unless
the tree repairs itself. :meth:`Overlay.repair` implements the recovery
structure: positions placed on failed nodes are marked dead, every orphaned
live position reconnects to its **nearest live ancestor** (walking the old
parent chain upward; the root -- the tool front end -- is live by
definition), the routing plane restarts over the repaired shape, and the
cost (parallel TCP reconnects) is returned in a :class:`RepairReport` so
callers can land it in a :class:`~repro.launch.LaunchReport`'s ``t_repair``
phase. Waves in flight during a repair are dropped -- exactly like a real
TBON, the tool re-issues its outstanding wave after a repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.simx import Channel, Simulator, Store
from repro.cluster import Node
from repro.cluster.network import Network
from repro.tbon.filters import get_filter
from repro.tbon.packets import Packet
from repro.tbon.topology import TBONTopology

__all__ = ["Overlay", "OverlayEndpoint", "RepairReport", "StreamSpec"]


@dataclass(frozen=True)
class StreamSpec:
    """One logical stream: id + the filter applied at internal positions."""

    stream_id: int
    filter_name: str = "concat"


@dataclass
class RepairReport:
    """What one :meth:`Overlay.repair` pass did, and what it cost."""

    #: positions newly found dead in this pass
    n_dead: int = 0
    #: live positions that had to reconnect to a new parent
    n_reparented: int = 0
    #: virtual seconds the repair took (parallel reconnects + restart)
    t_repair: float = 0.0
    #: position -> its new (nearest-live-ancestor) parent position
    reparented: dict = field(default_factory=dict)
    #: live internal positions retired because every descendant died --
    #: left in place, their parent's router would wait forever for a
    #: contribution that can never come
    pruned: list = field(default_factory=list)
    #: every position out of the tree after this pass (cumulative;
    #: includes pruned positions)
    dead: list = field(default_factory=list)


class OverlayEndpoint:
    """One position's handle on the overlay."""

    def __init__(self, overlay: "Overlay", position: int):
        self.overlay = overlay
        self.position = position

    # -- leaf/BE operations ------------------------------------------------
    def send_wave(self, stream_id: int, wave: int, payload: Any,
                  ) -> Generator[Any, Any, None]:
        """Contribute this leaf's payload for one reduction wave."""
        pkt = Packet(stream_id, wave, payload, "up")
        yield self.overlay._up_channel(self.position).send(
            (self.position, pkt))

    def recv_broadcast(self) -> Generator[Any, Any, Packet]:
        """Wait for the next downstream packet at this position."""
        pkt = yield self.overlay._down_store(self.position).get()
        return pkt

    # -- root/FE operations ---------------------------------------------------
    def broadcast(self, stream_id: int, wave: int, payload: Any,
                  ) -> Generator[Any, Any, None]:
        """Root: push a packet down the whole tree."""
        if self.position != 0:
            raise RuntimeError("broadcast only at the root position")
        pkt = Packet(stream_id, wave, payload, "down")
        yield from self.overlay._fan_down(0, pkt)

    def collect_wave(self) -> Generator[Any, Any, Packet]:
        """Root: wait for the next fully reduced upstream packet."""
        if self.position != 0:
            raise RuntimeError("collect_wave only at the root position")
        pkt = yield self.overlay.root_delivery.get()
        return pkt


class Overlay:
    """A placed, connected TBON instance (with self-repair)."""

    def __init__(self, sim: Simulator, network: Network,
                 topology: TBONTopology, placement: dict[int, Node],
                 streams: dict[int, StreamSpec]):
        self.sim = sim
        self.network = network
        self.topology = topology
        self.placement = dict(placement)
        self.streams = dict(streams)
        self.root_delivery: Store = Store(sim)
        self._up_channels: dict[int, Channel] = {}
        self._down_stores: dict[int, Store] = {}
        self._inboxes: dict[int, Store] = {}
        self._routers_started = False
        #: the *effective* tree: position -> parent, rewritten by repair()
        self._parent: dict[int, Optional[int]] = {
            p: topology.parent[p] for p in range(topology.size)}
        #: positions whose node has died (never contains the root)
        self._dead: set[int] = set()
        #: live router/pump processes, interrupted on repair
        self._plane_procs: list = []
        #: every repair pass performed, in order
        self.repairs: list[RepairReport] = []
        #: diagnostics
        self.packets_routed = 0

    # -- effective structure ---------------------------------------------------
    def parent_of(self, pos: int) -> Optional[int]:
        """Effective parent of ``pos`` (None for the root)."""
        return self._parent[pos]

    def children_of(self, pos: int) -> list[int]:
        """Live effective children of ``pos``."""
        return [q for q in range(self.topology.size)
                if q not in self._dead and self._parent[q] == pos]

    def live_positions(self) -> list[int]:
        """Positions whose node is still up (root included)."""
        return [p for p in range(self.topology.size) if p not in self._dead]

    def live_backends(self) -> list[int]:
        """BE positions still up -- the leaves repair must preserve."""
        return [p for p in self.topology.backends() if p not in self._dead]

    def dead_positions(self) -> list[int]:
        return sorted(self._dead)

    # -- plumbing ------------------------------------------------------------
    def _up_channel(self, child_pos: int) -> Channel:
        """The latency channel from ``child_pos`` up to its parent's inbox."""
        parent = self._parent[child_pos]
        key = child_pos
        if key not in self._up_channels:
            self._up_channels[key] = Channel(
                self.sim, lambda m: self.network.transfer_time(m),
                name=f"up:{child_pos}->{parent}")
        return self._up_channels[key]

    def _down_store(self, pos: int) -> Store:
        if pos not in self._down_stores:
            self._down_stores[pos] = Store(self.sim)
        return self._down_stores[pos]

    def _fan_down(self, pos: int, pkt: Packet) -> Generator[Any, Any, None]:
        for child in self.children_of(pos):
            delay = self.network.transfer_time(pkt)
            yield self.sim.timeout(delay)
            yield self._down_store(child).put(pkt)
            self.packets_routed += 1

    def endpoint(self, position: int) -> OverlayEndpoint:
        return OverlayEndpoint(self, position)

    # -- routers ---------------------------------------------------------------
    def start_routers(self) -> None:
        """Start one router process per live internal position (root
        included); routers are registered as residents of their node, so a
        node crash kills its routing processes with it."""
        if self._routers_started:
            return
        self._routers_started = True
        for pos in range(self.topology.size):
            if pos in self._dead:
                continue
            if self.children_of(pos):
                self._start_plane_proc(
                    pos, self._route_up(pos), f"tbon-router:{pos}")
                if pos != 0:
                    self._start_plane_proc(
                        pos, self._route_down(pos), f"tbon-fwd:{pos}")

    def _start_plane_proc(self, pos: int, gen, name: str) -> None:
        proc = self.sim.process(gen, name=name)
        self._plane_procs.append(proc)
        node = self.placement.get(pos)
        if node is not None:
            node.register_body(proc)

    def _inbox(self, pos: int) -> Store:
        """The upstream inbox shared by all children of ``pos``.

        One child's channel delivers into its own store; unify by draining
        each child channel into a per-position store via pump processes.
        """
        if pos not in self._inboxes:
            inbox = Store(self.sim)
            self._inboxes[pos] = inbox
            for child in self.children_of(pos):
                chan = self._up_channel(child)

                def pump(chan=chan, inbox=inbox):
                    while True:
                        item = yield chan.recv()
                        yield inbox.put(item)

                self._start_plane_proc(pos, pump(), f"tbon-pump:{pos}")
        return self._inboxes[pos]

    def _route_up(self, pos: int):
        """Collect per-(stream, wave) child contributions; filter; forward."""
        children = self.children_of(pos)
        expected = len(children)
        buffers: dict[tuple[int, int], list] = {}
        inbox = self._inbox(pos)
        while True:
            sender, pkt = yield inbox.get()
            self.packets_routed += 1
            key = (pkt.stream_id, pkt.wave)
            buffers.setdefault(key, []).append(pkt.payload)
            if len(buffers[key]) < expected:
                continue
            payloads = buffers.pop(key)
            spec = self.streams.get(pkt.stream_id)
            fn = get_filter(spec.filter_name if spec else "concat")
            # per-payload merge processing at this position
            yield self.sim.timeout(
                self.network.costs.msg_overhead * max(1, len(payloads)))
            merged = fn(payloads)
            out = Packet(pkt.stream_id, pkt.wave, merged, "up")
            if pos == 0:
                yield self.root_delivery.put(out)
            else:
                yield self._up_channel(pos).send((pos, out))

    def _route_down(self, pos: int):
        """Forward downstream packets from the parent to all children."""
        while True:
            pkt = yield self._down_store(pos).get()
            yield from self._fan_down(pos, pkt)

    # -- self-repair ------------------------------------------------------------
    def repair(self) -> Generator[Any, Any, RepairReport]:
        """Reparent orphaned subtrees around dead nodes; returns the cost.

        Scans the placement for positions whose node has failed, marks them
        dead, and reconnects every orphaned *live* position to its nearest
        live ancestor (all reconnects in parallel -- each pays one TCP
        connect between the actual nodes). The routing plane is then
        restarted over the repaired tree. Wave state buffered in routers is
        dropped (re-issue outstanding waves after a repair). A pass that
        finds nothing newly dead costs nothing and changes nothing.

        Fold ``RepairReport.t_repair`` into the owning launch/startup
        report's ``t_repair`` phase to keep the attribution story whole.
        """
        sim = self.sim
        t0 = sim.now
        newly_dead = sorted(
            p for p in range(1, self.topology.size)
            if p not in self._dead
            and self.placement.get(p) is not None
            and self.placement[p].failed)
        if not newly_dead:
            return RepairReport(dead=self.dead_positions())
        self._dead.update(newly_dead)

        # tear down the old routing plane (dead routers are already gone --
        # their node's fail() interrupted them)
        for proc in self._plane_procs:
            if proc.is_alive:
                proc.defuse()
                proc.interrupt("tbon repair")
        self._plane_procs.clear()
        self._up_channels.clear()
        self._down_stores.clear()
        self._inboxes.clear()

        # orphans reparent to the nearest live ancestor along the old chain
        reparented: dict[int, int] = {}
        for pos in range(1, self.topology.size):
            if pos in self._dead:
                continue
            parent = self._parent[pos]
            if parent in self._dead:
                ancestor = parent
                while ancestor in self._dead:
                    ancestor = self._parent[ancestor]
                reparented[pos] = ancestor

        def reconnect(pos: int, ancestor: int):
            yield from self.network.connect(self.placement[pos],
                                            self.placement[ancestor])

        workers = [sim.process(reconnect(pos, anc), name=f"tbon-repair:{pos}")
                   for pos, anc in sorted(reparented.items())]
        if workers:
            yield sim.all_of(workers)
        for pos, anc in reparented.items():
            self._parent[pos] = anc

        # prune live internal positions stranded with no live children
        # (all their leaves died): they can never contribute to a wave,
        # so keeping them as silent children would hang their parent's
        # router. Iterate to a fixpoint -- pruning one comm can strand
        # the comm above it.
        pruned: list = []
        changed = True
        while changed:
            changed = False
            for pos in range(1, self.topology.size):
                if pos in self._dead:
                    continue
                if (self.topology.kind[pos] != "be"
                        and not self.children_of(pos)):
                    self._dead.add(pos)
                    pruned.append(pos)
                    changed = True

        self._routers_started = False
        self.start_routers()
        report = RepairReport(
            n_dead=len(newly_dead), n_reparented=len(reparented),
            t_repair=sim.now - t0, reparented=reparented,
            pruned=sorted(pruned), dead=self.dead_positions())
        self.repairs.append(report)
        return report
