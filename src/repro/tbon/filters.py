"""TBON reduction filters.

A filter reduces the payloads of one wave's child packets (plus the local
contribution, if any) into a single upstream payload. Filters are
registered by name so topologies/streams can reference them portably --
mirroring MRNet's filter-id mechanism.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

__all__ = ["FILTER_REGISTRY", "get_filter", "register_filter"]

FilterFn = Callable[[Sequence[Any]], Any]

FILTER_REGISTRY: dict[str, FilterFn] = {}


def register_filter(name: str, fn: FilterFn) -> None:
    """Register (or replace) a named reduction filter."""
    FILTER_REGISTRY[name] = fn


def get_filter(name: str) -> FilterFn:
    try:
        return FILTER_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown TBON filter {name!r}; registered: "
                       f"{sorted(FILTER_REGISTRY)}") from None


# -- built-in filters ---------------------------------------------------------

def _concat(payloads: Sequence[Any]) -> Any:
    """Waitforall concatenation: list of all child payloads (no reduction)."""
    out: list = []
    for p in payloads:
        if isinstance(p, list):
            out.extend(p)
        else:
            out.append(p)
    return out


def _sum(payloads: Sequence[Any]) -> Any:
    return sum(payloads)


def _max(payloads: Sequence[Any]) -> Any:
    return max(payloads)


register_filter("concat", _concat)
register_filter("sum", _sum)
register_filter("max", _max)
# "prefix_tree_merge" is registered by repro.tools.stat_tool.prefix_tree
