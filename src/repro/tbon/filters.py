"""TBON reduction filters: stateless wave reducers and stateful stream filters.

A filter reduces the payloads of one wave's child packets (plus the local
contribution, if any) into a single upstream payload. Filters are
registered by name so topologies/streams can reference them portably --
mirroring MRNet's filter-id mechanism.

Two faces share one registry:

* the **legacy callable face** (``get_filter(name)(payloads)``) used by
  one-shot wave reductions -- unchanged since the seed;
* the **stream face** (``make_filter(name, window=..., **params)``) used
  by persistent streams (:meth:`repro.tbon.Overlay.open_stream`), which
  returns a :class:`Filter` whose ``reduce(payloads, state)`` both merges
  one wave *and* folds it into per-position running state.

Algebraic contract (the executable spec lives in
``tests/tbon/test_filter_properties.py``): the per-wave merge of every
built-in filter is **associative and commutative**, so the value the root
delivers is independent of fanout, depth, and child arrival order --
reducing through any tree shape equals one flat reduction over all leaf
payloads. The *state* is where windowing lives: each position folds its
subtree's per-wave merges into a running aggregate over the last
``window`` waves (0 = unbounded). Emitting the wave *delta* upstream while
keeping the running aggregate in local state is what lets every level hold
a live windowed view of its subtree without ever double-counting history.

Built-in stream filters and their MRNet/paper correspondence:

==================  ====================================================
``concat``          MRNet TFILTER_CONCAT / waitforall (stateless)
``sum`` / ``max``   MRNet TFILTER_SUM / TFILTER_MAX (stateless)
``histogram``       running histogram: payloads are ``{bin: count}``
                    dicts, merged pointwise (ScalAna-style per-resource
                    accumulation)
``top_k``           exact distributed top-k: payloads are
                    ``[value, key]`` item lists, key-deduplicated by max
``ewma``            EWMA of per-wave aggregate sums (a continuous
                    sampler's rate estimator)
``prefix_tree_merge``  STAT's call-graph prefix-tree union, promoted here
                    from ``repro.tools.stat_tool`` (pure dict merge, no
                    tool import needed)
==================  ====================================================
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

__all__ = [
    "FILTER_REGISTRY",
    "Filter",
    "StatelessFilter",
    "get_filter",
    "make_filter",
    "register_filter",
    "register_stream_filter",
    "stream_filter_names",
]

FilterFn = Callable[[Sequence[Any]], Any]

FILTER_REGISTRY: dict[str, FilterFn] = {}

#: stream-filter factories: name -> factory(window=..., **params) -> Filter
STREAM_FILTER_REGISTRY: dict[str, Callable[..., "Filter"]] = {}


def register_filter(name: str, fn: FilterFn) -> None:
    """Register (or replace) a named reduction filter (legacy callable)."""
    FILTER_REGISTRY[name] = fn


def get_filter(name: str) -> FilterFn:
    try:
        return FILTER_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown TBON filter {name!r}; registered: "
                       f"{sorted(FILTER_REGISTRY)}") from None


def register_stream_filter(name: str,
                           factory: Callable[..., "Filter"]) -> None:
    """Register (or replace) a stateful stream-filter factory."""
    STREAM_FILTER_REGISTRY[name] = factory


def stream_filter_names() -> list[str]:
    """Every name usable by a persistent stream (stateful or wrapped)."""
    return sorted(set(STREAM_FILTER_REGISTRY) | set(FILTER_REGISTRY))


def make_filter(name: str, window: int = 0, **params: Any) -> "Filter":
    """Instantiate the stream face of filter ``name``.

    Stateful built-ins honour ``window`` (and filter-specific ``params``
    like ``k`` or ``alpha``); a name registered only as a legacy callable
    comes back wrapped in a :class:`StatelessFilter`.
    """
    factory = STREAM_FILTER_REGISTRY.get(name)
    if factory is not None:
        return factory(window=window, **params)
    fn = get_filter(name)  # raises the unknown-name KeyError first
    if params:
        raise KeyError(
            f"TBON filter {name!r} is stateless; it takes no parameters "
            f"{sorted(params)} (stateful filters: "
            f"{sorted(STREAM_FILTER_REGISTRY)})")
    return StatelessFilter(fn, name)


class Filter:
    """A stateful TBON stream filter.

    ``reduce(payloads, state)`` merges one wave's child payloads into the
    upstream payload and folds the merge into ``state`` (created by
    :meth:`initial_state`; one state lives per (stream, position), passed
    back in on every wave). The merge MUST be associative and commutative
    -- that is what makes the root's result independent of tree shape and
    arrival order. Instances carry no per-position data themselves, so one
    instance can serve a whole stream.
    """

    name = "?"

    def initial_state(self) -> Any:
        return None

    def reduce(self, payloads: Sequence[Any],
               state: Any) -> tuple[Any, Any]:
        raise NotImplementedError

    # the legacy callable face: single stateless wave reduction
    def __call__(self, payloads: Sequence[Any]) -> Any:
        merged, _state = self.reduce(payloads, self.initial_state())
        return merged


class StatelessFilter(Filter):
    """Adapter giving a legacy callable the stream-filter interface."""

    def __init__(self, fn: FilterFn, name: str = "?"):
        self.fn = fn
        self.name = name

    def reduce(self, payloads: Sequence[Any],
               state: Any) -> tuple[Any, Any]:
        return self.fn(payloads), state


# -- stateless built-in filters ----------------------------------------------

def _concat(payloads: Sequence[Any]) -> Any:
    """Waitforall concatenation: list of all child payloads (no reduction)."""
    out: list = []
    for p in payloads:
        if isinstance(p, list):
            out.extend(p)
        else:
            out.append(p)
    return out


def _sum(payloads: Sequence[Any]) -> Any:
    return sum(payloads)


def _max(payloads: Sequence[Any]) -> Any:
    return max(payloads)


register_filter("concat", _concat)
register_filter("sum", _sum)
register_filter("max", _max)


# -- stateful built-in filters ------------------------------------------------

class RunningHistogramFilter(Filter):
    """Pointwise-summed histograms with a running windowed total.

    Wave payloads are ``{bin: count}`` dicts; the merge is a pointwise sum
    over all children (associative, commutative). ``state["running"]`` is
    the pointwise sum of the last ``window`` merged waves (all waves when
    ``window=0``) -- at the root that is the windowed histogram of every
    leaf sample in flight-order-independent form.
    """

    name = "histogram"

    def __init__(self, window: int = 0):
        self.window = max(0, int(window))

    def initial_state(self) -> dict:
        return {"waves": [], "running": {}}

    @staticmethod
    def merge(payloads: Sequence[dict]) -> dict:
        out: dict = {}
        for p in payloads:
            for b, c in p.items():
                out[b] = out.get(b, 0) + c
        return dict(sorted(out.items(), key=lambda kv: str(kv[0])))

    def reduce(self, payloads: Sequence[dict],
               state: dict) -> tuple[dict, dict]:
        merged = self.merge(payloads)
        state["waves"].append(merged)
        running = state["running"]
        for b, c in merged.items():
            running[b] = running.get(b, 0) + c
        if self.window and len(state["waves"]) > self.window:
            evicted = state["waves"].pop(0)
            for b, c in evicted.items():
                running[b] -= c
                if not running[b]:
                    del running[b]
        return merged, state


class TopKFilter(Filter):
    """Exact distributed top-k over ``[value, key]`` items.

    Items are deduplicated per key by **max** value, ranked by
    ``(-value, str(key))`` and truncated to ``k``. Max-dedup keeps the
    truncated merge exact: if an item belongs to the global top-k, fewer
    than k items beat it in any subtree, so its best instance survives
    every intermediate truncation (the associativity argument the property
    tests pin down). ``state["running"]`` is the top-k over the last
    ``window`` waves.
    """

    name = "top_k"

    def __init__(self, k: int = 8, window: int = 0):
        if k < 1:
            raise ValueError(f"top_k needs k >= 1, got {k}")
        self.k = int(k)
        self.window = max(0, int(window))

    def initial_state(self) -> dict:
        return {"waves": [], "running": []}

    def merge(self, payloads: Sequence[list]) -> list:
        best: dict = {}
        for p in payloads:
            for value, key in p:
                kk = key if isinstance(key, (str, int, float, bool)) \
                    else repr(key)
                if kk not in best or value > best[kk][0]:
                    best[kk] = [value, key]
        ranked = sorted(best.values(), key=lambda it: (-it[0], str(it[1])))
        return [list(it) for it in ranked[:self.k]]

    def reduce(self, payloads: Sequence[list],
               state: dict) -> tuple[list, dict]:
        merged = self.merge(payloads)
        state["waves"].append(merged)
        if self.window and len(state["waves"]) > self.window:
            state["waves"].pop(0)
        state["running"] = self.merge(state["waves"])
        return merged, state


class EwmaRateFilter(Filter):
    """Per-wave aggregate sum with an EWMA rate estimate in state.

    Wave payloads are numbers; the merge is their sum (associative,
    commutative -- exactly so for ints, to float tolerance otherwise).
    ``state["ewma"]`` tracks ``alpha * wave + (1-alpha) * ewma`` over this
    position's subtree aggregates; ``state["last"]`` and ``state["waves"]``
    expose the raw series tail for rate computations. ``window`` bounds the
    retained raw series (the EWMA itself needs no window).
    """

    name = "ewma"

    def __init__(self, alpha: float = 0.5, window: int = 0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"ewma needs 0 < alpha <= 1, got {alpha}")
        self.alpha = float(alpha)
        self.window = max(0, int(window))

    def initial_state(self) -> dict:
        return {"waves": [], "ewma": None, "last": None, "n_waves": 0}

    def reduce(self, payloads: Sequence[float],
               state: dict) -> tuple[float, dict]:
        total = sum(payloads)
        prev = state["ewma"]
        state["ewma"] = total if prev is None else (
            self.alpha * total + (1.0 - self.alpha) * prev)
        state["last"] = total
        state["n_waves"] += 1
        state["waves"].append(total)
        if self.window and len(state["waves"]) > self.window:
            state["waves"].pop(0)
        return total, state


def _merge_tree_nodes(nodes: Sequence[dict]) -> dict:
    """Pointwise union of prefix-tree wire nodes (``{"r": [...], "c": {}}``)."""
    ranks: set = set()
    for n in nodes:
        ranks.update(n["r"])
    frames = sorted({f for n in nodes for f in n["c"]})
    return {"r": sorted(ranks),
            "c": {f: _merge_tree_nodes([n["c"][f] for n in nodes
                                        if f in n["c"]])
                  for f in frames}}


def prefix_tree_merge(payloads: Sequence[dict]) -> dict:
    """Merge prefix-tree payloads (``PrefixTree.to_dict`` wire form).

    Promoted from ``repro.tools.stat_tool.prefix_tree``: the union is
    computed directly on the JSON-able dicts, byte-identical to round-
    tripping through :class:`~repro.tools.stat_tool.PrefixTree`, so the
    TBON layer needs no tool import.
    """
    return {"tree": _merge_tree_nodes([p["tree"] for p in payloads]),
            "n": sum(p.get("n", 0) for p in payloads)}


class PrefixTreeMergeFilter(Filter):
    """STAT's call-graph union as a stream filter with a windowed view.

    The merge is a pointwise set union -- associative, commutative and
    idempotent -- so any tree shape reduces losslessly.
    ``state["running"]`` unions the last ``window`` merged waves.
    """

    name = "prefix_tree_merge"

    def __init__(self, window: int = 0):
        self.window = max(0, int(window))

    def initial_state(self) -> dict:
        return {"waves": [], "running": None}

    def reduce(self, payloads: Sequence[dict],
               state: dict) -> tuple[dict, dict]:
        merged = prefix_tree_merge(payloads)
        state["waves"].append(merged)
        if self.window:
            if len(state["waves"]) > self.window:
                state["waves"].pop(0)
            state["running"] = prefix_tree_merge(state["waves"])
        else:
            state["running"] = (merged if state["running"] is None
                                else prefix_tree_merge(
                                    [state["running"], merged]))
        return merged, state


register_stream_filter("histogram", RunningHistogramFilter)
register_stream_filter("top_k", TopKFilter)
register_stream_filter("ewma", EwmaRateFilter)
register_stream_filter("prefix_tree_merge", PrefixTreeMergeFilter)

# the legacy callable face of the stateful built-ins (single-wave merge)
register_filter("histogram", RunningHistogramFilter.merge)
register_filter("top_k", TopKFilter())
register_filter("ewma", EwmaRateFilter())
register_filter("prefix_tree_merge", prefix_tree_merge)
