"""Persistent control-plane daemon: lifecycle, checkpoint/restore, adoption.

The simulated equivalent of running the tool-launching service as a
long-lived daemon instead of a per-run library: a
:class:`~repro.ctl.daemon.ControlPlane` supervisor with idempotent
``start``/``stop``/``status``/``reload`` verbs, per-generation
:class:`~repro.ctl.daemon.CtlDaemon` processes checkpointing session
state on every transition (:mod:`repro.ctl.checkpoint`), and a restore
path (:mod:`repro.ctl.restore`) that re-adopts live daemon trees across
a daemon restart without relaunching them. ``tests/ctl`` holds the
crash-restart harness driving randomized kill points against all of it.
"""

from repro.ctl.checkpoint import (CHECKPOINT_VERSION, Checkpoint,
                                  CheckpointError, CheckpointVersionError,
                                  QueueRecord, SessionRecord,
                                  decode_checkpoint, encode_checkpoint)
from repro.ctl.client import CtlClient
from repro.ctl.daemon import ControlPlane, CtlDaemon, CtlSession, DaemonState
from repro.ctl.errors import CtlError, CtlUnavailable, UnknownToolError
from repro.ctl.registry import (CTL_STREAM_ID, LaunchSpec, get_tool,
                                register_tool, tool_names)
from repro.ctl.restore import RestoreReport, restore, restore_from_store
from repro.ctl.store import CheckpointStore

__all__ = [
    "CHECKPOINT_VERSION",
    "CTL_STREAM_ID",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "CheckpointVersionError",
    "ControlPlane",
    "CtlClient",
    "CtlDaemon",
    "CtlError",
    "CtlSession",
    "CtlUnavailable",
    "DaemonState",
    "LaunchSpec",
    "QueueRecord",
    "RestoreReport",
    "SessionRecord",
    "UnknownToolError",
    "decode_checkpoint",
    "encode_checkpoint",
    "get_tool",
    "register_tool",
    "restore",
    "restore_from_store",
    "tool_names",
]
