"""Client face of the control plane.

Mirrors how a tool CLI talks to a long-running launch daemon: commands
address the :class:`~repro.ctl.daemon.ControlPlane` supervisor, not a
daemon generation, so the client's tickets (``ctl_id``) stay valid
across restarts while :class:`~repro.fe.service.SessionHandle` objects
-- this generation's in-memory promises -- do not. A command that needs
a live daemon raises :class:`~repro.ctl.errors.CtlUnavailable` when
there is none; retrying after ``start`` is the client's job (the
harness's submitter does exactly that, like a CLI looping on
"connection refused" during a rolling upgrade).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.ctl.daemon import ControlPlane, CtlDaemon, CtlSession, DaemonState
from repro.ctl.errors import CtlError, CtlUnavailable
from repro.ctl.registry import LaunchSpec
from repro.simx import Interrupt

__all__ = ["CtlClient"]


class CtlClient:
    """Command surface over one :class:`ControlPlane`."""

    def __init__(self, control: ControlPlane):
        self.control = control

    # -- daemon lifecycle verbs ---------------------------------------------

    def start(self) -> dict:
        return self.control.cmd_start()

    def status(self) -> dict:
        return self.control.cmd_status()

    def reload(self, **cfg: Any) -> dict:
        return self.control.cmd_reload(**cfg)

    def stop(self, drain: bool = True):
        """Generator: stop the daemon (drains by default)."""
        result = yield from self.control.cmd_stop(drain=drain)
        return result

    # -- session verbs -------------------------------------------------------

    def _daemon(self, *states: DaemonState) -> CtlDaemon:
        daemon = self.control.daemon
        allowed = states or (DaemonState.RUNNING,)
        if daemon is None or daemon.state not in allowed:
            have = "down" if daemon is None else daemon.state.value
            raise CtlUnavailable(f"control plane is {have}; retry later")
        return daemon

    def launch(self, tool: str, n_nodes: int, **params: Any) -> int:
        """Submit a launch; returns its restart-stable ctl id."""
        spec = LaunchSpec(tool, n_nodes, tuple(sorted(params.items())))
        return self._daemon().submit(spec).ctl_id

    def session(self, ctl_id: int) -> CtlSession:
        daemon = self._daemon(DaemonState.RUNNING, DaemonState.DRAINING,
                              DaemonState.STOPPING, DaemonState.STOPPED)
        return daemon.get(ctl_id)

    def info(self, ctl_id: int) -> dict:
        cs = self.session(ctl_id)
        return {
            "ctl_id": cs.ctl_id,
            "tool": cs.spec.tool,
            "n_nodes": cs.spec.n_nodes,
            "state": cs.state_name,
            "adopted": cs.adopted,
            "resubmitted": cs.resubmitted,
            "submitted_at": cs.submitted_at,
        }

    def wait(self, ctl_id: int):
        """Generator: wait until the ticket's current operation settles;
        returns the session's state name (an adopted session is already
        settled)."""
        cs = self.session(ctl_id)
        if cs.handle is not None and not cs.handle.done:
            yield cs.handle._wait_event()
        return cs.state_name

    def cancel(self, ctl_id: int) -> bool:
        return self._daemon(DaemonState.RUNNING,
                            DaemonState.DRAINING).cancel(ctl_id)

    def open_stream(self, ctl_id: int, **kwargs: Any):
        """The data-plane face: open/reattach a persistent stream over
        the session's overlay (works on adopted sessions -- that is the
        point)."""
        cs = self.session(ctl_id)
        if cs.session is None:
            raise CtlError(f"ctl{ctl_id} has no bound session yet")
        return cs.session.open_stream(**kwargs)

    def end(self, ctl_id: int):
        """Generator: tear the session down and wait for the teardown.

        Cancellation of the teardown op surfaces as False; success as
        True (an adopted session's reap is synchronous)."""
        daemon = self._daemon(DaemonState.RUNNING, DaemonState.DRAINING)
        handle = daemon.end_session(ctl_id)
        if handle is None:
            return True
        if not handle.done:
            yield handle._wait_event()
        exc = handle.exception
        if exc is None:
            return True
        if isinstance(exc, Interrupt):
            return False
        raise exc
