"""The durable side of the control plane: a checkpoint store.

Models the checkpoint file on the front-end node's disk. Only simulated
*processes* die in a control-plane crash; storage does not -- so the
store lives on the :class:`~repro.ctl.daemon.ControlPlane` supervisor,
outside any daemon generation. Writes are atomic whole-document
replacements, mirroring the write-temp-then-rename idiom real daemons
use so a reader never observes a torn checkpoint.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["CheckpointStore"]


class CheckpointStore:
    """Holds the latest encoded checkpoint plus write diagnostics."""

    def __init__(self) -> None:
        self._data: Optional[bytes] = None
        #: total write count (checkpoint churn diagnostic)
        self.writes = 0
        #: number of writes that replaced the document with identical
        #: bytes -- with the canonical codec this means the transition
        #: changed nothing client-visible
        self.identical_writes = 0
        #: virtual time of the last write
        self.last_write_at: Optional[float] = None

    @property
    def empty(self) -> bool:
        return self._data is None

    def write(self, data: bytes, at: float = 0.0) -> None:
        if not isinstance(data, bytes):
            raise TypeError(f"checkpoint store takes bytes, got "
                            f"{type(data).__name__}")
        if data == self._data:
            self.identical_writes += 1
        self._data = data
        self.writes += 1
        self.last_write_at = at

    def read(self) -> Optional[bytes]:
        """The latest checkpoint bytes, or None if never written."""
        return self._data

    def clear(self) -> None:
        """Discard the stored checkpoint (operator reset)."""
        self._data = None
