"""Crash-restart scenario engine for the control plane.

One scenario = one seeded workload driven through a
:class:`~repro.ctl.daemon.ControlPlane`, killed at a randomized
lifecycle point, restarted after a downtime, driven to completion, and
then audited: every session must end **re-adopted or cleanly reaped --
never relaunched, never leaked**. The audits are independent of the
restore's own bookkeeping (they recount from the RM and the cluster),
so a restore that lies to its report still fails the scenario.

Scenario variants (selected by the config, exercised across seeds by
the soak test and the ``ctl`` experiment):

* plain restart under load (kill while launching / serving)
* drain begun before the crash (kill mid-drain)
* node-fault weather (a :class:`~repro.cluster.FaultPlan` crashing
  nodes under a repair-enabled :class:`~repro.launch.LaunchPolicy`, so
  the kill can land mid-repair and adopt DEGRADED trees)
* tight admission gate (``max_in_flight=1``: the kill lands on queued,
  not-yet-admitted work)

The submitter retries :class:`~repro.ctl.errors.CtlUnavailable` with a
backoff, exactly like a CLI looping on "connection refused" while the
daemon restarts -- so every scenario also exercises the daemon's
refuse-while-down behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster import ClusterSpec, FaultPlan
from repro.ctl.client import CtlClient
from repro.ctl.daemon import ControlPlane, DaemonState
from repro.ctl.errors import CtlUnavailable
from repro.fe.session import SessionState
from repro.launch import LaunchPolicy
from repro.runner import drive, make_env
from repro.simx.rng import SeededRNG

__all__ = ["CrashResult", "CrashScenario", "run_crash_restart",
           "scenario_for_seed"]

_LIVE = (SessionState.READY, SessionState.DEGRADED, SessionState.MW_READY)


@dataclass
class CrashScenario:
    """One seeded crash-restart run's configuration."""

    seed: int = 0
    n_sessions: int = 5
    nodes_per_session: int = 3
    #: 0 = size the cluster to fit every session plus fault headroom
    n_compute: int = 0
    max_in_flight: Optional[int] = 3
    #: every k-th session uses the TBON ``overlay`` recipe (0 = never)
    overlay_every: int = 3
    #: per-node crash probability (0 = fault-free weather)
    fault_rate: float = 0.0
    #: begin a graceful drain before the kill lands
    drain_mid: bool = False
    #: virtual seconds between submissions (jittered)
    submit_gap: float = 0.3
    #: kill time is drawn uniform in (0.1, est_makespan)
    est_makespan: float = 8.0
    #: how long the control plane stays down before the restart
    downtime: float = 0.5
    #: explicit kill time (overrides the seeded draw; tests use this)
    t_kill: Optional[float] = None

    def resolved_n_compute(self) -> int:
        if self.n_compute:
            return self.n_compute
        return self.n_sessions * self.nodes_per_session + 5


@dataclass
class CrashResult:
    """One scenario's outcome plus its audit verdicts."""

    seed: int
    t_kill: float = 0.0
    generations: int = 0
    submitted: int = 0
    rejected_submits: int = 0
    adopted: int = 0
    resubmitted: int = 0
    reaped_sessions: int = 0
    orphan_allocs_reaped: int = 0
    #: trees started over for an already-live session (must stay 0)
    relaunched: int = 0
    completed: int = 0
    failed_sessions: int = 0
    #: allocated nodes owned by no live session after recovery (must be 0)
    leaked_nodes_mid: int = 0
    #: allocated nodes after full teardown (must be 0)
    leaked_nodes_final: int = 0
    #: RM queue entries after full teardown (must be 0)
    queue_leak_final: int = 0
    #: free-node index consistent with cluster reality after teardown
    index_balanced: bool = True
    makespan: float = 0.0
    ok: bool = False
    notes: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed, "t_kill": self.t_kill,
            "generations": self.generations, "submitted": self.submitted,
            "rejected_submits": self.rejected_submits,
            "adopted": self.adopted, "resubmitted": self.resubmitted,
            "reaped_sessions": self.reaped_sessions,
            "orphan_allocs_reaped": self.orphan_allocs_reaped,
            "relaunched": self.relaunched, "completed": self.completed,
            "failed_sessions": self.failed_sessions,
            "leaked_nodes_mid": self.leaked_nodes_mid,
            "leaked_nodes_final": self.leaked_nodes_final,
            "queue_leak_final": self.queue_leak_final,
            "index_balanced": self.index_balanced,
            "makespan": self.makespan, "ok": self.ok,
            "notes": list(self.notes),
        }


def scenario_for_seed(seed: int, fault_rate: float = 0.08,
                      **overrides) -> CrashScenario:
    """The soak's scenario mix: rotate the variants by seed so a block of
    consecutive seeds covers launching, draining, mid-repair and gated
    kill points."""
    variant = seed % 4
    cfg = CrashScenario(seed=seed)
    if variant == 1:
        cfg.drain_mid = True
    elif variant == 2:
        cfg.fault_rate = fault_rate
    elif variant == 3:
        # serialized admission with rapid-fire submits: the FIFO gate
        # actually queues sessions, so kills land on gate-blocked ops and
        # exercise resubmit-on-restore plus the orphan-grant sweep
        cfg.max_in_flight = 1
        cfg.submit_gap = 0.05
        cfg.est_makespan = 2.0
    # second rotation: half the seeds kill early, inside the launch window,
    # so queued/spawning dispositions (resubmit, reap, orphan sweep) get as
    # much soak coverage as the easy adopt-a-ready-tree case
    if (seed // 4) % 2:
        cfg.est_makespan = min(cfg.est_makespan, 1.0)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def run_crash_restart(cfg: CrashScenario) -> CrashResult:
    """Execute one scenario; see the module docstring for the shape."""
    rng = SeededRNG(cfg.seed, "ctl-crash")
    n_compute = cfg.resolved_n_compute()
    plan = None
    policy = None
    if cfg.fault_rate > 0.0:
        plan = FaultPlan(crash_rate=cfg.fault_rate,
                         crash_window=(0.0, cfg.est_makespan))
        policy = LaunchPolicy(per_daemon_timeout=5.0, max_retries=2,
                              retry_backoff=0.05, min_daemon_fraction=0.5,
                              handshake_timeout=30.0)
    env = make_env(
        n_compute=n_compute,
        spec=ClusterSpec(n_compute=n_compute, fault_plan=plan,
                         seed=cfg.seed + 1),
        seed=cfg.seed + 1,
        policy=policy)
    sim, rm, cluster = env.sim, env.rm, env.cluster

    control = ControlPlane(cluster, rm, max_in_flight=cfg.max_in_flight)
    client = CtlClient(control)
    client.start()

    res = CrashResult(seed=cfg.seed)
    tickets: List[int] = []

    def submitter():
        queue = list(range(cfg.n_sessions))
        i = 0
        while i < len(queue):
            idx = queue[i]
            use_overlay = (cfg.overlay_every
                           and idx % cfg.overlay_every == cfg.overlay_every - 1)
            tool = "overlay" if use_overlay else "generic-be"
            try:
                ctl_id = client.launch(tool, cfg.nodes_per_session)
            except CtlUnavailable:
                res.rejected_submits += 1
                yield sim.timeout(0.3)
                continue
            tickets.append(ctl_id)
            i += 1
            yield sim.timeout(rng.jitter(cfg.submit_gap, 0.5))

    sub_proc = sim.process(submitter(), name="ctl-submitter")

    t_kill = cfg.t_kill if cfg.t_kill is not None \
        else rng.uniform(0.1, cfg.est_makespan)
    res.t_kill = t_kill

    if cfg.drain_mid:
        t_drain = t_kill * rng.uniform(0.2, 0.9)

        def drainer():
            yield sim.timeout(t_drain)
            if control.running:
                yield from control.cmd_stop(drain=True)

        drain_proc = sim.process(drainer(), name="ctl-drainer")
        control.daemon._aux_procs.append(drain_proc)

    # phase 1: run under load until the kill lands
    sim.run(until=t_kill)
    pre_jobs = {}
    if control.daemon is not None:
        for ctl_id, cs in control.daemon.sessions.items():
            session = cs.session
            if session is not None and session.state in _LIVE \
                    and session.job is not None:
                alive = [id(d.proc) for d in session.job.daemons
                         if d.proc is not None and d.proc.alive]
                if alive:
                    pre_jobs[ctl_id] = (session.job, frozenset(alive))
    control.crash()

    # phase 2: downtime -- the data plane keeps running headless; the
    # submitter's retries bounce off the dead daemon
    sim.run(until=t_kill + cfg.downtime)

    # phase 3: restart + restore
    client.start()
    daemon = control.daemon
    res.generations = control.generation
    report = daemon.restore_report
    if report is not None:
        res.adopted = report.adopted
        res.resubmitted = report.resubmitted
        res.reaped_sessions = report.reaped_sessions
        res.orphan_allocs_reaped = report.orphan_allocs_reaped
        res.relaunched = report.relaunched

    # relaunch audit, independent of the restore's own report: every
    # session whose tree was alive at the kill must come back *adopted*
    # onto the same job and daemon processes
    for ctl_id, (job, proc_ids) in pre_jobs.items():
        cs = daemon.sessions.get(ctl_id)
        if cs is None or not cs.adopted or cs.session.job is not job:
            res.relaunched += 1
            res.notes.append(f"ctl{ctl_id}: live tree not re-adopted")
            continue
        now_alive = frozenset(id(d.proc) for d in cs.session.job.daemons
                              if d.proc is not None and d.proc.alive)
        if not now_alive <= proc_ids:
            res.relaunched += 1
            res.notes.append(f"ctl{ctl_id}: daemon set changed across "
                             f"restart (respawn?)")

    # phase 4: drive the workload to completion under the new generation
    def finisher():
        if sub_proc.is_alive:
            yield sub_proc
        while True:
            pending = [cs.handle for cs in daemon.sessions.values()
                       if cs.handle is not None and not cs.handle.done]
            if not pending:
                return
            yield pending[0]._wait_event()

    drive(env, finisher())
    res.submitted = len(tickets)

    # mid audit: after recovery every allocated node is owned by a live
    # session of the current generation
    held = set()
    for cs in daemon.sessions.values():
        session = cs.session
        if session is None:
            continue
        if session.state in (SessionState.DETACHED, SessionState.KILLED,
                             SessionState.FAILED):
            continue
        for alloc in session.owned_allocs:
            held.update(node.name for node in alloc.nodes)
    res.leaked_nodes_mid = len(rm.allocated_node_names - held)
    res.completed = sum(1 for cs in daemon.sessions.values()
                        if cs.session is not None
                        and cs.session.state in _LIVE)
    res.failed_sessions = sum(1 for cs in daemon.sessions.values()
                              if cs.session is not None
                              and cs.session.state is SessionState.FAILED)

    # phase 5: tear everything down through the client, then stop
    def ender():
        for ctl_id in sorted(daemon.sessions):
            cs = daemon.sessions[ctl_id]
            if cs.session is not None and cs.session.state in _LIVE:
                try:
                    yield from client.end(ctl_id)
                except Exception as exc:
                    # a failed teardown is not a scenario abort: the final
                    # node-accounting audit is the arbiter of whether it
                    # actually leaked anything
                    res.notes.append(f"ctl{ctl_id}: teardown failed: {exc}")
        result = yield from client.stop(drain=True)
        return result

    drive(env, ender())
    res.makespan = sim.now

    # final audit: node accounting balances to zero
    res.leaked_nodes_final = len(rm.allocated_node_names)
    res.queue_leak_final = rm.queued_requests
    grantable = sum(1 for node in cluster.compute
                    if not node.failed
                    and node.name not in rm.node_blacklist)
    res.index_balanced = len(rm.free_nodes()) == grantable
    terminal = all(
        cs.session is not None and cs.session.state in (
            SessionState.DETACHED, SessionState.KILLED, SessionState.FAILED)
        for cs in daemon.sessions.values())
    if not terminal:
        res.notes.append("non-terminal session after teardown")
    res.ok = (res.relaunched == 0 and res.leaked_nodes_mid == 0
              and res.leaked_nodes_final == 0 and res.queue_leak_final == 0
              and res.index_balanced and terminal
              and res.submitted == cfg.n_sessions)
    return res
