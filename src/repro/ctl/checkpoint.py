"""Versioned, deterministic session-state checkpoints.

The control-plane daemon (:mod:`repro.ctl.daemon`) persists its
client-visible state -- live sessions, the RM allocation queue it left
behind, the node blacklist -- into a :class:`CheckpointStore` on every
state transition. A restarted daemon decodes the latest checkpoint and
re-adopts what it describes (:mod:`repro.ctl.restore`).

Format contract
---------------
* **Canonical encoding.** :func:`encode_checkpoint` emits one JSON
  document with sorted keys, compact separators and ASCII escaping, so
  the same :class:`Checkpoint` value always encodes to the same bytes
  (``encode(decode(b)) == b`` and ``decode(encode(c)) == c``, both
  bit/value-identical). Determinism is what makes checkpoint churn
  auditable: a transition that did not change client-visible state
  writes identical bytes.
* **Versioned.** The document carries ``"version"``; this codec reads
  exactly :data:`CHECKPOINT_VERSION`. Any other version raises
  :class:`CheckpointVersionError` *before* any field is interpreted.
* **Strict.** Unknown fields are rejected with a versioned
  :class:`CheckpointError` rather than ignored: a field this codec does
  not know about was written by a future daemon, and silently dropping
  it on a rolling *downgrade* would corrupt state that the newer daemon
  depended on. Forward compatibility is a version bump, not leniency.

``NaN``/``Infinity`` are refused on encode (``allow_nan=False``) -- they
are not valid JSON and would break the bit-identical round trip.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional, Tuple

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointVersionError",
    "QueueRecord",
    "SessionRecord",
    "decode_checkpoint",
    "encode_checkpoint",
]

#: format version this codec reads and writes
CHECKPOINT_VERSION = 1

#: session states a checkpoint can describe (terminal states are dropped
#: at build time -- there is nothing to adopt)
RECORD_STATES = ("queued", "spawning", "ready", "degraded", "mw-ready")


class CheckpointError(ValueError):
    """A checkpoint document is malformed for its declared version.

    ``version`` is the format version the error was raised against (the
    document's own claim when it could be read, else this codec's)."""

    def __init__(self, message: str, version: Optional[int] = None):
        self.version = CHECKPOINT_VERSION if version is None else version
        super().__init__(f"[checkpoint v{self.version}] {message}")


class CheckpointVersionError(CheckpointError):
    """The document's version is one this codec does not read."""


@dataclass(frozen=True)
class SessionRecord:
    """One live session as the daemon last saw it.

    ``params`` is the session's :class:`~repro.ctl.registry.LaunchSpec`
    parameters as a tuple of ``(key, value)`` pairs -- enough to
    *resubmit* the launch if it had not reached a daemon tree yet.
    ``jobid`` / ``alloc_ids`` name the RM-side objects (which survive a
    control-plane death) -- enough to *adopt* a live tree without
    relaunching it. ``jobid`` 0 means no job existed yet.
    """

    ctl_id: int
    tool_name: str
    tool: str
    n_nodes: int
    params: Tuple[Tuple[str, Any], ...]
    state: str
    session_id: int
    jobid: int
    alloc_ids: Tuple[int, ...]
    has_overlay: bool
    submitted_at: float


@dataclass(frozen=True)
class QueueRecord:
    """One entry of the RM's FIFO allocation queue at checkpoint time.

    The grant event itself is process state and died with the daemon;
    what survives is the *shape* of pending contention, recorded so a
    restore can audit what it withdraws (see
    :meth:`~repro.rm.base.ResourceManager.withdraw_all_queued`).
    """

    n_nodes: int
    t_req: float


@dataclass(frozen=True)
class Checkpoint:
    """The daemon's full durable state at one instant."""

    generation: int
    next_ctl_id: int
    max_in_flight: Optional[int]
    written_at: float
    sessions: Tuple[SessionRecord, ...]
    alloc_queue: Tuple[QueueRecord, ...]
    blacklist: Tuple[str, ...]


# ---------------------------------------------------------------------------
# encode
# ---------------------------------------------------------------------------

_SCALARS = (str, int, float, bool, type(None))


def _check_param_pairs(params: Any, where: str) -> Tuple[Tuple[str, Any], ...]:
    out = []
    for pair in params:
        pair = tuple(pair)
        if len(pair) != 2 or not isinstance(pair[0], str) \
                or not isinstance(pair[1], _SCALARS):
            raise CheckpointError(
                f"{where}: params must be (str, scalar) pairs, got {pair!r}")
        out.append(pair)
    return tuple(out)


def encode_checkpoint(cp: Checkpoint) -> bytes:
    """Serialize ``cp`` to canonical JSON bytes (see module docstring)."""
    doc = {
        "version": CHECKPOINT_VERSION,
        "generation": cp.generation,
        "next_ctl_id": cp.next_ctl_id,
        "max_in_flight": cp.max_in_flight,
        "written_at": cp.written_at,
        "sessions": [
            {
                "ctl_id": r.ctl_id,
                "tool_name": r.tool_name,
                "tool": r.tool,
                "n_nodes": r.n_nodes,
                "params": [list(p) for p in
                           _check_param_pairs(r.params, f"session {r.ctl_id}")],
                "state": r.state,
                "session_id": r.session_id,
                "jobid": r.jobid,
                "alloc_ids": list(r.alloc_ids),
                "has_overlay": r.has_overlay,
                "submitted_at": r.submitted_at,
            }
            for r in cp.sessions
        ],
        "alloc_queue": [{"n_nodes": q.n_nodes, "t_req": q.t_req}
                        for q in cp.alloc_queue],
        "blacklist": list(cp.blacklist),
    }
    try:
        text = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                          allow_nan=False)
    except ValueError as exc:  # NaN / Infinity
        raise CheckpointError(f"non-finite float in checkpoint: {exc}")
    return text.encode("ascii")


# ---------------------------------------------------------------------------
# decode (strict)
# ---------------------------------------------------------------------------

def _require(cond: bool, msg: str, version: Optional[int] = None) -> None:
    if not cond:
        raise CheckpointError(msg, version=version)


def _int(doc: dict, key: str, where: str) -> int:
    v = doc.get(key)
    _require(isinstance(v, int) and not isinstance(v, bool),
             f"{where}: field {key!r} must be an integer, got {v!r}")
    return v


def _num(doc: dict, key: str, where: str) -> float:
    v = doc.get(key)
    _require(isinstance(v, (int, float)) and not isinstance(v, bool),
             f"{where}: field {key!r} must be a number, got {v!r}")
    return v


def _str(doc: dict, key: str, where: str) -> str:
    v = doc.get(key)
    _require(isinstance(v, str), f"{where}: field {key!r} must be a string")
    return v


def _check_keys(doc: dict, known: frozenset, where: str) -> None:
    unknown = sorted(set(doc) - known)
    _require(not unknown,
             f"{where}: unknown field(s) {unknown} -- written by a newer "
             f"daemon? refusing to drop state it may depend on")
    missing = sorted(known - set(doc))
    _require(not missing, f"{where}: missing field(s) {missing}")


_TOP_KEYS = frozenset({
    "version", "generation", "next_ctl_id", "max_in_flight", "written_at",
    "sessions", "alloc_queue", "blacklist"})
_SESSION_KEYS = frozenset({
    "ctl_id", "tool_name", "tool", "n_nodes", "params", "state",
    "session_id", "jobid", "alloc_ids", "has_overlay", "submitted_at"})
_QUEUE_KEYS = frozenset({"n_nodes", "t_req"})


def _decode_session(doc: Any, i: int) -> SessionRecord:
    where = f"sessions[{i}]"
    _require(isinstance(doc, dict), f"{where}: must be an object")
    _check_keys(doc, _SESSION_KEYS, where)
    state = _str(doc, "state", where)
    _require(state in RECORD_STATES,
             f"{where}: unknown session state {state!r} "
             f"(known: {list(RECORD_STATES)})")
    params_raw = doc["params"]
    _require(isinstance(params_raw, list), f"{where}: params must be a list")
    alloc_ids = doc["alloc_ids"]
    _require(isinstance(alloc_ids, list) and all(
        isinstance(a, int) and not isinstance(a, bool) for a in alloc_ids),
        f"{where}: alloc_ids must be a list of integers")
    has_overlay = doc["has_overlay"]
    _require(isinstance(has_overlay, bool),
             f"{where}: has_overlay must be a boolean")
    return SessionRecord(
        ctl_id=_int(doc, "ctl_id", where),
        tool_name=_str(doc, "tool_name", where),
        tool=_str(doc, "tool", where),
        n_nodes=_int(doc, "n_nodes", where),
        params=_check_param_pairs(params_raw, where),
        state=state,
        session_id=_int(doc, "session_id", where),
        jobid=_int(doc, "jobid", where),
        alloc_ids=tuple(alloc_ids),
        has_overlay=has_overlay,
        submitted_at=_num(doc, "submitted_at", where),
    )


def _decode_queue(doc: Any, i: int) -> QueueRecord:
    where = f"alloc_queue[{i}]"
    _require(isinstance(doc, dict), f"{where}: must be an object")
    _check_keys(doc, _QUEUE_KEYS, where)
    return QueueRecord(n_nodes=_int(doc, "n_nodes", where),
                       t_req=_num(doc, "t_req", where))


def decode_checkpoint(data: bytes) -> Checkpoint:
    """Parse and strictly validate checkpoint bytes.

    Raises :class:`CheckpointVersionError` for a version mismatch (checked
    first), :class:`CheckpointError` for anything else malformed.
    """
    if isinstance(data, str):
        data = data.encode("ascii")
    try:
        doc = json.loads(data.decode("ascii"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CheckpointError(f"checkpoint is not canonical JSON: {exc}")
    _require(isinstance(doc, dict), "checkpoint document must be an object")
    version = doc.get("version")
    _require(isinstance(version, int) and not isinstance(version, bool),
             "checkpoint carries no integer 'version' field")
    if version != CHECKPOINT_VERSION:
        raise CheckpointVersionError(
            f"cannot read checkpoint version {version}; this daemon reads "
            f"version {CHECKPOINT_VERSION} only", version=version)
    _check_keys(doc, _TOP_KEYS, "checkpoint")

    mif = doc["max_in_flight"]
    _require(mif is None or (isinstance(mif, int) and not isinstance(mif, bool)
                             and mif >= 1),
             "max_in_flight must be null or a positive integer")
    sessions_raw = doc["sessions"]
    _require(isinstance(sessions_raw, list), "sessions must be a list")
    queue_raw = doc["alloc_queue"]
    _require(isinstance(queue_raw, list), "alloc_queue must be a list")
    blacklist_raw = doc["blacklist"]
    _require(isinstance(blacklist_raw, list) and all(
        isinstance(b, str) for b in blacklist_raw),
        "blacklist must be a list of node names")

    return Checkpoint(
        generation=_int(doc, "generation", "checkpoint"),
        next_ctl_id=_int(doc, "next_ctl_id", "checkpoint"),
        max_in_flight=mif,
        written_at=_num(doc, "written_at", "checkpoint"),
        sessions=tuple(_decode_session(s, i)
                       for i, s in enumerate(sessions_raw)),
        alloc_queue=tuple(_decode_queue(q, i)
                          for i, q in enumerate(queue_raw)),
        blacklist=tuple(blacklist_raw),
    )
