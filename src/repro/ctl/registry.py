"""Launch specs and the tool-recipe registry.

The control plane cannot checkpoint a Python callable. What it *can*
checkpoint is a :class:`LaunchSpec`: a registered recipe name plus
jsonable parameters. The registry maps the name back to an operation
factory, so a restarted daemon can resubmit a launch that had not
produced a daemon tree yet from its checkpoint record alone.

A recipe factory takes the spec and returns an op generator function
``op(fe, session)`` suitable for
:meth:`~repro.fe.service.ToolService.submit_op`. Two recipes are built
in:

``generic-be``
    ``launch_and_spawn`` with a *parked* daemon body: daemons signal
    ready and then sit on their process's ``exit_event``. The tree
    therefore stays alive until explicitly torn down -- which is what
    makes control-plane re-adoption observable (an eagerly-exiting body
    would leave nothing to adopt).

``overlay``
    The full TBON path: allocate, launch the job, run
    :func:`~repro.tbon.launchmon_startup`, then park. Daemons publish a
    few waves into a persistent stream before parking, so a restarted
    daemon can subscribe to the *same* stream over the adopted overlay
    and prove data-plane continuity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.apps.scenarios import make_compute_app
from repro.be import BackEnd
from repro.ctl.errors import UnknownToolError
from repro.fe.session import SessionState
from repro.rm.base import DaemonSpec
from repro.tbon.overlay import StreamSpec
from repro.tbon.startup import launchmon_startup

__all__ = ["CTL_STREAM_ID", "LaunchSpec", "get_tool", "register_tool",
           "tool_names"]

#: persistent stream id the ``overlay`` recipe publishes into (distinct
#: from the overlay's one-shot wave stream id 1)
CTL_STREAM_ID = 7


@dataclass(frozen=True)
class LaunchSpec:
    """A checkpointable launch request: recipe name + jsonable params."""

    tool: str
    n_nodes: int
    #: extra recipe parameters as sorted ``(key, scalar)`` pairs
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default


_TOOLS: Dict[str, Callable[[LaunchSpec], Callable]] = {}


def register_tool(name: str):
    """Decorator: register ``factory(spec) -> op(fe, session)`` under
    ``name``."""
    def deco(factory):
        _TOOLS[name] = factory
        return factory
    return deco


def get_tool(name: str) -> Callable[[LaunchSpec], Callable]:
    try:
        return _TOOLS[name]
    except KeyError:
        raise UnknownToolError(
            f"no tool recipe {name!r} (registered: {sorted(_TOOLS)})")


def tool_names() -> Tuple[str, ...]:
    return tuple(sorted(_TOOLS))


# ---------------------------------------------------------------------------
# built-in recipes
# ---------------------------------------------------------------------------

def _parked_daemon(ctx):
    """BE body that stays resident: init, ready, then wait to be exited.

    The ``exit_event`` wait is what a real tool daemon's service loop
    is to the simulation: the process holds its node slot until the RM
    epilogue (or a graceful teardown) ends it.
    """
    be = BackEnd(ctx)
    yield from be.init()
    yield from be.ready()
    yield ctx.proc.exit_event


@register_tool("generic-be")
def _generic_be(spec: LaunchSpec):
    tasks_per_node = int(spec.param("tasks_per_node", 2))
    image_mb = float(spec.param("image_mb", 2.0))

    def op(fe, session):
        app = make_compute_app(n_tasks=spec.n_nodes * tasks_per_node,
                               tasks_per_node=tasks_per_node)
        dspec = DaemonSpec("ctl_be", main=_parked_daemon, image_mb=image_mb)
        yield from fe.launch_and_spawn(session, app, dspec)

    return op


def _make_stream_body(n_waves: int):
    """Overlay daemon body: publish ``n_waves`` into the shared persistent
    stream, then park (see :func:`_parked_daemon`)."""
    def body(be, ctx, endpoint):
        stream = endpoint.overlay.open_stream(
            StreamSpec(CTL_STREAM_ID, "concat"))
        pos = endpoint.position
        for wave in range(n_waves):
            yield from stream.publish(pos, wave, [[pos, wave]])
        yield ctx.proc.exit_event
    return body


@register_tool("overlay")
def _overlay_tool(spec: LaunchSpec):
    tasks_per_node = int(spec.param("tasks_per_node", 2))
    image_mb = float(spec.param("image_mb", 4.0))
    n_waves = int(spec.param("waves", 2))

    def op(fe, session):
        app = make_compute_app(n_tasks=spec.n_nodes * tasks_per_node,
                               tasks_per_node=tasks_per_node)
        try:
            # mirror launch_and_spawn's observable queueing: the session
            # is QUEUED while it waits in the RM's FIFO line
            session.state = SessionState.QUEUED
            alloc = yield from fe.rm.allocate_async(app.nodes_needed())
            session.owned_allocs.append(alloc)
            job = yield from fe.rm.launch_job(app, alloc)
            # attachAndSpawn requires a CREATED session
            session.state = SessionState.CREATED
            yield from launchmon_startup(
                fe, session, job, daemon_executable="ctl_overlay_be",
                image_mb=image_mb,
                daemon_body=_make_stream_body(n_waves))
        except BaseException:
            # failures before/inside the attach must not strand the
            # allocation this op obtained itself (attach's own failure
            # path already reclaimed; reclaim is idempotent)
            fe.reclaim(session)
            if session.state not in (SessionState.FAILED,
                                     SessionState.KILLED):
                session.state = SessionState.FAILED
            raise

    return op
